"""E10 — interface compression (Observation 3.2 / compressed PQ-trees).

A part's skeleton summary — what a merge coordinator actually receives —
must scale with the part's *boundary*, not with its size.  We grow parts
by an order of magnitude at fixed boundary and check the summary stays
flat, then grow the boundary at fixed part size and check it scales
linearly.
"""

import time

from repro.analysis import fit_power_law, print_table, verdict
from repro.core import fresh_part, interface_skeleton
from repro.planar.generators import cycle_graph, grid_graph


def run_experiment(report=None):
    rows = []
    # fixed boundary (4 attachments), growing part
    fixed_boundary_words = []
    for k in (5, 10, 20, 40):
        g = grid_graph(k, k)
        corners = [0, k - 1, k * k - k, k * k - 1]
        part = fresh_part(g, [(c, 10_000 + c) for c in corners])
        t0 = time.perf_counter()
        sk = interface_skeleton(part)
        if report is not None:
            report.record(
                part=f"grid{k}x{k}", n=g.num_nodes, boundary=4,
                summary_words=sk.words, wall_s=round(time.perf_counter() - t0, 6),
            )
        fixed_boundary_words.append(sk.words)
        rows.append([f"grid{k}x{k}", g.num_nodes, 4, sk.words])
    # fixed part (cycle of 240), growing boundary
    growing = []
    for b in (3, 6, 12, 24, 48):
        g = cycle_graph(240)
        attachments = [i * (240 // b) for i in range(b)]
        part = fresh_part(g, [(a, 10_000 + a) for a in attachments])
        t0 = time.perf_counter()
        sk = interface_skeleton(part)
        if report is not None:
            report.record(
                part="cycle240", n=240, boundary=b,
                summary_words=sk.words, wall_s=round(time.perf_counter() - t0, 6),
            )
        growing.append((b, sk.words))
        rows.append(["cycle240", 240, b, sk.words])
    print_table(
        ["part", "part size n", "boundary", "summary words"],
        rows,
        title="E10: interface-skeleton summary sizes",
    )
    return fixed_boundary_words, growing


def test_e10_interface(run_once, bench_report):
    fixed_boundary_words, growing = run_once(run_experiment, bench_report)
    ok = verdict(
        "E10: summary size independent of part size (fixed boundary)",
        max(fixed_boundary_words) <= min(fixed_boundary_words) + 2,
        f"words {fixed_boundary_words} across a 64x part-size range",
    )
    fit = fit_power_law([b for b, _ in growing], [w for _, w in growing])
    ok &= verdict(
        "E10: summary size ~linear in the boundary",
        0.8 <= fit.exponent <= 1.2,
        f"boundary-exponent {fit.exponent:.2f}",
    )
    assert ok
