"""E12 — ablation: the 2/3-balanced splitter vs a naive root split.

The recursive order's whole point (Section 4) is that the splitter keeps
every hanging part at <= 2|T_s|/3 vertices, bounding the recursion depth
by O(log n).  Replacing it with the naive split (P0 = the subtree root
alone) removes the guarantee: on path-like BFS trees the recursion depth
degenerates toward the tree depth and the round count inflates.
"""

import time

from repro import DistributedPlanarEmbedding
from repro.analysis import print_table, verdict
from repro.planar.generators import caterpillar, grid_graph


def run_experiment(report=None):
    rows = []
    data = []
    for name, g in [
        ("grid14", grid_graph(14, 14)),
        ("caterpillar60x3", caterpillar(60, 3)),
    ]:
        t0 = time.perf_counter()
        balanced = DistributedPlanarEmbedding(g, splitter_strategy="balanced").run()
        wall_balanced = time.perf_counter() - t0
        t0 = time.perf_counter()
        naive = DistributedPlanarEmbedding(g, splitter_strategy="root").run()
        wall_naive = time.perf_counter() - t0
        if report is not None:
            report.record_run(
                g, balanced, wall_balanced, family=name, strategy="balanced",
                recursion_depth=balanced.recursion_depth,
            )
            report.record_run(
                g, naive, wall_naive, family=name, strategy="root",
                recursion_depth=naive.recursion_depth,
            )
        rows.append(
            [name, balanced.recursion_depth, naive.recursion_depth,
             balanced.rounds, naive.rounds]
        )
        data.append((balanced, naive))
    print_table(
        ["family", "depth (paper)", "depth (naive)", "rounds (paper)",
         "rounds (naive)"],
        rows,
        title="E12: ablating the 2/3-balanced splitter",
    )
    return data


def test_e12_ablation(run_once, bench_report):
    data = run_once(run_experiment, bench_report)
    ok = True
    for balanced, naive in data:
        ok &= naive.recursion_depth >= 2 * balanced.recursion_depth
        # both still produce correct embeddings
        assert balanced.rotation_system.genus() == 0
        assert naive.rotation_system.genus() == 0
    assert verdict(
        "E12: balanced splitter cuts recursion depth >= 2x vs naive split",
        ok,
        ", ".join(
            f"{b.recursion_depth} vs {n.recursion_depth}" for b, n in data
        ),
    )
