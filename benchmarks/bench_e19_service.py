"""E19 — embedding-as-a-service throughput: cold pool vs warm cache.

The serving subsystem (:mod:`repro.serve`) promises two things worth a
number: a process pool that keeps verdicts in deterministic submission
order without serializing the work, and a canonical result cache whose
warm hits skip the pool entirely.  This bench pins both on the
repeated-topology workload the cache is built for — R submissions of
one topology, the shape a CI fleet or parameter sweep produces:

* **cold**: ``cache=None``, every job genuinely computes (this is the
  service floor — what you pay with caching off);
* **warm**: the cache already holds the topology's verdict, every job
  is an exact hit (this is the service ceiling — hash + lookup only);

each measured at 1, 2, and 4 pool workers, reporting jobs/sec and
p50/p99 per-job latency into ``BENCH_e19_service.json``.

Gates (``throughput_budget.json``): warm must beat cold by the pinned
ratio **at 1 worker** — the single-CPU-safe anchor; multi-worker cold
numbers are recorded for the trajectory but never gated, since extra
pool processes only help when the runner has cores to back them — and
warm throughput must clear an absolute jobs/sec floor (generous ~5x
headroom, trips only on order-of-magnitude regressions such as a lost
cache or an accidental re-embed on the hit path).

``REPRO_BENCH_SMOKE=1`` swaps the grid:256 x64 workload for grid:64
x16.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis import print_table, verdict
from repro.serve import ResultCache, ServiceDriver, load_jobs

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

BUDGET_PATH = Path(__file__).resolve().parent / "throughput_budget.json"

# (workload key, grid rows, grid cols, repeated submissions)
WORKLOAD = ("grid:64x16", 8, 8, 16) if SMOKE else ("grid:256x64", 16, 16, 64)
WORKERS = (1, 2, 4)


def _jobs():
    _key, rows, cols, repeat = WORKLOAD
    spec = json.dumps({"demo": ["grid", rows, cols]})
    return load_jobs(spec for _ in range(repeat))


def _timed_run(driver, jobs):
    """Run the batch and return its aggregate report (wall, jobs/sec,
    latency percentiles) plus the computations done *during* the run."""
    before = driver.cache.stats.misses if driver.cache is not None else None
    t0 = time.perf_counter()
    outcomes = driver.run(jobs)
    report = driver.aggregate(outcomes, time.perf_counter() - t0)
    assert all(o.outcome == "ok" for o in outcomes)
    if before is not None:
        report["computed"] = driver.cache.stats.misses - before
    return report


def run_experiment(report=None):
    key = WORKLOAD[0]
    jobs = _jobs()
    results = {}
    rows = []
    for workers in WORKERS:
        cold = _timed_run(ServiceDriver(workers=workers, cache=None), jobs)

        warm_cache = ResultCache()
        ServiceDriver(workers=0, cache=warm_cache).run(jobs[:1])  # pre-warm
        warm = _timed_run(ServiceDriver(workers=workers, cache=warm_cache), jobs)
        assert warm["computed"] == 0, "warm phase must be all cache hits"

        ratio = warm["jobs_per_s"] / cold["jobs_per_s"]
        results[workers] = {"cold": cold, "warm": warm, "ratio": ratio}
        for phase, rep in (("cold", cold), ("warm", warm)):
            if report is not None:
                report.record(
                    workload=key, workers=workers, phase=phase,
                    jobs=rep["jobs"], computed=rep["computed"],
                    wall_s=rep["wall_s"], jobs_per_s=rep["jobs_per_s"],
                    p50_s=rep["latency_s"]["p50"],
                    p99_s=rep["latency_s"]["p99"],
                    warm_cold_ratio=round(ratio, 2) if phase == "warm" else None,
                )
            rows.append([
                workers, phase, rep["jobs_per_s"],
                rep["latency_s"]["p50"], rep["latency_s"]["p99"],
                f"{ratio:.1f}x" if phase == "warm" else "",
            ])
    print_table(
        ["workers", "phase", "jobs/s", "p50_s", "p99_s", "warm/cold"],
        rows,
        title=f"E19: service throughput, {key} repeated-topology workload",
    )
    return results


def test_e19_service(run_once, bench_report):
    results = run_once(run_experiment, bench_report)
    budget = json.loads(BUDGET_PATH.read_text())
    key = WORKLOAD[0]

    anchor = results[1]  # 1 worker: the core-count-independent anchor
    ok = verdict(
        f"E19: warm >= {budget['min_warm_cold_ratio']}x cold at 1 worker",
        anchor["ratio"] >= budget["min_warm_cold_ratio"],
        f"cold {anchor['cold']['jobs_per_s']} jobs/s,"
        f" warm {anchor['warm']['jobs_per_s']} jobs/s"
        f" ({anchor['ratio']:.1f}x)",
    )
    floor = budget["min_warm_jobs_per_s"][key]
    ok &= verdict(
        f"E19: warm throughput floor on {key}",
        anchor["warm"]["jobs_per_s"] >= floor,
        f"{anchor['warm']['jobs_per_s']} jobs/s, floor {floor}",
    )
    # Ordering is part of the service contract at every worker count;
    # _timed_run already asserted all-ok, so here only sanity-check
    # that the multi-worker phases actually ran the full batch.
    for workers in WORKERS:
        assert results[workers]["cold"]["jobs"] == len(_jobs())
    assert ok
