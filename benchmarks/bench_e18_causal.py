"""E18 — causal tracing: critical path vs measured rounds vs D·log n.

PR 6 added message-level causal tracing (:mod:`repro.obs.causal`): one
Lamport chain-clock per node at the simulator's delivery hook, yielding
the **critical path** — the longest happens-before chain of messages —
per network execution.  The paper's O(D·log n) analysis bounds exactly
this chain length, so the causal report turns the headline round budget
into a measurable three-way sandwich::

    critical path  <=  real message rounds  <=  budget * D * ceil(log2 n)

This bench pins all three on the six seeded families:

* an exactness sweep: on a fault-free run every pipeline primitive is
  receive-driven (flood / convergecast / broadcast), so each round's
  frontier extends a maximal chain and ``critical_path == real message
  rounds`` **exactly** — any slack would mean a primitive burns rounds
  no message chain forces;
* a causal budget gate (``causal_budget.json``): real message rounds
  stay within a per-workload multiple of the ``D * ceil(log2 n)``
  prediction (D from the run's own 2-approximation), the causal
  restatement of the E1 headline bound;
* a chaos sweep under the canonical E17 fault plan: with drops, delays
  and retransmissions the equality must degrade to the structural
  inequality ``critical_path <= real message rounds`` — retransmitted
  rounds carry traffic that extends no new chain.

``REPRO_BENCH_SMOKE=1`` changes nothing here: the six workloads are
already the smoke-sized gate set.
"""

import json
import math
from pathlib import Path

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.congest import FaultPlan
from repro.core import self_healing_embedding
from repro.obs import CausalRecorder, causal_override
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    random_tree,
    triangulated_grid,
)

BUDGET_PATH = Path(__file__).resolve().parent / "causal_budget.json"

#: The six seeded families — deterministic workloads, keyed like the
#: budget file.
WORKLOADS = {
    "grid:5x7": lambda: grid_graph(5, 7),
    "trigrid:4x6": lambda: triangulated_grid(4, 6),
    "cycle:17": lambda: cycle_graph(17),
    "outerplanar:30": lambda: random_outerplanar(30, seed=3),
    "maximal:24": lambda: random_maximal_planar(24, seed=7),
    "tree:33": lambda: random_tree(33, seed=1),
}


def _dlogn(diameter_upper: int, n: int) -> int:
    return diameter_upper * max(1, math.ceil(math.log2(max(2, n))))


def run_experiment(report=None):
    budget = json.loads(BUDGET_PATH.read_text())

    # -- exactness sweep + D·log n gate ---------------------------------
    rows = []
    sweep = {}
    for key, make in WORKLOADS.items():
        g = make()
        recorder = CausalRecorder()
        result = distributed_planar_embedding(g, causal=recorder)
        causal = recorder.report()
        critical = causal["critical_path"]
        real = causal["real_rounds"]
        bound = _dlogn(result.diameter_upper, g.num_nodes)
        allowed = budget["workloads"][key]["budget"]
        sweep[key] = {
            "critical": critical,
            "real": real,
            "ledger": result.metrics.rounds,
            "bound": bound,
            "budget": allowed,
            "ratio": real / max(1, bound),
        }
        if report is not None:
            report.record_run(
                g, result, 0.0, workload=key, mode="exactness-sweep",
                critical_path=critical, real_rounds=real,
                dlogn_bound=bound, ratio=round(real / max(1, bound), 3),
            )
        rows.append([
            key, g.num_nodes, result.diameter_upper, critical, real,
            result.metrics.rounds, bound, round(real / max(1, bound), 2),
            allowed,
        ])
    print_table(
        ["workload", "n", "D", "critical", "real", "ledger", "D*log n",
         "ratio", "budget"],
        rows,
        title="E18: critical path vs measured rounds vs D*log n",
    )

    # -- chaos sweep: equality degrades to the inequality ---------------
    plan = FaultPlan.parse(budget["chaos_plan"], seed=budget["chaos_seed"])
    chaos_rows = []
    chaos = {}
    for key in ("grid:5x7", "trigrid:4x6"):
        g = WORKLOADS[key]()
        recorder = CausalRecorder()
        with causal_override(recorder):
            result = self_healing_embedding(g, faults=plan, max_retries=3)
        causal = recorder.report()
        chaos[key] = {
            "critical": causal["critical_path"],
            "real": causal["real_rounds"],
            "degraded": getattr(result, "degraded", False),
        }
        if report is not None:
            report.record(
                mode="chaos-sweep", workload=key,
                critical_path=causal["critical_path"],
                real_rounds=causal["real_rounds"],
                slack=causal["real_rounds"] - causal["critical_path"],
            )
        chaos_rows.append([
            key, causal["critical_path"], causal["real_rounds"],
            causal["real_rounds"] - causal["critical_path"],
            "ok" if not chaos[key]["degraded"] else "DEGRADED",
        ])
    print_table(
        ["workload", "critical", "real", "slack", "outcome"],
        chaos_rows,
        title=f"E18: chaos sweep ({budget['chaos_plan']},"
              f" seed={budget['chaos_seed']})",
    )
    return sweep, chaos


def test_e18_causal(run_once, bench_report):
    sweep, chaos = run_once(run_experiment, bench_report)

    ok = True
    for key, row in sweep.items():
        # The structural guarantee: no chain is longer than the rounds.
        ok &= verdict(
            f"E18: {key} critical path <= real rounds",
            row["critical"] <= row["real"],
            f"critical {row['critical']} vs real {row['real']}",
        )
        # The receive-driven exactness claim, fault-free.
        ok &= verdict(
            f"E18: {key} critical path exact on fault-free run",
            row["critical"] == row["real"],
            f"slack {row['real'] - row['critical']}",
        )
        # Message rounds never exceed the ledger's clock.
        ok &= verdict(
            f"E18: {key} real rounds <= ledger rounds",
            row["real"] <= row["ledger"],
            f"real {row['real']} vs ledger {row['ledger']}",
        )
        # The causal restatement of the headline bound.
        ok &= verdict(
            f"E18: {key} within causal D*log n budget",
            row["real"] <= row["budget"] * row["bound"],
            f"real {row['real']} vs {row['budget']} * {row['bound']}"
            f" (ratio {row['ratio']:.2f})",
        )
    for key, row in chaos.items():
        ok &= verdict(
            f"E18: {key} inequality survives chaos",
            row["critical"] <= row["real"],
            f"critical {row['critical']} vs real {row['real']}",
        )
        ok &= verdict(
            f"E18: {key} heals under chaos", not row["degraded"],
        )
    assert ok
