"""E22 — service availability under process chaos: goodput, typed
verdicts, and bit-identical survivors.

E17 proved the *simulated network* survives seeded chaos; this bench
pins the same promise for the *real process layer*
(:mod:`repro.serve.resilience`).  Four scenarios, all fully seeded and
replayable:

* **kill plan** (the standard gate): a :class:`ChaosPool` SIGKILLs pool
  workers at a fixed rate per attempt while a batch of distinct
  topologies runs.  Gates: **every** job gets a typed verdict, results
  stay in submission order, every non-shed job ends ``ok``, and each
  ``ok`` record is **bit-identical** to the fault-free reference run —
  chaos may cost retries, never answers.
* **quarantine**: one poison job kills its worker on every attempt; it
  must be isolated as ``quarantined`` while every other job stays
  ``ok``.
* **deadline**: a job slowed far past ``deadline_s`` must resolve as
  ``timeout`` (typed, exit 5), the rest unaffected.
* **shed**: a bounded admission queue refuses exactly the overflow jobs
  as ``shed``, deterministically (the tail of the submission order).

Artifacts: the chaos run's flight-recorder events and the fully
resolved chaos plan are always written to ``resilience_flight.jsonl`` /
``resilience_chaos_plan.jsonl`` at the repo root — CI uploads both on
failure, so a tripped gate ships its exact kill/latency schedule.

Gates live in ``resilience_budget.json``.  ``REPRO_BENCH_SMOKE=1``
shrinks the workload (smaller grids, fewer jobs), not the promises.
"""

import json
import os
import time
from pathlib import Path

from repro.analysis import print_table, verdict
from repro.obs.flightrec import FlightRecorder, flight_override
from repro.serve import ChaosPool, ResiliencePolicy, ServiceDriver, load_jobs

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

_REPO_ROOT = Path(__file__).resolve().parent.parent
BUDGET_PATH = Path(__file__).resolve().parent / "resilience_budget.json"
FLIGHT_PATH = _REPO_ROOT / "resilience_flight.jsonl"
CHAOS_PLAN_PATH = _REPO_ROOT / "resilience_chaos_plan.jsonl"

N_JOBS = 8 if SMOKE else 16
GRID = (4, 4) if SMOKE else (6, 6)
KILL_SEED = 22
KILL_RATE = 0.25
# Generous on purpose: at workers=2 every SIGKILL also burns an attempt
# on the job sharing the pool (collateral), so the budget must absorb
# both direct kills and neighbors' kills before the goodput gate.
RETRIES = 7

FAST = dict(backoff_base_s=0.01, backoff_cap_s=0.05)


def _jobs(n=N_JOBS):
    # Distinct topologies (grid columns vary) so the cacheless driver
    # computes every job — chaos has to be survived, not cached away.
    rows, cols = GRID
    return load_jobs(
        json.dumps({"id": f"j{i}", "demo": ["grid", rows, cols + (i % 4)]})
        for i in range(n)
    )


def _canon(record):
    return json.dumps(record, sort_keys=True)


def _write_artifacts(recorder, plan, job_ids):
    recorder.dump(FLIGHT_PATH)
    with open(CHAOS_PLAN_PATH, "w") as f:
        f.write(json.dumps({"type": "chaos-plan", **plan.to_dict()}) + "\n")
        for row in plan.decisions(job_ids, attempts=1 + RETRIES):
            f.write(json.dumps(row, sort_keys=True) + "\n")


def run_experiment(report=None):
    jobs = _jobs()
    job_ids = [j.id for j in jobs]

    # Fault-free reference: the bit-identical baseline for survivors.
    reference = ServiceDriver(workers=2, cache=None).run(jobs)
    assert all(o.outcome == "ok" for o in reference)

    # -- kill plan (the standard gate) --------------------------------
    plan = ChaosPool(seed=KILL_SEED, kill_rate=KILL_RATE)
    driver = ServiceDriver(
        workers=2, cache=None,
        resilience=ResiliencePolicy(seed=KILL_SEED, max_retries=RETRIES, **FAST),
        chaos=plan,
    )
    recorder = FlightRecorder(capacity=512)
    t0 = time.perf_counter()
    with flight_override(recorder):
        outcomes = driver.run(jobs)
    wall = time.perf_counter() - t0
    _write_artifacts(recorder, plan, job_ids)

    planned_kills = sum(plan.kills(j, 0) for j in job_ids)
    non_shed = [o for o in outcomes if o.outcome != "shed"]
    identical = sum(
        _canon(o.record) == _canon(r.record)
        for o, r in zip(outcomes, reference)
        if o.outcome == "ok"
    )
    kill = {
        "outcomes": [o.outcome for o in outcomes],
        "ordered": [o.id for o in outcomes] == job_ids,
        "typed": all(o.outcome in
                     ("ok", "non-planar", "degraded", "error",
                      "timeout", "quarantined", "shed")
                     for o in outcomes),
        "ok": sum(o.outcome == "ok" for o in outcomes),
        "identical": identical,
        "non_shed_success": (
            sum(o.outcome == "ok" for o in non_shed) / len(non_shed)
        ),
        "planned_first_attempt_kills": planned_kills,
        "stats": driver.rstats.to_dict(),
        "wall_s": round(wall, 3),
        "goodput_jobs_per_s": round(len(outcomes) / wall, 3),
    }

    # -- quarantine: one poison job, everyone else unharmed.  One
    # worker: a poison kill takes the whole pool with it, so at
    # workers>=2 the job sharing the pool loses an attempt too
    # (collateral); serializing keeps the gate exact. -----------------
    qdriver = ServiceDriver(
        workers=1, cache=None,
        resilience=ResiliencePolicy(max_retries=2, **FAST),
        chaos=ChaosPool(kill_jobs=("j1",), kill_attempts=99),
    )
    qoutcomes = qdriver.run(jobs)
    quarantine = {
        "poison": qoutcomes[1].outcome,
        "others_ok": all(
            o.outcome == "ok" for o in qoutcomes if o.id != "j1"
        ),
        "stats": qdriver.rstats.to_dict(),
    }

    # -- deadline: the slow job (last, so nothing queues behind it)
    # resolves as a typed timeout --------------------------------------
    slow_id = job_ids[-1]
    tdriver = ServiceDriver(
        workers=2, cache=None,
        resilience=ResiliencePolicy(deadline_s=0.4, max_retries=1, **FAST),
        chaos=ChaosPool(slow_jobs=(slow_id,), latency_s=2.0),
    )
    toutcomes = tdriver.run(jobs)
    deadline = {
        "slow": toutcomes[-1].outcome,
        "others_ok": all(o.outcome == "ok" for o in toutcomes[:-1]),
        "timeouts": tdriver.rstats.timeouts,
    }

    # -- shed: bounded admission refuses exactly the overflow ---------
    limit = N_JOBS // 2
    sdriver = ServiceDriver(
        workers=2, cache=None,
        resilience=ResiliencePolicy(queue_limit=limit),
    )
    soutcomes = sdriver.run(jobs)
    shed = {
        "outcomes": [o.outcome for o in soutcomes],
        "admitted_ok": all(o.outcome == "ok" for o in soutcomes[:limit]),
        "overflow_shed": all(o.outcome == "shed" for o in soutcomes[limit:]),
        "shed": sdriver.rstats.shed,
    }

    results = {
        "kill": kill, "quarantine": quarantine,
        "deadline": deadline, "shed": shed,
    }
    if report is not None:
        report.record(
            scenario="kill", jobs=len(jobs), ok=kill["ok"],
            identical=kill["identical"],
            non_shed_success=round(kill["non_shed_success"], 4),
            pool_deaths=kill["stats"]["pool_deaths"],
            respawns=kill["stats"]["respawns"],
            retries=kill["stats"]["retries"],
            wall_s=kill["wall_s"],
            goodput_jobs_per_s=kill["goodput_jobs_per_s"],
        )
        report.record(scenario="quarantine", poison=quarantine["poison"],
                      others_ok=quarantine["others_ok"])
        report.record(scenario="deadline", slow=deadline["slow"],
                      others_ok=deadline["others_ok"],
                      timeouts=deadline["timeouts"])
        report.record(scenario="shed", queue_limit=limit,
                      shed=shed["shed"])
    print_table(
        ["scenario", "verdict counts", "pool deaths", "respawns", "notes"],
        [
            ["kill", f"{kill['ok']}/{len(jobs)} ok",
             kill["stats"]["pool_deaths"], kill["stats"]["respawns"],
             f"{kill['identical']} bit-identical,"
             f" {kill['goodput_jobs_per_s']} jobs/s"],
            ["quarantine", quarantine["poison"],
             quarantine["stats"]["pool_deaths"],
             quarantine["stats"]["respawns"], "poison isolated"],
            ["deadline", deadline["slow"], 0, 0,
             f"{deadline['timeouts']} attempt timeouts"],
            ["shed", f"{shed['shed']} shed", 0, 0,
             f"queue_limit {limit}"],
        ],
        title=f"E22: resilience under chaos, {N_JOBS} jobs, "
              f"kill_rate {KILL_RATE} seed {KILL_SEED}",
    )
    return results


def test_e22_resilience(run_once, bench_report):
    results = run_once(run_experiment, bench_report)
    budget = json.loads(BUDGET_PATH.read_text())
    kill = results["kill"]

    ok = verdict(
        "E22: every job gets a typed verdict in submission order",
        kill["typed"] and kill["ordered"],
        f"outcomes {kill['outcomes']}",
    )
    ok &= verdict(
        f"E22: non-shed success >= {budget['min_non_shed_success']}"
        " under the standard kill plan",
        kill["non_shed_success"] >= budget["min_non_shed_success"],
        f"{kill['non_shed_success']:.2%} "
        f"({kill['stats']['pool_deaths']} pool deaths survived)",
    )
    ok &= verdict(
        "E22: every ok verdict bit-identical to the fault-free run",
        kill["identical"] == kill["ok"],
        f"{kill['identical']}/{kill['ok']} identical",
    )
    ok &= verdict(
        "E22: the chaos plan actually killed workers",
        kill["stats"]["pool_deaths"] >= kill["planned_first_attempt_kills"] > 0,
        f"{kill['stats']['pool_deaths']} deaths vs "
        f"{kill['planned_first_attempt_kills']} planned first-attempt kills",
    )
    ok &= verdict(
        "E22: poison job quarantined, batch unharmed",
        results["quarantine"]["poison"] == "quarantined"
        and results["quarantine"]["others_ok"],
        str(results["quarantine"]),
    )
    ok &= verdict(
        "E22: deadline overrun is a typed timeout",
        results["deadline"]["slow"] == "timeout"
        and results["deadline"]["others_ok"],
        str(results["deadline"]),
    )
    ok &= verdict(
        "E22: overflow jobs shed deterministically",
        results["shed"]["admitted_ok"] and results["shed"]["overflow_shed"],
        f"{results['shed']['shed']} shed",
    )
    assert FLIGHT_PATH.exists() and CHAOS_PLAN_PATH.exists()
    assert ok
