"""E3 — the Omega(D) lower-bound family (paper footnote 1).

K4 subdivisions force Omega(D) rounds: the four degree-3 branch vertices
sit Theta(D) apart yet must output *consistent* clockwise orders.  We
sweep the subdivision length and check that (a) measured rounds grow
~linearly in D — the algorithm cannot do better than the lower bound —
and (b) they stay within the O(D * min(log n, D)) envelope, i.e. the
ratio rounds/D stays within an O(log n) band of the optimum.
"""

import time

from repro import distributed_planar_embedding
from repro.analysis import fit_power_law, print_table, verdict
from repro.planar.generators import k4_subdivision


def run_experiment(report=None):
    rows, ds, rounds = [], [], []
    for segments in (4, 8, 16, 32, 64):
        g = k4_subdivision(segments)
        t0 = time.perf_counter()
        result = distributed_planar_embedding(g)
        wall = time.perf_counter() - t0
        d = 2 * result.bfs_depth
        if report is not None:
            report.record_run(g, result, wall, segments=segments)
        ds.append(d)
        rounds.append(result.rounds)
        rows.append([segments, g.num_nodes, d, result.rounds, round(result.rounds / d, 2)])
    print_table(
        ["segments", "n", "D(2approx)", "rounds", "rounds/D"],
        rows,
        title="E3: K4-subdivision lower-bound graphs (footnote 1)",
    )
    return ds, rounds


def test_e3_lowerbound(run_once, bench_report):
    ds, rounds = run_once(run_experiment, bench_report)
    fit = fit_power_law(ds, rounds)
    ok = verdict(
        "E3: rounds grow ~linearly in D on the lower-bound family",
        0.75 <= fit.exponent <= 1.3,
        f"D-exponent {fit.exponent:.2f}",
    )
    ratios = [r / d for r, d in zip(rounds, ds)]
    ok &= verdict(
        "E3: rounds/D bounded (within the log-n envelope of the Omega(D) bound)",
        max(ratios) <= 40,
        f"max rounds/D = {max(ratios):.1f}",
    )
    assert ok
