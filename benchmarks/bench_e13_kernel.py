"""E13 — the LR planarity kernel ([HT74] stand-in): correctness + scaling.

The centralized kernel underpins every local computation in the system
(merge instances, realizations, the baseline's root solve).  This bench
confirms near-linear wall-clock scaling on maximal planar graphs and
exact decisions on planar/non-planar families.
"""

import time

from repro.analysis import fit_power_law, print_table, verdict
from repro.planar import is_planar, lr_planarity
from repro.planar.generators import (
    complete_bipartite,
    complete_graph,
    grid_graph,
    random_maximal_planar,
)


def run_experiment(report=None):
    rows, ns, times = [], [], []
    for n in (500, 1000, 2000, 4000, 8000):
        g = random_maximal_planar(n, seed=n)
        t0 = time.perf_counter()
        rot = lr_planarity(g)
        dt = time.perf_counter() - t0
        assert rot is not None and rot.genus() == 0
        if report is not None:
            report.record(n=n, m=g.num_edges, wall_s=round(dt, 6))
        ns.append(n)
        times.append(dt)
        rows.append([n, g.num_edges, round(dt * 1000, 1)])
    print_table(
        ["n", "m", "time (ms)"],
        rows,
        title="E13: LR kernel scaling on maximal planar graphs",
    )
    decisions_ok = (
        is_planar(grid_graph(40, 40))
        and not is_planar(complete_graph(5))
        and not is_planar(complete_bipartite(3, 3))
    )
    return ns, times, decisions_ok


def test_e13_kernel(run_once, bench_report):
    ns, times, decisions_ok = run_once(run_experiment, bench_report)
    fit = fit_power_law(ns, times)
    ok = verdict(
        "E13: kernel scales near-linearly",
        fit.exponent <= 1.5,
        f"time exponent {fit.exponent:.2f}",
    )
    ok &= verdict("E13: exact planar/non-planar decisions", decisions_ok)
    assert ok
