"""E9 — the CONGEST discipline and the paper's information-theoretic claim.

Section 1.2, claim (I): "no pair of adjacent nodes needs to exchange
omega~(D) bits".  We check two measured quantities:

* real message passing never exceeds the per-edge word budget in any
  round (the simulator enforces B = O(log n) bits; here we report the
  max actually used), and
* the *total* communicated volume per edge — all charged words divided
  by the number of edges — stays O~(D) rather than Theta(n).
"""

import math
import time

from repro import distributed_planar_embedding
from repro.analysis import fit_power_law, print_table, verdict
from repro.planar.generators import grid_graph


def run_experiment(report=None):
    rows = []
    ns, ds, per_edge = [], [], []
    max_edge_words = 0
    for k in (8, 12, 17, 24, 34):
        g = grid_graph(k, k)
        t0 = time.perf_counter()
        result = distributed_planar_embedding(g)
        wall = time.perf_counter() - t0
        m = result.metrics
        volume = m.total_words / g.num_edges
        if report is not None:
            report.record_run(
                g, result, wall,
                words_per_edge=round(volume, 3),
                max_words_edge_round=m.max_words_edge_round,
            )
        d = 2 * result.bfs_depth
        ns.append(g.num_nodes)
        ds.append(d)
        per_edge.append(volume)
        max_edge_words = max(max_edge_words, m.max_words_edge_round)
        rows.append(
            [g.num_nodes, d, m.max_words_edge_round, round(volume, 1),
             round(volume / (d * math.log2(g.num_nodes)), 3)]
        )
    print_table(
        ["n", "D(2approx)", "max words/edge/round", "words/edge total",
         "vs D*log n"],
        rows,
        title="E9: bandwidth discipline and per-edge information volume",
    )
    return ns, ds, per_edge, max_edge_words


def test_e9_bandwidth(run_once, bench_report):
    ns, ds, per_edge, max_edge_words = run_once(run_experiment, bench_report)
    ok = verdict(
        "E9: real messages within O(log n) bits per edge per round",
        max_edge_words <= 8,
        f"max {max_edge_words} words in one (edge, round)",
    )
    # total per-edge volume must track D (=sqrt n on grids), not n
    fit = fit_power_law(ns, per_edge)
    ok &= verdict(
        "E9: per-edge total volume grows like D, not like n",
        fit.exponent <= 0.8,
        f"n-exponent {fit.exponent:.2f} (1.0 would be Theta(n))",
    )
    assert ok
