"""E16 — hot-path overhaul: scoped split validation, shared recursion
statistics, and structural caching, pinned by a wall-clock gate.

The perf PR attacks the pipeline's centralized bookkeeping (full-graph
planarity tests per bundle split, per-call subtree walks, ``repr``-key
sorts, LR re-runs on isomorphic small parts) while keeping every ledger
and every output rotation bit-identical — the differential suite in
``tests/integration/test_reference_paths_differential.py`` proves the
invisibility; this bench pins the payoff:

* a wall-clock sweep over four planar families at n=1024 plus the
  n=4096 grid, compared against the *pre-overhaul* medians measured on
  the same machine (pinned below), asserting the tentpole >=2x
  end-to-end speedup on the grid family;
* a cProfile attribution pass (top cumulative functions into the bench
  record) so the next perf PR starts from data, not guesses;
* a wall-clock budget gate on fixed seeded workloads
  (``time_budget.json``), the timing analogue of E15's activation gate:
  generous (~5x headroom) so it only trips on order-of-magnitude
  regressions, never on runner noise;
* per-run oracle counters (scoped vs full split tests, memo hits)
  recorded alongside the timings, showing *why* the splits got cheap.

``REPRO_BENCH_SMOKE=1`` keeps only the n<=256 budget-gate workloads and
a small profiled run.
"""

import cProfile
import json
import math
import os
import pstats
import time
from pathlib import Path

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.planar.generators import (
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    triangulated_grid,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

BUDGET_PATH = Path(__file__).resolve().parent / "time_budget.json"

FAMILIES = {
    "grid": lambda n: grid_graph(math.isqrt(n), math.isqrt(n)),
    "trigrid": lambda n: triangulated_grid(math.isqrt(n), math.isqrt(n)),
    "maximal": lambda n: random_maximal_planar(n, seed=n),
    "outerplanar": lambda n: random_outerplanar(n, seed=n),
}

# Pre-overhaul pipeline medians (median-of-3 after one warm-up, same
# machine, measured at the seed commit immediately before this PR).
# These are the "before" of the before/after: the sweep below re-times
# the current code and reports the ratio.
PRE_OVERHAUL_MEDIAN_S = {
    "grid:1024": 1.307,
    "trigrid:1024": 2.011,
    "maximal:1024": 3.034,
    "outerplanar:1024": 4.982,
    "grid:4096": 7.053,
}

SWEEP = ["grid:1024", "trigrid:1024", "maximal:1024", "outerplanar:1024",
         "grid:4096"]
PROFILE_WORKLOAD = "grid:64" if SMOKE else "grid:1024"


def _make(key):
    family, n = key.rsplit(":", 1)
    return FAMILIES[family](int(n))


def _best_of_3(graph):
    """Best-of-3 wall clock after one warm-up run (caches hot, GC warm):
    the low-noise protocol the budgets and baselines are defined by."""
    result = distributed_planar_embedding(graph)
    best = math.inf
    for _ in range(3):
        t0 = time.perf_counter()
        result = distributed_planar_embedding(graph)
        best = min(best, time.perf_counter() - t0)
    return result, best


def run_experiment(report=None):
    # -- before/after wall-clock sweep (full mode only) ------------------
    speedups = {}
    if not SMOKE:
        rows = []
        for key in SWEEP:
            g = _make(key)
            result, wall = _best_of_3(g)
            before = PRE_OVERHAUL_MEDIAN_S[key]
            speedups[key] = before / wall
            oracle = result.split_oracle or {}
            if report is not None:
                report.record_run(
                    g, result, wall, workload=key, mode="sweep",
                    before_s=before, speedup=round(speedups[key], 2),
                    split_tests=result.split_tests,
                    split_rejections=result.split_rejections,
                    oracle_scoped=oracle.get("scoped_tests", 0),
                    oracle_full=oracle.get("full_tests", 0),
                    oracle_memo_hits=oracle.get("memo_hits", 0),
                )
            rows.append([
                key, round(before, 3), round(wall, 3),
                f"{speedups[key]:.2f}x", result.split_tests,
                oracle.get("scoped_tests", 0),
            ])
        print_table(
            ["workload", "before_s", "after_s", "speedup", "splits", "scoped"],
            rows,
            title="E16: before/after wall-clock sweep (best-of-3)",
        )

    # -- cProfile attribution --------------------------------------------
    g = _make(PROFILE_WORKLOAD)
    distributed_planar_embedding(g)  # warm caches before attributing
    profiler = cProfile.Profile()
    profiler.enable()
    distributed_planar_embedding(g)
    profiler.disable()
    top = []
    for (file, line, name), (cc, nc, tt, ct, _callers) in pstats.Stats(
        profiler
    ).stats.items():
        top.append({
            "function": name, "file": os.path.basename(file), "line": line,
            "ncalls": nc, "tottime_s": round(tt, 6), "cumtime_s": round(ct, 6),
        })
    top.sort(key=lambda r: (-r["cumtime_s"], r["file"], r["line"], r["function"]))
    top = top[:10]
    if report is not None:
        report.record(mode="profile", workload=PROFILE_WORKLOAD, top=top)
    print_table(
        ["cumtime_s", "tottime_s", "ncalls", "function"],
        [[r["cumtime_s"], r["tottime_s"], r["ncalls"],
          f"{r['function']} ({r['file']}:{r['line']})"] for r in top],
        title=f"E16: cProfile top cumulative ({PROFILE_WORKLOAD})",
    )

    # -- wall-clock budget gate ------------------------------------------
    budget = json.loads(BUDGET_PATH.read_text())
    gate = {}
    gate_rows = []
    for key, allowed in budget["workloads"].items():
        _result, wall = _best_of_3(_make(key))
        gate[key] = (wall, allowed)
        if report is not None:
            report.record(
                mode="budget-gate", workload=key, wall_s=round(wall, 6),
                budget_s=allowed, within=wall <= allowed,
            )
        gate_rows.append(
            [key, round(wall, 4), allowed, "ok" if wall <= allowed else "OVER"]
        )
    print_table(
        ["workload", "wall_s", "budget_s", "verdict"],
        gate_rows,
        title="E16: wall-clock budget gate (fixed seeded workloads)",
    )
    return speedups, gate


def test_e16_hotpath(run_once, bench_report):
    speedups, gate = run_once(run_experiment, bench_report)

    ok = True
    for key, (wall, allowed) in gate.items():
        ok &= verdict(
            f"E16: {key} within wall-clock budget",
            wall <= allowed,
            f"{wall:.4f}s used, {allowed}s budgeted",
        )
    if not SMOKE:
        # Acceptance: >=2x end-to-end on the grid family at n>=1024.
        for key in ("grid:1024", "grid:4096"):
            ok &= verdict(
                f"E16: {key} >= 2x vs pre-overhaul pipeline",
                speedups[key] >= 2.0,
                f"speedup {speedups[key]:.2f}x",
            )
        # The other families must at least clear the budget-gate floor.
        for key in ("trigrid:1024", "maximal:1024", "outerplanar:1024"):
            ok &= verdict(
                f"E16: {key} >= 1.5x vs pre-overhaul pipeline",
                speedups[key] >= 1.5,
                f"speedup {speedups[key]:.2f}x",
            )
    assert ok
