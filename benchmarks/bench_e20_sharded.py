"""E20 — sharded multi-process recursion backend: determinism and
shipped-work gates, plus the multi-core scaling sweep.

The sharded backend (``repro.shard``) snapshots hanging subtrees into
flat picklable subproblems, embeds them in pool workers, and merges by
replaying each worker's split journal against the authoritative graph —
so every ledger, rotation, and trace is bit-identical to the sequential
run at every ``shard_workers`` setting.  The differential suite proves
that exhaustively; this bench pins the perf story:

* an **identity + mechanism gate** (every mode, incl. smoke): on four
  seeded workloads the sharded report must equal the sequential one
  byte-for-byte, workers must actually adopt subtrees (no silent
  fall-back-to-inline rot), with zero worker errors, and the 2-worker
  wall overhead must stay under the generous budget ratio — the IPC
  analogue of E15/E16's deterministic gates, meaningful on 1-core CI;
* a **scaling sweep** (full mode): wall clock at 0/2/4 workers over
  n=1024 families plus the n=4096 grid, with scaling efficiency and
  ``shipped_speedup`` (worker CPU seconds adopted per dispatch-window
  wall second — the parallelism actually extracted, independent of how
  many cores the host can run it on);
* the **acceptance gates** — >=2.5x end-to-end on grid:4096 at 4
  workers — apply only when ``os.cpu_count() >= 4``: on fewer cores the
  processes time-slice one CPU and end-to-end speedup is physically
  unattainable, so the bench reports ``shipped_speedup`` instead of
  asserting a number the hardware cannot produce.

Budgets live in ``benchmarks/shard_budget.json``.
"""

import json
import math
import os
import time
from pathlib import Path

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.planar.generators import (
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    triangulated_grid,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))

BUDGET_PATH = Path(__file__).resolve().parent / "shard_budget.json"

FAMILIES = {
    "grid": lambda n: grid_graph(math.isqrt(n), math.isqrt(n)),
    "trigrid": lambda n: triangulated_grid(math.isqrt(n), math.isqrt(n)),
    "maximal": lambda n: random_maximal_planar(n, seed=n),
    "outerplanar": lambda n: random_outerplanar(n, seed=n),
}

SWEEP = ["grid:1024", "trigrid:1024", "maximal:1024", "grid:4096"]
SWEEP_WORKERS = [0, 2, 4]


def _make(key):
    family, n = key.rsplit(":", 1)
    return FAMILIES[family](int(n))


def _fingerprint(result):
    return json.dumps(result.to_report(), sort_keys=True, default=str)


def _timed(graph, workers):
    t0 = time.perf_counter()
    result = distributed_planar_embedding(graph, shard_workers=workers)
    return result, time.perf_counter() - t0


def run_experiment(report=None):
    budget = json.loads(BUDGET_PATH.read_text())

    # -- identity + mechanism gate (every mode) --------------------------
    # Low min_ship so shipping engages on smoke-sized graphs; both runs
    # see the same planner, so identity is still the real contract.
    identity = {}
    saved = os.environ.get("REPRO_SHARD_MIN_SHIP")
    os.environ["REPRO_SHARD_MIN_SHIP"] = str(budget["identity_min_ship"])
    try:
        rows = []
        for key in budget["identity_workloads"]:
            seq_result, seq_wall = _timed(_make(key), 0)
            shard_result, shard_wall = _timed(_make(key), 2)
            stats = shard_result.shard_stats or {}
            identity[key] = {
                "identical": _fingerprint(seq_result) == _fingerprint(shard_result),
                "adopted": stats.get("subtrees_adopted", 0),
                "shipped": stats.get("subtrees_shipped", 0),
                "replayed": stats.get("splits_replayed", 0),
                "errors": stats.get("fallback_worker_error", 0)
                + stats.get("fallback_pool_error", 0),
                "overhead": shard_wall / seq_wall if seq_wall > 0 else 1.0,
                "shipped_speedup": stats.get("shipped_speedup"),
            }
            if report is not None:
                report.record_run(
                    _make(key), shard_result, shard_wall, workload=key,
                    mode="identity-gate", workers=2, sequential_s=round(seq_wall, 6),
                    **{k: v for k, v in identity[key].items() if k != "identical"},
                    identical=identity[key]["identical"],
                )
            rows.append([
                key, identity[key]["identical"], identity[key]["adopted"],
                identity[key]["replayed"], identity[key]["errors"],
                f"{identity[key]['overhead']:.2f}x",
            ])
        print_table(
            ["workload", "bit-identical", "adopted", "replayed", "errors",
             "overhead@2w"],
            rows,
            title="E20: sharded identity + mechanism gate (min_ship=%d)"
            % budget["identity_min_ship"],
        )
    finally:
        if saved is None:
            os.environ.pop("REPRO_SHARD_MIN_SHIP", None)
        else:
            os.environ["REPRO_SHARD_MIN_SHIP"] = saved

    # -- multi-core scaling sweep (full mode, default planner) -----------
    sweep = {}
    if not SMOKE:
        rows = []
        for key in SWEEP:
            walls = {}
            for w in SWEEP_WORKERS:
                result, wall = _timed(_make(key), w)
                walls[w] = wall
                stats = result.shard_stats or {}
                speedup = walls[0] / wall
                efficiency = speedup / w if w else 1.0
                sweep[(key, w)] = {
                    "wall_s": wall,
                    "speedup": speedup,
                    "efficiency": efficiency,
                    "adopted": stats.get("subtrees_adopted", 0),
                    "shipped_speedup": stats.get("shipped_speedup"),
                }
                if report is not None:
                    report.record_run(
                        _make(key), result, wall, workload=key, mode="sweep",
                        workers=w, speedup=round(speedup, 3),
                        efficiency=round(efficiency, 3),
                        adopted=stats.get("subtrees_adopted", 0),
                        shipped_speedup=stats.get("shipped_speedup"),
                    )
                rows.append([
                    key, w, round(wall, 3), f"{speedup:.2f}x",
                    f"{efficiency:.2f}", stats.get("subtrees_adopted", "-"),
                    stats.get("shipped_speedup", "-"),
                ])
        print_table(
            ["workload", "workers", "wall_s", "speedup", "efficiency",
             "adopted", "shipped_speedup"],
            rows,
            title="E20: scaling sweep (%d cores on this host)"
            % (os.cpu_count() or 1),
        )
    return budget, identity, sweep


def test_e20_sharded(run_once, bench_report):
    budget, identity, sweep = run_once(run_experiment, bench_report)

    ok = True
    for key, floors in budget["identity_workloads"].items():
        got = identity[key]
        ok &= verdict(
            f"E20: {key} sharded report bit-identical to sequential",
            got["identical"], f"adopted {got['adopted']} subtrees",
        )
        ok &= verdict(
            f"E20: {key} workers adopt >= {floors['min_subtrees_adopted']} subtrees",
            got["adopted"] >= floors["min_subtrees_adopted"],
            f"{got['adopted']} adopted of {got['shipped']} shipped",
        )
        ok &= verdict(
            f"E20: {key} no worker/pool errors", got["errors"] == 0,
            f"{got['errors']} errors",
        )
        ok &= verdict(
            f"E20: {key} 2-worker overhead within budget",
            got["overhead"] <= budget["max_overhead_ratio"],
            f"{got['overhead']:.2f}x of {budget['max_overhead_ratio']}x allowed",
        )

    if not SMOKE:
        cores = os.cpu_count() or 1
        full = budget["full"]
        if cores >= full["min_cores"]:
            for key, floor in full["min_wall_speedup"].items():
                got = sweep[(key, 4)]
                ok &= verdict(
                    f"E20: {key} >= {floor}x end-to-end at 4 workers",
                    got["speedup"] >= floor, f"speedup {got['speedup']:.2f}x",
                )
                ok &= verdict(
                    f"E20: {key} shipped_speedup >= {full['min_shipped_speedup']}",
                    (got["shipped_speedup"] or 0) >= full["min_shipped_speedup"],
                    f"shipped_speedup {got['shipped_speedup']}",
                )
        else:
            print(
                f"E20: host has {cores} core(s) < {full['min_cores']}; "
                "wall-clock scaling gates skipped (end-to-end speedup is "
                "unattainable when workers time-slice one CPU) — "
                "shipped_speedup recorded in the sweep table instead."
            )
    assert ok
