"""E15 — event-driven scheduler: wall-clock follows work, not n * rounds.

The active-set scheduler (PR 3) wakes a node only when it has mail or
asked to be woken, while staying metrics-identical to the dense
reference loop.  This bench measures what that buys:

* a scaling sweep over four planar families (n = 64 .. 4096) under the
  event scheduler, recording wall-clock, node activations, and the
  activations *saved* versus dense polling (the dense loop's count is
  exactly ``activations + saved`` — a conservation law the differential
  suite in ``tests/congest`` proves);
* a dense-vs-event differential on the n=1024 grid: both schedulers run
  the full pipeline, must agree on rounds/messages/words, and the event
  scheduler must touch >= 5x fewer nodes;
* a deterministic activation budget gate on fixed seeded n=64 workloads
  (``activation_budget.json``): scheduling is deterministic, so any
  regression that re-activates nodes shows up as an exact count diff.

``REPRO_BENCH_SMOKE=1`` keeps only the n=64 sizes and the budget gate.
"""

import json
import math
import os
import time
from pathlib import Path

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.congest import scheduler_override
from repro.planar.generators import (
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    triangulated_grid,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (64,) if SMOKE else (64, 256, 1024, 4096)
DIFF_N = 64 if SMOKE else 1024

BUDGET_PATH = Path(__file__).resolve().parent / "activation_budget.json"

FAMILIES = [
    ("grid", lambda n: grid_graph(math.isqrt(n), math.isqrt(n))),
    ("trigrid", lambda n: triangulated_grid(math.isqrt(n), math.isqrt(n))),
    ("maximal", lambda n: random_maximal_planar(n, seed=n)),
    ("outerplanar", lambda n: random_outerplanar(n, seed=n)),
]


def _embed(graph, scheduler=None):
    ctx = scheduler_override(scheduler) if scheduler else None
    t0 = time.perf_counter()
    if ctx is None:
        result = distributed_planar_embedding(graph)
    else:
        with ctx:
            result = distributed_planar_embedding(graph)
    return result, time.perf_counter() - t0


def run_experiment(report=None):
    # -- scaling sweep under the event scheduler -------------------------
    rows = []
    sweep = {}
    for name, make in FAMILIES:
        for n in SIZES:
            g = make(n)
            result, wall = _embed(g, scheduler="event")
            m = result.metrics
            dense_equiv = m.node_activations + m.activations_saved
            ratio = dense_equiv / max(1, m.node_activations)
            sweep[(name, g.num_nodes)] = ratio
            if report is not None:
                report.record_run(
                    g, result, wall, family=name, scheduler="event",
                    mode="sweep", activation_ratio=round(ratio, 2),
                )
            rows.append(
                [name, g.num_nodes, result.rounds, m.node_activations,
                 m.activations_saved, round(ratio, 1), round(wall, 3)]
            )
    print_table(
        ["family", "n", "rounds", "activations", "saved", "dense/event", "wall_s"],
        rows,
        title="E15: event-driven scheduler scaling sweep",
    )

    # -- dense-vs-event differential on the grid -------------------------
    g = grid_graph(math.isqrt(DIFF_N), math.isqrt(DIFF_N))
    diff = {}
    for scheduler in ("dense", "event"):
        result, wall = _embed(g, scheduler=scheduler)
        m = result.metrics
        diff[scheduler] = {
            "rounds": result.rounds,
            "messages": m.messages,
            "words": m.total_words,
            "activations": m.node_activations,
            "wall_s": wall,
        }
        if report is not None:
            report.record_run(
                g, result, wall, family="grid", scheduler=scheduler,
                mode="differential",
            )
    print_table(
        ["scheduler", "rounds", "messages", "words", "activations", "wall_s"],
        [[s, d["rounds"], d["messages"], d["words"], d["activations"],
          round(d["wall_s"], 3)] for s, d in diff.items()],
        title=f"E15: dense vs event differential (grid n={g.num_nodes})",
    )

    # -- deterministic activation budget gate ----------------------------
    budget = json.loads(BUDGET_PATH.read_text())
    gate_rows = []
    gate = {}
    for key, allowed in budget["workloads"].items():
        family, n = key.rsplit(":", 1)
        make = dict(FAMILIES)[family]
        result, wall = _embed(make(int(n)), scheduler="event")
        used = result.metrics.node_activations
        gate[key] = (used, allowed)
        if report is not None:
            report.record(
                mode="budget-gate", workload=key, activations=used,
                budget=allowed, within=used <= allowed, wall_s=round(wall, 6),
            )
        gate_rows.append([key, used, allowed, "ok" if used <= allowed else "OVER"])
    print_table(
        ["workload", "activations", "budget", "verdict"],
        gate_rows,
        title="E15: activation budget gate (fixed seeded workloads)",
    )
    return sweep, diff, gate


def test_e15_scheduler(run_once, bench_report):
    sweep, diff, gate = run_once(run_experiment, bench_report)

    ok = True
    # Both schedulers saw the same CONGEST execution.
    for field in ("rounds", "messages", "words"):
        ok &= verdict(
            f"E15: differential {field} identical",
            diff["dense"][field] == diff["event"][field],
            f"dense {diff['dense'][field]} vs event {diff['event'][field]}",
        )
    # The budget gate holds on every fixed workload.
    for key, (used, allowed) in gate.items():
        ok &= verdict(
            f"E15: {key} within activation budget",
            used <= allowed,
            f"{used} used, {allowed} budgeted",
        )
    if not SMOKE:
        # Acceptance: >= 5x fewer activations than dense on the n=1024 grid.
        ratio = diff["dense"]["activations"] / max(1, diff["event"]["activations"])
        ok &= verdict(
            "E15: event >= 5x fewer activations (grid n=1024)",
            ratio >= 5.0,
            f"dense/event activation ratio {ratio:.1f}",
        )
        families_at_1024 = [
            name for (name, n), _ in sweep.items() if n >= 1024
        ]
        ok &= verdict(
            "E15: full pipeline completes at n>=1024 on >=3 families",
            len(set(families_at_1024)) >= 3,
            f"families: {sorted(set(families_at_1024))}",
        )
    assert ok
