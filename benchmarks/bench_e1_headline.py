"""E1 — Theorem 1.1 headline: rounds = O(D * min(log n, D)), sublinear in n.

Reproduces the paper's main claim on three planar families with
D = Theta(sqrt(n)) (grids, triangulated grids, random maximal planar):
the measured round count divided by D*log2(n) stays bounded by a
constant while n grows by an order of magnitude, and the growth exponent
of rounds-vs-n is ~0.5-0.65 (the sqrt(n)*log n shape), far below the
linear growth of the trivial algorithm.
"""

import math
import os
import time

from repro import distributed_planar_embedding
from repro.analysis import bound_ratios, fit_power_law, print_table, verdict
from repro.planar.generators import grid_graph, random_maximal_planar, triangulated_grid

# REPRO_BENCH_SMOKE=1: one small size, no shape assertions (CI smoke job).
SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (8,) if SMOKE else (8, 12, 17, 24, 34)


def run_experiment(report=None):
    series = {}
    rows = []
    for name, make in [
        ("grid", lambda k: grid_graph(k, k)),
        ("trigrid", lambda k: triangulated_grid(k, k)),
        ("maximal", lambda k: random_maximal_planar(k * k, seed=k)),
    ]:
        ns, ds, rounds = [], [], []
        for k in SIZES:
            g = make(k)
            t0 = time.perf_counter()
            result = distributed_planar_embedding(g)
            wall = time.perf_counter() - t0
            d = max(1, 2 * result.bfs_depth)  # 2-approx of D, as the paper uses
            ns.append(g.num_nodes)
            ds.append(d)
            rounds.append(result.rounds)
            if report is not None:
                report.record_run(g, result, wall, family=name)
            rows.append(
                [name, g.num_nodes, d, result.rounds,
                 round(result.rounds / max(1.0, d * math.log2(g.num_nodes)), 2)]
            )
        series[name] = (ns, ds, rounds)
    print_table(
        ["family", "n", "D(2approx)", "rounds", "rounds/(D*log n)"],
        rows,
        title="E1: headline round complexity (Theorem 1.1)",
    )
    return series


def test_e1_headline(run_once, bench_report):
    series = run_once(run_experiment, bench_report)
    if SMOKE:
        return  # one datapoint: reporter exercised, no shape to fit
    ok = True
    for name, (ns, ds, rounds) in series.items():
        ratios = bound_ratios(rounds, ns, ds)
        spread = max(ratios) / min(ratios)
        fit = fit_power_law(ns, rounds)
        ok &= verdict(
            f"E1/{name}: rounds ~ D*min(log n, D)",
            spread < 3.0 and fit.exponent < 0.85,
            f"bound-ratio spread {spread:.2f}, n-exponent {fit.exponent:.2f}",
        )
    assert ok
