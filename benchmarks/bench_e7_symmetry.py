"""E7 — Lemma 5.3 symmetry breaking on outerplanar inter-part graphs.

The decomposition must deliver valid disjoint induced V-stars plus a
partition of the contracted graph into color-distinct chains, within a
number of super-rounds that does not grow with the graph (the paper's
O(1), our O(log* n) <= small-constant variant), and it must make real
merge progress: a constant fraction of nodes gets grouped.
"""

import random
import time

from repro.analysis import print_table, verdict
from repro.core import symmetry_break
from repro.planar.generators import random_outerplanar


def greedy_coloring(g, rng):
    colors = {}
    for v in sorted(g.nodes(), key=repr):
        used = {colors[u] for u in g.neighbors(v) if u in colors}
        c = rng.randrange(2)
        while c in used:
            c += 1
        colors[v] = c
    return colors


def run_experiment(report=None):
    rows = []
    data = []
    for n in (10, 40, 160, 640):
        t0 = time.perf_counter()
        steps_max = 0
        grouped_frac_min = 1.0
        for seed in range(8):
            g = random_outerplanar(n, seed)
            rng = random.Random(seed)
            colors = greedy_coloring(g, rng)
            out = symmetry_break(g, colors)  # validates its own guarantees
            steps_max = max(steps_max, out.steps)
            grouped = len(out.star_nodes()) + sum(
                len(c) for c in out.chains if len(c) >= 2
            )
            grouped_frac_min = min(grouped_frac_min, grouped / n)
        if report is not None:
            report.record(
                n=n, seeds=8, max_super_rounds=steps_max,
                min_grouped_fraction=round(grouped_frac_min, 4),
                wall_s=round(time.perf_counter() - t0, 6),
            )
        rows.append([n, steps_max, round(grouped_frac_min, 2)])
        data.append((n, steps_max, grouped_frac_min))
    print_table(
        ["parts n", "max super-rounds", "min grouped fraction"],
        rows,
        title="E7: Lemma 5.3 symmetry breaking (8 seeds per size)",
    )
    return data


def test_e7_symmetry(run_once, bench_report):
    data = run_once(run_experiment, bench_report)
    steps = [s for _, s, _ in data]
    ok = verdict(
        "E7: super-rounds constant across a 64x size range",
        max(steps) <= 6 and max(steps) == steps[0] or max(steps) <= 6,
        f"max super-rounds {max(steps)}",
    )
    ok &= verdict(
        "E7: a constant fraction of parts merges every iteration",
        all(frac >= 0.25 for _, _, frac in data),
        f"min grouped fraction {min(f for _, _, f in data):.2f}",
    )
    assert ok
