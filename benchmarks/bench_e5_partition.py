"""E5 — Lemma 4.2: part sizes <= 2|T_s|/3 and part diameter <= depth(T_s) - 1.

Audits every recursive call's trace record on several families: the
hanging parts of each call must obey both bounds.  Part diameter is
checked through the subtree-depth bound (each part is a BFS subtree
rooted one level below T_s's root, so its depth is <= depth(T_s) - 1).
"""

import time

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.planar.generators import (
    cylinder_graph,
    delaunay_triangulation,
    grid_graph,
    random_maximal_planar,
)


def run_experiment(report=None):
    rows = []
    audits = []
    for name, g in [
        ("grid18", grid_graph(18, 18)),
        ("cylinder8x20", cylinder_graph(8, 20)),
        ("maximal300", random_maximal_planar(300, 7)),
        ("delaunay300", delaunay_triangulation(300, 9)[0]),
    ]:
        t0 = time.perf_counter()
        result = distributed_planar_embedding(g)
        wall = time.perf_counter() - t0
        if report is not None:
            report.record_run(g, result, wall, family=name)
        calls = [r for r in result.trace if r.part_sizes]
        worst_ratio = max(
            max(sizes) / record.subtree_size
            for record in calls
            for sizes in [record.part_sizes]
        )
        p0_ok = all(r.p0_length <= r.subtree_depth + 1 for r in calls)
        rows.append([name, len(calls), round(worst_ratio, 3), p0_ok])
        audits.append((worst_ratio, p0_ok))
    print_table(
        ["family", "recursive calls", "max part/|T_s| ratio", "P0 within depth"],
        rows,
        title="E5: partition balance and diameter bounds (Lemma 4.2)",
    )
    return audits


def test_e5_partition(run_once, bench_report):
    audits = run_once(run_experiment, bench_report)
    ok = all(ratio <= 2 / 3 + 1e-9 for ratio, _ in audits)
    ok &= all(p0_ok for _, p0_ok in audits)
    assert verdict(
        "E5: every part <= 2|T_s|/3 and every P0 within subtree depth",
        ok,
        f"worst ratio {max(r for r, _ in audits):.3f} (bound 0.667)",
    )
