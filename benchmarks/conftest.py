"""Shared helpers for the experiment benches (E1-E13).

Each bench runs its experiment once under pytest-benchmark (timing the
whole sweep), prints the table of the series it reproduces — the
stand-in for the corresponding figure in EXPERIMENTS.md — and asserts
the claimed *shape* (who wins, what exponent, which bound holds).

Every bench also feeds the shared :class:`BenchReport`, which persists
one ``BENCH_<experiment>.json`` per bench at the repository root with
machine-readable per-datapoint records (n, D, rounds, words, wall-clock
seconds, ...).  These files are the perf trajectory: successive PRs
append comparable numbers, so regressions and wins show up as diffs.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

import pytest

sys.setrecursionlimit(100_000)  # deep recursions in the E12 ablation

REPORT_SCHEMA_VERSION = 1
_REPO_ROOT = Path(__file__).resolve().parent.parent


class BenchReport:
    """Collects per-datapoint records for one bench and writes them as
    ``BENCH_<name>.json``.

    ``record()`` takes arbitrary scalar fields; ``record_run()`` is the
    shorthand for an :class:`~repro.core.algorithm.EmbeddingResult`
    (captures n, m, D, rounds, messages, words).  With ``name=None``
    the report is collected but never written (handy for calling
    ``run_experiment`` outside pytest).
    """

    def __init__(self, name: str | None, out_dir: Path | None = None) -> None:
        self.name = name
        self.out_dir = out_dir or _REPO_ROOT
        self.records: list[dict] = []
        self._t0 = time.perf_counter()

    @staticmethod
    def timed(fn, *args, **kwargs):
        """Run ``fn`` and return ``(result, wall_seconds)``."""
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        return result, time.perf_counter() - t0

    def record(self, **fields) -> dict:
        self.records.append(fields)
        return fields

    def record_run(self, graph, result, wall_s: float, **extra) -> dict:
        """One embedding run: the standard perf-trajectory record."""
        return self.record(
            n=graph.num_nodes,
            m=graph.num_edges,
            D=2 * result.bfs_depth,
            rounds=result.rounds,
            messages=result.metrics.messages,
            words=result.metrics.total_words,
            activations=result.metrics.node_activations,
            activations_saved=result.metrics.activations_saved,
            wall_s=round(wall_s, 6),
            **extra,
        )

    @property
    def path(self) -> Path | None:
        return None if self.name is None else self.out_dir / f"BENCH_{self.name}.json"

    def write(self) -> Path | None:
        if self.path is None:
            return None
        payload = {
            "schema": REPORT_SCHEMA_VERSION,
            "bench": self.name,
            "total_wall_s": round(time.perf_counter() - self._t0, 6),
            "records": self.records,
        }
        self.path.write_text(json.dumps(payload, indent=2, default=repr) + "\n")
        return self.path


@pytest.fixture
def bench_report(request):
    """The bench's report sink; written to ``BENCH_<experiment>.json`` at
    the repository root when the test finishes (pass or fail)."""
    module = request.module.__name__.rpartition(".")[-1]
    name = module.removeprefix("bench_")
    report = BenchReport(name)
    yield report
    path = report.write()
    if path is not None:
        print(f"[bench-report] {len(report.records)} records -> {path}")


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
