"""Shared helpers for the experiment benches (E1-E13).

Each bench runs its experiment once under pytest-benchmark (timing the
whole sweep), prints the table of the series it reproduces — the
stand-in for the corresponding figure in EXPERIMENTS.md — and asserts
the claimed *shape* (who wins, what exponent, which bound holds).
"""

from __future__ import annotations

import sys

import pytest

sys.setrecursionlimit(100_000)  # deep recursions in the E12 ablation


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
