"""E14 — distributed certification: O(D) verification, 100% soundness.

The claim: after the embedding terminates, equipping every node with an
O(log n)-bit proof label and re-verifying the output distributedly costs
O(D) rounds — prover (election + BFS + convergecast + broadcast) plus
verifier (one label exchange + local checks + verdict aggregation) —
while the centralized gather-and-check alternative pays Theta(n) rounds
on low-diameter planar networks.  And the scheme is *sound*: the full
tamper suite (5 corruption classes) is rejected by at least one node on
every workload family, each rejection naming the detecting node and the
violated predicate.

Label sizes: mean words per node stay below 8*log2(n) on every family
(labels are O(1 + deg) words and planar average degree is < 6); on the
bounded-degree families the *maximum* obeys the same bound, while on
random maximal planar graphs the max tracks the max degree (Apollonian
hubs), which is the expected O(deg * log n) bits — reported, not capped.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep to one small size per family
(for the CI smoke-bench job); shape assertions that need a full sweep
are skipped in that mode, soundness and completeness are not.
"""

import math
import os
import time

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.certify import build_certificates, run_tamper_suite, verify_distributed
from repro.certify.verifier import centralized_check_rounds
from repro.congest.metrics import RoundMetrics
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    random_maximal_planar,
    triangulated_grid,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (8,) if SMOKE else (8, 12, 17, 24)

FAMILIES = [
    ("grid", lambda k: grid_graph(k, k)),
    ("trigrid", lambda k: triangulated_grid(k, k)),
    ("cycle", lambda k: cycle_graph(k * k)),
    ("maximal", lambda k: random_maximal_planar(k * k, seed=k)),
]

# Certification phase budget: election <= D, BFS <= D, tally/announce
# <= 2*depth, exchange O(1), verdict election/BFS/convergecast/broadcast
# <= 4*D — comfortably within 8*(D+2) total.
ROUND_BOUND = 8


def run_experiment(report=None):
    series = {}
    rows = []
    for name, make in FAMILIES:
        points = []
        for k in SIZES:
            g = make(k)
            t0 = time.perf_counter()
            result = distributed_planar_embedding(g)
            embed_wall = time.perf_counter() - t0
            d = max(1, 2 * result.bfs_depth)

            ledger = RoundMetrics()
            t0 = time.perf_counter()
            certs = build_certificates(g, result.rotation_system, metrics=ledger)
            prove_rounds = ledger.rounds
            cert_report = verify_distributed(g, result.rotation, certs, metrics=ledger)
            cert_wall = time.perf_counter() - t0
            assert cert_report.accepted, (
                f"{name} k={k}: honest certificates rejected: "
                f"{cert_report.rejections[:3]}"
            )
            assert cert_report.announced_ok

            baseline_rounds = centralized_check_rounds(g).rounds
            suite = run_tamper_suite(g, result.rotation, certs, seed=k, trials=1)
            point = {
                "family": name,
                "n": g.num_nodes,
                "m": g.num_edges,
                "D": d,
                "prove_rounds": prove_rounds,
                "verify_rounds": cert_report.rounds,
                "cert_rounds": ledger.rounds,
                "baseline_rounds": baseline_rounds,
                "label_words_mean": round(certs.mean_words(), 2),
                "label_words_max": certs.max_words(),
                "tampers": len(suite.outcomes),
                "tampers_detected": sum(o.detected for o in suite.outcomes),
                "embed_wall_s": round(embed_wall, 6),
                "cert_wall_s": round(cert_wall, 6),
            }
            points.append(point)
            if report is not None:
                report.record(**point)
            rows.append([
                name, g.num_nodes, d, ledger.rounds, baseline_rounds,
                round(ledger.rounds / (d + 2), 2),
                point["label_words_mean"],
                f"{point['tampers_detected']}/{point['tampers']}",
            ])
        series[name] = points
    print_table(
        ["family", "n", "D(2approx)", "cert rounds", "central rounds",
         "cert/(D+2)", "words/node", "tampers"],
        rows,
        title="E14: distributed certification (prove + verify) vs gather-and-check",
    )
    return series


def test_e14_certify(run_once, bench_report):
    series = run_once(run_experiment, bench_report)
    ok = True
    for name, points in series.items():
        # Completeness is asserted inside run_experiment (honest accept).
        # Soundness: every tamper in every sweep detected.
        missed = sum(p["tampers"] - p["tampers_detected"] for p in points)
        ok &= verdict(
            f"E14/{name}: tamper suite 100% detected",
            missed == 0,
            f"{missed} undetected of {sum(p['tampers'] for p in points)}",
        )
        # O(D) rounds: prove + verify within a constant multiple of D.
        worst = max(p["cert_rounds"] / (p["D"] + 2) for p in points)
        ok &= verdict(
            f"E14/{name}: certification rounds = O(D)",
            worst <= ROUND_BOUND,
            f"max cert/(D+2) = {worst:.2f} (budget {ROUND_BOUND})",
        )
        # O(log n)-bit labels: mean words/node <= 8*log2(n) everywhere;
        # the max too on the bounded-degree families.
        mean_ok = all(p["label_words_mean"] <= 8 * math.log2(p["n"]) for p in points)
        max_ok = name == "maximal" or all(
            p["label_words_max"] <= 8 * math.log2(p["n"]) for p in points
        )
        ok &= verdict(
            f"E14/{name}: labels are O(log n) bits",
            mean_ok and max_ok,
            "mean<=8log2(n)" + ("" if name == "maximal" else " and max<=8log2(n)"),
        )
        if SMOKE or name == "cycle":
            continue  # cycles have D = Theta(n): no separation to show
        last = points[-1]
        ok &= verdict(
            f"E14/{name}: O(D) verifier beats the Theta(n) gather at n={last['n']}",
            last["cert_rounds"] < last["baseline_rounds"],
            f"{last['cert_rounds']} vs {last['baseline_rounds']} rounds",
        )
    assert ok
