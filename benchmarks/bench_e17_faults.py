"""E17 — chaos layer: seeded faults, reliable delivery, self-healing.

PR 5 added a fault-injection layer (:mod:`repro.congest.faults`), a
per-link ARQ (:mod:`repro.congest.reliable`) whose retransmission
traffic is charged to a dedicated ``recovery`` phase, and a
certificate-driven self-healing driver
(:func:`repro.core.self_healing_embedding`).  This bench measures what
surviving chaos costs:

* a chaos sweep over four planar families (n = 64 .. 1024) under the
  canonical fault plan (``drop=0.05,corrupt=0.02,crash=2:4``, seed 17):
  every run must come back certified — not degraded — with every
  injected corruption caught by the wire CRC (``corruption_delivered ==
  0``), recording the recovery-round overhead ratio versus the clean
  certified run;
* a tamper suite: each adversary class from
  :data:`repro.certify.TAMPER_CLASSES` corrupts the first attempt's
  output and must be detected by the distributed certifier and healed
  within the retry budget — 100% detection, 100% recovery;
* a deterministic fault budget gate on fixed seeded n=64 workloads
  (``fault_budget.json``): chaos scheduling is reproducible from the
  seed alone, so a regression in the ARQ or the healing ladder shows up
  as an overhead-ratio or attempt-count diff.

``REPRO_BENCH_SMOKE=1`` keeps only the n=64 sizes and the gates.
"""

import json
import math
import os
import time
from pathlib import Path

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.certify import TAMPER_CLASSES, apply_tamper
from repro.congest import FaultPlan
from repro.core import self_healing_embedding
from repro.planar.generators import (
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    triangulated_grid,
)

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (64,) if SMOKE else (64, 256, 1024)

BUDGET_PATH = Path(__file__).resolve().parent / "fault_budget.json"

FAMILIES = [
    ("grid", lambda n: grid_graph(math.isqrt(n), math.isqrt(n))),
    ("trigrid", lambda n: triangulated_grid(math.isqrt(n), math.isqrt(n))),
    ("maximal", lambda n: random_maximal_planar(n, seed=n)),
    ("outerplanar", lambda n: random_outerplanar(n, seed=n)),
]


def _chaos_run(graph, plan):
    t0 = time.perf_counter()
    result = self_healing_embedding(graph, faults=plan, max_retries=3)
    return result, time.perf_counter() - t0


def run_experiment(report=None):
    budget = json.loads(BUDGET_PATH.read_text())
    plan = FaultPlan.parse(budget["plan"], seed=budget["seed"])

    # -- chaos sweep: certified everywhere, overhead measured ------------
    rows = []
    sweep = {}
    for name, make in FAMILIES:
        for n in SIZES:
            g = make(n)
            clean = distributed_planar_embedding(g, certify=True)
            result, wall = _chaos_run(g, plan)
            degraded = getattr(result, "degraded", False)
            stats = result.fault_stats or {}
            ratio = result.metrics.rounds / max(1, clean.metrics.rounds)
            recovery = result.metrics.phase_breakdown().get("recovery", {})
            sweep[(name, g.num_nodes)] = {
                "degraded": degraded,
                "certified": bool(
                    result.certification and result.certification.accepted
                ),
                "attempts": (
                    result.attempts if degraded else result.heal_attempts
                ),
                "ratio": ratio,
                "corruption_delivered": stats.get("corruption_delivered", 0),
                "faults_injected": stats.get("faults_injected", 0),
            }
            if report is not None:
                report.record_run(
                    g, result, wall, family=name, mode="chaos-sweep",
                    clean_rounds=clean.metrics.rounds,
                    overhead_ratio=round(ratio, 3),
                    heal_attempts=sweep[(name, g.num_nodes)]["attempts"],
                    degraded=degraded,
                    faults_injected=stats.get("faults_injected", 0),
                    recovery_messages=recovery.get("messages", 0),
                )
            rows.append([
                name, g.num_nodes, clean.metrics.rounds, result.metrics.rounds,
                round(ratio, 2), sweep[(name, g.num_nodes)]["attempts"],
                stats.get("faults_injected", 0), recovery.get("messages", 0),
                "ok" if not degraded else "DEGRADED", round(wall, 3),
            ])
    print_table(
        ["family", "n", "clean", "chaos", "ratio", "attempts", "faults",
         "recovery_msgs", "outcome", "wall_s"],
        rows,
        title=f"E17: chaos sweep ({budget['plan']}, seed={budget['seed']})",
    )

    # -- tamper suite: every adversary class detected and healed ---------
    tamper_rows = []
    tampers = {}
    g = triangulated_grid(4, 4)
    for tamper in sorted(TAMPER_CLASSES):
        def corrupt_once(attempt, result, _tamper=tamper):
            if attempt == 1:
                return apply_tamper(
                    _tamper, result.graph, result.rotation,
                    result.certificates, seed=7,
                )
            return None

        result = self_healing_embedding(g, corrupt_hook=corrupt_once)
        degraded = getattr(result, "degraded", False)
        healed = not degraded and result.certification.accepted
        detected = degraded or result.heal_attempts > 1
        tampers[tamper] = (detected, healed)
        if report is not None:
            report.record(
                mode="tamper-suite", tamper=tamper,
                detected=detected, healed=healed,
                attempts=result.attempts if degraded else result.heal_attempts,
            )
        tamper_rows.append([
            tamper,
            "yes" if detected else "MISSED",
            "yes" if healed else "NO",
            result.attempts if degraded else result.heal_attempts,
        ])
    print_table(
        ["tamper class", "detected", "healed", "attempts"],
        tamper_rows,
        title="E17: tamper suite (trigrid 4x4, certifier-driven healing)",
    )

    # -- deterministic fault budget gate ---------------------------------
    gate_rows = []
    gate = {}
    for key, allowed in budget["workloads"].items():
        family, n = key.rsplit(":", 1)
        g = dict(FAMILIES)[family](int(n))
        clean = distributed_planar_embedding(g, certify=True)
        result, wall = _chaos_run(g, plan)
        degraded = getattr(result, "degraded", False)
        ratio = result.metrics.rounds / max(1, clean.metrics.rounds)
        attempts = result.attempts if degraded else result.heal_attempts
        gate[key] = (ratio, allowed, attempts, degraded)
        if report is not None:
            report.record(
                mode="budget-gate", workload=key,
                overhead_ratio=round(ratio, 3), budget=allowed,
                attempts=attempts, within=not degraded and ratio <= allowed,
                wall_s=round(wall, 6),
            )
        gate_rows.append([
            key, round(ratio, 2), allowed, attempts,
            "ok" if not degraded and ratio <= allowed else "OVER",
        ])
    print_table(
        ["workload", "ratio", "budget", "attempts", "verdict"],
        gate_rows,
        title="E17: fault budget gate (fixed seeded workloads)",
    )
    return sweep, tampers, gate, budget


def test_e17_faults(run_once, bench_report):
    sweep, tampers, gate, budget = run_once(run_experiment, bench_report)

    ok = True
    # Acceptance: every family x size heals to a certified embedding.
    for (name, n), row in sweep.items():
        ok &= verdict(
            f"E17: {name}:{n} certified under chaos",
            not row["degraded"] and row["certified"],
            f"attempts={row['attempts']} ratio={row['ratio']:.2f}",
        )
        ok &= verdict(
            f"E17: {name}:{n} zero corrupted payloads delivered",
            row["corruption_delivered"] == 0,
            f"{row['corruption_delivered']} slipped past the CRC "
            f"of {row['faults_injected']} injected faults",
        )
    # 100% tamper detection and recovery.
    for tamper, (detected, healed) in tampers.items():
        ok &= verdict(f"E17: tamper {tamper} detected", detected)
        ok &= verdict(f"E17: tamper {tamper} healed", healed)
    # Deterministic overhead gate.
    for key, (ratio, allowed, attempts, degraded) in gate.items():
        ok &= verdict(
            f"E17: {key} within recovery-round budget",
            not degraded and ratio <= allowed,
            f"ratio {ratio:.2f} vs budget {allowed}",
        )
        ok &= verdict(
            f"E17: {key} heals within attempt cap",
            attempts <= budget["max_heal_attempts"],
            f"{attempts} attempts, cap {budget['max_heal_attempts']}",
        )
    assert ok
