"""E8 — Section 5.3: the unrestricted merge reduces to O(|P0|) parts.

The two iterations of low-connection merges, discharges, and symmetry-
broken star merges must leave each recursive call's final restricted
merge with at most O(|P0| + 1) participating parts — that is exactly
what makes the final path-coordinated merge *restricted* and O(D)-round.
We measure the worst final-instance-to-|P0| ratio over all recursive
calls on several families.
"""

import time

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.planar.generators import (
    cylinder_graph,
    delaunay_triangulation,
    grid_graph,
    random_maximal_planar,
)


def run_experiment(report=None):
    rows = []
    worst_ratios = []
    for name, g in [
        ("grid20", grid_graph(20, 20)),
        ("cylinder8x16", cylinder_graph(8, 16)),
        ("maximal400", random_maximal_planar(400, 11)),
        ("delaunay400", delaunay_triangulation(400, 13)[0]),
    ]:
        t0 = time.perf_counter()
        result = distributed_planar_embedding(g)
        wall = time.perf_counter() - t0
        if report is not None:
            report.record_run(g, result, wall, family=name)
        worst = 0.0
        iter_reductions = []
        for record in result.trace:
            stats = record.merge_stats
            if stats is None or stats.p0_length < 4:
                # |P0| <= 3 degenerates to a vertex-coordinated merge:
                # no path congestion exists, so the O(|P0|) precondition
                # is moot (parts still bounded by the coordinator degree).
                continue
            ratio = stats.final_instance_parts / (stats.p0_length + 1)
            worst = max(worst, ratio)
            if stats.initial_parts:
                iter_reductions.append(
                    stats.parts_after_iteration[-1] / stats.initial_parts
                    if stats.parts_after_iteration
                    else 1.0
                )
        rows.append(
            [name, len(result.trace), round(worst, 2),
             round(sum(iter_reductions) / max(1, len(iter_reductions)), 2)]
        )
        worst_ratios.append(worst)
    print_table(
        ["family", "recursive calls", "max parts/|P0|", "mean part survival"],
        rows,
        title="E8: part-count reduction before the restricted merge",
    )
    return worst_ratios


def test_e8_reduction(run_once, bench_report):
    worst_ratios = run_once(run_experiment, bench_report)
    assert verdict(
        "E8: final merges are restricted (parts = O(|P0|))",
        max(worst_ratios) <= 4.0,
        f"max parts/(|P0|+1) = {max(worst_ratios):.2f}",
    )
