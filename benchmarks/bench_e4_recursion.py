"""E4 — Lemma 4.3: recursion depth <= min(O(log n), D).

Across families with very different diameters the measured recursion
depth must stay below log_{3/2}(n) + O(1) *and* below the BFS-tree
depth + O(1) (the D side of the min: a subtree of depth d cannot recurse
deeper than d times, since every level strictly peels the tree).
"""

import math
import time

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_maximal_planar,
    random_tree,
)


def run_experiment(report=None):
    rows = []
    data = []
    for name, g in [
        ("grid20", grid_graph(20, 20)),
        ("grid30", grid_graph(30, 30)),
        ("maximal400", random_maximal_planar(400, 3)),
        ("path300", path_graph(300)),
        ("cycle300", cycle_graph(300)),
        ("tree500", random_tree(500, 5)),
    ]:
        t0 = time.perf_counter()
        result = distributed_planar_embedding(g)
        wall = time.perf_counter() - t0
        if report is not None:
            report.record_run(
                g, result, wall, family=name, recursion_depth=result.recursion_depth
            )
        n = g.num_nodes
        log_bound = math.log(n, 1.5) + 2
        rows.append(
            [name, n, 2 * result.bfs_depth, result.recursion_depth,
             round(log_bound, 1)]
        )
        data.append((n, result.bfs_depth, result.recursion_depth, log_bound))
    print_table(
        ["family", "n", "D(2approx)", "recursion depth", "log_1.5(n)+2"],
        rows,
        title="E4: recursion depth vs the Lemma 4.3 bound",
    )
    return data


def test_e4_recursion_depth(run_once, bench_report):
    data = run_once(run_experiment, bench_report)
    ok = True
    for n, bfs_depth, depth, log_bound in data:
        ok &= depth <= log_bound
        ok &= depth <= bfs_depth + 2
    assert verdict(
        "E4: recursion depth <= min(O(log n), D) on every family",
        ok,
        f"max measured depth {max(d for _, _, d, _ in data)}",
    )
