"""E6 — Definition 3.1 / Lemma 4.1: the partitions are safe.

Replays the recursion's partitioning on several networks and audits the
full safety property at each recursive call: the partition
{P0, P1, ..., Pk, G \\ H} must be a partition of V in which every
non-trivial part has a connected complement.
"""

import time

from repro.analysis import print_table, verdict
from repro.core import PartitionState, fresh_part
from repro.core.algorithm import _wrap
from repro.planar.generators import cylinder_graph, grid_graph, random_maximal_planar
from repro.primitives import build_bfs_tree, compute_subtree_stats, elect_leader, find_splitter
from repro.planar import Graph


def audit_partitions(graph):
    """Walk the recursion's partitioning and audit safety at each call."""
    wrapped = _wrap(graph)
    leader = elect_leader(wrapped)
    tree = build_bfs_tree(wrapped, leader)
    checked = 0
    safe = 0

    stack = [leader]
    while stack:
        s = stack.pop()
        vertices = tree.subtree_nodes(s)
        if len(vertices) <= 2:
            continue
        tg = Graph(nodes=sorted(vertices, key=repr))
        parent = {v: (tree.parent[v] if v != s else None) for v in vertices}
        children = {v: list(tree.children[v]) for v in vertices}
        for v in tg.nodes():
            if parent[v] is not None:
                tg.add_edge(v, parent[v])
        stats = compute_subtree_stats(tg, parent, children)
        splitter = find_splitter(tg, s, parent, children, stats=stats)
        p0 = tree.path_to_descendant(s, splitter)
        p0_set = set(p0)
        hanging = sorted(
            {c for v in p0 for c in children[v] if c not in p0_set}, key=repr
        )

        parts = []
        groups = [p0_set] + [tree.subtree_nodes(w) for w in hanging]
        rest = set(wrapped.nodes()) - set().union(*groups)
        if rest:
            groups.append(rest)
        for nodes in groups:
            sub = wrapped.subgraph(nodes)
            boundary = [
                (u, x)
                for u in sorted(nodes, key=repr)
                for x in wrapped.neighbors(u)
                if x not in nodes
            ]
            parts.append(fresh_part(sub, boundary))
        state = PartitionState(network=wrapped, parts=parts)
        checked += 1
        if state.is_safe():
            safe += 1
        stack.extend(hanging)
    return checked, safe


def run_experiment(report=None):
    rows = []
    results = []
    for name, g in [
        ("grid12", grid_graph(12, 12)),
        ("cylinder6x14", cylinder_graph(6, 14)),
        ("maximal150", random_maximal_planar(150, 4)),
    ]:
        t0 = time.perf_counter()
        checked, safe = audit_partitions(g)
        wall = time.perf_counter() - t0
        if report is not None:
            report.record(
                family=name, n=g.num_nodes, m=g.num_edges,
                partitions_checked=checked, partitions_safe=safe,
                wall_s=round(wall, 6),
            )
        rows.append([name, checked, safe])
        results.append((checked, safe))
    print_table(
        ["family", "partitions audited", "safe"],
        rows,
        title="E6: safety property audit (Definition 3.1, Lemma 4.1)",
    )
    return results


def test_e6_safety(run_once, bench_report):
    results = run_once(run_experiment, bench_report)
    ok = all(checked == safe and checked > 0 for checked, safe in results)
    assert verdict(
        "E6: every recursion partition satisfies the safety property",
        ok,
        f"{sum(c for c, _ in results)} partitions audited",
    )
