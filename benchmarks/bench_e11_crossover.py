"""E11 — the min(log n, D) crossover in Theorem 1.1's bound.

Two regimes:

* **small D** (stacked prisms with a fat rim and few layers): here
  ``D < log n`` is approached and the bound's ``D^2`` side governs —
  rounds track D^2-ish quantities and stay far below n;
* **huge D** (paths / long subdivisions, ``D = Theta(n)``): the
  ``log n`` side caps the per-level multiplier, so rounds grow like
  ``n log n / n = log n`` *per unit of D* at most — i.e. rounds/D stays
  O(log n) while D explodes.

The measured shape: rounds/(D*min(log n, D)) is bounded in both regimes,
while neither D^2 alone nor D*log n alone would cover both.
"""

import math
import time

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.planar.generators import path_graph, stacked_prism


def run_experiment(report=None):
    rows, ratios = [], []
    for name, g in [
        ("prism2x24", stacked_prism(2, 24)),
        ("prism2x64", stacked_prism(2, 64)),
        ("prism3x100", stacked_prism(3, 100)),
        ("path60", path_graph(60)),
        ("path180", path_graph(180)),
        ("path420", path_graph(420)),
    ]:
        t0 = time.perf_counter()
        result = distributed_planar_embedding(g)
        wall = time.perf_counter() - t0
        n = g.num_nodes
        d = max(2, 2 * result.bfs_depth)
        bound = d * min(math.log2(n), d)
        ratios.append(result.rounds / bound)
        regime = "D^2" if d < math.log2(n) else "D*log n"
        if report is not None:
            report.record_run(
                g, result, wall, family=name, regime=regime,
                rounds_over_bound=round(result.rounds / bound, 3),
            )
        rows.append(
            [name, n, d, result.rounds, round(result.rounds / bound, 2), regime]
        )
    print_table(
        ["family", "n", "D(2approx)", "rounds", "rounds/bound", "binding side"],
        rows,
        title="E11: the min(log n, D) crossover",
    )
    return ratios


def test_e11_crossover(run_once, bench_report):
    ratios = run_once(run_experiment, bench_report)
    assert verdict(
        "E11: rounds/(D*min(log n, D)) bounded in both regimes",
        max(ratios) <= 30 and max(ratios) / min(ratios) <= 30,
        f"ratios {['%.1f' % r for r in ratios]}",
    )
