"""E21 — compact certificates and incremental re-certification.

Two claims, both gated by deterministic budgets (``cert_budget.json``):

* **compression** — the bit-packed label codec
  (:mod:`repro.certify.compact`) measures strictly fewer bits/node than
  the E14 word-label baseline (``words × word_bits(n)``) on every
  workload family, by at least the per-family floor recorded in the
  budget file;
* **incremental beats rebuild** — under a low-rate seeded edge-churn
  workload, the delta engine (:mod:`repro.certify.delta`) re-certifies
  each mutation in strictly fewer rounds than a full per-op rebuild of
  the same op plan, by at least the budgeted speedup factor.

Soundness rides along: an 80-case tamper sweep — every E14 adversary
class replayed through the encode→decode shim, plus raw bit flips in
the packed blobs themselves — must be detected 80/80 (in smoke mode
too; soundness never shrinks).

Encoding and churn are deterministic, so measured ratios are
exact-reproducible; budgets carry ~5% headroom over the values measured
when the gate was set.  If a codec or engine change legitimately moves
them, re-measure and update ``cert_budget.json`` in the same PR,
explaining the delta.

``REPRO_BENCH_SMOKE=1`` keeps one size per family and a shorter churn;
the budget gates and the 80/80 sweep run in both modes.
"""

import json
import os
import random
import time
from pathlib import Path

from repro import distributed_planar_embedding
from repro.analysis import print_table, verdict
from repro.certify import (
    TAMPER_CLASSES,
    DynamicCertifiedEmbedding,
    apply_tamper,
    build_certificates,
    encode_certificates,
    verify_compact,
)
from repro.planar.generators import demo_graph

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
SIZES = (7,) if SMOKE else (7, 10)
CHURN_OPS = 6 if SMOKE else 10
GATE_SIZE = 7  # budget gates pin the size every mode runs

FAMILIES = [
    ("grid", lambda k: ["grid", k, k]),
    ("trigrid", lambda k: ["trigrid", k, k]),
    ("cycle", lambda k: ["cycle", k * k]),
    ("maximal", lambda k: ["maximal", k * k]),
    ("outerplanar", lambda k: ["outerplanar", k * k]),
    ("tree", lambda k: ["tree", k * k]),
]

BUDGET_PATH = Path(__file__).resolve().parent / "cert_budget.json"
TAMPER_TOTAL = 80


def run_experiment(report=None):
    series = {}
    rows = []
    for name, spec in FAMILIES:
        points = []
        for k in SIZES:
            g = demo_graph(spec(k), seed=k)
            result = distributed_planar_embedding(g)
            certs = build_certificates(g, result.rotation_system)
            compact = encode_certificates(g, certs)
            baseline_bits = certs.size_bits()
            baseline_mean = sum(baseline_bits.values()) / len(baseline_bits)
            point = {
                "family": name,
                "n": g.num_nodes,
                "m": g.num_edges,
                "word_bits_mean": round(baseline_mean, 2),
                "word_bits_max": max(baseline_bits.values()),
                "compact_bits_mean": round(compact.mean_bits(), 2),
                "compact_bits_max": compact.max_bits(),
                "compression": round(baseline_mean / compact.mean_bits(), 4),
            }

            if k == GATE_SIZE:
                # Low-rate churn: the same op plan on the incremental
                # engine vs a full per-op rebuild.
                t0 = time.perf_counter()
                inc = DynamicCertifiedEmbedding(g, incremental=True)
                inc_churn = inc.run_churn(CHURN_OPS, seed=k)
                inc_wall = time.perf_counter() - t0
                assert inc_churn.accepted, f"{name} k={k}: incremental churn rejected"
                full = DynamicCertifiedEmbedding(g, incremental=False)
                full_churn = full.run_churn(len(inc_churn.plan), plan=inc_churn.plan)
                assert full_churn.accepted, f"{name} k={k}: rebuild churn rejected"
                point.update({
                    "churn_ops": len(inc_churn.plan),
                    "inc_rounds_mean": round(inc_churn.mean_op_rounds(), 2),
                    "rebuild_rounds_mean": round(full_churn.mean_op_rounds(), 2),
                    "patched_ops": inc_churn.stats["patched"],
                    "speedup": round(
                        full_churn.mean_op_rounds() / inc_churn.mean_op_rounds(), 2
                    ),
                    "churn_wall_s": round(inc_wall, 6),
                })

            points.append(point)
            if report is not None:
                report.record(**point)
            rows.append([
                name, g.num_nodes,
                point["word_bits_mean"], point["compact_bits_mean"],
                point["compression"],
                point.get("inc_rounds_mean", "-"),
                point.get("rebuild_rounds_mean", "-"),
                point.get("speedup", "-"),
            ])
        series[name] = points
    print_table(
        ["family", "n", "word bits/node", "compact bits/node", "ratio",
         "inc rounds/op", "rebuild rounds/op", "speedup"],
        rows,
        title="E21: compact labels vs E14 words; incremental vs rebuild re-cert",
    )

    series["_tamper"] = run_tamper_sweep()
    return series


def run_tamper_sweep():
    """80 corruptions of compact certificates; count detections.

    60 are the E14 adversary classes replayed through the codec shim
    (every class x every family x 2 trials), 20 are single-bit flips in
    the packed blobs themselves — corruption the word-label suite cannot
    even express.
    """
    detected = 0
    total = 0
    flip_rng = random.Random(2126)
    flips_per_family = 20 // len(FAMILIES)
    for fam_index, (name, spec) in enumerate(FAMILIES):
        g = demo_graph(spec(GATE_SIZE), seed=GATE_SIZE)
        result = distributed_planar_embedding(g)
        certs = build_certificates(g, result.rotation_system)
        honest = encode_certificates(g, certs)
        assert verify_compact(g, result.rotation, honest).accepted

        for cls in sorted(TAMPER_CLASSES):
            for trial in range(2):
                rot = {v: tuple(order) for v, order in result.rotation.items()}
                tampered = certs.copy()
                apply_tamper(cls, g, rot, tampered, seed=100 * fam_index + trial)
                compact = encode_certificates(g, tampered)
                total += 1
                detected += 0 if verify_compact(g, rot, compact).accepted else 1

        budget = flips_per_family + (1 if fam_index < 20 % len(FAMILIES) else 0)
        nodes = sorted(honest.blobs, key=repr)
        for _ in range(budget):
            node = flip_rng.choice(nodes)
            nbits = honest.blobs[node][1]
            flipped = honest.copy()
            flipped.flip_bit(node, flip_rng.randrange(nbits))
            total += 1
            detected += 0 if verify_compact(g, result.rotation, flipped).accepted else 1
    assert total == TAMPER_TOTAL, f"sweep sized {total}, expected {TAMPER_TOTAL}"
    return {"total": total, "detected": detected}


def test_e21_compact(run_once, bench_report):
    series = run_once(run_experiment, bench_report)
    budget = json.loads(BUDGET_PATH.read_text())
    sweep = series.pop("_tamper")
    ok = verdict(
        f"E21: tamper sweep on compact labels {sweep['detected']}/{sweep['total']}",
        sweep["detected"] == sweep["total"] == TAMPER_TOTAL,
        "every codec-shim tamper and packed bit flip detected",
    )
    for name, points in series.items():
        # Compression: strictly below the word baseline everywhere, and
        # above the budgeted per-family floor at the gate size.
        ok &= verdict(
            f"E21/{name}: compact bits/node strictly below E14 words",
            all(p["compact_bits_mean"] < p["word_bits_mean"] for p in points),
            " ".join(f"{p['compact_bits_mean']}<{p['word_bits_mean']}" for p in points),
        )
        gate = next(p for p in points if "speedup" in p)
        floor = budget["compression"][f"{name}:{gate['n']}"]
        ok &= verdict(
            f"E21/{name}: compression ratio >= {floor} (budget)",
            gate["compression"] >= floor,
            f"measured {gate['compression']}",
        )
        # Incremental re-certification: strictly fewer rounds than the
        # full per-op rebuild of the same plan, above the budget floor.
        floor = budget["incremental_speedup"][f"{name}:{gate['n']}"]
        ok &= verdict(
            f"E21/{name}: incremental re-cert beats rebuild by >= {floor}x",
            gate["inc_rounds_mean"] < gate["rebuild_rounds_mean"]
            and gate["speedup"] >= floor,
            f"{gate['inc_rounds_mean']} vs {gate['rebuild_rounds_mean']} rounds/op"
            f" ({gate['speedup']}x, {gate['patched_ops']}/{gate['churn_ops']}"
            f" ops patched)",
        )
    assert ok
