"""E2 — algorithm vs the trivial O(n) baseline (paper footnote 2).

Who wins, by what factor, and where the crossover falls.  On
D = Theta(sqrt n) families the baseline's Theta(n) gather loses to the
O(D log n) algorithm once n passes a few hundred, and the advantage
factor keeps growing with n — the reason the paper's program exists.
"""

import time

from repro import distributed_planar_embedding, trivial_baseline_embedding
from repro.analysis import fit_power_law, print_table, verdict
from repro.planar.generators import grid_graph


def run_experiment(report=None):
    rows = []
    ns, alg_rounds, base_rounds = [], [], []
    for k in (6, 9, 13, 19, 27, 38):
        g = grid_graph(k, k)
        t0 = time.perf_counter()
        alg = distributed_planar_embedding(g)
        t1 = time.perf_counter()
        base = trivial_baseline_embedding(g)
        t2 = time.perf_counter()
        if report is not None:
            report.record_run(g, alg, t1 - t0, algorithm="theorem-1.1")
            report.record_run(g, base, t2 - t1, algorithm="baseline")
        ns.append(g.num_nodes)
        alg_rounds.append(alg.rounds)
        base_rounds.append(base.rounds)
        rows.append(
            [g.num_nodes, alg.rounds, base.rounds,
             round(base.rounds / alg.rounds, 2)]
        )
    print_table(
        ["n", "algorithm", "baseline", "baseline/algorithm"],
        rows,
        title="E2: Theorem 1.1 vs the trivial gather-everything baseline (grids)",
    )
    return ns, alg_rounds, base_rounds


def test_e2_baseline(run_once, bench_report):
    ns, alg_rounds, base_rounds = run_once(run_experiment, bench_report)
    base_fit = fit_power_law(ns, base_rounds)
    alg_fit = fit_power_law(ns, alg_rounds)
    ok = verdict(
        "E2: baseline grows ~linearly in n",
        0.85 <= base_fit.exponent <= 1.15,
        f"exponent {base_fit.exponent:.2f}",
    )
    ok &= verdict(
        "E2: algorithm grows strictly slower",
        alg_fit.exponent <= base_fit.exponent - 0.2,
        f"{alg_fit.exponent:.2f} vs {base_fit.exponent:.2f}",
    )
    ok &= verdict(
        "E2: algorithm wins at scale with a growing factor",
        alg_rounds[-1] < base_rounds[-1]
        and base_rounds[-1] / alg_rounds[-1] > base_rounds[2] / alg_rounds[2],
        f"final factor {base_rounds[-1] / alg_rounds[-1]:.1f}x",
    )
    assert ok
