"""The Omega(D) lower bound, made concrete (paper footnote 1).

"Consider the 4-node complete graph K4 and replace each edge with a
Theta(D)-long path.  In any planar embedding, degree-3 nodes must output
consistent clockwise ordering of their edges.  This requires
coordination between nodes that are Theta(D) hops apart."

This demo (1) builds the construction, (2) shows that flipping a single
far-away branch vertex's local answer breaks global planarity — i.e. the
consistency really is a long-range constraint — and (3) sweeps D to show
the algorithm's round count growing linearly alongside the lower bound,
within its O(D log D) envelope.

    python examples/lower_bound_demo.py
"""

from repro import distributed_planar_embedding
from repro.planar import EmbeddingViolation, verify_planar_embedding
from repro.planar.generators import k4_subdivision


def main() -> None:
    print("footnote-1 construction: K4 with each edge a 12-hop path")
    graph = k4_subdivision(12)
    branch = [v for v in graph.nodes() if graph.degree(v) == 3]
    print(f"n={graph.num_nodes}; branch vertices {branch} are ~12 hops apart")

    result = distributed_planar_embedding(graph)
    print(f"\nembedding found in {result.rounds} rounds; branch rotations:")
    for v in branch:
        print(f"  vertex {v}: {result.rotation[v]}")

    # Flip ONE branch vertex's clockwise order: every other vertex keeps
    # its answer, yet the global output stops being a planar embedding.
    broken = dict(result.rotation)
    broken[branch[0]] = tuple(reversed(result.rotation[branch[0]]))
    try:
        verify_planar_embedding(graph, broken)
        print("\nunexpected: flipped rotation still planar?!")
    except EmbeddingViolation as exc:
        print(f"\nflipping only vertex {branch[0]}'s answer: {exc}")
        print("=> consistency between Theta(D)-distant nodes is mandatory, "
              "hence Omega(D) rounds.")

    print(f"\n{'segments':>9} {'n':>5} {'D~':>5} {'rounds':>7} {'rounds/D':>9}")
    for segments in (4, 8, 16, 32, 64):
        g = k4_subdivision(segments)
        r = distributed_planar_embedding(g)
        d = 2 * r.bfs_depth
        print(f"{segments:>9} {g.num_nodes:>5} {d:>5} {r.rounds:>7} "
              f"{r.rounds / d:>9.1f}")
    print("\nrounds track D linearly — the algorithm sits a log-factor "
          "above the unavoidable Omega(D).")


if __name__ == "__main__":
    main()
