"""A runnable tour of the paper's Figures 2-4 (the structural theory).

The algorithm rests on Observation 3.2: a part's embedding freedom is
exactly (a) one mirror flip per biconnected block and (b) free
permutation of blocks around cut vertices, while each block's external
cyclic order is *fixed*.  This script demonstrates all three facts on
concrete graphs using the library's machinery — the same checks the
test-suite runs, narrated.

    python examples/paper_figures.py
"""

import random

from repro.core import cyclic_equal
from repro.core.interface import block_attachment_order, interface_skeleton
from repro.core.parts import fresh_part
from repro.planar import Graph, RotationSystem, biconnected_components, planar_embedding
from repro.planar.generators import random_maximal_planar


def figure2_fixed_external_order() -> None:
    print("=" * 64)
    print("Figure 2: different drawings, same external cyclic order")
    print("=" * 64)
    g = random_maximal_planar(14, seed=5)  # 3-connected: one block
    # pick a co-facial vertex set: the neighbors of a face of one drawing
    face = planar_embedding(g).faces()[0]
    relevant = sorted({u for u, _ in face})
    base = block_attachment_order(g, relevant)
    print(f"block: random maximal planar graph, n=14; relevant set {relevant}")
    print(f"external cyclic order in drawing #1: {base}")
    for variant in range(2, 5):
        rng = random.Random(variant)
        nodes = g.nodes()
        rng.shuffle(nodes)
        shuffled = Graph(nodes=nodes)
        edges = g.edges()
        rng.shuffle(edges)
        for u, v in edges:
            shuffled.add_edge(u, v)
        other = block_attachment_order(shuffled, relevant)
        same = cyclic_equal(base, other) or cyclic_equal(base, list(reversed(other)))
        print(f"external cyclic order in drawing #{variant}: {other} "
              f"-> {'same up to flip' if same else 'DIFFERENT (!?)'}")


def figure3_cut_vertex_permutation() -> None:
    print()
    print("=" * 64)
    print("Figure 3: blocks permute freely around a cut vertex")
    print("=" * 64)
    g = Graph()
    nxt = 1
    for _ in range(3):  # three triangles sharing vertex 0
        a, b = nxt, nxt + 1
        g.add_edge(0, a)
        g.add_edge(a, b)
        g.add_edge(b, 0)
        nxt += 2
    rot = planar_embedding(g)
    ring = list(rot.order(0))
    print(f"cut vertex 0 joins {len(biconnected_components(g).components)} blocks")
    print(f"rotation at 0: {tuple(ring)}")
    rotated = ring[2:] + ring[:2]
    order = rot.as_dict()
    order[0] = tuple(rotated)
    genus = RotationSystem(g, order).genus()
    print(f"after permuting the block bundles: {tuple(rotated)} "
          f"-> genus {genus} ({'still planar' if genus == 0 else 'broken'})")


def figure4_skeleton_compression() -> None:
    print()
    print("=" * 64)
    print("Figure 4 / Observation 3.2: the interface skeleton")
    print("=" * 64)
    # two triangles and a long path, attachments at the far ends
    g = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 5)])
    part = fresh_part(g, [(0, 100), (1, 101), (6, 102), (7, 103)])
    sk = interface_skeleton(part)
    print(f"part: 2 triangles + a path, n={g.num_nodes}, m={g.num_edges}")
    print(f"attachments: {part.attachments()}")
    print(f"skeleton nodes: {sorted(sk.graph.nodes(), key=repr)}")
    print(f"skeleton edges: {sorted(sk.graph.edges(), key=repr)}")
    print(f"summary size: {sk.words} words "
          "(what a merge coordinator actually receives)")


if __name__ == "__main__":
    figure2_fixed_external_order()
    figure3_cut_vertex_permutation()
    figure4_skeleton_compression()
