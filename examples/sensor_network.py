"""Sensor network: distributed embedding, then topological hole detection.

The paper motivates planar networks by their natural occurrence; sensor
fields with Delaunay-style connectivity are the classic example.  Once
every sensor knows the clockwise order of its links — the output of the
distributed embedding, computed here *without any coordinates* — the
network can enumerate its faces by purely local face-tracing (each hop
of a face walk needs only one rotation lookup).  Faces are the key to
classic sensor-network services:

* **coverage-hole detection** — an interior face with many sides is a
  region no sensor covers;
* **perimeter identification** — the longest face of a well-deployed
  field is the outer boundary.

    python examples/sensor_network.py
"""

from repro import distributed_planar_embedding
from repro.planar.generators import delaunay_triangulation


def main() -> None:
    graph, positions = delaunay_triangulation(150, seed=42)
    print(f"sensor field: n={graph.num_nodes}, m={graph.num_edges} "
          "(Delaunay deployment)")

    result = distributed_planar_embedding(graph)
    print(f"embedding computed in {result.rounds} CONGEST rounds "
          f"(recursion depth {result.recursion_depth}, "
          f"fallbacks {result.merge_fallbacks})")

    faces = result.rotation_system.faces()
    sizes = sorted((len(f) for f in faces), reverse=True)
    print(f"\nfaces discovered by local tracing: {len(faces)}")
    print(f"face size histogram (top 6): {sizes[:6]} ... min {sizes[-1]}")
    euler = graph.num_nodes - graph.num_edges + len(faces)
    print(f"Euler check: {graph.num_nodes} - {graph.num_edges} + {len(faces)} = {euler}")

    # The longest face walk is the field perimeter; other long faces are
    # coverage holes (Delaunay triangulations have only triangles inside,
    # so anything > 3 that is not the perimeter would be a hole).
    longest = max(faces, key=len)
    perimeter = sorted({u for u, _ in longest})
    print(f"\nperimeter: {len(perimeter)} sensors on the outer boundary")
    holes = [f for f in faces if len(f) > 3 and f is not longest]
    print(f"coverage holes (interior faces with >3 sides): {len(holes)}")

    # Region adjacency via the planar dual: how many face-hops from a
    # corner region to the opposite one (zone-based flooding cost).
    from repro.planar import dual_graph

    dual = dual_graph(result.rotation_system)
    source_face = dual.faces_at(perimeter[0])[0]
    target_face = dual.faces_at(perimeter[-1])[0]
    dist = {source_face: 0}
    frontier = [source_face]
    while frontier and target_face not in dist:
        nxt = []
        for f in frontier:
            for h in dual.graph.neighbors(f):
                if h not in dist:
                    dist[h] = dist[f] + 1
                    nxt.append(h)
        frontier = nxt
    print(f"dual graph: {dual.num_faces} regions; corner-to-corner "
          f"region distance {dist.get(target_face, '?')} face-hops")

    # positions are used only for this human-readable summary:
    xs = [positions[v][0] for v in perimeter]
    ys = [positions[v][1] for v in perimeter]
    print(f"boundary bounding box: x in [{min(xs):.2f}, {max(xs):.2f}], "
          f"y in [{min(ys):.2f}, {max(ys):.2f}]")

    degree3 = sum(1 for v in graph.nodes() if graph.degree(v) == 3)
    print(f"\n(per-vertex output format check: e.g. sensor 0 sorts its "
          f"{graph.degree(0)} links clockwise as {result.rotation[0]})")
    print(f"sensors with exactly 3 links: {degree3}")


if __name__ == "__main__":
    main()
