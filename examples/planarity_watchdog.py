"""Planarity watchdog: the embedding algorithm as a distributed test.

A planar overlay (say, a mesh whose routing relies on face traversal)
must stay planar as links are added.  Because the Ghaffari-Haeupler
algorithm *detects* non-planarity while it runs, it doubles as a
distributed planarity test at O(D * min(log n, D)) rounds — much cheaper
than shipping the topology to a coordinator when the network is wide.

This example grows a random planar overlay link by link; after each
batch it re-runs the embedding.  The batch that creates a K5/K3,3-like
entanglement is rejected.

    python examples/planarity_watchdog.py
"""

import random

from repro import NonPlanarNetworkError, distributed_planar_embedding
from repro.planar.generators import random_planar


def main() -> None:
    rng = random.Random(7)
    graph = random_planar(60, 80, seed=3)
    print(f"overlay: n={graph.num_nodes}, m={graph.num_edges} (planar)")

    accepted, rejected = 0, 0
    for step in range(40):
        u = rng.randrange(60)
        v = rng.randrange(60)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        try:
            result = distributed_planar_embedding(graph)
            accepted += 1
            print(f"  +({u:2d},{v:2d})  accepted   "
                  f"m={graph.num_edges:3d}  rounds={result.rounds}")
        except NonPlanarNetworkError:
            graph.remove_edge(u, v)
            rejected += 1
            print(f"  +({u:2d},{v:2d})  REJECTED — would break planarity")

    print(f"\n{accepted} links accepted, {rejected} rejected; "
          f"final overlay m={graph.num_edges} — still planar, "
          "face routing stays safe")
    result = distributed_planar_embedding(graph)
    print(f"final embedding verified: genus "
          f"{result.rotation_system.genus()}, rounds {result.rounds}")


if __name__ == "__main__":
    main()
