"""Road network: planar embedding as a preprocessing step at city scale.

The paper positions distributed planar embedding as "the first
algorithmic step" that later algorithms (MST, min-cut — part II of the
project) consume as a black box.  Road networks are near-planar; this
example models a downtown as a triangulated grid (blocks plus diagonal
shortcuts), runs both the Theorem 1.1 algorithm and the trivial
gather-at-one-node baseline, and breaks the round budget down by phase —
the comparison in which the paper's O(D log n) beats the folklore O(n).

    python examples/road_network.py
"""

import math

from repro import distributed_planar_embedding, trivial_baseline_embedding
from repro.planar.generators import triangulated_grid


def main() -> None:
    print("city grid sweep: algorithm vs gather-everything baseline\n")
    print(f"{'n':>6} {'D~':>5} {'algorithm':>10} {'baseline':>9} "
          f"{'factor':>7} {'D*log2(n)':>10}")
    for k in (6, 10, 14, 20, 28):
        graph = triangulated_grid(k, k)
        alg = distributed_planar_embedding(graph)
        base = trivial_baseline_embedding(graph)
        n = graph.num_nodes
        d = 2 * alg.bfs_depth
        print(f"{n:>6} {d:>5} {alg.rounds:>10} {base.rounds:>9} "
              f"{base.rounds / alg.rounds:>6.1f}x {d * math.log2(n):>10.0f}")

    print("\nphase breakdown of the largest run:")
    graph = triangulated_grid(28, 28)
    alg = distributed_planar_embedding(graph)
    total = alg.rounds
    for phase, rounds in sorted(alg.metrics.phase_rounds.items(), key=lambda x: -x[1]):
        print(f"  {phase:32s} {rounds:7d}  ({100 * rounds / total:4.1f}%)")
    print(f"\nmerge fallbacks: {alg.merge_fallbacks} "
          "(0 = the compressed-interface machinery carried every merge)")


if __name__ == "__main__":
    main()
