"""Quickstart: embed a small planar network and inspect everything.

Runs the distributed planar embedding (Ghaffari-Haeupler, PODC 2016) on
an 8x8 grid under the CONGEST simulator, prints the per-vertex clockwise
edge orders (the paper's output format), verifies the result, and shows
the round/bandwidth ledger.

    python examples/quickstart.py
"""

from repro import distributed_planar_embedding, trivial_baseline_embedding
from repro.planar import verify_planar_embedding
from repro.planar.generators import grid_graph


def main() -> None:
    graph = grid_graph(8, 8)
    print(f"network: 8x8 grid — n={graph.num_nodes}, m={graph.num_edges}")

    result = distributed_planar_embedding(graph)

    print(f"\nleader (max-ID vertex s*): {result.leader}")
    print(f"BFS depth (D <= {2 * result.bfs_depth}): {result.bfs_depth}")
    print(f"recursion depth (Lemma 4.3): {result.recursion_depth}")
    print(f"total rounds: {result.rounds}")

    print("\nclockwise edge orders at a few vertices:")
    for v in (0, 7, 27, 63):
        print(f"  vertex {v:2d}: {result.rotation[v]}")

    system = verify_planar_embedding(graph, result.rotation)
    print(f"\nverification: genus {system.genus()} (0 = planar), "
          f"{system.num_faces()} faces "
          f"(Euler: {graph.num_nodes} - {graph.num_edges} + {system.num_faces()} = 2)")

    baseline = trivial_baseline_embedding(graph)
    print(f"\ntrivial O(n) baseline: {baseline.rounds} rounds "
          f"(vs {result.rounds} — factor {baseline.rounds / result.rounds:.1f}x)")

    print("\nround ledger by phase:")
    for phase, rounds in sorted(result.metrics.phase_rounds.items(), key=lambda x: -x[1]):
        print(f"  {phase:32s} {rounds:6d}")


if __name__ == "__main__":
    main()
