"""Unit tests for the shard planner's batching policy."""

from repro.shard.planner import plan_units


def test_all_small_stay_inline():
    assert plan_units([1, 2, 3], min_ship=4, max_unit=16) == []


def test_oversized_stay_inline():
    assert plan_units([100, 200], min_ship=4, max_unit=16) == []


def test_consecutive_batching_respects_max_unit():
    units = plan_units([8, 8, 8, 8], min_ship=4, max_unit=16)
    assert units == [[0, 1], [2, 3]]


def test_inline_child_closes_open_unit():
    # 2 is too small: the batch [0, 1] must close so the consume loop can
    # process child 2 inline between the units, in sibling order.
    units = plan_units([8, 8, 2, 8], min_ship=4, max_unit=32)
    assert units == [[0, 1], [3]]


def test_boundaries_are_inclusive():
    assert plan_units([4, 16], min_ship=4, max_unit=16) == [[0], [1]]


def test_single_item_per_unit_when_each_fills_it():
    assert plan_units([16, 16, 16], min_ship=4, max_unit=16) == [[0], [1], [2]]


def test_empty_sizes():
    assert plan_units([], min_ship=4, max_unit=16) == []
