"""Exactness of the flat picklable snapshots (repro.shard.flat).

The sharded backend's determinism contract rests on the flat encodings
round-tripping *bit-exactly*: node iteration order, adjacency insertion
order, boundary order, and rotation rings.  Property-based where
hypothesis is available, plus example-based checks driven by real
pipeline artifacts.
"""

import pickle

import pytest

from repro.core.parts import fresh_part
from repro.planar.generators import grid_graph, random_maximal_planar
from repro.planar.graph import Graph
from repro.shard.flat import FlatGraph, encode_part


def _orders(g: Graph):
    """Iteration order of rows and of every row's neighbors."""
    return [(v, list(g._adj[v])) for v in g._adj]


def assert_exact_roundtrip(g: Graph):
    flat = FlatGraph.encode(g)
    back = pickle.loads(pickle.dumps(flat)).to_graph()
    assert _orders(back) == _orders(g)


class TestFlatGraphExamples:
    def test_grid_roundtrip(self):
        assert_exact_roundtrip(grid_graph(6, 7))

    def test_insertion_order_not_sorted_order(self):
        g = Graph()
        for u, v in [(5, 2), (5, 9), (2, 9), (9, 1), (1, 5)]:
            g.add_edge(u, v)
        assert_exact_roundtrip(g)

    def test_isolated_nodes(self):
        g = Graph(nodes=[3, 1, 2])
        g.add_edge(3, 2)
        assert_exact_roundtrip(g)

    def test_row_view_keeps_external_targets(self):
        g = grid_graph(4, 4)
        rows = {0, 1, 2, 3}
        flat = FlatGraph.encode(g, rows=rows)
        back = flat.to_row_graph()
        assert list(back._adj) == [v for v in g._adj if v in rows]
        for v in rows:
            # Rows point at non-members (row 1 of the grid) verbatim.
            assert list(back._adj[v]) == list(g._adj[v])

    def test_wrapped_node_ids(self):
        g = Graph()
        g.add_edge(("v", 1), ("v", 2))
        g.add_edge(("v", 2), ("copy", ("v", 3), 0, 1))
        assert_exact_roundtrip(g)


class TestFlatPart:
    def test_fresh_part_roundtrip(self):
        g = grid_graph(3, 3)
        part = fresh_part(g, boundary=[(0, 100), (2, 101)], depth=2, part_id=(0, 1))
        back = pickle.loads(pickle.dumps(encode_part(part))).to_part()
        assert back.part_id == part.part_id
        assert back.depth == part.depth
        assert back.boundary == part.boundary
        assert _orders(back.graph) == _orders(part.graph)
        assert _orders(back.rotation.graph) == _orders(part.rotation.graph)
        for v in part.rotation.graph._adj:
            assert back.rotation.order(v) == part.rotation.order(v)

    def test_pipeline_parts_roundtrip(self):
        # Harvest real parts (with stub pseudo-vertices in the rotation
        # graphs) by embedding a maximal planar instance.
        from repro import distributed_planar_embedding

        result = distributed_planar_embedding(random_maximal_planar(24, seed=5))
        assert result.rotation  # sanity: the run produced an embedding


hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    nodes = list(range(n))
    extra = draw(st.lists(st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
                          max_size=30))
    g = Graph(nodes=draw(st.permutations(nodes)))
    for u, v in extra:
        if u != v and v not in g._adj[u]:
            g.add_edge(u, v)
    return g


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_flat_graph_roundtrip_property(g):
    assert_exact_roundtrip(g)


@given(graphs(), st.data())
@settings(max_examples=60, deadline=None)
def test_row_view_roundtrip_property(g, data):
    all_nodes = list(g._adj)
    rows = set(data.draw(st.lists(st.sampled_from(all_nodes), unique=True))) if all_nodes else set()
    flat = pickle.loads(pickle.dumps(FlatGraph.encode(g, rows=rows)))
    back = flat.to_row_graph()
    assert list(back._adj) == [v for v in g._adj if v in rows]
    for v in back._adj:
        assert list(back._adj[v]) == list(g._adj[v])
