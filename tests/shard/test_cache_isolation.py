"""Worker processes must start with cold process-global caches.

The library's pure memo caches (LR structural memos, sort-key cache,
block-order memo) are process-global.  A forked pool worker would
inherit a copy-on-write snapshot of whatever the parent accumulated —
harmless for correctness (the caches are pure) but a reasoning hazard
the shard backend forbids: worker behavior must not depend on parent
history.  The pool initializer (:func:`repro.shard.clear_caches`)
guarantees every worker starts cold; this test forks a worker from a
parent with hot caches and asserts the worker observed empty ones.
"""

import importlib
import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.planar.generators import random_maximal_planar
from repro.shard import clear_caches

# importlib: ``repro.planar`` re-exports a *function* ``lr_planarity``
# that shadows the submodule attribute.
lr_planarity = importlib.import_module("repro.planar.lr_planarity")
graph_mod = importlib.import_module("repro.planar.graph")
interface = importlib.import_module("repro.core.interface")


def _cache_sizes() -> dict:
    return {
        "lr_decide": len(lr_planarity._DECIDE_MEMO),
        "lr_embed": len(lr_planarity._EMBED_MEMO),
        "sort_key": len(graph_mod._SORT_KEY_CACHE),
        "block_order": len(interface._BLOCK_ORDER_MEMO),
    }


def _worker_probe() -> dict:
    """What the pool initializer left behind in this worker process."""
    return _cache_sizes()


def _heat_caches() -> dict:
    from repro import distributed_planar_embedding

    distributed_planar_embedding(random_maximal_planar(30, seed=4))
    sizes = _cache_sizes()
    assert sizes["lr_decide"] > 0 or sizes["lr_embed"] > 0
    assert sizes["sort_key"] > 0
    return sizes


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="cache inheritance only exists under fork",
)
def test_forked_worker_never_observes_parent_caches():
    parent_sizes = _heat_caches()
    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(
        max_workers=1, mp_context=ctx, initializer=clear_caches
    ) as pool:
        worker_sizes = pool.submit(_worker_probe).result()
    assert all(size == 0 for size in worker_sizes.values()), worker_sizes
    # The parent's caches were not harmed by the worker's initializer.
    assert _cache_sizes() == parent_sizes


def test_clear_caches_resets_everything_in_process():
    _heat_caches()
    clear_caches()
    assert all(size == 0 for size in _cache_sizes().values())
