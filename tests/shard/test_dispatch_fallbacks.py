"""Fallback behavior of the shard dispatch layer.

Whatever goes wrong on the worker side — the pool dying, a worker
raising, a stale snapshot failing journal replay — the parent must fall
back to inline recomputation and produce output bit-identical to the
sequential path.  These tests sabotage each layer in turn and hold the
results to the sequential fingerprint.
"""

import json

import pytest

import repro.shard.dispatch as dispatch
from repro import distributed_planar_embedding
from repro.planar.generators import grid_graph, random_outerplanar


@pytest.fixture
def shard_env(monkeypatch):
    monkeypatch.delenv("REPRO_REFERENCE_PATHS", raising=False)
    monkeypatch.setenv("REPRO_SHARD_MIN_SHIP", "4")


def _report(result):
    return json.dumps(result.to_report(), sort_keys=True, default=str)


# The sabotage callables must live at module level: the pool pickles the
# submitted function by reference, and fork-started workers resolve that
# reference against their (inherited) copy of this module.
_ORIGINAL_RUN_UNIT = dispatch.run_unit


def _boom(sub):
    raise RuntimeError("sabotaged worker")


def _corrupt_first_verdict(sub):
    """Run the real worker, then flip the first journaled split verdict."""
    entries = _ORIGINAL_RUN_UNIT(sub)
    for entry in entries:
        if entry.get("splits"):
            copy, coordinator, rerouted, verdict = entry["splits"][0]
            entry["splits"][0] = (copy, coordinator, rerouted, not verdict)
    return entries


def test_worker_exception_falls_back_inline(shard_env, monkeypatch):
    sequential = _report(distributed_planar_embedding(grid_graph(8, 8)))

    # The raising callable propagates through the future, so every
    # shipped subtree must fall back via the pool-error path.
    monkeypatch.setattr(dispatch, "run_unit", _boom)
    result = distributed_planar_embedding(grid_graph(8, 8), shard_workers=2)
    assert _report(result) == sequential
    stats = result.shard_stats
    assert stats["subtrees_shipped"] > 0
    assert stats["fallback_pool_error"] == stats["subtrees_shipped"]
    assert stats["subtrees_adopted"] == 0


def test_replay_mismatch_falls_back_inline(shard_env, monkeypatch):
    # Outerplanar instances journal splits inside shipped subtrees
    # (grids at this size do not), so verdict corruption is observable:
    # replay must diverge, roll back, and recompute inline.
    sequential = _report(distributed_planar_embedding(random_outerplanar(60, seed=3)))

    monkeypatch.setattr(dispatch, "run_unit", _corrupt_first_verdict)
    result = distributed_planar_embedding(
        random_outerplanar(60, seed=3), shard_workers=2
    )
    assert _report(result) == sequential
    stats = result.shard_stats
    assert stats["subtrees_shipped"] > 0
    assert stats["fallback_replay_mismatch"] > 0


def test_sequential_settings_bypass_runtime(shard_env):
    for w in (0, 1):
        result = distributed_planar_embedding(grid_graph(5, 5), shard_workers=w)
        assert result.shard_stats is None


def test_negative_shard_workers_rejected():
    with pytest.raises(ValueError):
        distributed_planar_embedding(grid_graph(3, 3), shard_workers=-1)
