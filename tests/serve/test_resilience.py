"""The serving resilience layer (serve/resilience.py + driver threading):
seeded backoff purity, chaos determinism, retry/respawn/quarantine,
deadlines, load shedding, and typed infrastructure errors."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    ChaosPool,
    PoolSupervisor,
    ResiliencePolicy,
    ResilienceStats,
    ServiceDriver,
    load_jobs,
    retry_delay,
)

FAST = ResiliencePolicy(max_retries=2, backoff_base_s=0.0, backoff_cap_s=0.0)


def _jobs(n, demo=("grid", 3, 3)):
    return load_jobs(
        json.dumps({"id": f"j{i}", "demo": list(demo)}) for i in range(n)
    )


class TestRetryDelay:
    @settings(max_examples=200, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        job_id=st.text(max_size=40),
        attempt=st.integers(min_value=0, max_value=12),
    )
    def test_pure_function_of_seed_job_attempt(self, seed, job_id, attempt):
        # The FaultPlan replayability contract, one level up: the whole
        # backoff schedule of a chaos run is reproducible from its seed.
        first = retry_delay(seed, job_id, attempt)
        assert first == retry_delay(seed, job_id, attempt)
        if attempt < 1:
            assert first == 0.0
        else:
            envelope = min(2.0, 0.05 * 2.0 ** (attempt - 1))
            assert 0.5 * envelope <= first < envelope

    def test_distinct_keys_usually_differ(self):
        draws = {retry_delay(0, f"j{i}", a) for i in range(20) for a in (1, 2, 3)}
        assert len(draws) > 50  # jitter actually varies per (job, attempt)

    def test_policy_delay_uses_policy_constants(self):
        policy = ResiliencePolicy(seed=7, backoff_base_s=0.2, backoff_cap_s=0.3)
        assert policy.delay("x", 1) == retry_delay(7, "x", 1, 0.2, 0.3)
        assert policy.delay("x", 5) <= 0.3

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(deadline_s=0)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(queue_limit=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(quarantine_after=0)


class TestChaosPool:
    def test_decisions_are_deterministic(self):
        plan = ChaosPool(seed=11, kill_rate=0.3, latency_rate=0.2, latency_s=0.05)
        ids = [f"j{i}" for i in range(30)]
        assert plan.decisions(ids) == plan.decisions(ids)
        assert ChaosPool.from_dict(plan.to_dict()) == plan

    def test_explicit_victims(self):
        plan = ChaosPool(kill_jobs=("poison",), kill_attempts=2,
                         slow_jobs=("slow",), latency_s=0.5)
        assert plan.kills("poison", 0) and plan.kills("poison", 1)
        assert not plan.kills("poison", 2)
        assert not plan.kills("other", 0)
        assert plan.latency("slow", 3) == 0.5
        assert plan.latency("other", 0) == 0.0

    def test_parse_round_trip(self):
        plan = ChaosPool.parse("kill=0.2,latency=0.3:0.05,seed=7")
        assert plan.kill_rate == 0.2
        assert plan.latency_rate == 0.3
        assert plan.latency_s == 0.05
        assert plan.seed == 7
        with pytest.raises(ValueError):
            ChaosPool.parse("explode=1")
        with pytest.raises(ValueError):
            ChaosPool(kill_rate=1.5)


class TestInlineResilience:
    """workers=0: ChaosKilledError drives the same retry/quarantine
    ladder as a real pool death, without forking."""

    def test_kill_then_retry_succeeds(self):
        driver = ServiceDriver(
            workers=0, resilience=FAST,
            chaos=ChaosPool(kill_jobs=("j1",), kill_attempts=1),
        )
        outcomes = driver.run(_jobs(3))
        assert [o.outcome for o in outcomes] == ["ok", "ok", "ok"]
        assert driver.rstats.pool_deaths == 1
        assert driver.rstats.retries == 1
        assert driver.rstats.requeued == 1

    def test_poison_job_is_quarantined_not_batch(self):
        driver = ServiceDriver(
            workers=0, resilience=FAST,
            chaos=ChaosPool(kill_jobs=("j1",), kill_attempts=99),
        )
        outcomes = driver.run(_jobs(3))
        assert [o.outcome for o in outcomes] == ["ok", "quarantined", "ok"]
        assert outcomes[1].record["quarantined"]["pool_deaths"] == 3
        assert driver.exit_code(outcomes) == 6
        assert driver.rstats.quarantined == 1

    def test_quarantine_after_cuts_the_retry_budget(self):
        driver = ServiceDriver(
            workers=0,
            resilience=ResiliencePolicy(
                max_retries=5, backoff_base_s=0.0, backoff_cap_s=0.0,
                quarantine_after=2,
            ),
            chaos=ChaosPool(kill_jobs=("j0",), kill_attempts=99),
        )
        outcomes = driver.run(_jobs(1))
        assert outcomes[0].outcome == "quarantined"
        assert outcomes[0].record["quarantined"]["pool_deaths"] == 2

    def test_ok_verdicts_bit_identical_to_fault_free(self):
        plain = ServiceDriver(workers=0).run(_jobs(3))
        chaotic = ServiceDriver(
            workers=0, resilience=FAST,
            chaos=ChaosPool(kill_jobs=("j0", "j2"), kill_attempts=1),
        ).run(_jobs(3))
        for a, b in zip(plain, chaotic):
            assert b.outcome == "ok"
            assert json.dumps(a.record, sort_keys=True) == json.dumps(
                b.record, sort_keys=True
            )

    def test_shed_beyond_queue_limit(self):
        driver = ServiceDriver(
            workers=0, resilience=ResiliencePolicy(queue_limit=2)
        )
        outcomes = driver.run(_jobs(5))
        assert [o.outcome for o in outcomes] == ["ok", "ok", "shed", "shed", "shed"]
        assert [o.cache for o in outcomes[2:]] == ["shed"] * 3
        assert driver.rstats.shed == 3
        assert driver.exit_code(outcomes) == 7
        report = driver.aggregate(outcomes, 1.0)
        assert report["outcomes"]["shed"] == 3
        assert report["resilience"]["shed"] == 3

    def test_infrastructure_error_yields_typed_outcomes(self, monkeypatch):
        # Satellite: a driver-side crash must become per-job typed
        # `error` records, never an exception on the result futures.
        import repro.serve.driver as driver_mod

        def boom(graph):
            raise RuntimeError("canonicalizer exploded")

        from repro.serve import ResultCache

        monkeypatch.setattr(driver_mod, "canonical_form", boom)
        driver = ServiceDriver(workers=0, cache=ResultCache())
        outcomes = driver.run(_jobs(3))
        assert [o.outcome for o in outcomes] == ["error"] * 3
        for o in outcomes:
            assert o.record["error"]["where"] == "driver"
            assert "exploded" in o.record["error"]["message"]
        assert driver.exit_code(outcomes) == 3


class TestPoolResilience:
    """Real ProcessPoolExecutor workers killed by SIGKILL."""

    def test_pool_death_respawn_and_retry(self):
        driver = ServiceDriver(
            workers=1, resilience=FAST,
            chaos=ChaosPool(kill_jobs=("j1",), kill_attempts=1),
        )
        outcomes = driver.run(_jobs(3))
        assert [o.outcome for o in outcomes] == ["ok", "ok", "ok"]
        assert driver.rstats.pool_deaths >= 1
        assert driver.rstats.respawns >= 1

    def test_pool_poison_quarantine(self):
        driver = ServiceDriver(
            workers=1, resilience=FAST,
            chaos=ChaosPool(kill_jobs=("j0",), kill_attempts=99),
        )
        outcomes = driver.run(_jobs(2))
        assert outcomes[0].outcome == "quarantined"
        assert outcomes[1].outcome == "ok"

    def test_deadline_timeout_is_typed(self):
        # The slow job is LAST: an abandoned computation occupies the
        # single worker slot, so jobs queued behind it would also burn
        # deadline on queue wait — ordering keeps the assertion exact.
        driver = ServiceDriver(
            workers=1,
            resilience=ResiliencePolicy(
                deadline_s=0.5, max_retries=1,
                backoff_base_s=0.0, backoff_cap_s=0.0,
            ),
            chaos=ChaosPool(slow_jobs=("j2",), latency_s=3.0),
        )
        outcomes = driver.run(_jobs(3))
        assert [o.outcome for o in outcomes] == ["ok", "ok", "timeout"]
        assert outcomes[2].record["timeout"]["attempts"] == 2
        assert driver.rstats.timeouts == 2
        assert driver.exit_code(outcomes) == 5

    def test_per_job_deadline_overrides_driver_default(self):
        jobs = load_jobs([
            json.dumps({"id": "j0", "demo": ["grid", 3, 3]}),
            json.dumps({
                "id": "j1", "demo": ["grid", 3, 3],
                "config": {"deadline_s": 30},
            }),
        ])
        driver = ServiceDriver(
            workers=1,
            resilience=ResiliencePolicy(
                deadline_s=0.4, max_retries=0,
            ),
            chaos=ChaosPool(slow_jobs=("j1",), latency_s=1.0),
        )
        outcomes = driver.run(jobs)
        # j1 sleeps past the driver default but under its own budget.
        assert [o.outcome for o in outcomes] == ["ok", "ok"]


class TestSupervisor:
    def test_generation_gated_heal(self):
        import asyncio

        stats = ResilienceStats()
        sup = PoolSupervisor(1, stats)

        async def race():
            # Two consumers observed the same death: one respawn only.
            first = await sup.heal(0)
            second = await sup.heal(0)
            return first, second

        try:
            first, second = asyncio.run(race())
            assert (first, second) == (True, False)
            assert sup.generation == 1
            assert stats.respawns == 1
        finally:
            sup.shutdown()

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            PoolSupervisor(0)


class TestAggregateSurfacing:
    def test_shard_clamp_in_report(self):
        import os

        cores = os.cpu_count() or 1
        with pytest.warns(RuntimeWarning):
            driver = ServiceDriver(workers=cores, shard_workers=cores + 1)
        report = driver.aggregate([], 1.0)
        clamp = report["shard_clamp"]
        assert clamp is not None
        assert clamp["requested"] == cores + 1
        assert clamp["workers"] == cores
        assert clamp["cores"] == cores

    def test_fault_stats_summed_across_heal_jobs(self):
        jobs = load_jobs(
            json.dumps({
                "id": f"h{i}", "demo": ["grid", 3, 3], "kind": "heal",
                "config": {"faults": "drop=0.2", "fault_seed": i},
            })
            for i in range(2)
        )
        driver = ServiceDriver(workers=0, cache=None)
        outcomes = driver.run(jobs)
        report = driver.aggregate(outcomes, 1.0)
        assert report["fault_stats"] is not None
        assert report["fault_stats"]["dropped"] > 0
        per_job = sum(
            o.record["report"]["fault_stats"]["dropped"] for o in outcomes
        )
        assert report["fault_stats"]["dropped"] == per_job

    def test_no_fault_stats_is_null(self):
        driver = ServiceDriver(workers=0)
        outcomes = driver.run(_jobs(1))
        assert driver.aggregate(outcomes, 1.0)["fault_stats"] is None
