"""Property tests for the whole-graph canonical hash (serve/canon.py).

The serving cache's contract rests on three hash properties, each
pinned here: **invariance** (equal across arbitrary vertex relabelings
of one topology — hypothesis-driven), **discrimination** (distinct
across the seeded demo families at equal vertex counts), and
**process stability** (the digest never touches Python's randomized
``hash()``, so it is byte-equal across interpreters with different
``PYTHONHASHSEED`` — what persistent JSONL cache stores rely on).
"""

import random
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planar.generators import (
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    random_tree,
    triangulated_grid,
)
from repro.planar.graph import Graph
from repro.serve import canonical_form, canonical_hash, exact_fingerprint

FAMILIES = {
    "grid": lambda n, seed: grid_graph(max(2, round(n ** 0.5)), max(2, round(n ** 0.5))),
    "trigrid": lambda n, seed: triangulated_grid(max(2, round(n ** 0.5)), max(2, round(n ** 0.5))),
    "tree": random_tree,
    "outerplanar": random_outerplanar,
    "maximal": lambda n, seed: random_maximal_planar(max(4, n), seed=seed),
}


def relabel(graph: Graph, perm_seed: int) -> Graph:
    """The same topology under a random bijective renaming, with edge
    insertion order shuffled too — nothing but structure survives."""
    nodes = graph.nodes()
    shuffled = list(nodes)
    rng = random.Random(perm_seed)
    rng.shuffle(shuffled)
    mapping = dict(zip(nodes, shuffled))
    edges = [(mapping[u], mapping[v]) for u, v in graph.edges()]
    rng.shuffle(edges)
    return Graph(edges=edges)


@given(
    family=st.sampled_from(sorted(FAMILIES)),
    n=st.integers(min_value=5, max_value=40),
    seed=st.integers(min_value=0, max_value=10**6),
    perm_seed=st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=60, deadline=None)
def test_hash_invariant_under_relabeling(family, n, seed, perm_seed):
    graph = FAMILIES[family](n, seed)
    assert canonical_hash(relabel(graph, perm_seed)) == canonical_hash(graph)


@given(
    n=st.integers(min_value=5, max_value=30),
    seed=st.integers(min_value=0, max_value=10**6),
    perm_seed=st.integers(min_value=1, max_value=10**6),
)
@settings(max_examples=40, deadline=None)
def test_discrete_labels_agree_across_relabelings(n, seed, perm_seed):
    """When refinement is discrete, the canonical ranks are a labeling:
    mapping each graph's rank-i vertex to the other's rank-i vertex is
    an isomorphism (here: checked edge-for-edge)."""
    graph = random_maximal_planar(max(4, n), seed=seed)
    form = canonical_form(graph)
    if form.labels is None:
        return  # symmetric instance: nothing to check
    other = relabel(graph, perm_seed)
    other_form = canonical_form(other)
    assert other_form.hash == form.hash
    assert other_form.labels is not None
    inverse = {rank: v for v, rank in other_form.labels.items()}
    mapping = {v: inverse[rank] for v, rank in form.labels.items()}
    mapped = {frozenset((mapping[u], mapping[v])) for u, v in graph.edges()}
    assert mapped == {frozenset(e) for e in other.edges()}


def test_distinct_across_demo_families():
    """The five seeded demo families at 25 vertices all get different
    hashes — the cache must never cross-serve them."""
    graphs = {
        "grid": grid_graph(5, 5),
        "trigrid": triangulated_grid(5, 5),
        "maximal": random_maximal_planar(25, seed=1),
        "outerplanar": random_outerplanar(25, seed=1),
        "tree": random_tree(25, seed=1),
    }
    hashes = {name: canonical_hash(g) for name, g in graphs.items()}
    assert len(set(hashes.values())) == len(hashes), hashes


def test_distinct_across_sizes_and_seeds():
    assert canonical_hash(grid_graph(4, 4)) != canonical_hash(grid_graph(4, 5))
    assert canonical_hash(random_maximal_planar(20, seed=1)) != canonical_hash(
        random_maximal_planar(20, seed=2)
    )


def test_hash_stable_across_processes():
    """blake2b over deterministic bytes: a subprocess with a different
    PYTHONHASHSEED must reproduce the digest byte-for-byte."""
    reference = canonical_hash(random_maximal_planar(24, seed=3))
    src = Path(__file__).resolve().parent.parent.parent / "src"
    program = (
        "import sys; sys.path.insert(0, sys.argv[1])\n"
        "from repro.planar.generators import random_maximal_planar\n"
        "from repro.serve import canonical_hash\n"
        "print(canonical_hash(random_maximal_planar(24, seed=3)))\n"
    )
    for hashseed in ("0", "12345"):
        out = subprocess.run(
            [sys.executable, "-c", program, str(src)],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"},
            check=True,
        )
        assert out.stdout.strip() == reference


def test_symmetric_families_are_not_discrete():
    """Graphs with automorphisms (grids mirror, same-parent leaves swap)
    must refuse a canonical labeling — remap hits would be unsound."""
    assert canonical_form(grid_graph(5, 5)).labels is None
    assert canonical_form(Graph(edges=[(0, 1), (0, 2)])).labels is None


def test_asymmetric_tree_is_discrete():
    # Three arms of distinct lengths 1, 2, 3 off one center: the
    # automorphism group is trivial and 1-WL is complete on trees.
    g = Graph(edges=[(0, 1), (0, 2), (2, 3), (0, 4), (4, 5), (5, 6)])
    form = canonical_form(g)
    assert form.labels is not None
    assert sorted(form.labels.values()) == list(range(7))


def test_exact_fingerprint_is_order_sensitive():
    """Insertion order is observable in the output rotation, so the
    exact tier must distinguish differently-ordered submissions of one
    edge set (they still share a canonical hash)."""
    a = Graph(edges=[(0, 1), (1, 2), (2, 0)])
    b = Graph(edges=[(2, 0), (1, 2), (0, 1)])
    assert exact_fingerprint(a) != exact_fingerprint(b)
    assert canonical_hash(a) == canonical_hash(b)
    c = Graph(edges=[(0, 1), (1, 2), (2, 0)])
    assert exact_fingerprint(c) == exact_fingerprint(a)


def test_single_vertex_and_small_graphs():
    g1 = Graph(nodes=[7])
    g2 = Graph(nodes=["x"])
    assert canonical_hash(g1) == canonical_hash(g2)
    assert canonical_form(g1).labels == {7: 0}
    edge = Graph(edges=[(0, 1)])
    assert canonical_hash(edge) != canonical_hash(g1)
