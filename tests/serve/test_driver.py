"""The async batch driver (serve/driver.py): typed outcomes, ordering,
single-flight coalescing, and pool behavior."""

import json

import pytest

from repro.planar.generators import grid_graph
from repro.serve import (
    Job,
    ResultCache,
    ServiceDriver,
    execute_job,
    load_jobs,
    parse_job,
)

K5_EDGES = [[u, v] for u in range(5) for v in range(u + 1, 5)]


def _jobs(objs):
    return load_jobs(json.dumps(o) for o in objs)


class TestExecuteJob:
    def test_embed_ok(self):
        record = execute_job(parse_job({"demo": ["grid", 3, 3]}).payload())
        assert record["outcome"] == "ok"
        assert record["report"]["planar"] is True
        assert len(record["rotation"]) == 9
        # normalized: a JSON round-trip is the identity
        assert json.loads(json.dumps(record)) == record

    def test_certify_ok(self):
        record = execute_job(
            parse_job({"demo": ["grid", 3, 3], "kind": "certify"}).payload()
        )
        assert record["outcome"] == "ok"
        assert record["report"]["certification"]["accepted"] is True

    def test_non_planar(self):
        record = execute_job(parse_job({"edges": K5_EDGES}).payload())
        assert record["outcome"] == "non-planar"
        assert record["witness"]["kind"] == "K5"
        assert "rotation" not in record

    def test_heal_with_faults(self):
        record = execute_job(
            parse_job({
                "demo": ["grid", 3, 3],
                "kind": "heal",
                "config": {"faults": "drop=0.05", "fault_seed": 3},
            }).payload()
        )
        assert record["outcome"] == "ok"
        assert record["report"]["certification"]["accepted"] is True

    def test_unknown_kind_is_typed_error(self):
        record = execute_job({"nodes": [0, 1], "edges": [[0, 1]], "kind": "dance"})
        assert record["outcome"] == "error"
        assert record["error"]["type"] == "JobSpecError"

    def test_internal_failure_is_typed_error(self):
        # A disconnected payload trips the driver's own validation; the
        # worker must fold it into an error outcome, never raise.
        record = execute_job({"nodes": [0, 1, 2, 3], "edges": [[0, 1], [2, 3]]})
        assert record["outcome"] == "error"
        assert record["error"]["type"] == "ValueError"


class TestServiceDriver:
    def test_results_in_submission_order(self):
        jobs = _jobs([
            {"demo": ["grid", 4, 4], "id": "big"},
            {"demo": ["cycle", 5], "id": "small"},
            {"edges": K5_EDGES, "id": "k5"},
        ])
        outcomes = ServiceDriver(workers=2, cache=ResultCache()).run(jobs)
        assert [o.id for o in outcomes] == ["big", "small", "k5"]
        assert [o.outcome for o in outcomes] == ["ok", "ok", "non-planar"]

    def test_streaming_hook_order(self):
        jobs = _jobs([{"demo": ["grid", 3, 3], "id": f"j{i}"} for i in range(4)])
        seen = []
        ServiceDriver(workers=2, cache=ResultCache()).run(
            jobs, on_result=lambda o: seen.append(o.id)
        )
        assert seen == ["j0", "j1", "j2", "j3"]

    def test_repeated_topology_computes_once(self):
        """The acceptance workload: R identical topologies, exactly one
        computation regardless of worker count."""
        jobs = _jobs([{"demo": ["grid", 4, 4]} for _ in range(6)])
        for workers in (0, 2):
            cache = ResultCache()
            outcomes = ServiceDriver(workers=workers, cache=cache).run(jobs)
            assert cache.stats.misses == 1, f"workers={workers}"
            assert cache.stats.hits == 5, f"workers={workers}"
            records = {json.dumps(o.record, sort_keys=True) for o in outcomes}
            assert len(records) == 1  # all verdicts bit-identical

    def test_non_planar_verdicts_are_cached(self):
        cache = ResultCache()
        jobs = _jobs([{"edges": K5_EDGES}, {"edges": K5_EDGES}])
        outcomes = ServiceDriver(workers=0, cache=cache).run(jobs)
        assert [o.outcome for o in outcomes] == ["non-planar"] * 2
        assert cache.stats.misses == 1 and cache.stats.hits_exact == 1

    def test_error_outcomes_not_cached(self):
        cache = ResultCache()
        jobs = _jobs([
            {"edges": [[0, 1]], "kind": "heal",
             "config": {"faults": "drop=1.0", "max_retries": 0}},
        ])
        ServiceDriver(workers=0, cache=cache).run(jobs)
        assert cache.stats.stores == 0

    def test_no_cache_disables_dedup(self):
        jobs = _jobs([{"demo": ["grid", 3, 3]} for _ in range(3)])
        outcomes = ServiceDriver(workers=0, cache=None).run(jobs)
        assert all(o.cache == "off" for o in outcomes)

    def test_exit_code_is_worst_job(self):
        jobs = _jobs([
            {"demo": ["grid", 3, 3]},
            {"edges": K5_EDGES},
            {"demo": ["grid", 3, 3], "kind": "heal",
             "config": {"faults": "crash=1:1000", "fault_seed": 1, "max_retries": 0}},
        ])
        driver = ServiceDriver(workers=0, cache=ResultCache())
        outcomes = driver.run(jobs)
        codes = {o.id: o.exit_code for o in outcomes}
        assert codes["job-0"] == 0 and codes["job-1"] == 1
        assert driver.exit_code(outcomes) == max(codes.values())
        report = driver.aggregate(outcomes, 1.0)
        assert report["exit_code"] == driver.exit_code(outcomes)
        assert report["jobs"] == 3

    def test_aggregate_latency_percentiles(self):
        jobs = _jobs([{"demo": ["grid", 3, 3]} for _ in range(4)])
        driver = ServiceDriver(workers=0, cache=ResultCache())
        outcomes = driver.run(jobs)
        report = driver.aggregate(outcomes, 0.5)
        assert 0 < report["latency_s"]["p50"] <= report["latency_s"]["p99"]
        assert report["latency_s"]["p99"] <= report["latency_s"]["max"]
        assert report["cache"]["hits"] == 3

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            ServiceDriver(workers=-1)

    def test_direct_job_objects(self):
        job = Job(index=0, id="direct", kind="embed", graph=grid_graph(3, 3),
                  config={"bandwidth": 1})
        outcomes = ServiceDriver(workers=0).run([job])
        assert outcomes[0].outcome == "ok"
        assert outcomes[0].cache == "off"

    def test_verdict_wire_shape(self):
        jobs = _jobs([{"demo": ["grid", 3, 3], "id": "w"}])
        outcome = ServiceDriver(workers=0, cache=ResultCache()).run(jobs)[0]
        obj = outcome.to_json_obj()
        assert obj["type"] == "job-verdict"
        assert obj["id"] == "w" and obj["outcome"] == "ok" and obj["cache"] == "miss"
        assert "outcome" not in obj["verdict"]
        json.dumps(obj)  # wire-ready


class TestChurnExecution:
    def test_churn_ok(self):
        record = execute_job(
            parse_job(
                {"demo": ["grid", 4, 4], "kind": "churn",
                 "config": {"churn_ops": 3, "incremental": True}}
            ).payload()
        )
        assert record["outcome"] == "ok"
        churn = record["report"]["churn"]
        assert churn["accepted"] is True and churn["ops"] == 3
        assert record["report"]["certification"]["accepted"] is True

    def test_churn_is_deterministic_and_exact_cached(self):
        spec = {"demo": ["grid", 4, 4], "kind": "churn",
                "config": {"churn_ops": 3, "churn_seed": 2, "incremental": True}}
        a = execute_job(parse_job(spec).payload())
        b = execute_job(parse_job(spec).payload())
        assert a == b
        outcomes = ServiceDriver(workers=0, cache=ResultCache(capacity=8)).run(
            [parse_job(spec, 0), parse_job(spec, 1)]
        )
        assert [o.cache for o in outcomes] == ["miss", "exact"]
        assert outcomes[0].record == outcomes[1].record

    def test_churn_never_hits_canonical_tier(self):
        """A relabeled copy of the same topology must recompute: the op
        plan is repr-ordered, not isomorphism-invariant."""
        base = {"kind": "churn", "config": {"churn_ops": 2}}
        job_a = parse_job({**base, "edges": [[0, 1], [1, 2], [2, 0], [2, 3], [3, 0]]}, 0)
        job_b = parse_job({**base, "edges": [[7, 8], [8, 9], [9, 7], [9, 5], [5, 7]]}, 1)
        outcomes = ServiceDriver(workers=0, cache=ResultCache(capacity=8)).run(
            [job_a, job_b]
        )
        assert [o.cache for o in outcomes] == ["miss", "miss"]
