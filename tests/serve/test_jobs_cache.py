"""The job model (serve/jobs.py) and result cache (serve/cache.py)."""

import json

import pytest

from repro.planar.generators import grid_graph, random_maximal_planar
from repro.serve import (
    ResultCache,
    canonical_form,
    config_key,
    exact_fingerprint,
    load_jobs,
    parse_job,
)
from repro.serve.jobs import JobSpecError


class TestJobParsing:
    def test_edges_job(self):
        job = parse_job({"edges": [[0, 1], [1, 2], [2, 0]], "id": "tri"}, 4)
        assert job.id == "tri"
        assert job.kind == "embed"
        assert job.index == 4
        assert job.graph.num_nodes == 3
        assert job.config == {"bandwidth": 1}

    def test_demo_job_expanded_at_parse_time(self):
        job = parse_job({"demo": ["grid", 3, 3]})
        assert job.graph.num_nodes == 9
        assert job.payload()["edges"] == [list(e) for e in grid_graph(3, 3).edges()]

    def test_demo_seed_threaded(self):
        a = parse_job({"demo": ["maximal", 12], "seed": 1})
        b = parse_job({"demo": ["maximal", 12], "seed": 2})
        assert sorted(map(repr, a.graph.edges())) != sorted(map(repr, b.graph.edges()))

    def test_heal_config_defaults(self):
        job = parse_job({"demo": ["grid", 3, 3], "kind": "heal"})
        assert job.config == {
            "bandwidth": 1, "faults": None, "fault_seed": 0, "max_retries": 3,
        }

    @pytest.mark.parametrize("bad", [
        {},  # no graph source
        {"edges": [[0, 1]], "demo": ["grid", 2, 2]},  # both sources
        {"edges": [[0, 1]], "kind": "dance"},  # unknown kind
        {"edges": [[0, 1]], "bogus": 1},  # unknown field
        {"edges": [[0, 1]], "config": {"bogus": 1}},  # unknown config key
        {"edges": [[0, 1]], "config": {"faults": "drop=0.1"}},  # heal-only key on embed
        {"edges": [[0, 0]]},  # self-loop
        {"edges": [[0, 1], [2, 3]]},  # disconnected
        {"edges": [[0, 1.5]]},  # non-int/str node
        {"edges": "0 1"},  # not a list
        {"demo": ["nosuch", 3]},  # unknown family
        {"edges": [[0, 1]], "config": {"bandwidth": 0}},  # bandwidth < 1
        {"edges": [[0, 1]], "id": 7},  # non-string id
    ])
    def test_rejects(self, bad):
        with pytest.raises(JobSpecError):
            parse_job(bad)

    def test_load_jobs_skips_blanks_and_comments(self):
        lines = [
            "# a comment",
            "",
            json.dumps({"edges": [[0, 1]]}),
            json.dumps({"demo": ["cycle", 5]}),
        ]
        jobs = load_jobs(lines)
        assert [j.index for j in jobs] == [0, 1]
        assert [j.id for j in jobs] == ["job-0", "job-1"]

    def test_load_jobs_reports_line_number(self):
        with pytest.raises(JobSpecError, match="line 2"):
            load_jobs([json.dumps({"edges": [[0, 1]]}), "{not json"])

    def test_config_key_is_order_insensitive(self):
        assert config_key({"a": 1, "b": 2}) == config_key({"b": 2, "a": 1})


def _entry(graph, kind="embed", config=None):
    form = canonical_form(graph)
    key = (form.hash, kind, config_key(config or {"bandwidth": 1}))
    return key, exact_fingerprint(graph), form


class TestResultCache:
    def test_exact_hit_round_trip(self):
        cache = ResultCache(capacity=4)
        g = grid_graph(3, 3)
        key, exact, form = _entry(g)
        verdict = {"outcome": "ok", "report": {"rounds": 5}}
        cache.store(key, exact, verdict)
        hit = cache.lookup(key, exact, form, g)
        assert hit is not None and hit.tier == "exact"
        assert hit.verdict == verdict
        assert cache.stats.hits_exact == 1

    def test_miss_on_different_config(self):
        cache = ResultCache()
        g = grid_graph(3, 3)
        key, exact, form = _entry(g)
        cache.store(key, exact, {"outcome": "ok"})
        other_key = (key[0], key[1], config_key({"bandwidth": 2}))
        assert cache.lookup(other_key, exact, form, g) is None

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        graphs = [grid_graph(2, k) for k in (2, 3, 4)]
        keys = [_entry(g) for g in graphs]
        cache.store(*keys[0][:2], {"outcome": "ok", "which": 0})
        cache.store(*keys[1][:2], {"outcome": "ok", "which": 1})
        # Touch the first entry so the second is now least-recent.
        assert cache.lookup(keys[0][0], keys[0][1], keys[0][2], graphs[0]) is not None
        cache.store(*keys[2][:2], {"outcome": "ok", "which": 2})
        assert cache.stats.evictions == 1
        assert cache.lookup(keys[1][0], keys[1][1], keys[1][2], graphs[1]) is None
        assert cache.lookup(keys[0][0], keys[0][1], keys[0][2], graphs[0]) is not None

    def test_persistence_round_trip(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        g = random_maximal_planar(16, seed=1)
        key, exact, form = _entry(g)
        first = ResultCache(capacity=8, path=path)
        first.store(key, exact, {"outcome": "ok", "report": {"rounds": 9}})

        warm = ResultCache(capacity=8, path=path)
        assert warm.stats.persisted_loads == 1
        assert warm.stats.stores == 0  # replay is not fresh work
        hit = warm.lookup(key, exact, form, g)
        assert hit is not None and hit.verdict["report"]["rounds"] == 9

    def test_corrupt_persisted_lines_are_skipped(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        good = json.dumps({
            "v": 1, "key": ["h", "embed", "{}"], "exact": "fp",
            "verdict": {"outcome": "ok"}, "canon_rot": None,
        })
        path.write_text("{broken\n" + json.dumps({"v": 99}) + "\n" + good + "\n")
        cache = ResultCache(path=str(path))
        assert cache.stats.persisted_loads == 1
        assert cache.stats.persisted_skipped == 2
        assert len(cache) == 1

    def test_duplicate_store_is_idempotent(self):
        cache = ResultCache()
        g = grid_graph(3, 3)
        key, exact, _form = _entry(g)
        cache.store(key, exact, {"outcome": "ok"})
        cache.store(key, exact, {"outcome": "ok"})
        assert cache.stats.stores == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestChurnJobs:
    def test_churn_config_defaults(self):
        job = parse_job({"demo": ["grid", 3, 3], "kind": "churn"})
        assert job.config == {
            "bandwidth": 1, "churn_ops": 8, "churn_seed": 0, "incremental": True,
        }

    @pytest.mark.parametrize("bad", [
        {"demo": ["grid", 3, 3], "kind": "churn", "config": {"churn_ops": 0}},
        {"demo": ["grid", 3, 3], "kind": "churn", "config": {"churn_seed": "x"}},
        {"demo": ["grid", 3, 3], "kind": "churn", "config": {"incremental": 1}},
        {"demo": ["grid", 3, 3], "config": {"churn_ops": 4}},  # churn-only key on embed
        {"demo": ["grid", 3, 3], "kind": "churn", "config": {"faults": "drop=0.1"}},
    ])
    def test_churn_rejects(self, bad):
        with pytest.raises(JobSpecError):
            parse_job(bad)
