"""Differential suite for the serving subsystem.

Three contracts, each proved by running the *same* workload two ways
and comparing byte-for-byte:

1. **Warm == cold.** A warm cache hit (exact tier) returns a verdict
   whose ``json.dumps(..., sort_keys=True)`` bytes equal the cold run's
   — reports and rotations included.
2. **Pool == sequential.** A 2-worker process pool produces the same
   outcomes, records, and cache-counter totals as the inline
   sequential reference driver (``workers=0``), job for job.
3. **The batch acceptance workload.** ``repro batch`` on the same
   topology submitted 8 times performs exactly one embedding
   computation; the other 7 are surfaced warm hits with bit-identical
   verdicts.

Plus the canonical-tier differential: a *relabeled* copy of a discrete
graph is served from cache via isomorphism remap, and the remapped
rotation independently passes the embedding referee on the new labels.
"""

import json

from repro.__main__ import main
from repro.planar import verify_planar_embedding
from repro.planar.generators import random_maximal_planar
from repro.planar.graph import Graph
from repro.serve import ResultCache, ServiceDriver, load_jobs


def _jobs(objs):
    return load_jobs(json.dumps(o) for o in objs)


def _bytes(record):
    return json.dumps(record, sort_keys=True)


class TestWarmEqualsCold:
    def test_exact_hit_bit_identical_across_driver_instances(self):
        """Cold run in one driver, warm hit in a second sharing the
        cache: same bytes, report and rotation included."""
        cache = ResultCache()
        spec = [{"demo": ["trigrid", 4, 4], "kind": "certify"}]
        cold = ServiceDriver(workers=0, cache=cache).run(_jobs(spec))[0]
        warm = ServiceDriver(workers=0, cache=cache).run(_jobs(spec))[0]
        assert cold.cache == "miss" and warm.cache == "exact"
        assert _bytes(warm.record) == _bytes(cold.record)
        assert warm.record["rotation"] == cold.record["rotation"]
        assert warm.record["report"] == cold.record["report"]

    def test_warm_from_persistent_store(self, tmp_path):
        """A fresh process-equivalent (new cache object warm-started
        from the JSONL store) serves the same bytes."""
        path = str(tmp_path / "store.jsonl")
        spec = [{"demo": ["grid", 5, 5]}]
        cold_cache = ResultCache(path=path)
        cold = ServiceDriver(workers=0, cache=cold_cache).run(_jobs(spec))[0]

        warm_cache = ResultCache(path=path)
        assert warm_cache.stats.persisted_loads == 1
        warm = ServiceDriver(workers=0, cache=warm_cache).run(_jobs(spec))[0]
        assert warm.cache == "exact"
        assert _bytes(warm.record) == _bytes(cold.record)

    def test_canonical_remap_hit_verifies_on_new_labels(self):
        """A relabeled isomorphic copy of a discrete graph is served
        from cache (canonical tier); its remapped rotation must be a
        genuine planar embedding of the *relabeled* graph."""
        base = random_maximal_planar(32, seed=5)
        nodes = base.nodes()
        mapping = {v: f"x{v}" for v in nodes}
        relabeled = Graph(edges=[(mapping[u], mapping[v]) for u, v in base.edges()])

        cache = ResultCache()
        driver = ServiceDriver(workers=0, cache=cache)
        jobs = _jobs([{"edges": [list(e) for e in base.edges()]}])
        cold = driver.run(jobs)[0]
        assert cold.cache == "miss" and cold.outcome == "ok"

        relabeled_jobs = _jobs(
            [{"edges": [[u, v] for u, v in relabeled.edges()]}]
        )
        warm = driver.run(relabeled_jobs)[0]
        assert warm.cache == "canonical"
        assert warm.record["remapped"] is True
        assert cache.stats.hits_canonical == 1
        # Verdict rotation keys are repr() strings; the relabeled node
        # IDs are strings, so repr adds quotes.
        by_repr = {repr(v): v for v in relabeled.nodes()}
        rotation = {
            by_repr[rv]: [by_repr[ru] for ru in order]
            for rv, order in warm.record["rotation"].items()
        }
        verify_planar_embedding(relabeled, rotation)
        # The ledger fields describe the original isomorphic run.
        assert warm.record["report"] == cold.record["report"]


class TestPoolMatchesSequential:
    WORKLOAD = [
        {"demo": ["grid", 4, 4], "id": "g"},
        {"demo": ["trigrid", 3, 3], "id": "t"},
        {"edges": [[u, v] for u in range(5) for v in range(u + 1, 5)], "id": "k5"},
        {"demo": ["grid", 4, 4], "id": "g-again"},
        {"demo": ["maximal", 20], "seed": 2, "id": "m", "kind": "certify"},
        {"demo": ["outerplanar", 12], "seed": 1, "id": "o"},
        {"demo": ["grid", 4, 4], "id": "g-third"},
    ]

    def _run(self, workers):
        cache = ResultCache()
        driver = ServiceDriver(workers=workers, cache=cache)
        outcomes = driver.run(_jobs(self.WORKLOAD))
        return outcomes, cache, driver

    def test_two_worker_pool_matches_inline_driver_job_for_job(self):
        seq_outcomes, seq_cache, seq_driver = self._run(0)
        pool_outcomes, pool_cache, pool_driver = self._run(2)

        assert [o.id for o in pool_outcomes] == [o.id for o in seq_outcomes]
        assert [o.outcome for o in pool_outcomes] == [o.outcome for o in seq_outcomes]
        for seq, pool in zip(seq_outcomes, pool_outcomes):
            assert _bytes(pool.record) == _bytes(seq.record), seq.id
        # Same number of actual computations; duplicates resolve as
        # exact hits sequentially and exact-or-coalesced under a pool.
        assert pool_cache.stats.misses == seq_cache.stats.misses
        assert pool_cache.stats.hits == seq_cache.stats.hits
        assert pool_driver.exit_code(pool_outcomes) == seq_driver.exit_code(seq_outcomes)

    def test_pool_without_cache_still_matches(self):
        jobs = self.WORKLOAD[:3]
        seq = ServiceDriver(workers=0, cache=None).run(_jobs(jobs))
        pool = ServiceDriver(workers=2, cache=None).run(_jobs(jobs))
        assert [_bytes(o.record) for o in pool] == [_bytes(o.record) for o in seq]


class TestBatchAcceptance:
    def test_repeated_topology_computes_once_end_to_end(self, tmp_path, capsys):
        """ISSUE acceptance: ``repro batch`` on the same topology x8 →
        one computation, 7 surfaced warm hits, all verdicts
        bit-identical."""
        jobs_file = tmp_path / "jobs.jsonl"
        jobs_file.write_text(
            "".join(json.dumps({"demo": ["grid", 16, 16]}) + "\n" for _ in range(8))
        )
        verdicts_file = tmp_path / "verdicts.jsonl"
        code = main([
            "batch", str(jobs_file), "--workers", "2", "--json",
            "--verdicts", str(verdicts_file),
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["jobs"] == 8
        assert report["computed"] == 1  # exactly one embedding computation
        assert report["cache"]["misses"] == 1
        assert report["cache"]["hits"] == 7  # surfaced warm hits
        assert report["outcomes"]["ok"] == 8

        lines = verdicts_file.read_text().splitlines()
        assert len(lines) == 8
        verdicts = [json.loads(line)["verdict"] for line in lines]
        assert len({_bytes(v) for v in verdicts}) == 1  # bit-identical
        tiers = [json.loads(line)["cache"] for line in lines]
        assert tiers.count("miss") == 1
        assert all(t in ("miss", "exact", "coalesced") for t in tiers)
