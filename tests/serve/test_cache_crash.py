"""Crash consistency of the persistent cache store (serve/cache.py):
CRC-32 detection, torn-tail truncation and in-place repair, concurrent
appenders, and ``repro cache-compact``."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.__main__ import main
from repro.planar.generators import grid_graph
from repro.serve import ResultCache, compact_store, torn_append
from repro.serve.canon import canonical_form, exact_fingerprint


def _entry(graph):
    form = canonical_form(graph)
    return ("h-" + form.hash[:8], "embed", "{}"), exact_fingerprint(graph), form


def _seed_store(path, n=3):
    cache = ResultCache(path=str(path))
    for i in range(n):
        cache.store((f"h{i}", "embed", "{}"), f"fp{i}", {"outcome": "ok", "i": i})
    return cache


def _append_records(args):
    """Worker for the concurrent-appenders test: each process opens the
    same store file and appends its own fsync'd records."""
    path, tag, count = args
    cache = ResultCache(path=path)
    for i in range(count):
        cache.store((f"{tag}-{i}", "embed", "{}"), f"fp-{tag}-{i}",
                    {"outcome": "ok", "writer": tag, "i": i})
    return tag


class TestTornTail:
    def test_torn_tail_is_truncated_and_repaired(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _seed_store(path)
        size = path.stat().st_size
        fragment = torn_append(str(path))
        assert path.stat().st_size == size + len(fragment)
        warm = ResultCache(path=str(path))
        assert warm.stats.persisted_loads == 3
        assert warm.stats.torn_truncated == 1
        assert warm.stats.persisted_skipped == 0
        assert path.stat().st_size == size  # the fragment is gone from disk
        # A third replay sees a clean store.
        again = ResultCache(path=str(path))
        assert again.stats.torn_truncated == 0

    def test_unterminated_garbage_tail(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _seed_store(path)
        size = path.stat().st_size
        with open(path, "a") as f:
            f.write('{"v": 2, "half":')  # no newline: crash mid-append
        warm = ResultCache(path=str(path))
        assert warm.stats.persisted_loads == 3
        assert warm.stats.torn_truncated == 1
        assert path.stat().st_size == size

    def test_trailing_corrupt_terminated_lines_are_torn(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _seed_store(path, n=2)
        size = path.stat().st_size
        with open(path, "a") as f:
            f.write("not json at all\n{broken too\n")
        warm = ResultCache(path=str(path))
        assert warm.stats.persisted_loads == 2
        assert warm.stats.torn_truncated == 2
        assert warm.stats.persisted_skipped == 0
        assert path.stat().st_size == size

    def test_midfile_corruption_skipped_not_truncated(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _seed_store(path, n=2)
        raw = path.read_bytes().splitlines(keepends=True)
        raw.insert(1, b"garbage between records\n")
        path.write_bytes(b"".join(raw))
        size = path.stat().st_size
        warm = ResultCache(path=str(path))
        assert warm.stats.persisted_loads == 2
        assert warm.stats.persisted_skipped == 1
        assert warm.stats.torn_truncated == 0
        # Mid-file damage stays on disk: only the tail is ours to cut.
        assert path.stat().st_size == size


class TestCrc:
    def test_bit_flip_is_rejected(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _seed_store(path, n=3)
        raw = path.read_bytes().splitlines(keepends=True)
        raw[0] = raw[0].replace(b'"i": 0', b'"i": 7')  # valid JSON, wrong CRC
        path.write_bytes(b"".join(raw))
        warm = ResultCache(path=str(path))
        assert warm.stats.persisted_loads == 2
        assert warm.stats.persisted_skipped == 1

    def test_records_carry_crc(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _seed_store(path, n=1)
        obj = json.loads(path.read_text().splitlines()[0])
        assert obj["v"] == 2
        assert isinstance(obj["crc"], int)

    def test_v1_legacy_lines_still_load(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        path.write_text(json.dumps({
            "v": 1, "key": ["h", "embed", "{}"], "exact": "fp",
            "verdict": {"outcome": "ok"}, "canon_rot": None,
        }) + "\n")
        warm = ResultCache(path=str(path))
        assert warm.stats.persisted_loads == 1
        assert warm.stats.persisted_skipped == 0


class TestConcurrentAppenders:
    def test_two_processes_interleave_cleanly(self, tmp_path):
        # Two writers fsync-appending whole lines to one store: the
        # interleaved (non-torn) JSONL must load cleanly and dedupe.
        path = str(tmp_path / "shared.jsonl")
        with ProcessPoolExecutor(max_workers=2) as pool:
            tags = list(pool.map(
                _append_records, [(path, "a", 8), (path, "b", 8)]
            ))
        assert sorted(tags) == ["a", "b"]
        warm = ResultCache(path=path)
        assert warm.stats.persisted_loads == 16
        assert warm.stats.persisted_skipped == 0
        assert warm.stats.torn_truncated == 0
        assert len(warm) == 16

    def test_duplicate_keys_from_two_writers_dedupe(self, tmp_path):
        # Both writers compute the same job: replay keeps one entry per
        # (key, exact) pair, exactly like two racing cold runs in-process.
        path = str(tmp_path / "dup.jsonl")
        writers = [ResultCache(path=path), ResultCache(path=path)]
        for cache in writers:  # neither saw the other's line at warm-start
            cache.store(("h0", "embed", "{}"), "fp0", {"outcome": "ok"})
        warm = ResultCache(path=path)
        assert warm.stats.persisted_loads == 2
        assert len(warm) == 1
        entries = next(iter(warm._store.values()))
        assert len(entries) == 1


class TestCompaction:
    def test_compact_drops_damage_and_duplicates(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _seed_store(path, n=3)
        # duplicate line + mid-file garbage + torn tail
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(lines[0] + b"junk\n" + b"".join(lines))
        torn_append(str(path))
        summary = compact_store(str(path))
        assert summary["entries"] == 3
        assert summary["skipped"] == 1
        assert summary["torn_truncated"] == 1
        assert summary["bytes_after"] < summary["bytes_before"]
        clean = ResultCache(path=str(path))
        assert clean.stats.persisted_loads == 3
        assert clean.stats.persisted_skipped == 0

    def test_compact_applies_lru_capacity(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        _seed_store(path, n=5)
        summary = compact_store(str(path), capacity=2)
        assert summary["keys"] == 2
        assert summary["entries"] == 2

    def test_compact_to_separate_output(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        out = tmp_path / "compacted.jsonl"
        _seed_store(path, n=2)
        before = path.read_bytes()
        summary = compact_store(str(path), output=str(out))
        assert summary["output"] == str(out)
        assert path.read_bytes() == before  # input untouched
        assert ResultCache(path=str(out)).stats.persisted_loads == 2

    def test_cache_compact_cli(self, tmp_path, capsys):
        path = tmp_path / "cache.jsonl"
        _seed_store(path, n=2)
        torn_append(str(path))
        assert main(["cache-compact", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["type"] == "cache-compact"
        assert summary["entries"] == 2
        assert summary["torn_truncated"] == 1

    def test_cache_compact_cli_missing_file(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["cache-compact", str(tmp_path / "nope.jsonl")])
        assert err.value.code == 2

    def test_verdicts_round_trip_through_compacted_store(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        graph = grid_graph(3, 3)
        key, exact, _form = _entry(graph)
        cache = ResultCache(path=str(path))
        verdict = {"outcome": "ok", "report": {"rounds": 11}}
        cache.store(key, exact, verdict)
        compact_store(str(path))
        warm = ResultCache(path=str(path))
        form = canonical_form(graph)
        hit = warm.lookup(key, exact, form, graph)
        assert hit is not None
        assert hit.tier == "exact"
        assert hit.verdict == verdict
