"""The ``repro serve`` / ``repro batch`` subcommands end to end."""

import json

import pytest

from repro.__main__ import main

K5 = [[u, v] for u in range(5) for v in range(u + 1, 5)]


@pytest.fixture
def jobs_file(tmp_path):
    def write(objs, name="jobs.jsonl"):
        path = tmp_path / name
        path.write_text("".join(json.dumps(o) + "\n" for o in objs))
        return str(path)

    return write


class TestServe:
    def test_streams_one_verdict_line_per_job_in_order(self, jobs_file, capsys):
        path = jobs_file([
            {"demo": ["grid", 3, 3], "id": "a"},
            {"edges": K5, "id": "b"},
            {"demo": ["grid", 3, 3], "id": "c"},
        ])
        code = main(["serve", path, "--quiet"])
        assert code == 1  # worst job: non-planar
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert [obj["id"] for obj in lines] == ["a", "b", "c"]
        assert [obj["outcome"] for obj in lines] == ["ok", "non-planar", "ok"]
        assert lines[0]["type"] == "job-verdict"
        assert lines[2]["cache"] == "exact"  # same topology as job a
        assert "rotation" in lines[0]["verdict"]
        assert lines[1]["verdict"]["witness"]["kind"] == "K5"

    def test_reads_stdin_dash(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps({"demo": ["cycle", 5]}) + "\n")
        )
        code = main(["serve", "-", "--quiet"])
        assert code == 0
        assert len(capsys.readouterr().out.splitlines()) == 1

    def test_summary_on_stderr_unless_quiet(self, jobs_file, capsys):
        path = jobs_file([{"demo": ["grid", 3, 3]}])
        main(["serve", path])
        err = capsys.readouterr().err
        assert "1 verdicts" in err and "cache:" in err


class TestBatch:
    def test_human_report_and_exit_code(self, jobs_file, capsys):
        path = jobs_file([{"demo": ["grid", 3, 3]}, {"edges": K5}])
        code = main(["batch", path, "--workers", "0"])
        assert code == 1
        out = capsys.readouterr().out
        assert "2 jobs" in out
        assert "1 ok, 1 non-planar" in out
        assert "computations: 2 of 2 jobs" in out

    def test_json_report_moves_human_to_stderr(self, jobs_file, capsys):
        path = jobs_file([{"demo": ["grid", 3, 3]}])
        code = main(["batch", path, "--json"])
        assert code == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["type"] == "batch-report"
        assert report["exit_code"] == 0
        assert report["cache"]["misses"] == 1
        assert "1 jobs" in captured.err

    def test_no_cache_every_job_computes(self, jobs_file, capsys):
        path = jobs_file([{"demo": ["grid", 3, 3]} for _ in range(3)])
        code = main(["batch", path, "--no-cache", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cache"] is None
        assert report["computed"] == 3

    def test_degraded_job_dominates_exit(self, jobs_file, capsys):
        path = jobs_file([
            {"demo": ["grid", 3, 3]},
            {"demo": ["grid", 3, 3], "kind": "heal",
             "config": {"faults": "drop=0.9", "fault_seed": 1, "max_retries": 0}},
        ])
        code = main(["batch", path, "--json"])
        report = json.loads(capsys.readouterr().out)
        assert report["outcomes"]["ok"] >= 1
        assert code == report["exit_code"]

    def test_cache_file_warms_across_invocations(self, jobs_file, tmp_path, capsys):
        path = jobs_file([{"demo": ["grid", 4, 4]}])
        store = str(tmp_path / "store.jsonl")
        main(["batch", path, "--cache-file", store, "--json"])
        first = json.loads(capsys.readouterr().out)
        assert first["computed"] == 1
        main(["batch", path, "--cache-file", store, "--json"])
        second = json.loads(capsys.readouterr().out)
        assert second["computed"] == 0
        assert second["cache"]["hits_exact"] == 1
        assert second["cache"]["persisted_loads"] == 1


class TestUsageErrors:
    @pytest.mark.parametrize("argv", [
        ["batch"],  # missing job file
        ["batch", "/nonexistent/jobs.jsonl"],
        ["serve", "x.jsonl", "--workers", "-1"],
        ["serve", "x.jsonl", "--cache-size", "0"],
    ])
    def test_usage_exits_2(self, argv):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2

    def test_no_cache_conflicts_with_cache_file(self, jobs_file):
        path = jobs_file([{"demo": ["grid", 3, 3]}])
        with pytest.raises(SystemExit) as exc:
            main(["batch", path, "--no-cache", "--cache-file", "/tmp/x.jsonl"])
        assert exc.value.code == 2

    def test_bad_job_line_reports_line_number(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"demo": ["grid", 3, 3]}) + "\n{nope\n")
        with pytest.raises(SystemExit) as exc:
            main(["batch", str(path)])
        assert exc.value.code == 2
        assert "line 2" in capsys.readouterr().err

    def test_verdicts_file_written(self, jobs_file, tmp_path, capsys):
        path = jobs_file([{"demo": ["grid", 3, 3], "id": "v"}])
        sink = tmp_path / "out" / "verdicts.jsonl"
        sink.parent.mkdir()
        code = main(["batch", path, "--verdicts", str(sink)])
        assert code == 0
        capsys.readouterr()
        [line] = sink.read_text().splitlines()
        assert json.loads(line)["id"] == "v"
