"""Certificate-driven self-healing: the driver detects a bad embedding
with the distributed certifier and re-executes only as much as the
evidence demands — re-verify, re-certify, re-embed — surfacing a
structured :class:`DegradedResult` when the budget runs out.
"""

from __future__ import annotations

import pytest

from repro.certify import TAMPER_CLASSES, apply_tamper
from repro.congest import CrashWindow, FaultPlan
from repro.core import (
    DegradedResult,
    NonPlanarNetworkError,
    distributed_planar_embedding,
    self_healing_embedding,
)
from repro.obs import Tracer
from repro.planar import generators
from repro.planar.graph import Graph


def k5() -> Graph:
    g = Graph()
    for i in range(5):
        for j in range(i + 1, 5):
            g.add_edge(i, j)
    return g


class TestCleanRuns:
    def test_clean_run_matches_plain_certified_run(self):
        """Without faults, self-healing is the plain pipeline: same
        rotation, one attempt, no fault counters."""
        graph = generators.grid_graph(5, 5)
        healed = self_healing_embedding(graph)
        plain = distributed_planar_embedding(graph, certify=True)
        assert not getattr(healed, "degraded", False)
        assert healed.rotation == plain.rotation
        assert healed.heal_attempts == 1
        assert healed.heal_log == []
        assert healed.fault_stats is None
        assert healed.certification.accepted
        assert healed.metrics.rounds == plain.metrics.rounds

    def test_nonplanar_raises_when_clean(self):
        with pytest.raises(NonPlanarNetworkError):
            self_healing_embedding(k5())

    def test_nonplanar_confirmed_under_faults(self):
        """One non-planar detection under faults is re-checked; a second
        consecutive detection (fresh fault draws) confirms and raises."""
        with pytest.raises(NonPlanarNetworkError):
            self_healing_embedding(
                k5(), faults=FaultPlan(seed=3, drop_rate=0.02), max_retries=4
            )

    def test_max_retries_validated(self):
        with pytest.raises(ValueError):
            self_healing_embedding(generators.path_graph(3), max_retries=-1)


class TestTamperHealing:
    """Every tamper class is caught by the certifier and healed within
    the escalation ladder (certificate tampers need a certificate
    rebuild; rotation tampers need a full re-embed)."""

    @pytest.mark.parametrize("tamper", sorted(TAMPER_CLASSES))
    def test_tamper_healed(self, tamper):
        graph = generators.triangulated_grid(4, 4)
        seen = []

        def corrupt_once(attempt, result):
            if attempt == 1:
                note = apply_tamper(
                    tamper, result.graph, result.rotation, result.certificates,
                    seed=7,
                )
                seen.append(note)
                return note
            return None

        result = self_healing_embedding(graph, corrupt_hook=corrupt_once)
        assert not getattr(result, "degraded", False), result.diagnosis
        assert seen, "hook never ran"
        assert result.heal_attempts > 1  # damage was detected, not ignored
        assert result.certification.accepted
        assert any("adversary" in line for line in result.heal_log)
        assert any("REJECTED" in line for line in result.heal_log)

    def test_healing_is_traced(self):
        tracer = Tracer()
        graph = generators.grid_graph(4, 4)

        def corrupt_once(attempt, result):
            if attempt == 1:
                return apply_tamper(
                    "bit-flip", result.graph, result.rotation,
                    result.certificates, seed=3,
                )
            return None

        result = self_healing_embedding(graph, tracer=tracer, corrupt_hook=corrupt_once)
        assert result.certification.accepted
        root = tracer.root
        assert root.name == "self-healing"
        assert root.attrs["healed"] is True
        assert root.attrs["heal_attempts"] == result.heal_attempts
        # the rollup invariant survives multi-attempt absorption
        assert root.total_rounds() == result.metrics.rounds

    def test_report_carries_healing_block(self):
        graph = generators.grid_graph(4, 4)

        def corrupt_once(attempt, result):
            if attempt == 1:
                return apply_tamper(
                    "bit-flip", result.graph, result.rotation,
                    result.certificates, seed=3,
                )
            return None

        result = self_healing_embedding(graph, corrupt_hook=corrupt_once)
        report = result.to_report()
        assert report["healing"]["attempts"] == result.heal_attempts
        assert any("adversary" in line for line in report["healing"]["log"])


class TestDegradedPath:
    def test_persistent_tamper_exhausts_budget(self):
        """An adversary that re-corrupts every attempt defeats healing;
        the driver must surface a structured DegradedResult — not crash,
        not loop forever."""
        graph = generators.grid_graph(4, 4)

        def corrupt_always(attempt, result):
            return apply_tamper(
                "bit-flip", result.graph, result.rotation, result.certificates,
                seed=attempt,
            )

        result = self_healing_embedding(
            graph, corrupt_hook=corrupt_always, max_retries=1
        )
        assert isinstance(result, DegradedResult)
        assert result.degraded is True
        assert result.attempts == 2
        assert "rejected" in result.diagnosis
        assert result.rotation is not None  # partial state retained
        assert result.certification is not None
        assert not result.certification.accepted
        report = result.to_report()
        assert report["type"] == "degraded-report"
        assert report["planar"] is None
        assert report["healing"]["attempts"] == 2
        assert report["partial_rotation"]

    def test_degraded_metrics_cover_all_attempts(self):
        graph = generators.grid_graph(3, 3)
        plain = distributed_planar_embedding(graph, certify=True)

        def corrupt_always(attempt, result):
            return apply_tamper(
                "bit-flip", result.graph, result.rotation, result.certificates,
                seed=attempt,
            )

        result = self_healing_embedding(
            graph, corrupt_hook=corrupt_always, max_retries=2
        )
        assert isinstance(result, DegradedResult)
        # three verification attempts cost strictly more than one clean run
        assert result.metrics.rounds > plain.metrics.rounds


class TestChaosHealing:
    """The acceptance bar: a seeded plan with drop <= 0.05 and <= 2
    crash windows still yields a certified embedding, even with an
    adversary corrupting the first attempt on top."""

    PLAN = FaultPlan(
        seed=17,
        drop_rate=0.05,
        corruption_rate=0.02,
        crashes=(CrashWindow(start=3, stop=7), CrashWindow(start=10, stop=13)),
    )

    def test_chaos_run_certified(self):
        graph = generators.grid_graph(4, 4)
        result = self_healing_embedding(graph, faults=self.PLAN)
        assert not getattr(result, "degraded", False), result.diagnosis
        assert result.certification.accepted
        assert result.fault_stats is not None
        assert result.fault_stats["faults_injected"] > 0
        assert result.fault_stats["corruption_delivered"] == 0

    def test_chaos_plus_tamper_healed(self):
        graph = generators.grid_graph(4, 4)

        def corrupt_once(attempt, result):
            if attempt == 1:
                return apply_tamper(
                    "rotation-swap", result.graph, result.rotation,
                    result.certificates, seed=5,
                )
            return None

        result = self_healing_embedding(
            graph, faults=FaultPlan(seed=23, drop_rate=0.03), corrupt_hook=corrupt_once
        )
        assert not getattr(result, "degraded", False), result.diagnosis
        assert result.heal_attempts > 1
        assert result.certification.accepted

    def test_chaos_run_reproducible(self):
        """The whole chaos pipeline replays bit-for-bit from the seed."""
        graph = generators.grid_graph(4, 4)
        a = self_healing_embedding(graph, faults=self.PLAN)
        b = self_healing_embedding(graph, faults=self.PLAN)
        assert a.rotation == b.rotation
        assert a.heal_attempts == b.heal_attempts
        assert a.fault_stats == b.fault_stats
        assert a.metrics.rounds == b.metrics.rounds
