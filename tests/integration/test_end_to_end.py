"""End-to-end runs of the distributed embedding across graph families.

Every run is checked three ways: the output is a valid rotation system of
the input, its Euler genus is zero (a real planar embedding), and the
planarity *decision* agrees with networkx.
"""

import math

import networkx as nx
import pytest

from repro import distributed_planar_embedding
from repro.core import NonPlanarNetworkError
from repro.planar import Graph, verify_planar_embedding
from repro.planar.generators import (
    caterpillar,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    cylinder_graph,
    delaunay_triangulation,
    grid_graph,
    k4_subdivision,
    path_graph,
    random_maximal_planar,
    random_outerplanar,
    random_planar,
    random_tree,
    star_graph,
    theta_graph,
    triangulated_grid,
    wheel_graph,
)

FAMILIES = [
    ("single", Graph(nodes=[0])),
    ("edge", path_graph(2)),
    ("triangle", cycle_graph(3)),
    ("path30", path_graph(30)),
    ("cycle17", cycle_graph(17)),
    ("star9", star_graph(9)),
    ("tree40", random_tree(40, 2)),
    ("caterpillar", caterpillar(8, 2)),
    ("grid5x6", grid_graph(5, 6)),
    ("trigrid5", triangulated_grid(5, 5)),
    ("cylinder4x8", cylinder_graph(4, 8)),
    ("wheel10", wheel_graph(10)),
    ("theta35", theta_graph(3, 5)),
    ("k4", complete_graph(4)),
    ("k4sub6", k4_subdivision(6)),
    ("outerplanar25", random_outerplanar(25, 4)),
    ("maxplanar35", random_maximal_planar(35, 6)),
    ("planar45", random_planar(45, 80, 12)),
    ("delaunay50", delaunay_triangulation(50, 8)[0]),
]


@pytest.mark.parametrize("name,g", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_family_embeds_and_verifies(name, g):
    result = distributed_planar_embedding(g)
    system = verify_planar_embedding(g, result.rotation)
    assert system.genus() == 0
    # output format: every vertex orders exactly its own edges
    for v in g.nodes():
        assert sorted(result.rotation[v], key=repr) == sorted(
            g.neighbors(v), key=repr
        )


@pytest.mark.parametrize(
    "name,g",
    [("k5", complete_graph(5)), ("k33", complete_bipartite(3, 3)),
     ("k5sub_plus", None)],
    ids=["k5", "k33", "k5-plus-paths"],
)
def test_nonplanar_rejected(name, g):
    if g is None:
        # K5 with pendant paths: non-planarity buried under tree parts.
        g = complete_graph(5)
        nxt = 5
        for v in range(5):
            g.add_edge(v, nxt)
            g.add_edge(nxt, nxt + 1)
            nxt += 2
    with pytest.raises(NonPlanarNetworkError):
        distributed_planar_embedding(g)


class TestPaperInvariants:
    """Lemmas 4.2 and 4.3, measured on real executions."""

    def test_recursion_depth_bound(self):
        # Lemma 4.3: depth <= min(O(log n), D) — with the 2/3 shrink the
        # log base is 3/2.
        for g in (grid_graph(8, 8), random_maximal_planar(80, 1), cycle_graph(40)):
            result = distributed_planar_embedding(g)
            n = g.num_nodes
            assert result.recursion_depth <= math.log(n, 1.5) + 2

    def test_part_sizes_shrink(self):
        # Lemma 4.2: every hanging part has <= 2|T_s|/3 vertices.
        result = distributed_planar_embedding(grid_graph(7, 7))
        for record in result.trace:
            for size in record.part_sizes:
                assert 3 * size <= 2 * record.subtree_size

    def test_p0_is_short(self):
        # P0 is a root-to-splitter tree path: at most depth(T_s)+1 long.
        result = distributed_planar_embedding(grid_graph(7, 7))
        for record in result.trace:
            if record.p0_length:
                assert record.p0_length <= record.subtree_depth + 1

    def test_rounds_scale_with_headline_bound(self):
        # Theorem 1.1 shape: rounds / (D * log n) bounded by a constant
        # across sizes (grids: D = Theta(sqrt n)).
        ratios = []
        for k in (8, 12, 16):
            g = grid_graph(k, k)
            result = distributed_planar_embedding(g)
            d = 2 * (k - 1)
            ratios.append(result.rounds / (d * math.log2(g.num_nodes)))
        assert max(ratios) / min(ratios) < 2.5

    def test_beats_baseline_at_scale(self):
        from repro import trivial_baseline_embedding

        g = grid_graph(18, 18)
        alg = distributed_planar_embedding(g)
        base = trivial_baseline_embedding(g)
        assert alg.rounds < base.rounds

    def test_merge_fallbacks_absent(self):
        # The skeleton machinery should carry every family without the
        # correctness fallback.
        for g in (grid_graph(6, 6), cylinder_graph(4, 8), random_maximal_planar(50, 3)):
            result = distributed_planar_embedding(g)
            assert result.merge_fallbacks == 0


class TestAgainstNetworkxOracle:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_connected_graphs(self, seed):
        import random

        rng = random.Random(seed)
        nxg = nx.gnp_random_graph(rng.randrange(4, 16), rng.uniform(0.2, 0.7), seed=seed)
        if nxg.number_of_nodes() == 0 or not nx.is_connected(nxg):
            nxg = nx.path_graph(5)
        g = Graph(nodes=nxg.nodes(), edges=nxg.edges())
        expected, _ = nx.check_planarity(nxg)
        try:
            result = distributed_planar_embedding(g)
            assert expected
            verify_planar_embedding(g, result.rotation)
        except NonPlanarNetworkError:
            assert not expected
