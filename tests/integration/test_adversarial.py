"""Adversarial families engineered to stress specific algorithm paths.

Each family targets one mechanism of the Section 5.3 merge pipeline:
pendant discharges, two-terminal dedup, split-off copies with
non-consecutive bundles, deep nesting of blocks, huge-degree
coordinators, and parts with many parallel connections.
"""

import pytest

from repro import distributed_planar_embedding
from repro.planar import Graph, verify_planar_embedding
from repro.planar.generators import (
    caterpillar,
    cycle_graph,
    path_graph,
    star_graph,
    subdivide,
    theta_graph,
)


def embed_ok(g):
    result = distributed_planar_embedding(g)
    verify_planar_embedding(g, result.rotation)
    return result


class TestPendantHeavy:
    def test_broom(self):
        # long handle + a fan of bristles at the end: many pendant parts
        g = path_graph(20)
        for i in range(15):
            g.add_edge(19, 100 + i)
        embed_ok(g)

    def test_caterpillar_with_subdivided_legs(self):
        g = subdivide(caterpillar(10, 3), 3)
        embed_ok(g)

    def test_spider(self):
        # one center, many legs of different lengths
        g = Graph(nodes=[0])
        nxt = 1
        for leg in range(8):
            prev = 0
            for _ in range(leg + 2):
                g.add_edge(prev, nxt)
                prev = nxt
                nxt += 1
        embed_ok(g)


class TestTwoTerminalHeavy:
    def test_fat_theta(self):
        # many parallel strands between two terminals: the (i, j)-part
        # dedup (steps 3-5) must park most of them.
        g = theta_graph(8, 6)
        result = embed_ok(g)
        # the dedup machinery may or may not trigger depending on where
        # the splitter lands; what matters is correctness at zero cost of
        # fallbacks (the mechanism itself is unit-tested directly)
        assert result.merge_fallbacks == 0

    def test_nested_thetas(self):
        # a theta graph whose strands are themselves theta graphs
        g = theta_graph(3, 4)
        base_edges = list(g.edges())
        nxt = 1000
        for u, v in base_edges[:3]:
            g.remove_edge(u, v)
            mid1, mid2 = nxt, nxt + 1
            nxt += 2
            for a, b in ((u, mid1), (mid1, v), (u, mid2), (mid2, v)):
                g.add_edge(a, b)
        embed_ok(g)

    def test_ladder(self):
        # parallel rungs: every rung is a 2-terminal bridge candidate
        g = Graph()
        for i in range(12):
            g.add_edge(("a", i), ("a", i + 1))
            g.add_edge(("b", i), ("b", i + 1))
            g.add_edge(("a", i), ("b", i))
        g.add_edge(("a", 12), ("b", 12))
        # relabel to ints for the wrapper
        mapping = {v: i for i, v in enumerate(sorted(g.nodes()))}
        h = Graph(nodes=mapping.values())
        for u, v in g.edges():
            h.add_edge(mapping[u], mapping[v])
        embed_ok(h)


class TestCoordinatorStress:
    def test_huge_star(self):
        result = embed_ok(star_graph(60))
        assert result.rounds < 200  # a star is nearly trivial

    def test_double_star(self):
        g = star_graph(20)
        for i in range(21, 41):
            g.add_edge(1, i)
        embed_ok(g)

    def test_wheel_of_wheels(self):
        from repro.planar.generators import wheel_graph

        g = wheel_graph(8)
        nxt = 100
        for rim in range(1, 9):
            # a small wheel pasted onto each rim vertex
            hub = nxt
            ring = [nxt + 1 + k for k in range(4)]
            for k, r in enumerate(ring):
                g.add_edge(hub, r)
                g.add_edge(r, ring[(k + 1) % 4])
            g.add_edge(rim, hub)
            nxt += 10
        embed_ok(g)


class TestNonConsecutiveBundles:
    def test_cylinder_rings(self):
        # the family that originally forced the validated split-off
        from repro.planar.generators import cylinder_graph

        for rows, cols in ((3, 5), (4, 8), (5, 12), (7, 9)):
            result = embed_ok(cylinder_graph(rows, cols))
            assert result.merge_fallbacks == 0

    def test_concentric_cycles(self):
        g = cycle_graph(8)
        for k in range(8):
            g.add_edge(k, 10 + k)
            g.add_edge(10 + k, 10 + (k + 1) % 8)
        # and a center inside the inner ring
        for k in range(0, 8, 2):
            g.add_edge(99, 10 + k)
        embed_ok(g)


class TestDeepBlockNesting:
    def test_chain_of_triangles(self):
        g = Graph()
        prev = 0
        nxt = 1
        for _ in range(15):
            a, b = nxt, nxt + 1
            g.add_edge(prev, a)
            g.add_edge(a, b)
            g.add_edge(b, prev)
            prev = b
            nxt += 2
        embed_ok(g)

    def test_subdivided_wheel(self):
        from repro.planar.generators import wheel_graph

        embed_ok(subdivide(wheel_graph(7), 4))

    def test_binary_tree_with_cross_edges(self):
        from repro.planar.generators import binary_tree

        g = binary_tree(5)
        # connect adjacent leaves: still planar (outerplanar-ish fringe)
        leaves = [v for v in g.nodes() if g.degree(v) == 1]
        for a, b in zip(leaves, leaves[1:]):
            g.add_edge(a, b)
        embed_ok(g)


class TestMetricsSanity:
    @pytest.mark.parametrize(
        "g",
        [theta_graph(5, 5), caterpillar(15, 2), cycle_graph(30)],
        ids=["theta", "caterpillar", "cycle"],
    )
    def test_ledger_consistency(self, g):
        result = distributed_planar_embedding(g)
        # Every round has Charge provenance now (real executions are
        # filed as kind="real" by CongestNetwork.run), so the charge sum
        # covers the total; parallel branches over-count it because the
        # ledger composes their rounds as a max while retaining every
        # branch's charges.
        charged = sum(c.rounds for c in result.metrics.charges)
        assert charged >= result.metrics.rounds
        # ... and cost-model charges alone cannot cover more than the
        # total minus at least one real round of leader election.
        model_only = sum(c.rounds for c in result.metrics.charges if c.kind == "charge")
        real_only = charged - model_only
        assert real_only >= 1
        assert result.metrics.max_words_edge_round <= 8
