"""Audit of the paper's Section 5.2 structural claim on real runs.

"Note that G_P \\ P0 can be any outerplanar graph" — the inter-part
graph that the Lemma 5.3 symmetry breaking consumes is outerplanar, and
after the per-coordinator merges of step 2(b) its low-connection
coloring is proper.  We capture every inter-part instance arising in
real executions and check both preconditions.
"""

import pytest

import repro.core.unrestricted as unrestricted_module
from repro import distributed_planar_embedding
from repro.planar import is_outerplanar
from repro.planar.generators import (
    cylinder_graph,
    delaunay_triangulation,
    grid_graph,
    random_maximal_planar,
)


@pytest.fixture
def captured_instances(monkeypatch):
    captured = []
    original = unrestricted_module.symmetry_break

    def capturing(graph, colors):
        captured.append((graph.copy(), dict(colors)))
        return original(graph, colors)

    monkeypatch.setattr(unrestricted_module, "symmetry_break", capturing)
    return captured


@pytest.mark.parametrize(
    "g",
    [
        grid_graph(9, 9),
        cylinder_graph(5, 9),
        random_maximal_planar(120, 3),
        delaunay_triangulation(120, 6)[0],
    ],
    ids=["grid", "cylinder", "maximal", "delaunay"],
)
def test_interpart_graphs_are_outerplanar_and_properly_colored(
    g, captured_instances
):
    distributed_planar_embedding(g)
    assert captured_instances, "no symmetry-breaking instance arose"
    for inter, colors in captured_instances:
        assert is_outerplanar(inter), (
            f"inter-part graph with {inter.num_nodes} parts is not outerplanar"
        )
        for u, v in inter.edges():
            assert colors[u] != colors[v], "low-connection coloring not proper"
