"""Property-based end-to-end testing on randomly generated planar graphs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import distributed_planar_embedding
from repro.planar import verify_planar_embedding
from repro.planar.generators import (
    random_maximal_planar,
    random_outerplanar,
    random_planar,
    random_tree,
    subdivide,
)

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def embed_and_verify(g):
    result = distributed_planar_embedding(g)
    verify_planar_embedding(g, result.rotation)
    return result


@SLOW
@given(n=st.integers(min_value=3, max_value=45), seed=st.integers(0, 10**6))
def test_random_planar_graphs(n, seed):
    g = random_planar(n, 2 * n, seed)
    embed_and_verify(g)


@SLOW
@given(n=st.integers(min_value=3, max_value=40), seed=st.integers(0, 10**6))
def test_maximal_planar_graphs(n, seed):
    embed_and_verify(random_maximal_planar(n, seed))


@SLOW
@given(n=st.integers(min_value=3, max_value=40), seed=st.integers(0, 10**6))
def test_outerplanar_graphs(n, seed):
    embed_and_verify(random_outerplanar(n, seed))


@SLOW
@given(n=st.integers(min_value=2, max_value=60), seed=st.integers(0, 10**6))
def test_trees(n, seed):
    result = embed_and_verify(random_tree(n, seed))
    # trees embed with any rotation: the algorithm must never fall back
    assert result.merge_fallbacks == 0


@SLOW
@given(
    n=st.integers(min_value=3, max_value=14),
    seed=st.integers(0, 10**6),
    segments=st.integers(min_value=2, max_value=4),
)
def test_subdivided_planar_graphs(n, seed, segments):
    g = subdivide(random_planar(n, 2 * n, seed), segments)
    embed_and_verify(g)


@SLOW
@given(n=st.integers(min_value=5, max_value=30), seed=st.integers(0, 10**6))
def test_rounds_never_exceed_gather_everything(n, seed):
    """Sanity cap: the algorithm must stay within a small factor of the
    trivial O(n) bound even on adversarial small instances."""
    g = random_planar(n, 2 * n, seed)
    result = distributed_planar_embedding(g)
    assert result.rounds <= 120 * n
