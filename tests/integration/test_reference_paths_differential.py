"""Differential suite: optimized hot paths vs the reference paths.

The perf overhaul (scoped split-validation oracle, shared
:class:`~repro.core.index.RecursionIndex`, structural memoization in the
LR kernel, canonical-key caching) must be *observationally invisible*:
``REPRO_REFERENCE_PATHS=1`` reverts the oracle and the index to the
unoptimized per-call recomputation, and this suite runs the full
pipeline both ways on six graph families plus the certified pipeline,
asserting bit-identical

* output rotations (every vertex's clockwise order),
* recursion traces (every :class:`~repro.core.recursion.CallRecord`),
* and the complete ledger: rounds, messages, words, the per-edge-round
  maximum, activations, and the full per-phase breakdown.

This is the same discipline as ``tests/congest``'s dense-vs-event
scheduler equivalence, applied to the recursion's central bookkeeping.
"""

import pytest

from repro import distributed_planar_embedding
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    random_tree,
    triangulated_grid,
)

# Six families; the seeded outerplanar/maximal instances are chosen so
# the sweep exercises multi-edge bundle splits *and* rejections (see
# test_suite_exercises_split_validation below) — without them the
# scoped oracle would never leave its trivial path.
FAMILIES = [
    ("grid", lambda: grid_graph(5, 7)),
    ("trigrid", lambda: triangulated_grid(4, 6)),
    ("cycle", lambda: cycle_graph(17)),
    ("outerplanar", lambda: random_outerplanar(60, seed=3)),
    ("maximal", lambda: random_maximal_planar(48, seed=2)),
    ("tree", lambda: random_tree(33, seed=1)),
]


def _fingerprint(result):
    """Everything observable about a run, in hashable/comparable form."""
    m = result.metrics
    return {
        "rounds": m.rounds,
        "messages": m.messages,
        "total_words": m.total_words,
        "max_words_edge_round": m.max_words_edge_round,
        "activations": m.node_activations,
        "activations_saved": m.activations_saved,
        "phases": {k: dict(v) for k, v in sorted(m.phase_breakdown().items())},
        "rotation": sorted(
            (repr(v), tuple(repr(u) for u in ring))
            for v, ring in result.rotation.items()
        ),
        "trace": [
            (
                r.level,
                repr(r.root),
                r.subtree_size,
                r.subtree_depth,
                r.p0_length,
                repr(r.splitter),
                tuple(r.part_sizes),
                None
                if r.merge_stats is None
                else (
                    r.merge_stats.final_instance_parts,
                    r.merge_stats.merge_fallbacks,
                ),
            )
            for r in result.trace
        ],
        "certification": None
        if result.certification is None
        else result.certification.accepted,
    }


def _run(make, monkeypatch, reference: bool, certify: bool = False):
    if reference:
        monkeypatch.setenv("REPRO_REFERENCE_PATHS", "1")
    else:
        monkeypatch.delenv("REPRO_REFERENCE_PATHS", raising=False)
    return distributed_planar_embedding(make(), certify=certify)


@pytest.mark.parametrize("family,make", FAMILIES, ids=[f for f, _ in FAMILIES])
def test_optimized_matches_reference(family, make, monkeypatch):
    optimized = _run(make, monkeypatch, reference=False)
    reference = _run(make, monkeypatch, reference=True)
    assert _fingerprint(optimized) == _fingerprint(reference)
    # The escape hatch genuinely flipped the implementation paths.
    assert optimized.split_oracle is not None
    assert reference.split_oracle is None
    # Both paths ran the same number of split validations.
    assert optimized.split_tests == reference.split_tests
    assert optimized.split_rejections == reference.split_rejections


def test_certified_pipeline_matches_reference(monkeypatch):
    def make():
        return grid_graph(5, 7)

    optimized = _run(make, monkeypatch, reference=False, certify=True)
    reference = _run(make, monkeypatch, reference=True, certify=True)
    assert optimized.certification is not None
    assert optimized.certification.accepted
    assert _fingerprint(optimized) == _fingerprint(reference)


def test_suite_exercises_split_validation(monkeypatch):
    """The family sweep must actually reach the oracle's decision paths:
    multi-edge bundle tests AND at least one rejection/rollback."""
    monkeypatch.delenv("REPRO_REFERENCE_PATHS", raising=False)
    tests = rejections = scoped = 0
    for _, make in FAMILIES:
        result = distributed_planar_embedding(make())
        tests += result.split_tests
        rejections += result.split_rejections
        scoped += result.split_oracle["scoped_tests"]
    assert tests > 0, "no family triggered a multi-edge bundle split test"
    assert rejections > 0, "no family triggered a split rejection/rollback"
    assert scoped > 0, "the scoped oracle never ran a block-scoped test"


# -- the sharded axis (E20) --------------------------------------------------
#
# The multi-process recursion backend (repro.shard) must be just as
# observationally invisible as the reference-path flip above: every
# shard_workers setting yields bit-identical rotations, traces, and
# ledgers.  REPRO_SHARD_MIN_SHIP is lowered so the tiny test families
# genuinely ship subtrees to worker processes instead of planning
# everything inline.

SHARD_SETTINGS = (0, 1, 2, 4)


@pytest.fixture
def shard_env(monkeypatch):
    monkeypatch.delenv("REPRO_REFERENCE_PATHS", raising=False)
    monkeypatch.setenv("REPRO_SHARD_MIN_SHIP", "4")


@pytest.mark.parametrize("family,make", FAMILIES, ids=[f for f, _ in FAMILIES])
def test_sharded_matches_sequential(family, make, shard_env):
    results = {
        w: distributed_planar_embedding(make(), shard_workers=w)
        for w in SHARD_SETTINGS
    }
    base = _fingerprint(results[0])
    for w in SHARD_SETTINGS[1:]:
        assert _fingerprint(results[w]) == base, f"shard_workers={w} diverged"
    # 0 and 1 take the literal sequential path (no runtime at all).
    assert results[0].shard_stats is None
    assert results[1].shard_stats is None


def test_sharded_certified_pipeline_matches_sequential(shard_env):
    results = {
        w: distributed_planar_embedding(grid_graph(5, 7), certify=True, shard_workers=w)
        for w in SHARD_SETTINGS
    }
    assert results[0].certification is not None
    assert results[0].certification.accepted
    base = _fingerprint(results[0])
    for w in SHARD_SETTINGS[1:]:
        assert _fingerprint(results[w]) == base


def test_sharded_suite_ships_and_replays(shard_env):
    """The sweep must genuinely exercise the dispatch machinery: subtrees
    adopted from workers AND split journals replayed — not a silent
    all-inline pass, which would vacuously equal sequential."""
    adopted = replayed = worker_errors = 0
    for _, make in FAMILIES:
        result = distributed_planar_embedding(make(), shard_workers=2)
        stats = result.shard_stats
        assert stats is not None
        adopted += stats["subtrees_adopted"]
        replayed += stats["splits_replayed"]
        worker_errors += stats["fallback_worker_error"] + stats["fallback_skipped"]
    assert adopted > 0, "no family shipped a subtree to a worker"
    assert replayed > 0, "no worker split journal was ever replayed"
    assert worker_errors == 0, "a deterministic worker errored"


def test_sharded_trace_structurally_identical(shard_env, tmp_path):
    from repro.analysis import diff_traces
    from repro.obs import Tracer

    paths = {}
    for w in (0, 4):
        tracer = Tracer()
        distributed_planar_embedding(grid_graph(5, 7), tracer=tracer, shard_workers=w)
        path = tmp_path / f"trace-{w}.jsonl"
        with open(path, "w") as fp:
            tracer.write_jsonl(fp)
        paths[w] = path
    report = diff_traces(paths[0], paths[4])
    assert report["identical"], report


def test_sharding_refused_under_reference_paths(monkeypatch):
    monkeypatch.setenv("REPRO_REFERENCE_PATHS", "1")
    monkeypatch.setenv("REPRO_SHARD_MIN_SHIP", "4")
    result = distributed_planar_embedding(grid_graph(5, 7), shard_workers=4)
    assert result.shard_stats is None
