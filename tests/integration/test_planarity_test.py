"""The distributed planarity-test API."""

import networkx as nx
import pytest

from repro import distributed_planarity_test
from repro.planar import Graph
from repro.planar.generators import (
    complete_bipartite,
    complete_graph,
    grid_graph,
    random_planar,
    subdivide,
)


def test_planar_accepted_with_rounds():
    ok, metrics = distributed_planarity_test(grid_graph(5, 5))
    assert ok
    assert metrics.rounds > 0


def test_nonplanar_rejected_with_partial_rounds():
    ok, metrics = distributed_planarity_test(complete_graph(5))
    assert not ok
    assert metrics is not None
    assert metrics.rounds >= 0


def test_buried_k33():
    g = subdivide(complete_bipartite(3, 3), 4)
    ok, _ = distributed_planarity_test(g)
    assert not ok


@pytest.mark.parametrize("seed", range(8))
def test_agrees_with_networkx(seed):
    import random

    rng = random.Random(seed)
    nxg = nx.gnp_random_graph(rng.randrange(5, 14), rng.uniform(0.3, 0.8), seed=seed)
    if not nx.is_connected(nxg):
        nxg = nx.path_graph(6)
    expected, _ = nx.check_planarity(nxg)
    g = Graph(nodes=nxg.nodes(), edges=nxg.edges())
    ok, _ = distributed_planarity_test(g)
    assert ok == expected


def test_cheaper_than_gather_for_wide_networks():
    g = random_planar(400, 700, seed=1)
    ok, metrics = distributed_planarity_test(g)
    assert ok
    assert metrics.rounds < 4 * g.num_nodes
