"""Determinism, trace integrity, and knob monotonicity across the stack."""

import pytest

from repro import DistributedPlanarEmbedding, distributed_planar_embedding
from repro.planar.generators import (
    cylinder_graph,
    delaunay_triangulation,
    grid_graph,
    random_maximal_planar,
    theta_graph,
)


class TestDeterminism:
    @pytest.mark.parametrize(
        "g",
        [grid_graph(6, 5), cylinder_graph(4, 6), random_maximal_planar(40, 9),
         theta_graph(4, 4)],
        ids=["grid", "cylinder", "maximal", "theta"],
    )
    def test_identical_reruns(self, g):
        a = distributed_planar_embedding(g)
        b = distributed_planar_embedding(g)
        assert a.rotation == b.rotation
        assert a.rounds == b.rounds
        assert a.metrics.total_words == b.metrics.total_words
        assert [r.splitter for r in a.trace] == [r.splitter for r in b.trace]

    def test_generators_deterministic(self):
        g1, p1 = delaunay_triangulation(60, 5)
        g2, p2 = delaunay_triangulation(60, 5)
        assert g1.edges() == g2.edges()
        assert p1 == p2


class TestTraceIntegrity:
    def test_subtree_sizes_sum(self):
        g = grid_graph(7, 7)
        result = distributed_planar_embedding(g)
        top = [r for r in result.trace if r.level == 0]
        assert len(top) == 1
        assert top[0].subtree_size == g.num_nodes

    def test_every_call_has_consistent_p0(self):
        g = random_maximal_planar(80, 2)
        result = distributed_planar_embedding(g)
        for r in result.trace:
            if r.subtree_size > 1:
                assert 1 <= r.p0_length <= r.subtree_size
                assert sum(r.part_sizes) + r.p0_length == r.subtree_size

    def test_levels_nested(self):
        g = grid_graph(8, 8)
        result = distributed_planar_embedding(g)
        by_level = {}
        for r in result.trace:
            by_level.setdefault(r.level, []).append(r)
        # deeper levels cover fewer vertices in each call
        for level in range(1, max(by_level)):
            assert max(r.subtree_size for r in by_level[level]) <= max(
                r.subtree_size for r in by_level[level - 1]
            )

    def test_preamble_knowledge(self):
        g = grid_graph(6, 6)
        result = distributed_planar_embedding(g)
        assert result.known_n == 36
        assert result.diameter_upper >= 10  # true D = 10
        assert result.diameter_upper <= 2 * 10


class TestKnobs:
    def test_bandwidth_monotone(self):
        g = grid_graph(8, 8)
        rounds = [
            DistributedPlanarEmbedding(g, bandwidth_words=b).run().rounds
            for b in (1, 2, 4, 8)
        ]
        assert all(a >= b for a, b in zip(rounds, rounds[1:]))

    def test_verify_flag_does_not_change_output(self):
        g = random_maximal_planar(30, 5)
        a = DistributedPlanarEmbedding(g, verify=True).run()
        b = DistributedPlanarEmbedding(g, verify=False).run()
        assert a.rotation == b.rotation
