"""Remaining generator families and their structural guarantees."""

from repro.planar import is_outerplanar, is_planar
from repro.planar.generators import (
    binary_tree,
    random_outerplanar,
    stacked_prism,
    subdivide,
    theta_graph,
)


def test_binary_tree_shape():
    g = binary_tree(4)
    assert g.num_nodes == 31
    assert g.num_edges == 30
    assert g.degree(0) == 2
    leaves = [v for v in g.nodes() if g.degree(v) == 1]
    assert len(leaves) == 16


def test_binary_tree_is_outerplanar():
    assert is_outerplanar(binary_tree(3))


def test_stacked_prism_planarity_sweep():
    for layers, rim in ((2, 3), (3, 8), (5, 20)):
        g = stacked_prism(layers, rim)
        assert g.num_nodes == layers * rim
        assert is_planar(g)


def test_subdivision_preserves_planarity_and_nonplanarity():
    from repro.planar.generators import complete_graph

    assert is_planar(subdivide(complete_graph(4), 5))
    assert not is_planar(subdivide(complete_graph(5), 5))


def test_theta_is_outerplanar_iff_two_paths():
    assert is_outerplanar(theta_graph(2, 5))
    assert not is_outerplanar(theta_graph(3, 5))  # K2,3 subdivision


def test_random_outerplanar_chord_budget():
    g = random_outerplanar(20, 3, extra_chords=0)
    assert g.num_edges == 20  # just the cycle
    g2 = random_outerplanar(20, 3)
    assert g2.num_edges >= 20
    assert is_outerplanar(g2)
