"""The embedding verifier: accepts the valid, rejects the broken."""

import pytest

from repro.planar import (
    EmbeddingViolation,
    check_embedding_with_boundary,
    planar_embedding,
    verify_planar_embedding,
    verify_rotation_system,
)
from repro.planar.generators import complete_graph, cycle_graph, grid_graph


def test_accepts_lr_output():
    g = grid_graph(5, 5)
    rot = planar_embedding(g)
    assert verify_planar_embedding(g, rot.as_dict()).genus() == 0


def test_rejects_malformed_rotation():
    g = cycle_graph(4)
    with pytest.raises(EmbeddingViolation):
        verify_rotation_system(g, {0: (1,), 1: (0, 2), 2: (1, 3), 3: (2, 0)})


def test_rejects_nonplanar_rotation():
    # K4 can be given a bad rotation with positive genus.
    g = complete_graph(4)
    bad = {v: tuple(sorted(g.neighbors(v))) for v in g.nodes()}
    rot = verify_rotation_system(g, bad)
    if rot.genus() != 0:
        with pytest.raises(EmbeddingViolation):
            verify_planar_embedding(g, bad)
    else:  # pragma: no cover - depends on sorted order
        verify_planar_embedding(g, bad)


def test_swapped_rotation_on_k4_subdivided_detected():
    from repro.planar.generators import k4_subdivision

    g = k4_subdivision(3)
    rot = planar_embedding(g).as_dict()
    # Flip the rotation of ONE degree-3 branch vertex: this is exactly
    # the inconsistency the paper's footnote-1 lower bound talks about.
    branch = next(v for v in g.nodes() if g.degree(v) == 3)
    broken = dict(rot)
    broken[branch] = tuple(reversed(rot[branch]))
    with pytest.raises(EmbeddingViolation):
        verify_planar_embedding(g, broken)


def test_rejects_missing_vertex():
    # A rotation that forgets a vertex entirely is not an embedding.
    g = cycle_graph(4)
    rot = planar_embedding(g).as_dict()
    del rot[2]
    with pytest.raises(EmbeddingViolation):
        verify_rotation_system(g, rot)


def test_rejects_non_neighbor_in_ring():
    g = grid_graph(3, 3)
    rot = planar_embedding(g).as_dict()
    # Node 0's neighbors are 1 and 3; node 8 is across the grid.
    rot[0] = (1, 8)
    with pytest.raises(EmbeddingViolation):
        verify_rotation_system(g, rot)


def test_rejects_duplicate_neighbor_in_ring():
    g = grid_graph(3, 3)
    rot = planar_embedding(g).as_dict()
    rot[4] = (1, 1, 5, 7)
    with pytest.raises(EmbeddingViolation):
        verify_rotation_system(g, rot)


def test_rejects_extra_vertex_key():
    g = cycle_graph(4)
    rot = planar_embedding(g).as_dict()
    rot[99] = (0, 1)
    with pytest.raises(EmbeddingViolation):
        verify_rotation_system(g, rot)


def test_rejects_positive_genus_deterministically():
    # Sorted neighbor orders embed K4 on the torus (genus 1), whatever
    # order vertex 0 uses: a well-formed but non-planar rotation system.
    g = complete_graph(4)
    bad = {v: tuple(sorted(g.neighbors(v))) for v in g.nodes()}
    rot = verify_rotation_system(g, bad)  # well-formed...
    assert rot.genus() == 1
    with pytest.raises(EmbeddingViolation):  # ...but not planar
        verify_planar_embedding(g, bad)


def test_boundary_check():
    g = grid_graph(3, 3)
    rot = planar_embedding(g)
    # Corners of the grid lie on the outer face of any planar embedding.
    face = check_embedding_with_boundary(rot, [0, 2, 6, 8])
    assert {0, 2, 6, 8} <= {u for u, _ in face}


def test_boundary_check_fails_for_scattered_set():
    g = grid_graph(5, 5)
    rot = planar_embedding(g)
    # The grid center plus all corners are never co-facial.
    with pytest.raises(EmbeddingViolation):
        check_embedding_with_boundary(rot, [0, 4, 20, 24, 12])


def test_empty_boundary_returns_a_face():
    g = cycle_graph(5)
    rot = planar_embedding(g)
    face = check_embedding_with_boundary(rot, [])
    assert face
