"""Unit tests for rotation systems, faces, genus, and boundary walks."""

import pytest

from repro.planar import (
    Graph,
    RotationError,
    RotationSystem,
    contracted_rotation,
    euler_genus,
    trace_faces,
)
from repro.planar.generators import cycle_graph, grid_graph, path_graph
from repro.planar.lr_planarity import planar_embedding
from repro.planar.rotation import rotation_from_positions


def triangle_rotation():
    g = cycle_graph(3)
    return RotationSystem(g, {0: (1, 2), 1: (2, 0), 2: (0, 1)})


class TestConstruction:
    def test_valid(self):
        rot = triangle_rotation()
        assert rot.order(0) == (1, 2)

    def test_missing_vertex_rejected(self):
        g = cycle_graph(3)
        with pytest.raises(RotationError):
            RotationSystem(g, {0: (1, 2), 1: (2, 0)})

    def test_wrong_neighbors_rejected(self):
        g = cycle_graph(3)
        with pytest.raises(RotationError):
            RotationSystem(g, {0: (1, 1), 1: (2, 0), 2: (0, 1)})

    def test_extra_vertex_rejected(self):
        g = cycle_graph(3)
        with pytest.raises(RotationError):
            RotationSystem(g, {0: (1, 2), 1: (2, 0), 2: (0, 1), 9: ()})

    def test_next_prev_inverse(self):
        rot = triangle_rotation()
        for v in (0, 1, 2):
            for u in rot.order(v):
                assert rot.prev_before(v, rot.next_after(v, u)) == u


class TestFacesAndGenus:
    def test_triangle_two_faces(self):
        rot = triangle_rotation()
        assert rot.num_faces() == 2
        assert rot.genus() == 0

    def test_cycle_two_faces(self):
        g = cycle_graph(10)
        rot = planar_embedding(g)
        assert rot.num_faces() == 2

    def test_tree_one_face(self):
        g = path_graph(6)
        rot = planar_embedding(g)
        assert rot.num_faces() == 1

    def test_faces_partition_darts(self):
        rot = planar_embedding(grid_graph(4, 4))
        darts = [d for f in trace_faces(rot) for d in f]
        assert len(darts) == 2 * rot.graph.num_edges
        assert len(set(darts)) == len(darts)

    def test_k4_bad_rotation_has_positive_genus(self):
        # K4 with an "identity" rotation that is NOT planar.
        g = Graph(edges=[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        order = {v: tuple(sorted(g.neighbors(v))) for v in g.nodes()}
        rot = RotationSystem(g, order)
        # Whatever it is, Euler genus is well-defined and non-negative;
        # the planar check must be consistent with it.
        assert rot.genus() >= 0
        assert rot.is_planar_embedding() == (rot.genus() == 0)

    def test_isolated_vertices_count_as_spheres(self):
        g = Graph(nodes=[0, 1, 2])
        g.add_edge(0, 1)
        rot = RotationSystem(g, {0: (1,), 1: (0,), 2: ()})
        assert euler_genus(rot) == 0

    def test_mirror_preserves_genus(self):
        rot = planar_embedding(grid_graph(3, 5))
        assert rot.mirrored().genus() == 0

    def test_face_of_unknown_edge(self):
        rot = triangle_rotation()
        with pytest.raises(RotationError):
            rot.face_of(0, 99)


class TestGeometricRotation:
    def test_grid_positions_give_planar_embedding(self):
        from repro.planar.generators import grid_positions

        g = grid_graph(5, 6)
        rot = rotation_from_positions(g, grid_positions(5, 6))
        assert rot.genus() == 0

    def test_square_clockwise(self):
        g = Graph(edges=[(0, 1), (0, 2), (0, 3), (0, 4)])
        pos = {0: (0, 0), 1: (1, 0), 2: (0, 1), 3: (-1, 0), 4: (0, -1)}
        rot = rotation_from_positions(g, pos)
        ring = rot.order(0)
        i = ring.index(1)
        rotated = ring[i:] + ring[:i]
        # clockwise from +x: +x, -y, -x, +y
        assert rotated == (1, 4, 3, 2)


class TestContractedRotation:
    def test_single_vertex(self):
        rot = planar_embedding(grid_graph(3, 3))
        walk = contracted_rotation(rot, {4})  # center of the grid
        assert sorted(x for _, x in walk) == sorted(rot.graph.neighbors(4))
        assert list(rot.order(4)) == [x for _, x in walk] or True  # cyclic

    def test_walk_covers_all_out_darts(self):
        g = grid_graph(4, 4)
        rot = planar_embedding(g)
        inside = {0, 1, 4, 5}
        walk = contracted_rotation(rot, inside)
        expected = {
            (u, x) for u in inside for x in g.neighbors(u) if x not in inside
        }
        assert set(walk) == expected

    def test_no_out_darts(self):
        rot = planar_embedding(cycle_graph(5))
        assert contracted_rotation(rot, set(rot.graph.nodes())) == []

    def test_disconnected_set_raises(self):
        g = path_graph(5)
        rot = planar_embedding(g)
        with pytest.raises(RotationError):
            contracted_rotation(rot, {0, 4})

    def test_contraction_is_planar(self):
        """Contracting a connected set, the walk becomes the rotation of
        the contracted vertex and the result must stay planar."""
        g = grid_graph(4, 5)
        rot = planar_embedding(g)
        inside = {0, 1, 2, 5, 6, 7}
        walk = contracted_rotation(rot, inside)
        contracted = Graph()
        c = 10_000  # fresh node id, comparable with the others
        for u, v in g.edges():
            cu = c if u in inside else u
            cv = c if v in inside else v
            if cu != cv:
                contracted.add_edge(cu, cv)
        order = {}
        for v in contracted.nodes():
            if v == c:
                ring = []
                for _, x in walk:
                    if x not in ring:
                        ring.append(x)
                order[c] = tuple(ring)
            else:
                order[v] = tuple(
                    c if u in inside else u
                    for u in rot.order(v)
                    if (u in inside) <= ((c in order.get(v, ())) is False)
                )
        # Rebuild ring for outside vertices properly: collapse repeated c.
        for v in contracted.nodes():
            if v == c:
                continue
            ring = []
            for u in rot.order(v):
                t = c if u in inside else u
                if t not in ring:
                    ring.append(t)
            order[v] = tuple(ring)
        rot2 = RotationSystem(contracted, order)
        assert rot2.genus() == 0
