"""Outerplanarity recognition and outer-face orders."""

import pytest

from repro.planar import (
    Graph,
    is_outerplanar,
    outer_face_order,
    outerplanar_embedding,
)
from repro.planar.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_outerplanar,
    random_tree,
    star_graph,
    wheel_graph,
)


class TestRecognition:
    @pytest.mark.parametrize(
        "g",
        [path_graph(8), cycle_graph(9), star_graph(6), random_tree(25, 1),
         random_outerplanar(18, 2), Graph(nodes=[0]), Graph()],
        ids=["path", "cycle", "star", "tree", "random-op", "single", "empty"],
    )
    def test_outerplanar_yes(self, g):
        assert is_outerplanar(g)

    @pytest.mark.parametrize(
        "g",
        [complete_graph(4), complete_bipartite(2, 3), wheel_graph(5), grid_graph(3, 3)],
        ids=["K4", "K23", "wheel", "grid3"],
    )
    def test_outerplanar_no(self, g):
        # K4 and K2,3 are the forbidden minors; wheels/grids contain them.
        assert not is_outerplanar(g)

    def test_k4_minus_edge_is_outerplanar(self):
        g = complete_graph(4)
        g.remove_edge(0, 3)
        assert is_outerplanar(g)


class TestEmbedding:
    def test_embedding_has_common_face(self):
        g = random_outerplanar(15, 4)
        rot = outerplanar_embedding(g)
        assert rot is not None
        assert rot.genus() == 0
        from repro.planar import trace_faces

        all_nodes = set(g.nodes())
        assert any({u for u, _ in f} == all_nodes for f in trace_faces(rot))

    def test_embedding_none_for_k4(self):
        assert outerplanar_embedding(complete_graph(4)) is None


class TestOuterFaceOrder:
    def test_cycle_order_is_the_cycle(self):
        g = cycle_graph(6)
        order = outer_face_order(g)
        assert order is not None
        assert len(order) == 6
        # consecutive elements (cyclically) must be adjacent in the cycle
        for a, b in zip(order, order[1:] + order[:1]):
            assert g.has_edge(a, b)

    def test_k4_has_no_order(self):
        assert outer_face_order(complete_graph(4)) is None

    def test_all_vertices_present(self):
        g = random_outerplanar(12, 9)
        order = outer_face_order(g)
        assert sorted(order) == sorted(g.nodes())

    def test_trivial_cases(self):
        assert outer_face_order(Graph()) == []
        assert outer_face_order(Graph(nodes=[7])) == [7]
