"""Kuratowski witness extraction."""

import random

import networkx as nx
import pytest

from repro.planar import Graph
from repro.planar.generators import (
    complete_bipartite,
    complete_graph,
    grid_graph,
    subdivide,
)
from repro.planar.kuratowski import classify_kuratowski, kuratowski_subgraph


def test_k5_identity():
    w = kuratowski_subgraph(complete_graph(5))
    assert classify_kuratowski(w) == "K5"
    assert w.num_edges == 10


def test_k33_identity():
    w = kuratowski_subgraph(complete_bipartite(3, 3))
    assert classify_kuratowski(w) == "K3,3"
    assert w.num_edges == 9


def test_planar_rejected():
    with pytest.raises(ValueError):
        kuratowski_subgraph(grid_graph(3, 3))


def test_witness_inside_larger_graph():
    g = complete_graph(5)
    # bury it in planar decoration
    nxt = 5
    for v in range(5):
        g.add_edge(v, nxt)
        nxt += 1
    w = kuratowski_subgraph(g)
    assert classify_kuratowski(w) in ("K5", "K3,3")
    for u, v in w.edges():
        assert g.has_edge(u, v)


def test_subdivided_witness():
    g = subdivide(complete_bipartite(3, 3), 3)
    w = kuratowski_subgraph(g)
    assert classify_kuratowski(w) == "K3,3"


def test_dense_random_graphs():
    random.seed(5)
    found = 0
    for trial in range(10):
        nxg = nx.gnp_random_graph(9, 0.7, seed=trial)
        g = Graph(nodes=nxg.nodes(), edges=nxg.edges())
        planar, _ = nx.check_planarity(nxg)
        if planar:
            continue
        w = kuratowski_subgraph(g)
        assert classify_kuratowski(w) in ("K5", "K3,3")
        found += 1
    assert found >= 5  # dense G(9, 0.7) is almost always non-planar


def test_classify_rejects_garbage():
    with pytest.raises(ValueError):
        classify_kuratowski(grid_graph(3, 3))
