"""Biconnected decomposition and block-cut tree, vs the networkx oracle."""

import random

import networkx as nx
import pytest

from repro.planar import (
    BlockCutTree,
    Graph,
    articulation_points,
    biconnected_components,
    edge_id,
)
from repro.planar.generators import (
    caterpillar,
    cycle_graph,
    grid_graph,
    path_graph,
    random_planar,
    random_tree,
    theta_graph,
)


def to_nx(g):
    h = nx.Graph(g.edges())
    h.add_nodes_from(g.nodes())
    return h


class TestKnownDecompositions:
    def test_path_blocks_are_edges(self):
        g = path_graph(5)
        d = biconnected_components(g)
        assert len(d.components) == 4
        assert all(c.is_bridge for c in d.components)
        assert d.cut_vertices() == {1, 2, 3}

    def test_cycle_single_block(self):
        g = cycle_graph(7)
        d = biconnected_components(g)
        assert len(d.components) == 1
        assert d.cut_vertices() == set()

    def test_two_triangles_sharing_vertex(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
        d = biconnected_components(g)
        assert len(d.components) == 2
        assert d.cut_vertices() == {2}
        assert d.is_cut_vertex(2)
        assert not d.is_cut_vertex(0)

    def test_component_id_is_min_edge_id(self):
        # Paper footnote 5: component ID = smallest edge ID inside it.
        g = cycle_graph(4)
        d = biconnected_components(g)
        assert d.components[0].component_id == (0, 1)

    def test_shared_component_of_edge(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        d = biconnected_components(g)
        assert d.shared_component(2, 3) == edge_id(2, 3)
        assert d.shared_component(0, 1) == d.shared_component(1, 2)

    def test_isolated_vertex_has_no_blocks(self):
        g = Graph(nodes=[0])
        d = biconnected_components(g)
        assert d.components == []
        assert d.components_of[0] == []

    def test_every_edge_in_exactly_one_block(self):
        g = random_planar(40, 70, seed=3)
        d = biconnected_components(g)
        covered = [e for c in d.components for e in c.edges]
        assert sorted(covered) == sorted(edge_id(u, v) for u, v in g.edges())


class TestVsNetworkx:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        nxg = nx.gnp_random_graph(rng.randrange(2, 25), rng.random(), seed=seed)
        g = Graph(nodes=nxg.nodes(), edges=nxg.edges())
        d = biconnected_components(g)
        expected_cuts = set(nx.articulation_points(nxg))
        assert d.cut_vertices() == expected_cuts
        expected_blocks = sorted(
            sorted(frozenset(map(tuple, map(sorted, comp))))
            for comp in nx.biconnected_component_edges(nxg)
        )
        got_blocks = sorted(sorted(c.edges) for c in d.components)
        assert got_blocks == expected_blocks

    @pytest.mark.parametrize(
        "g",
        [path_graph(10), cycle_graph(8), grid_graph(4, 4), theta_graph(3, 3),
         caterpillar(6, 2), random_tree(30, 2)],
        ids=["path", "cycle", "grid", "theta", "caterpillar", "tree"],
    )
    def test_articulation_points_families(self, g):
        assert articulation_points(g) == set(nx.articulation_points(to_nx(g)))


class TestBlockCutTree:
    def test_is_tree_for_families(self):
        for g in (path_graph(9), theta_graph(3, 4), caterpillar(5, 3),
                  random_planar(30, 45, seed=8)):
            bct = BlockCutTree(biconnected_components(g))
            assert bct.is_tree()

    def test_structure_two_triangles(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
        bct = BlockCutTree(biconnected_components(g))
        assert len(bct.block_nodes()) == 2
        assert bct.cut_nodes() == [("cut", 2)]
        assert len(bct.blocks_at(2)) == 2
        assert len(bct.blocks_at(0)) == 1
