"""The LR planarity kernel, cross-validated against networkx as an oracle."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planar import Graph, NonPlanarGraphError, is_planar, lr_planarity, planar_embedding
from repro.planar.generators import (
    complete_bipartite,
    complete_graph,
    cycle_graph,
    delaunay_triangulation,
    grid_graph,
    k4_subdivision,
    path_graph,
    random_maximal_planar,
    random_outerplanar,
    star_graph,
    theta_graph,
    triangulated_grid,
    wheel_graph,
)


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph(g.edges())
    h.add_nodes_from(g.nodes())
    return h


PLANAR_FAMILIES = [
    ("path", path_graph(12)),
    ("cycle", cycle_graph(9)),
    ("star", star_graph(7)),
    ("grid", grid_graph(6, 7)),
    ("trigrid", triangulated_grid(5, 5)),
    ("wheel", wheel_graph(8)),
    ("theta", theta_graph(5, 4)),
    ("k4", complete_graph(4)),
    ("k4sub", k4_subdivision(6)),
    ("outerplanar", random_outerplanar(25, 3)),
    ("maximal", random_maximal_planar(40, 5)),
    ("delaunay", delaunay_triangulation(50, 7)[0]),
]

NONPLANAR_FAMILIES = [
    ("k5", complete_graph(5)),
    ("k33", complete_bipartite(3, 3)),
    ("k6", complete_graph(6)),
    ("k44", complete_bipartite(4, 4)),
]


@pytest.mark.parametrize("name,g", PLANAR_FAMILIES, ids=[n for n, _ in PLANAR_FAMILIES])
def test_planar_family_embeds(name, g):
    rot = lr_planarity(g)
    assert rot is not None
    assert rot.genus() == 0


@pytest.mark.parametrize(
    "name,g", NONPLANAR_FAMILIES, ids=[n for n, _ in NONPLANAR_FAMILIES]
)
def test_nonplanar_family_rejected(name, g):
    assert lr_planarity(g) is None
    assert not is_planar(g)
    with pytest.raises(NonPlanarGraphError):
        planar_embedding(g)


def test_edge_bound_shortcut():
    # m > 3n - 6 is rejected without running the DFS machinery.
    g = complete_graph(8)
    assert g.num_edges > 3 * g.num_nodes - 6
    assert lr_planarity(g) is None


def test_empty_and_tiny_graphs():
    assert lr_planarity(Graph()) is not None
    assert lr_planarity(Graph(nodes=[1])) is not None
    assert lr_planarity(Graph(edges=[(1, 2)])) is not None


def test_disconnected_graph():
    g = Graph(edges=[(0, 1), (1, 2), (2, 0), (10, 11)])
    g.add_node(20)
    rot = lr_planarity(g)
    assert rot is not None
    assert rot.genus() == 0


def test_k5_minus_edge_planar():
    g = complete_graph(5)
    g.remove_edge(0, 1)
    rot = lr_planarity(g)
    assert rot is not None and rot.genus() == 0


def test_large_graph_no_recursion_error():
    g = grid_graph(70, 70)  # 4900 nodes, far beyond default recursion limit
    rot = lr_planarity(g)
    assert rot is not None
    assert rot.genus() == 0


def test_agreement_with_networkx_random_sweep():
    random.seed(1234)
    for trial in range(300):
        n = random.randrange(1, 18)
        p = random.random()
        nxg = nx.gnp_random_graph(n, p, seed=trial * 7 + 1)
        g = Graph(nodes=nxg.nodes(), edges=nxg.edges())
        expected, _ = nx.check_planarity(nxg)
        rot = lr_planarity(g)
        assert (rot is not None) == expected, f"trial {trial}"
        if rot is not None:
            assert rot.genus() == 0, f"trial {trial}"


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_agreement_with_networkx_hypothesis(data):
    n = data.draw(st.integers(min_value=1, max_value=14))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = data.draw(st.lists(st.sampled_from(possible), unique=True)) if possible else []
    g = Graph(nodes=range(n), edges=edges)
    expected, _ = nx.check_planarity(to_nx(g))
    rot = lr_planarity(g)
    assert (rot is not None) == expected
    if rot is not None:
        assert rot.genus() == 0


def test_rotation_covers_all_edges():
    g = random_maximal_planar(30, 11)
    rot = lr_planarity(g)
    for v in g.nodes():
        assert set(rot.order(v)) == set(g.neighbors(v))
