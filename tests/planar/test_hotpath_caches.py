"""Unit coverage for the hot-path caching layers.

Three independent caches keep the pipeline fast while provably changing
nothing observable:

* ``graph.sort_key`` — cached ``repr`` used for every canonical sort;
* ``RotationSystem.trusted`` — skips permutation validation for orders
  that are permutations by construction;
* the LR kernel's structural memo — verdicts and int-level rotations
  keyed by the insertion-order adjacency structure, shared across
  isomorphic relabelings.
"""

import random

import pytest

import importlib

from repro.planar import graph as graph_mod
from repro.planar.graph import Graph, sort_key

# The package __init__ rebinds the ``lr_planarity`` attribute to the
# function of the same name; go through importlib for the module itself.
lr_mod = importlib.import_module("repro.planar.lr_planarity")
from repro.planar.lr_planarity import is_planar, lr_planarity
from repro.planar.rotation import RotationSystem
from repro.planar.verify import verify_planar_embedding


# -- sort_key ---------------------------------------------------------------


def test_sort_key_order_equals_repr_order():
    nodes = [
        ("v", 3), ("v", 12), ("stub", ("v", 1), ("v", 2)), ("rest",),
        ("copy", ("v", 5), 2, 0), "plain", ("c", 4), ("ghub",),
    ]
    rng = random.Random(3)
    for _ in range(20):
        rng.shuffle(nodes)
        assert sorted(nodes, key=sort_key) == sorted(nodes, key=repr)


def test_sort_key_unhashable_falls_back_to_repr():
    assert sort_key([1, 2]) == repr([1, 2])


def test_sort_key_cache_clears_when_full(monkeypatch):
    monkeypatch.setattr(graph_mod, "_SORT_KEY_CACHE", {})
    monkeypatch.setattr(graph_mod, "_SORT_KEY_MAX_ENTRIES", 4)
    for i in range(10):
        assert sort_key(("v", i)) == repr(("v", i))
    assert len(graph_mod._SORT_KEY_CACHE) <= 4


# -- RotationSystem.trusted -------------------------------------------------


def test_trusted_skips_validation_but_behaves_identically():
    g = Graph(edges=[(0, 1), (1, 2), (2, 0)])
    order = {0: (1, 2), 1: (2, 0), 2: (0, 1)}
    checked = RotationSystem(g, order)
    trusted = RotationSystem.trusted(g, order)
    for v in (0, 1, 2):
        assert trusted.order(v) == checked.order(v)
        for u in trusted.order(v):
            assert trusted.next_after(v, u) == checked.next_after(v, u)
    assert trusted.genus() == checked.genus() == 0


def test_trusted_does_not_validate_and_plain_constructor_does():
    g = Graph(edges=[(0, 1), (1, 2), (2, 0)])
    bad = {0: (1,), 1: (2, 0), 2: (0, 1)}  # 0's ring is not a permutation
    with pytest.raises(ValueError):
        RotationSystem(g, bad)
    RotationSystem.trusted(g, bad)  # by-construction caller: no check


# -- LR structural memo -----------------------------------------------------


def _fresh_lr_caches(monkeypatch):
    monkeypatch.setattr(lr_mod, "_DECIDE_MEMO", {})
    monkeypatch.setattr(lr_mod, "_EMBED_MEMO", {})


def _star(center, leaves):
    g = Graph()
    g.add_node(center)
    for leaf in leaves:
        g.add_edge(center, leaf)
    return g


def test_isomorphic_relabelings_share_one_memo_entry(monkeypatch):
    _fresh_lr_caches(monkeypatch)
    r1 = lr_planarity(_star("a", ["x", "y", "z"]))
    assert len(lr_mod._EMBED_MEMO) == 1
    r2 = lr_planarity(_star(("v", 9), [("v", 1), ("v", 5), ("v", 7)]))
    assert len(lr_mod._EMBED_MEMO) == 1  # second call was a structural hit
    # The memoized int rotations map back through each graph's own
    # labels: r2 is exactly r1 under the insertion-order correspondence.
    relabel = {"a": ("v", 9), "x": ("v", 1), "y": ("v", 5), "z": ("v", 7)}
    for v in ("a", "x", "y", "z"):
        assert r2.order(relabel[v]) == tuple(relabel[u] for u in r1.order(v))
    # Both are genuine embeddings of their own graphs.
    verify_planar_embedding(r1.graph, {v: r1.order(v) for v in r1.graph.nodes()})
    verify_planar_embedding(r2.graph, {v: r2.order(v) for v in r2.graph.nodes()})


def test_memo_hit_equals_cold_result(monkeypatch):
    # The same graph embedded cold and through the memo must agree exactly.
    def build():
        g = Graph()
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]:
            g.add_edge(u, v)
        return g  # K4

    _fresh_lr_caches(monkeypatch)
    cold = lr_planarity(build())
    warm = lr_planarity(build())
    assert all(cold.order(v) == warm.order(v) for v in build().nodes())


def test_nonplanar_verdict_is_memoized_and_shared(monkeypatch):
    _fresh_lr_caches(monkeypatch)

    def k5(labels):
        g = Graph()
        for i, u in enumerate(labels):
            for v in labels[i + 1:]:
                g.add_edge(u, v)
        return g

    assert lr_planarity(k5([0, 1, 2, 3, 4])) is None
    assert len(lr_mod._EMBED_MEMO) == 1
    assert lr_planarity(k5(["a", "b", "c", "d", "e"])) is None
    assert len(lr_mod._EMBED_MEMO) == 1
    # is_planar consults the embed memo instead of re-deciding.
    assert is_planar(k5([10, 11, 12, 13, 14])) is False
    assert lr_mod._DECIDE_MEMO == {next(iter(lr_mod._EMBED_MEMO)): False}


def test_different_insertion_orders_get_distinct_entries(monkeypatch):
    # Same abstract graph, different adjacency insertion order: distinct
    # structures, distinct (but each self-consistent) memo entries.
    _fresh_lr_caches(monkeypatch)
    g1 = Graph(edges=[(0, 1), (0, 2), (1, 2)])
    g2 = Graph(edges=[(1, 2), (0, 2), (0, 1)])
    r1, r2 = lr_planarity(g1), lr_planarity(g2)
    assert len(lr_mod._EMBED_MEMO) == 2
    for g, r in ((g1, r1), (g2, r2)):
        verify_planar_embedding(g, {v: r.order(v) for v in g.nodes()})


def test_memo_caps_and_clears(monkeypatch):
    _fresh_lr_caches(monkeypatch)
    monkeypatch.setattr(lr_mod, "_MEMO_MAX_ENTRIES", 3)
    for size in range(3, 12):
        assert lr_planarity(_star(0, list(range(1, size)))) is not None
    assert len(lr_mod._EMBED_MEMO) <= 3
