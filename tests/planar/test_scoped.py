"""ScopedPlanarityOracle: block-scoped verdicts == full-graph verdicts.

The oracle's contract (used by ``RecursionContext.try_split``): between
queries, every graph modification is incident to the queried copy
vertex, and a ``False`` verdict is followed by an exact rollback.  Under
that discipline its answers must equal a full-graph left-right test,
while only testing the blocks containing the copy.
"""

import random

from repro.planar.graph import Graph
from repro.planar.lr_planarity import lr_is_planar
from repro.planar.scoped import ScopedPlanarityOracle
from repro.planar.generators import random_maximal_planar


def _k4(labels=(0, 1, 2, 3)):
    g = Graph()
    a, b, c, d = labels
    for u, v in [(a, b), (a, c), (a, d), (b, c), (b, d), (c, d)]:
        g.add_edge(u, v)
    return g


def test_first_query_is_a_full_test_and_establishes_invariant():
    g = _k4()
    oracle = ScopedPlanarityOracle(g)
    g.add_edge("copy", 0)
    g.add_edge("copy", 1)
    assert oracle.check_rerouted("copy") is True
    assert oracle.known_planar
    assert oracle.stats() == {"full_tests": 1, "scoped_tests": 0, "memo_hits": 0}


def test_scoped_rejection_and_memoized_retry():
    g = _k4()
    oracle = ScopedPlanarityOracle(g)
    # Establish the invariant with a benign modification.
    g.add_edge("c1", 0)
    g.add_edge("c1", 1)
    assert oracle.check_rerouted("c1") is True

    # K4 plus an apex adjacent to all four vertices contains K5.
    for v in (0, 1, 2, 3):
        g.add_edge("c2", v)
    assert oracle.check_rerouted("c2") is False
    assert lr_is_planar(g) is False  # scoped verdict == full verdict
    stats = oracle.stats()
    assert stats["scoped_tests"] == 1 and stats["memo_hits"] == 0

    # Roll back exactly, as try_split does, then retry with a *different*
    # copy label: the canonicalized region memo must hit.
    adj = g._adj
    del adj["c2"]
    for v in (0, 1, 2, 3):
        del adj[v]["c2"]
    for v in (0, 1, 2, 3):
        g.add_edge("c3", v)
    assert oracle.check_rerouted("c3") is False
    stats = oracle.stats()
    assert stats["scoped_tests"] == 2 and stats["memo_hits"] == 1


def test_scoped_only_tests_the_blocks_at_the_copy():
    # Two K4 blocks sharing cut vertex 0; the copy touches only one side.
    g = _k4((0, 1, 2, 3))
    for u, v in [(0, 4), (0, 5), (0, 6), (4, 5), (4, 6), (5, 6)]:
        g.add_edge(u, v)
    oracle = ScopedPlanarityOracle(g)
    g.add_edge("c1", 1)
    g.add_edge("c1", 2)
    assert oracle.check_rerouted("c1") is True  # full test, invariant set
    g.add_edge("c2", 4)
    g.add_edge("c2", 5)
    assert oracle.check_rerouted("c2") is True
    region, _key = oracle._region_at("c2")
    # The far K4 block {1,2,3,c1} is not in the tested region.
    assert region <= {0, 4, 5, 6, "c2"}


def test_random_reroutes_agree_with_full_graph_test():
    rng = random.Random(11)
    for seed in range(6):
        g = random_maximal_planar(24, seed=seed)
        oracle = ScopedPlanarityOracle(g)
        serial = 0
        for _ in range(12):
            coordinator = rng.choice(g.nodes())
            neighbors = list(g._adj[coordinator])
            if len(neighbors) < 2 or isinstance(coordinator, tuple):
                continue
            bundle = rng.sample(neighbors, rng.choice((2, min(3, len(neighbors)))))
            copy = ("copy", serial)
            serial += 1
            for u in bundle:
                g.remove_edge(u, coordinator)
                g.add_edge(u, copy)
            g.add_edge(copy, coordinator)
            verdict = oracle.check_rerouted(copy)
            assert verdict == lr_is_planar(g)
            if not verdict:
                # Roll back exactly (as try_split does).
                adj = g._adj
                del adj[copy]
                for u in bundle:
                    del adj[u][copy]
                    g.add_edge(u, coordinator)
                del adj[coordinator][copy]
        assert oracle.stats()["scoped_tests"] > 0
