"""Face-level utilities on rotation systems."""

from repro.planar import planar_embedding, trace_faces
from repro.planar.generators import cycle_graph, grid_graph, wheel_graph
from repro.planar.rotation import outer_face_darts


def test_outer_face_darts_finds_enclosing_face():
    rot = planar_embedding(cycle_graph(8))
    faces = outer_face_darts(rot, [0, 3, 6])
    assert len(faces) == 2  # both faces of a cycle contain every vertex


def test_outer_face_darts_empty_when_not_cofacial():
    rot = planar_embedding(grid_graph(5, 5))
    assert outer_face_darts(rot, [0, 12, 24]) == []


def test_face_lengths_sum_to_twice_edges():
    for g in (grid_graph(4, 4), wheel_graph(7), cycle_graph(5)):
        rot = planar_embedding(g)
        assert sum(len(f) for f in trace_faces(rot)) == 2 * g.num_edges


def test_face_walks_are_closed():
    rot = planar_embedding(grid_graph(3, 4))
    for face in trace_faces(rot):
        for (a, b), (c, d) in zip(face, face[1:] + face[:1]):
            assert b == c  # consecutive darts chain head-to-tail


def test_wheel_face_census():
    rim = 9
    rot = planar_embedding(wheel_graph(rim))
    sizes = sorted(len(f) for f in trace_faces(rot))
    assert sizes == [3] * rim + [rim]  # rim triangles + the outer rim face
