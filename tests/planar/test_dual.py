"""Dual graphs of planar embeddings."""

import pytest

from repro.planar import Graph, dual_graph, planar_embedding
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_maximal_planar,
    wheel_graph,
)


def test_cycle_dual_is_single_edge():
    rot = planar_embedding(cycle_graph(6))
    dual = dual_graph(rot)
    assert dual.num_faces == 2
    assert dual.graph.num_edges == 1  # parallel dual edges coalesced


def test_tree_dual_is_one_face():
    rot = planar_embedding(path_graph(5))
    dual = dual_graph(rot)
    assert dual.num_faces == 1
    # every tree edge is a bridge: same face on both sides
    assert len(dual.bridges()) == 4


def test_euler_consistency():
    g = random_maximal_planar(30, 4)
    rot = planar_embedding(g)
    dual = dual_graph(rot)
    assert g.num_nodes - g.num_edges + dual.num_faces == 2


def test_maximal_planar_faces_are_triangles():
    g = random_maximal_planar(25, 7)
    rot = planar_embedding(g)
    dual = dual_graph(rot)
    assert all(dual.face_size(f) == 3 for f in range(dual.num_faces))
    # dual of a triangulation is 3-regular
    assert all(dual.graph.degree(f) == 3 for f in dual.graph.nodes())


def test_dual_is_connected_for_connected_primal():
    rot = planar_embedding(grid_graph(4, 5))
    dual = dual_graph(rot)
    assert dual.graph.is_connected()


def test_faces_at_vertex():
    rot = planar_embedding(wheel_graph(6))
    dual = dual_graph(rot)
    hub_faces = dual.faces_at(0)
    assert len(hub_faces) == 6  # one face per hub corner
    # the hub never touches the outer face of the wheel
    sizes = {dual.face_size(f) for f in hub_faces}
    assert sizes == {3}


def test_edge_faces_cover_all_edges():
    g = grid_graph(3, 4)
    rot = planar_embedding(g)
    dual = dual_graph(rot)
    assert len(dual.edge_faces) == g.num_edges


def test_nonplanar_rotation_rejected():
    from repro.planar import RotationSystem
    from repro.planar.generators import complete_graph

    g = complete_graph(4)
    bad = RotationSystem(g, {v: tuple(sorted(g.neighbors(v))) for v in g.nodes()})
    if bad.genus() != 0:
        with pytest.raises(ValueError):
            dual_graph(bad)


def test_empty_graph():
    rot = planar_embedding(Graph(nodes=[1]))
    dual = dual_graph(rot)
    assert dual.num_faces == 0
    assert dual.faces_at(1) == []
