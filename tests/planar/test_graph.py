"""Unit tests for the core Graph type and edge identifiers."""

import pytest

from repro.planar import Graph, GraphError, edge_id


class TestEdgeId:
    def test_orders_endpoints(self):
        assert edge_id(2, 1) == (1, 2)
        assert edge_id(1, 2) == (1, 2)

    def test_paper_footnote5_convention(self):
        # ID(e) = (ID(u), ID(v)) with ID(u) < ID(v).
        assert edge_id(10, 3) == (3, 10)

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            edge_id(1, 1)

    def test_tuple_ids(self):
        assert edge_id(("v", 2), ("v", 1)) == (("v", 1), ("v", 2))


class TestGraphBasics:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.is_connected()  # vacuous

    def test_add_edge_adds_nodes(self):
        g = Graph()
        g.add_edge(1, 2)
        assert set(g.nodes()) == {1, 2}
        assert g.has_edge(2, 1)

    def test_parallel_edges_coalesce(self):
        g = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.add_edge(3, 3)

    def test_degree_and_neighbors(self):
        g = Graph(edges=[(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert set(g.neighbors(1)) == {2, 3, 4}
        assert g.degree(2) == 1

    def test_neighbors_insertion_order(self):
        g = Graph()
        for v in (5, 3, 9):
            g.add_edge(0, v)
        assert g.neighbors(0) == [5, 3, 9]

    def test_missing_node_queries_raise(self):
        g = Graph()
        with pytest.raises(GraphError):
            g.neighbors(1)
        with pytest.raises(GraphError):
            g.degree(1)

    def test_remove_edge(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_edge(2, 3)
        with pytest.raises(GraphError):
            g.remove_edge(1, 2)

    def test_remove_node(self):
        g = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        g.remove_node(2)
        assert 2 not in g
        assert g.has_edge(1, 3)
        assert g.num_edges == 1

    def test_copy_is_independent(self):
        g = Graph(edges=[(1, 2)])
        h = g.copy()
        h.add_edge(2, 3)
        assert not g.has_edge(2, 3)
        assert h.has_edge(2, 3)

    def test_edges_canonical(self):
        g = Graph(edges=[(2, 1), (3, 2)])
        assert set(g.edges()) == {(1, 2), (2, 3)}

    def test_len_iter_contains(self):
        g = Graph(nodes=[1, 2, 3])
        assert len(g) == 3
        assert sorted(g) == [1, 2, 3]
        assert 2 in g
        assert 7 not in g


class TestSubgraphAndComponents:
    def test_subgraph_induced(self):
        g = Graph(edges=[(1, 2), (2, 3), (3, 1), (3, 4)])
        s = g.subgraph([1, 2, 3])
        assert s.num_edges == 3
        assert 4 not in s

    def test_subgraph_missing_node_raises(self):
        g = Graph(nodes=[1])
        with pytest.raises(GraphError):
            g.subgraph([1, 99])

    def test_components(self):
        g = Graph(edges=[(1, 2), (3, 4)])
        g.add_node(5)
        comps = g.connected_components()
        assert sorted(sorted(c) for c in comps) == [[1, 2], [3, 4], [5]]
        assert not g.is_connected()

    def test_connected_path(self):
        g = Graph(edges=[(i, i + 1) for i in range(9)])
        assert g.is_connected()
