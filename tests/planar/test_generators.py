"""Workload generators: sizes, planarity, and family-specific structure."""

import pytest

from repro.planar import is_outerplanar, is_planar
from repro.planar.generators import (
    caterpillar,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    cylinder_graph,
    delaunay_triangulation,
    grid_graph,
    grid_positions,
    k4_subdivision,
    path_graph,
    random_maximal_planar,
    random_outerplanar,
    random_planar,
    random_tree,
    star_graph,
    stacked_prism,
    subdivide,
    theta_graph,
    triangulated_grid,
    wheel_graph,
)


class TestBasicFamilies:
    def test_path(self):
        g = path_graph(10)
        assert (g.num_nodes, g.num_edges) == (10, 9)

    def test_cycle(self):
        g = cycle_graph(10)
        assert (g.num_nodes, g.num_edges) == (10, 10)
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert g.num_edges == 6

    def test_wheel(self):
        g = wheel_graph(7)
        assert g.num_nodes == 8
        assert g.degree(0) == 7
        assert all(g.degree(v) == 3 for v in g.nodes() if v != 0)

    def test_complete(self):
        g = complete_graph(6)
        assert g.num_edges == 15

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.num_edges == 12


class TestGridFamilies:
    def test_grid_size_and_planarity(self):
        g = grid_graph(5, 8)
        assert g.num_nodes == 40
        assert g.num_edges == 5 * 7 + 8 * 4
        assert is_planar(g)

    def test_grid_positions_match(self):
        pos = grid_positions(3, 4)
        assert pos[0] == (0.0, 0.0)
        assert pos[3 * 4 - 1] == (3.0, 2.0)

    def test_triangulated_grid(self):
        g = triangulated_grid(4, 4)
        assert g.num_edges == grid_graph(4, 4).num_edges + 9
        assert is_planar(g)

    def test_cylinder(self):
        g = cylinder_graph(3, 6)
        assert all(
            sum(1 for _ in g.neighbors(r * 6 + c)) >= 3
            for r in range(3)
            for c in range(6)
        ) or True
        assert is_planar(g)
        with pytest.raises(ValueError):
            cylinder_graph(3, 2)

    def test_stacked_prism(self):
        g = stacked_prism(4, 8)
        assert g.num_nodes == 32
        assert is_planar(g)


class TestSubdivisions:
    def test_subdivide_counts(self):
        g = subdivide(complete_graph(4), 3)
        # 6 edges, each gaining 2 interior vertices
        assert g.num_nodes == 4 + 6 * 2
        assert g.num_edges == 6 * 3

    def test_subdivide_identity(self):
        g = subdivide(cycle_graph(5), 1)
        assert (g.num_nodes, g.num_edges) == (5, 5)

    def test_k4_subdivision_is_lower_bound_graph(self):
        # Paper footnote 1: K4 with each edge a Theta(D)-long path.
        g = k4_subdivision(10)
        assert g.num_nodes == 4 + 6 * 9
        assert is_planar(g)
        degree3 = [v for v in g.nodes() if g.degree(v) == 3]
        assert len(degree3) == 4  # the original branch vertices

    def test_subdivide_requires_positive(self):
        with pytest.raises(ValueError):
            subdivide(cycle_graph(3), 0)


class TestRandomFamilies:
    def test_random_tree(self):
        g = random_tree(50, 7)
        assert g.num_edges == 49
        assert g.is_connected()

    def test_random_tree_deterministic(self):
        assert random_tree(20, 5).edges() == random_tree(20, 5).edges()

    def test_random_outerplanar(self):
        for seed in range(8):
            g = random_outerplanar(16, seed)
            assert is_outerplanar(g)
            assert g.is_connected()

    def test_random_maximal_planar_edge_count(self):
        for seed in range(5):
            g = random_maximal_planar(25, seed)
            assert g.num_edges == 3 * g.num_nodes - 6
            assert is_planar(g)

    def test_random_planar(self):
        g = random_planar(40, 60, seed=2)
        assert g.is_connected()
        assert is_planar(g)
        assert g.num_edges <= 62

    def test_delaunay(self):
        g, pos = delaunay_triangulation(60, 4)
        assert g.num_nodes == 60
        assert len(pos) == 60
        assert g.is_connected()
        assert is_planar(g)

    def test_theta(self):
        g = theta_graph(4, 5)
        assert g.degree(0) == 4 and g.degree(1) == 4
        assert is_planar(g)
        with pytest.raises(ValueError):
            theta_graph(1, 3)

    def test_caterpillar(self):
        g = caterpillar(8, 3)
        assert g.num_nodes == 8 + 24
        assert g.num_edges == g.num_nodes - 1
