"""Causal tracing: Lamport chain clocks, the critical path, and the
``critical_path <= real message rounds`` sandwich (exact fault-free)."""

import pytest

from repro import distributed_planar_embedding
from repro.congest import CongestNetwork, FaultPlan, RoundMetrics
from repro.core import self_healing_embedding
from repro.obs import CausalRecorder, causal_override, default_causal_recorder
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    random_tree,
    triangulated_grid,
)

FAMILIES = [
    ("grid", lambda: grid_graph(5, 7)),
    ("trigrid", lambda: triangulated_grid(4, 6)),
    ("cycle", lambda: cycle_graph(17)),
    ("outerplanar", lambda: random_outerplanar(30, seed=3)),
    ("maximal", lambda: random_maximal_planar(24, seed=7)),
    ("tree", lambda: random_tree(33, seed=1)),
]


class TestCriticalPath:
    @pytest.mark.parametrize("make", [f[1] for f in FAMILIES],
                             ids=[f[0] for f in FAMILIES])
    def test_exact_on_fault_free_run(self, make):
        """Acceptance: every pipeline primitive is receive-driven, so on a
        fault-free run the longest happens-before chain accounts for every
        message round — equality, not just the structural <=."""
        recorder = CausalRecorder()
        result = distributed_planar_embedding(make(), causal=recorder)
        report = recorder.report()
        assert report["critical_path"] == report["real_rounds"]
        assert report["real_rounds"] <= result.metrics.rounds

    def test_inequality_survives_chaos(self):
        """Under drops and retransmissions some rounds extend no chain, so
        the equality degrades to critical_path <= real rounds — never >."""
        plan = FaultPlan.parse("drop=0.05,corrupt=0.02,crash=2:4", seed=17)
        recorder = CausalRecorder()
        with causal_override(recorder):
            result = self_healing_embedding(grid_graph(5, 5), faults=plan)
        report = recorder.report()
        assert not getattr(result, "degraded", False)
        assert report["critical_path"] <= report["real_rounds"]

    def test_report_lands_on_result_and_run_attrs(self):
        recorder = CausalRecorder()
        result = distributed_planar_embedding(grid_graph(4, 4), causal=recorder)
        assert result.causal is not None
        assert result.causal["type"] == "causal-report"
        assert result.causal["critical_path"] == recorder.total_critical_path()
        assert result.to_report()["causal"] == result.causal

    def test_phase_summary_partitions_totals(self):
        recorder = CausalRecorder()
        distributed_planar_embedding(grid_graph(4, 4), causal=recorder)
        phases = recorder.phase_summary()
        assert phases  # bfs / partition / verify phases all recorded
        assert sum(p["critical_path"] for p in phases.values()) == (
            recorder.total_critical_path()
        )
        assert sum(p["rounds"] for p in phases.values()) == recorder.total_rounds()


class TestWitnessChain:
    def test_chain_stamps_are_consecutive_hops(self):
        """The witness walks predecessor pointers: stamps strictly increase
        along the chain and the last link carries the critical path."""
        recorder = CausalRecorder()
        distributed_planar_embedding(grid_graph(5, 7), causal=recorder)
        longest = recorder.longest
        assert longest is not None
        chain = longest["chain"]
        assert chain, "deepest execution must produce a witness"
        stamps = [link["stamp"] for link in chain]
        assert stamps == list(range(stamps[0], stamps[0] + len(stamps)))
        assert stamps[0] == 1  # unbounded chain reaches the first hop
        assert stamps[-1] == longest["critical_path"]

    def test_chain_length_is_bounded(self):
        recorder = CausalRecorder(max_chain=3)
        distributed_planar_embedding(grid_graph(5, 7), causal=recorder)
        assert len(recorder.longest["chain"]) <= 3


class TestEdgeSample:
    def test_sample_is_bounded_but_counting_is_not(self):
        recorder = CausalRecorder(max_edges=10)
        distributed_planar_embedding(grid_graph(5, 5), causal=recorder)
        assert len(recorder.edges) == 10
        assert recorder.edges_total > 10
        report = recorder.report()
        assert report["edges_sampled"] == 10
        assert report["edges_total"] == recorder.edges_total
        assert "edges" not in report  # only with include_edges=True
        assert recorder.report(include_edges=True)["edges"] == recorder.edges

    def test_edges_carry_round_and_stamp(self):
        recorder = CausalRecorder()
        distributed_planar_embedding(grid_graph(3, 3), causal=recorder)
        for edge in recorder.edges:
            assert edge["stamp"] >= 1
            assert edge["round"] >= 1
            assert isinstance(edge["sender"], str)  # repr'd for JSON


class TestOverrideIdiom:
    def test_override_reaches_internal_networks(self):
        recorder = CausalRecorder()
        with causal_override(recorder):
            assert default_causal_recorder() is recorder
            distributed_planar_embedding(grid_graph(3, 3))
        assert default_causal_recorder() is None
        assert recorder.executions

    def test_untraced_network_keeps_raw_delivery_hook(self):
        """Invariant: with no recorder installed the delivery hook is the
        unwrapped method — zero causal code on the untraced hot path."""
        net = CongestNetwork(grid_graph(2, 2), metrics=RoundMetrics())
        assert net._causal is None
        assert net._deliver.__func__ is CongestNetwork._post_outbox

    def test_recorder_wraps_delivery_hook(self):
        recorder = CausalRecorder()
        with causal_override(recorder):
            net = CongestNetwork(grid_graph(2, 2), metrics=RoundMetrics())
        assert net._causal is recorder
        assert net._deliver.__name__ == "observing_post"

    def test_nested_override_restores_outer(self):
        outer, inner = CausalRecorder(), CausalRecorder()
        with causal_override(outer):
            with causal_override(inner):
                assert default_causal_recorder() is inner
            assert default_causal_recorder() is outer
        assert default_causal_recorder() is None
