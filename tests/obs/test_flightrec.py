"""The crash flight recorder: bounded rings, JSONL round-trip, and the
last-event-matches-raised-error contract on budget exhaustion."""

import json

import pytest

from repro.congest import (
    FaultPlan,
    RetransmitBudgetExceededError,
    RoundMetrics,
    run_reliable,
)
from repro.core import self_healing_embedding
from repro.obs import (
    FlightRecorder,
    TraceFormatError,
    default_flight_recorder,
    flight_override,
    load_flight,
)
from repro.obs.flightrec import DRIVER_LANE, FLIGHT_FORMAT_VERSION
from repro.planar.generators import grid_graph, path_graph

from tests.congest.test_reliable import Streamer


class TestRingBuffer:
    def test_eviction_keeps_last_k_per_node(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("a", "send", round_no=i, seqno=i)
        rec.record("b", "deliver", round_no=99)
        assert len(rec) == 5  # 4 retained for a, 1 for b
        assert rec.events_recorded == 11
        kept = [ev["detail"]["seqno"] for ev in rec.events() if ev["node"] == "'a'"]
        assert kept == [6, 7, 8, 9]

    def test_events_are_globally_ordered(self):
        rec = FlightRecorder()
        rec.record("b", "x")
        rec.record("a", "y")
        rec.record("b", "z")
        seqs = [ev["seq"] for ev in rec.events()]
        assert seqs == sorted(seqs)
        assert rec.last()["kind"] == "z"

    def test_note_error_lands_on_driver_lane(self):
        rec = FlightRecorder()
        rec.note_error(ValueError("boom"), round_no=7, stage="embed")
        last = rec.last()
        assert last["node"] == repr(DRIVER_LANE)
        assert last["detail"]["error"] == "ValueError"
        assert last["detail"]["message"] == "boom"
        assert last["detail"]["stage"] == "embed"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestJsonlRoundTrip:
    def test_dump_and_load(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        rec.record(("v", 1), "send", round_no=3, to="('v', 2)", words=2)
        rec.note_error(RuntimeError("dead"))
        path = rec.dump(tmp_path / "flight.jsonl")
        events = load_flight(path)
        assert events == rec.events()
        header = json.loads(path.read_text().splitlines()[0])
        assert header["type"] == "flight"
        assert header["version"] == FLIGHT_FORMAT_VERSION
        assert header["events_recorded"] == 2

    def test_load_rejects_bad_json(self):
        with pytest.raises(TraceFormatError):
            load_flight("not json at all\n")

    def test_load_rejects_non_object_line(self):
        with pytest.raises(TraceFormatError):
            load_flight("[1, 2]\n")

    def test_load_rejects_version_drift(self):
        header = json.dumps({"type": "flight", "version": FLIGHT_FORMAT_VERSION + 1})
        with pytest.raises(TraceFormatError, match="version"):
            load_flight(header + "\n")

    def test_load_rejects_missing_keys(self):
        with pytest.raises(TraceFormatError, match="'kind'"):
            load_flight(json.dumps({"seq": 1, "node": "'a'"}) + "\n")


class TestBudgetExhaustion:
    def test_last_event_matches_raised_error(self):
        """Acceptance: when the ARQ gives up, the give-up is recorded
        *before* the raise, so the recorder's globally-last event names
        the exact error the caller sees."""
        rec = FlightRecorder()
        plan = FaultPlan(seed=1, drop_rate=1.0)
        with flight_override(rec):
            with pytest.raises(RetransmitBudgetExceededError) as info:
                run_reliable(
                    path_graph(2), Streamer, metrics=RoundMetrics(),
                    phase="doomed", faults=plan, max_attempts=3,
                )
        last = rec.last()
        assert last["kind"] == "arq-give-up"
        assert last["detail"]["error"] == "RetransmitBudgetExceededError"
        assert last["detail"]["message"] == str(info.value)
        assert any(ev["kind"] == "arq-retransmit" for ev in rec.events())

    def test_degraded_run_dumps_loadable_flight(self, tmp_path):
        """Acceptance: a chaos run that exhausts the healing budget leaves
        a loadable JSONL dump whose last event is the error that killed
        the final attempt."""
        flight_path = tmp_path / "flight.jsonl"
        plan = FaultPlan(seed=9, drop_rate=0.9)
        result = self_healing_embedding(
            grid_graph(3, 3), faults=plan, max_retries=1,
            flight_path=flight_path,
        )
        assert getattr(result, "degraded", False)
        assert result.flight is not None
        events = load_flight(flight_path)
        assert events
        last = events[-1]
        assert last["kind"] == "error"
        assert last["node"] == repr(DRIVER_LANE)
        # The diagnosis names the same last error the recorder captured.
        assert last["detail"]["error"] in result.diagnosis
        assert last["detail"]["message"] in result.diagnosis
        kinds = {ev["kind"] for ev in events}
        assert "send" in kinds  # fault-layer traffic made it into the box


class TestAttachment:
    def test_clean_run_records_nothing(self):
        rec = FlightRecorder()
        with flight_override(rec):
            self_healing_embedding(grid_graph(3, 3))
        # No fault plan => no fault state => no per-frame flight code.
        assert not any(ev["kind"] == "send" for ev in rec.events())

    def test_chaos_run_records_faults(self):
        rec = FlightRecorder(capacity=16)
        plan = FaultPlan.parse("drop=0.05,corrupt=0.02,crash=2:4", seed=17)
        with flight_override(rec):
            result = self_healing_embedding(grid_graph(4, 4), faults=plan)
        assert not getattr(result, "degraded", False)
        kinds = {ev["kind"] for ev in rec.events()}
        assert "send" in kinds and "deliver" in kinds
        assert rec.events_recorded > len(rec)  # rings actually bounded it

    def test_override_restores_previous(self):
        rec = FlightRecorder()
        with flight_override(rec):
            assert default_flight_recorder() is rec
        assert default_flight_recorder() is None
