"""The tracing subsystem: spans, rollups, observer protocol, JSONL export."""

import io
import json

from repro import distributed_planar_embedding
from repro.analysis import load_trace
from repro.congest import CongestNetwork, RoundMetrics
from repro.obs import Tracer, maybe_span
from repro.planar.generators import grid_graph


def fake_clock():
    """A deterministic clock: each call advances by one second."""
    t = iter(range(10_000))
    return lambda: float(next(t))


class TestSpans:
    def test_nesting_and_parentage(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        assert tr.root is outer
        assert inner in outer.children
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_wall_clock_from_injected_clock(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("s") as sp:
            pass
        assert sp.wall_s > 0

    def test_sequential_children_sum(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("root") as root:
            with tr.span("a") as a:
                a.rounds = 5
            with tr.span("b") as b:
                b.rounds = 7
        assert root.total_rounds() == 12

    def test_parallel_children_take_max(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("root") as root:
            root.rounds = 2
            with tr.span("call", parallel=True) as a:
                a.rounds = 5
            with tr.span("call", parallel=True) as b:
                b.rounds = 9
            with tr.span("seq") as c:
                c.rounds = 1
        # own 2 + max(5, 9) parallel + 1 sequential
        assert root.total_rounds() == 12

    def test_traffic_always_sums(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("root") as root:
            with tr.span("call", parallel=True) as a:
                a.words, a.messages = 10, 3
            with tr.span("call", parallel=True) as b:
                b.words, b.messages = 20, 4
        assert root.total_words() == 30
        assert root.total_messages() == 7

    def test_events_attach_to_current_span(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("s") as sp:
            tr.event("splitter", root=0, splitter=42)
        assert sp.events[0].name == "splitter"
        assert sp.events[0].attrs["splitter"] == 42

    def test_event_without_open_span_is_dropped(self):
        tr = Tracer(clock=fake_clock())
        assert tr.event("orphan") is None


class TestObserverProtocol:
    def test_on_round_accumulates(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("phase") as sp:
            tr.on_round(1, messages=4, words=9, max_edge_words=2)
            tr.on_round(2, messages=1, words=3, max_edge_words=1)
        assert (sp.rounds, sp.messages, sp.words) == (2, 5, 12)
        assert sp.max_edge_words == 2

    def test_bandwidth_high_water_event(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("phase") as sp:
            tr.on_round(1, 1, 1, max_edge_words=1)
            tr.on_round(2, 1, 1, max_edge_words=5)
            tr.on_round(3, 1, 1, max_edge_words=5)  # no new high-water
        marks = [e for e in sp.events if e.name == "bandwidth-high-water"]
        assert [e.attrs["edge_words"] for e in marks] == [1, 5]

    def test_model_charges_add_rounds_real_charges_do_not(self):
        tr = Tracer(clock=fake_clock())
        m = RoundMetrics(observer=tr)
        with tr.span("s") as sp:
            m.charge("upcast", 6, words=12)  # cost-model: counts
            m.tag_phase("bfs", 4, words=8)  # real: rounds came via on_round
        assert sp.rounds == 6
        assert sp.words == 12
        kinds = [e.attrs["kind"] for e in sp.events if e.name == "charge"]
        assert kinds == ["charge", "real"]


class TestJsonl:
    def test_round_trip_preserves_tree_and_rollup(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("run", kind="run", n=9) as root:
            root.rounds = 1
            with tr.span("call", kind="call", parallel=True) as a:
                a.rounds = 4
                tr.event("splitter", splitter=3)
            with tr.span("call", kind="call", parallel=True) as b:
                b.rounds = 6
        buf = io.StringIO()
        tr.write_jsonl(buf)
        lines = buf.getvalue().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "trace" and header["spans"] == 3
        loaded = load_trace(lines)
        assert loaded.name == "run"
        assert loaded.attrs == {"n": 9}
        assert loaded.total_rounds() == tr.root.total_rounds() == 7
        assert len(loaded.children) == 2
        assert loaded.children[0].events[0].attrs == {"splitter": 3}

    def test_every_line_is_json(self):
        tr = Tracer(clock=fake_clock())
        with tr.span("s"):
            pass
        for line in tr.to_jsonl_lines():
            json.loads(line)


class TestMaybeSpan:
    def test_none_tracer_yields_none(self):
        with maybe_span(None, "x") as sp:
            assert sp is None

    def test_real_tracer_yields_span(self):
        tr = Tracer(clock=fake_clock())
        with maybe_span(tr, "x", kind="phase") as sp:
            assert sp is not None and sp.kind == "phase"


class TestEndToEnd:
    def test_traced_grid_rollup_matches_ledger_exactly(self):
        """Acceptance: on a 16x16 grid the trace's rollup (sequential sum,
        parallel max) equals the ledger's round count exactly — every round
        and every word has a span."""
        tr = Tracer()
        result = distributed_planar_embedding(grid_graph(16, 16), tracer=tr)
        root = tr.root
        assert root is not None and root.kind == "run"
        assert root.total_rounds() == result.metrics.rounds
        assert root.total_words() == result.metrics.total_words
        assert root.total_messages() == result.metrics.messages
        kinds = {sp.kind for sp in root.walk()}
        assert {"run", "phase", "call", "merge"} <= kinds

    def test_chaos_rollup_matches_ledger_exactly(self):
        """The rollup invariant survives chaos: under a fault plan with
        ARQ retransmissions and healing retries, every recovery round is
        still charged to some span — sum/max over the tree equals the
        combined ledger."""
        from repro.congest import FaultPlan
        from repro.core import self_healing_embedding

        tr = Tracer()
        plan = FaultPlan.parse("drop=0.05,corrupt=0.02,crash=2:4", seed=17)
        result = self_healing_embedding(grid_graph(8, 8), faults=plan, tracer=tr)
        assert not getattr(result, "degraded", False)
        assert (result.fault_stats or {}).get("faults_injected", 0) > 0
        root = tr.root
        assert root.total_rounds() == result.metrics.rounds
        assert root.total_words() == result.metrics.total_words
        assert root.total_messages() == result.metrics.messages

    def test_untraced_run_attaches_no_observer(self):
        """No tracer => the ledger's observer slot stays None, so the
        network's per-round loop never executes tracer code."""
        result = distributed_planar_embedding(grid_graph(4, 4))
        assert result.metrics.observer is None
        net = CongestNetwork(grid_graph(2, 2), metrics=result.metrics)
        assert net.observer is None
