"""Chrome trace-event (Perfetto) export: span slices, causal lanes,
flow arrows, and JSON validity."""

import io
import json

from repro import distributed_planar_embedding
from repro.obs import (
    CausalRecorder,
    Tracer,
    chrome_trace,
    export_chrome_trace,
)
from repro.planar.generators import grid_graph


def traced_run():
    tracer = Tracer()
    recorder = CausalRecorder()
    distributed_planar_embedding(grid_graph(3, 3), tracer=tracer, causal=recorder)
    return tracer, recorder


class TestChromeTrace:
    def test_empty_inputs_make_empty_document(self):
        doc = chrome_trace()
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_span_slices_mirror_the_span_tree(self):
        tracer, _ = traced_run()
        doc = chrome_trace(spans=tracer)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == sum(1 for _ in tracer.root.walk())
        root_slice = slices[0]
        assert root_slice["name"] == tracer.root.name
        assert root_slice["args"]["rounds"] == tracer.root.total_rounds()
        assert all(e["pid"] == 1 for e in slices)

    def test_causal_lanes_have_slices_flows_and_names(self):
        _, recorder = traced_run()
        doc = chrome_trace(causal=recorder)
        events = doc["traceEvents"]
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        # One flow arrow (s/f pair) per sampled happens-before edge.
        assert len(starts) == len(finishes) == len(recorder.edges)
        assert all(e["pid"] == 2 for e in starts + finishes)
        lanes = {e["tid"] for e in events if e["ph"] == "X"}
        names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        assert {e["tid"] for e in names} == lanes

    def test_flow_arrows_bind_inside_round_slices(self):
        """Perfetto drops flow endpoints that fall outside a slice; every
        s/f timestamp must land within some slice on its lane."""
        _, recorder = traced_run()
        events = chrome_trace(causal=recorder)["traceEvents"]
        slices = {}
        for e in events:
            if e["ph"] == "X" and e["pid"] == 2:
                slices.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"]))
        for e in events:
            if e["ph"] in ("s", "f"):
                assert any(
                    lo <= e["ts"] <= hi for lo, hi in slices[e["tid"]]
                ), f"flow endpoint at {e['ts']} outside every slice"

    def test_report_dict_with_edges_is_accepted(self):
        _, recorder = traced_run()
        doc = chrome_trace(causal=recorder.report(include_edges=True))
        assert any(e["ph"] == "s" for e in doc["traceEvents"])

    def test_document_is_plain_json(self):
        tracer, recorder = traced_run()
        doc = chrome_trace(spans=tracer, causal=recorder)
        assert json.loads(json.dumps(doc)) == doc


class TestExportSinks:
    def test_export_to_path(self, tmp_path):
        tracer, recorder = traced_run()
        target = tmp_path / "trace.json"
        export_chrome_trace(target, spans=tracer, causal=recorder)
        doc = json.loads(target.read_text())
        assert doc["traceEvents"]

    def test_export_to_stream(self):
        tracer, _ = traced_run()
        buf = io.StringIO()
        export_chrome_trace(buf, spans=tracer)
        assert json.loads(buf.getvalue())["traceEvents"]
