"""Incremental re-certification (E21): the differential suite.

The central claim of :mod:`repro.certify.delta`: a certificate set
*patched* after an edge mutation is indistinguishable from one *rebuilt*
from scratch — same labels, same verdict, same tamper detection — while
charging only the dirty region's rounds.  Every family below churns both
an incremental and a full-rebuild engine over the same op plan and
compares them.
"""

import pytest

from repro.certify import (
    DynamicCertifiedEmbedding,
    apply_tamper,
    build_certificates,
    encode_certificates,
    repair_certificates,
    verify_compact,
    verify_distributed,
)
from repro.core import self_healing_embedding
from repro.planar import planar_embedding
from repro.planar.generators import demo_graph
from repro.planar.rotation import RotationSystem
from repro.planar.verify import verify_planar_embedding

FAMILIES = [
    ("grid", ["grid", 5, 5]),
    ("trigrid", ["trigrid", 5, 5]),
    ("cycle", ["cycle", 24]),
    ("maximal", ["maximal", 30]),
    ("outerplanar", ["outerplanar", 28]),
    ("tree", ["tree", 24]),
]


def reference_labels(engine):
    """What the deterministic E14 prover would emit for the engine's
    current graph + rotation — the ground truth patches must reproduce."""
    system = RotationSystem.trusted(engine.graph, dict(engine.rotation))
    return build_certificates(engine.graph, system)


# -- the differential suite ------------------------------------------------


@pytest.mark.parametrize("name,spec", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_incremental_equals_rebuild(name, spec):
    g = demo_graph(spec, seed=7)
    inc = DynamicCertifiedEmbedding(g, incremental=True)
    churn = inc.run_churn(8, seed=11)
    assert churn.accepted, churn.records
    assert all(r.accepted for r in churn.records)

    # Replay the exact op plan on a full-rebuild engine.
    full = DynamicCertifiedEmbedding(g, incremental=False)
    replay = full.run_churn(len(churn.plan), plan=churn.plan)
    assert replay.accepted

    # Verdict equivalence: same final graph, same verdict, and the
    # patched labels are byte-for-byte the prover's labels.
    assert sorted(map(sorted, map(list, inc.graph.edges()))) == sorted(
        map(sorted, map(list, full.graph.edges()))
    )
    assert inc.certs == reference_labels(inc)
    verify_planar_embedding(inc.graph, inc.rotation)

    # Economy: patching beats running the full pipeline per op.
    if churn.records:
        assert churn.op_rounds < replay.op_rounds


@pytest.mark.parametrize("name,spec", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_every_op_scoped_verdict_matches_full_verdict(name, spec):
    """After every single op the scoped verdict must agree with a full
    offline verification — no drift accumulates mid-churn."""
    g = demo_graph(spec, seed=3)
    engine = DynamicCertifiedEmbedding(g, incremental=True)
    plan = engine.run_churn(6, seed=5).plan
    fresh = DynamicCertifiedEmbedding(g, incremental=True)
    for kind, a, b in plan:
        record = fresh.insert_edge(a, b) if kind == "insert" else fresh.delete_edge(a, b)
        assert record.accepted
        full = verify_distributed(fresh.graph, fresh.rotation, fresh.certs)
        assert full.accepted, (kind, a, b, full.rejections[:3])


def test_tamper_detection_survives_patching():
    """Certificates that lived through churn still catch every adversary."""
    g = demo_graph(["grid", 5, 5], seed=0)
    engine = DynamicCertifiedEmbedding(g, incremental=True)
    engine.run_churn(6, seed=9)
    for cls in ("bit-flip", "face-forgery", "global-forgery"):
        rot = {v: tuple(order) for v, order in engine.rotation.items()}
        tampered = engine.certs.copy()
        apply_tamper(cls, engine.graph, rot, tampered, seed=17)
        report = verify_compact(engine.graph, rot, encode_certificates(engine.graph, tampered))
        assert not report.accepted, cls


# -- mutation mechanics ----------------------------------------------------


def test_insert_splits_a_face_and_delete_restores():
    g = demo_graph(["cycle", 8], seed=0)
    engine = DynamicCertifiedEmbedding(g, incremental=True, fallback_ratio=1.0)
    nodes = sorted(engine.graph.nodes(), key=repr)
    u, v = nodes[0], nodes[3]  # a chord of the single inner face
    rec = engine.insert_edge(u, v)
    assert rec.accepted and rec.op == "insert"
    assert engine.graph.has_edge(u, v)
    assert engine.certs[u].f == 3  # the chord split one face into two
    rec = engine.delete_edge(u, v)
    assert rec.accepted and rec.op == "delete"
    assert not engine.graph.has_edge(u, v)
    assert engine.certs[u].f == 2
    assert engine.certs == reference_labels(engine)


def test_bridge_deletion_refused():
    g = demo_graph(["tree", 12], seed=2)
    engine = DynamicCertifiedEmbedding(g, incremental=True)
    u, v = next(iter(engine.graph.edges()))
    with pytest.raises(ValueError, match="bridge"):
        engine.delete_edge(u, v)


def test_tree_edge_deletion_rehangs_subtree():
    """Deleting a certificate-tree edge re-hangs the orphaned subtree and
    leaves a consistent parent/depth structure."""
    g = demo_graph(["grid", 4, 4], seed=0)
    engine = DynamicCertifiedEmbedding(g, incremental=True, fallback_ratio=1.0)
    tree_edge = next(
        (u, v)
        for u, v in engine.graph.edges()
        if engine.parent.get(u) == v or engine.parent.get(v) == u
    )
    rec = engine.delete_edge(*tree_edge)
    assert rec.accepted
    for node, par in engine.parent.items():
        if par is None:
            assert node == engine.root
        else:
            assert engine.graph.has_edge(node, par)
            assert engine.depth[node] == engine.depth[par] + 1
    assert engine.certs == reference_labels(engine)


def test_zero_fallback_ratio_forces_rebuild():
    g = demo_graph(["grid", 4, 4], seed=0)
    engine = DynamicCertifiedEmbedding(g, incremental=True, fallback_ratio=0.0)
    report = engine.run_churn(3, seed=1)
    assert report.accepted
    assert all(r.mode != "patched" for r in report.records)
    assert engine.stats["patched"] == 0


def test_non_incremental_engine_rebuilds_every_op():
    g = demo_graph(["grid", 4, 4], seed=0)
    engine = DynamicCertifiedEmbedding(g, incremental=False)
    report = engine.run_churn(3, seed=1)
    assert report.accepted
    assert all(r.mode == "rebuild-embed" for r in report.records)


def test_insert_validations():
    g = demo_graph(["grid", 4, 4], seed=0)
    engine = DynamicCertifiedEmbedding(g)
    u, v = next(iter(engine.graph.edges()))
    with pytest.raises(ValueError):
        engine.insert_edge(u, v)  # already present
    with pytest.raises(ValueError):
        engine.insert_edge(u, u)  # self-loop
    with pytest.raises(ValueError):
        engine.insert_edge(u, "no-such-node")


def test_churn_report_is_json_ready():
    import json

    g = demo_graph(["grid", 4, 4], seed=0)
    report = DynamicCertifiedEmbedding(g).run_churn(4, seed=2)
    blob = json.dumps(report.to_dict())
    assert "final_certification" in blob
    result = DynamicCertifiedEmbedding(g).to_result()
    assert result.certification.accepted
    json.dumps(result.to_report(), default=repr)


# -- repair_certificates (the E17 healing rung) ----------------------------


def _certified_embedding(spec=("grid", 5, 5)):
    g = demo_graph(list(spec), seed=0)
    rotation = planar_embedding(g)
    system = RotationSystem.trusted(g, {v: tuple(rotation.order(v)) for v in g.nodes()})
    certs = build_certificates(g, system)
    rotmap = {v: tuple(rotation.order(v)) for v in g.nodes()}
    return g, system, rotmap, certs


@pytest.mark.parametrize("cls", ["bit-flip", "face-forgery", "global-forgery", "collusion"])
def test_repair_heals_certificate_tampering(cls):
    g, system, rotmap, certs = _certified_embedding()
    apply_tamper(cls, g, rotmap, certs, seed=31)
    report = verify_distributed(g, rotmap, certs)
    assert not report.accepted
    outcome = repair_certificates(
        g, system, certs, {r.node for r in report.rejections}
    )
    assert outcome.rounds > 0
    healed = verify_distributed(g, rotmap, outcome.certificates)
    assert healed.accepted, (cls, healed.rejections[:3])


def test_repair_patches_small_regions_and_rebuilds_large_ones():
    # Large enough that the one-hop closure of a point corruption stays
    # below the fallback threshold (0.25 * n).
    g, system, rotmap, certs = _certified_embedding(("grid", 7, 7))
    # One corrupted counter: a local patch suffices.
    node = sorted(certs.labels, key=repr)[4]
    certs[node].subtree_vertices += 7
    report = verify_distributed(g, rotmap, certs)
    outcome = repair_certificates(g, system, certs, {r.node for r in report.rejections})
    assert outcome.mode == "patched"
    assert outcome.patched < g.num_nodes
    assert verify_distributed(g, rotmap, outcome.certificates).accepted
    # fallback_ratio=0 on the same damage: always a full rebuild.
    certs[node].subtree_vertices += 7
    outcome = repair_certificates(g, system, certs, {node}, fallback_ratio=0.0)
    assert outcome.mode == "rebuilt"
    assert verify_distributed(g, rotmap, outcome.certificates).accepted


def test_repair_without_certificates_rebuilds():
    g, system, rotmap, _ = _certified_embedding(("grid", 4, 4))
    outcome = repair_certificates(g, system, None, set())
    assert outcome.mode == "rebuilt"
    assert verify_distributed(g, rotmap, outcome.certificates).accepted


# -- the chaos-heal path ---------------------------------------------------


def test_self_healing_uses_incremental_repair():
    """A one-shot certificate adversary is healed by the incremental
    rung (attempt 3), not a blind full rebuild."""
    g = demo_graph(["grid", 5, 5], seed=0)

    def corrupt_once(attempt, result):
        if attempt == 1:
            return apply_tamper(
                "bit-flip", result.graph, result.rotation, result.certificates, seed=13
            )
        return None

    result = self_healing_embedding(g, corrupt_hook=corrupt_once)
    assert result.certification.accepted
    assert any("incremental" in line for line in result.heal_log)
    assert any("adversary" in line for line in result.heal_log)
