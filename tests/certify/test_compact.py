"""The compact label codec (E21): round-trips, strictness, soundness.

Three claims to pin down:

* **fidelity** — encode/decode is bit-exact on every label the prover
  emits *and* on arbitrary (tampered) field values, so the codec never
  launders a corruption into a different-but-valid label;
* **strictness** — a blob that is not a well-formed label (truncated,
  trailing bits, out-of-range index, runaway varint) raises
  :class:`CompactDecodeError`, and the lenient path maps it to a missing
  label the verifier rejects;
* **economy** — measured bits/node stay strictly below the E14
  word-label baseline on every workload family.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.certify import (
    TAMPER_CLASSES,
    CompactDecodeError,
    apply_tamper,
    build_certificates,
    encode_certificates,
    verify_compact,
    verify_distributed,
)
from repro.certify.compact import BitReader, BitWriter, _id_bits
from repro.certify.labels import DartLabel, NodeCertificate
from repro.planar import planar_embedding
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    random_tree,
    triangulated_grid,
)

FAMILIES = [
    ("grid", lambda: grid_graph(5, 5)),
    ("trigrid", lambda: triangulated_grid(4, 4)),
    ("cycle", lambda: cycle_graph(12)),
    ("maximal", lambda: random_maximal_planar(24, seed=3)),
    ("outerplanar", lambda: random_outerplanar(20, seed=4)),
    ("tree", lambda: random_tree(18, seed=5)),
]


def certified(graph):
    rotation = planar_embedding(graph)
    certs = build_certificates(graph, rotation)
    rotmap = {v: tuple(rotation.order(v)) for v in graph.nodes()}
    return rotmap, certs


# -- bit plumbing ----------------------------------------------------------


@given(st.lists(st.integers(min_value=-(2**80), max_value=2**80), max_size=40))
@settings(max_examples=150, deadline=None)
def test_varint_round_trip(values):
    w = BitWriter()
    for v in values:
        w.write_varint(v)
    blob, nbits = w.getvalue()
    r = BitReader(blob, nbits)
    assert [r.read_varint() for _ in values] == values
    r.expect_exhausted()


@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=24), st.integers(min_value=0)),
        max_size=30,
    ).map(lambda ps: [(w, v & ((1 << w) - 1)) for w, v in ps])
)
@settings(max_examples=150, deadline=None)
def test_fixed_width_round_trip(fields):
    w = BitWriter()
    for width, value in fields:
        w.write_bits(value, width)
    blob, nbits = w.getvalue()
    assert nbits == sum(width for width, _ in fields)
    r = BitReader(blob, nbits)
    assert [r.read_bits(width) for width, _ in fields] == [v for _, v in fields]
    r.expect_exhausted()


def test_writer_rejects_overflow_and_reader_rejects_truncation():
    w = BitWriter()
    with pytest.raises(ValueError):
        w.write_bits(4, 2)
    w.write_bits(3, 2)
    blob, nbits = w.getvalue()
    r = BitReader(blob, nbits)
    with pytest.raises(CompactDecodeError):
        r.read_bits(3)
    with pytest.raises(CompactDecodeError):
        BitReader(b"\x00", 9)  # claimed length beyond the blob


# -- label round-trips -----------------------------------------------------


@pytest.mark.parametrize("name,make", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_honest_labels_round_trip_bit_exact(name, make):
    g = make()
    _, certs = certified(g)
    compact = encode_certificates(g, certs)
    assert compact.decode() == certs
    assert set(compact.size_bits()) == set(certs.labels)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_arbitrary_field_values_round_trip(data):
    """The codec is total over tampered labels, not just honest ones."""
    g = grid_graph(3, 3)
    _, certs = certified(g)
    node = data.draw(st.sampled_from(sorted(certs.labels, key=repr)))
    label = certs.labels[node]
    field = data.draw(
        st.sampled_from(
            ["depth", "n", "m", "f", "subtree_vertices", "subtree_degree",
             "subtree_faces", "face_leaders"]
        )
    )
    setattr(label, field, data.draw(st.integers(min_value=-(2**40), max_value=2**40)))
    if label.darts:
        w = data.draw(st.sampled_from(sorted(label.darts, key=repr)))
        label.darts[w] = DartLabel(
            face=label.darts[w].face,
            length=data.draw(st.integers(min_value=-(2**20), max_value=2**20)),
            index=data.draw(st.integers(min_value=-(2**20), max_value=2**20)),
        )
    compact = encode_certificates(g, certs)
    assert compact.decode() == certs


def test_decode_is_strict():
    g = grid_graph(3, 3)
    _, certs = certified(g)
    compact = encode_certificates(g, certs)
    node = next(iter(compact))
    blob, nbits = compact.blobs[node]

    # Truncation: drop the final bit.
    bad = compact.copy()
    bad.blobs[node] = (blob, nbits - 1)
    with pytest.raises(CompactDecodeError):
        bad.decode()

    # Trailing garbage: claim one extra zero bit.
    bad = compact.copy()
    bad.blobs[node] = (blob + b"\x00", nbits + 1)
    with pytest.raises(CompactDecodeError):
        bad.decode()

    # Out-of-range node index: n=9 ids use 4 bits, so 0b1111 = 15 >= 9.
    id_bits = _id_bits(len(compact.nodes))
    w = BitWriter()
    w.write_bits((1 << id_bits) - 1, id_bits)
    garbage, gbits = w.getvalue()
    bad = compact.copy()
    bad.blobs[node] = (garbage, gbits)
    with pytest.raises(CompactDecodeError):
        bad.decode()

    labels, errors = bad.decode_lenient()
    assert node in errors and node not in labels.labels


def test_implausible_dart_count_rejected():
    g = grid_graph(3, 3)
    table = tuple(g.nodes())
    id_bits = _id_bits(len(table))
    w = BitWriter()
    w.write_bits(0, id_bits)  # root
    w.write_bits(0, 1)  # no parent
    for _ in range(8):
        w.write_varint(0)
    w.write_varint(len(table) + 1)  # more darts than nodes exist
    blob, nbits = w.getvalue()
    from repro.certify import CompactCertificateSet

    bad = CompactCertificateSet(nodes=table, blobs={table[0]: (blob, nbits)})
    with pytest.raises(CompactDecodeError):
        bad.decode()


# -- the verifier shim -----------------------------------------------------


@pytest.mark.parametrize("name,make", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_verify_compact_matches_word_verifier(name, make):
    g = make()
    rotmap, certs = certified(g)
    word_report = verify_distributed(g, rotmap, certs)
    compact_report = verify_compact(g, rotmap, encode_certificates(g, certs))
    assert compact_report.accepted and word_report.accepted
    assert compact_report.rounds == word_report.rounds
    assert compact_report.decode_errors is None


@pytest.mark.parametrize("name,make", FAMILIES, ids=[n for n, _ in FAMILIES])
def test_compact_beats_word_baseline(name, make):
    g = make()
    _, certs = certified(g)
    compact = encode_certificates(g, certs)
    baseline = sum(certs.size_bits().values())
    assert 0 < compact.total_bits() < baseline
    report = verify_compact(
        g, {v: tuple(planar_embedding(g).order(v)) for v in g.nodes()}, compact
    )
    assert report.label_bits_total == compact.total_bits()
    assert report.label_bits_max == compact.max_bits()
    assert report.to_dict()["label_bits_total"] == compact.total_bits()


def test_undecodable_blob_is_rejected_as_missing():
    g = grid_graph(4, 4)
    rotmap, certs = certified(g)
    compact = encode_certificates(g, certs)
    node = sorted(compact, key=repr)[3]
    blob, nbits = compact.blobs[node]
    compact.blobs[node] = (blob, nbits - 1)  # truncate
    report = verify_compact(g, rotmap, compact)
    assert not report.accepted
    assert report.decode_errors and repr(node) in report.decode_errors
    assert any(r.predicate == "certificate-missing" for r in report.rejections)


# -- soundness carries over ------------------------------------------------


@pytest.mark.parametrize("cls", sorted(TAMPER_CLASSES))
def test_tamper_classes_detected_through_codec(cls):
    """Every adversary class from E14, replayed through encode→decode."""
    g = triangulated_grid(4, 4)
    rotmap, certs = certified(g)
    detections = 0
    trials = 4
    for trial in range(trials):
        rot = {v: tuple(order) for v, order in rotmap.items()}
        tampered = certs.copy()
        apply_tamper(cls, g, rot, tampered, seed=100 + trial)
        compact = encode_certificates(g, tampered)
        report = verify_compact(g, rot, compact)
        detections += 0 if report.accepted else 1
    assert detections == trials


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_packed_bit_flip_detected(data):
    """Flipping any single bit of any packed blob is always caught —
    either by the strict decoder or by a verifier predicate."""
    g = grid_graph(4, 4)
    rotmap, certs = certified(g)
    compact = encode_certificates(g, certs)
    node = data.draw(st.sampled_from(sorted(compact, key=repr)))
    nbits = compact.blobs[node][1]
    bit = data.draw(st.integers(min_value=0, max_value=nbits - 1))
    tampered = compact.copy()
    tampered.flip_bit(node, bit)
    report = verify_compact(g, rotmap, tampered)
    assert not report.accepted
