"""The certification subsystem: completeness, soundness, accounting."""

import json
import math

import pytest

from repro.certify import (
    TAMPER_CLASSES,
    build_certificates,
    run_tamper_suite,
    verify_distributed,
)
from repro.certify.verifier import centralized_check_rounds
from repro.congest.metrics import RoundMetrics
from repro.core import DistributedPlanarEmbedding
from repro.obs import Tracer
from repro.planar import planar_embedding
from repro.planar.generators import (
    caterpillar,
    cycle_graph,
    grid_graph,
    k4_subdivision,
    path_graph,
    random_maximal_planar,
    random_outerplanar,
    random_tree,
    theta_graph,
    triangulated_grid,
)

WORKLOADS = [
    ("grid", lambda: grid_graph(4, 5)),
    ("trigrid", lambda: triangulated_grid(4, 4)),
    ("cycle", lambda: cycle_graph(11)),
    ("path", lambda: path_graph(8)),
    ("maximal", lambda: random_maximal_planar(26, seed=3)),
    ("outerplanar", lambda: random_outerplanar(20, seed=4)),
    ("tree", lambda: random_tree(18, seed=5)),
    ("caterpillar", lambda: caterpillar(6, 2)),
    ("theta", lambda: theta_graph(3, 4)),
    ("k4sub", lambda: k4_subdivision(2)),
]


def certified(graph):
    """Honest (rotation, certificates) for ``graph`` via the LR kernel."""
    rotation = planar_embedding(graph)
    certs = build_certificates(graph, rotation)
    rotmap = {v: tuple(rotation.order(v)) for v in graph.nodes()}
    return rotmap, certs


# -- completeness ----------------------------------------------------------


@pytest.mark.parametrize("name,make", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_honest_certificates_accepted_everywhere(name, make):
    g = make()
    rotmap, certs = certified(g)
    report = verify_distributed(g, rotmap, certs)
    assert report.accepted, report.rejections[:3]
    assert report.announced_ok and report.announced_rejections == 0
    assert report.nodes == g.num_nodes


def test_driver_certify_end_to_end():
    g = grid_graph(5, 5)
    result = DistributedPlanarEmbedding(g, certify=True).run()
    assert result.certificates is not None
    assert result.certification is not None and result.certification.accepted
    # Certification rounds live in the same ledger under certify:* phases.
    phases = result.metrics.phase_breakdown()
    assert any(p.startswith("certify:") for p in phases)
    report = result.to_report()
    assert report["certification"]["accepted"] is True
    json.dumps(report, default=repr)  # the report stays JSON-serializable


def test_single_node_certifies_trivially():
    g = path_graph(1)
    result = DistributedPlanarEmbedding(g, certify=True).run()
    assert result.certification.accepted
    assert result.certification.rounds == 0
    (label,) = (result.certificates[v] for v in result.certificates)
    assert (label.n, label.m, label.f) == (1, 0, 1)  # the bare sphere


def test_certify_trace_rollup_matches_ledger():
    tracer = Tracer()
    result = DistributedPlanarEmbedding(
        grid_graph(4, 4), tracer=tracer, certify=True
    ).run()
    root = tracer.root
    assert root.total_rounds() == result.metrics.rounds
    names = {c.name for c in root.children}
    assert {"certify-prove", "certify-verify"} <= names


def test_verification_rounds_linear_in_diameter():
    g = grid_graph(6, 6)
    result = DistributedPlanarEmbedding(g).run()
    ledger = RoundMetrics()
    certs = build_certificates(g, result.rotation_system, metrics=ledger)
    report = verify_distributed(g, result.rotation, certs, metrics=ledger)
    assert report.accepted
    d = max(1, 2 * result.bfs_depth)
    assert ledger.rounds <= 8 * (d + 2)  # prove + verify = O(D)
    # ... which beats the Theta(n) gather-and-check baseline.
    assert ledger.rounds < centralized_check_rounds(g).rounds


def test_label_sizes_logarithmic():
    for k in (4, 6, 8):
        g = grid_graph(k, k)
        _, certs = certified(g)
        bound = 8 * math.log2(g.num_nodes)
        assert certs.mean_words() <= bound
        assert certs.max_words() <= bound  # grids are bounded-degree
    # Apollonian hubs push the max, but the mean stays O(log n) words.
    g = random_maximal_planar(40, seed=9)
    _, certs = certified(g)
    assert certs.mean_words() <= 8 * math.log2(g.num_nodes)


# -- soundness -------------------------------------------------------------


@pytest.mark.parametrize("name,make", WORKLOADS, ids=[n for n, _ in WORKLOADS])
def test_tamper_suite_fully_detected(name, make):
    g = make()
    rotmap, certs = certified(g)
    suite = run_tamper_suite(g, rotmap, certs, seed=11, trials=2)
    assert suite.all_detected, suite.summary()
    assert len(suite.outcomes) == 2 * len(TAMPER_CLASSES)
    for outcome in suite.outcomes:
        # Every rejection names the detecting node and the predicate.
        assert outcome.detecting_node is not None
        assert outcome.violated_predicate
    # The suite tampered private copies: the originals still verify.
    assert verify_distributed(g, rotmap, certs).accepted


def test_tampered_verdict_is_announced_network_wide():
    g = grid_graph(4, 4)
    rotmap, certs = certified(g)
    victim = next(iter(certs))
    certs[victim].n += 1
    report = verify_distributed(g, rotmap, certs)
    assert not report.accepted
    assert not report.announced_ok  # broadcast verdict agrees
    assert report.announced_rejections == len(report.rejections)
    assert any(r.predicate == "global-consistency" for r in report.rejections)


def test_rotation_corruption_without_certificate_change_detected():
    # Tampering the *rotation* alone (certificates stay honest) must trip
    # the face-succession predicate at some node.
    g = triangulated_grid(4, 4)
    rotmap, certs = certified(g)
    victim = next(v for v in g.nodes() if g.degree(v) >= 3)
    ring = list(rotmap[victim])
    ring[0], ring[1] = ring[1], ring[0]
    rotmap[victim] = tuple(ring)
    report = verify_distributed(g, rotmap, certs)
    assert not report.accepted
    assert any(r.predicate == "face-succession" for r in report.rejections)


def test_suite_reports_are_json_ready():
    g = cycle_graph(8)
    rotmap, certs = certified(g)
    suite = run_tamper_suite(g, rotmap, certs, seed=1, trials=1)
    payload = json.loads(json.dumps(suite.to_dict()))
    assert payload["all_detected"] is True
    assert payload["tampers"] == len(TAMPER_CLASSES)


def test_suite_rejects_unknown_class_and_tiny_graphs():
    g = cycle_graph(6)
    rotmap, certs = certified(g)
    with pytest.raises(ValueError, match="unknown tamper class"):
        run_tamper_suite(g, rotmap, certs, classes=["nonsense"])
    g1 = path_graph(1)
    rot1, certs1 = {v: () for v in g1.nodes()}, build_certificates(
        g1, planar_embedding(g1)
    )
    with pytest.raises(ValueError, match="at least one edge"):
        run_tamper_suite(g1, rot1, certs1)
