"""The analysis helpers used by the benchmark harness."""

import pytest

from repro.analysis import (
    bound_ratios,
    fit_power_law,
    format_table,
    geometric_sizes,
    headline_bound,
    load_trace,
    render_phase_timeline,
    render_trace_tree,
    verdict,
)
from repro.congest import RoundMetrics
from repro.obs import Tracer


class TestPowerFit:
    def test_exact_square(self):
        xs = [1, 2, 4, 8, 16]
        ys = [x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - 2.0) < 1e-9
        assert abs(fit.coefficient - 1.0) < 1e-9
        assert fit.r_squared > 0.999

    def test_linear_with_constant(self):
        xs = [10, 20, 40, 80]
        ys = [7 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - 1.0) < 1e-9
        assert abs(fit.coefficient - 7.0) < 1e-6

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [3, 6, 12])
        assert abs(fit.predict(8) - 24) < 1e-6

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, -2], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [1, 2])


class TestBounds:
    def test_headline_bound(self):
        assert headline_bound(1024, 10) == 10 * 10  # min(log2 1024, 10) = 10
        assert headline_bound(16, 100) == 100 * 4  # log side binds
        assert headline_bound(1, 0) == 1.0

    def test_bound_ratios(self):
        ratios = bound_ratios([100], [256], [10])
        assert abs(ratios[0] - 100 / (10 * 8)) < 1e-9


class TestSizes:
    def test_geometric(self):
        sizes = geometric_sizes(10, 1000, 5)
        assert sizes[0] == 10
        assert sizes[-1] == 1000
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_sizes(10, 5, 3)


class TestTables:
    def test_format_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "30" in lines[-1]

    def test_verdict_returns_flag(self, capsys):
        assert verdict("x", True, "det") is True
        assert verdict("y", False) is False
        out = capsys.readouterr().out
        assert "REPRODUCED" in out and "NOT REPRODUCED" in out


def small_trace():
    tr = Tracer()
    m = RoundMetrics(observer=tr)
    with tr.span("run", kind="run", n=4):
        with tr.span("bfs", kind="phase"):
            tr.on_round(1, messages=2, words=4, max_edge_words=2)
            m.tag_phase("bfs", 1, messages=2, words=4)
        with tr.span("call", kind="call", parallel=True, root=0, size=3):
            m.charge("merge", 5, words=9)
    return tr


class TestTraceView:
    def test_load_trace_from_lines_and_path(self, tmp_path):
        tr = small_trace()
        lines = list(tr.to_jsonl_lines())
        root = load_trace(lines)
        assert root.name == "run" and len(root.children) == 2
        f = tmp_path / "t.jsonl"
        f.write_text("\n".join(lines) + "\n")
        assert load_trace(str(f)).total_rounds() == root.total_rounds() == 6

    def test_load_trace_rejects_garbage(self):
        with pytest.raises(ValueError):
            load_trace(["not json"])
        with pytest.raises(ValueError):
            load_trace(['{"type": "trace", "version": 1}'])  # header only

    def test_load_trace_stitches_multiple_roots(self):
        tr = small_trace()
        with tr.span("run", kind="run"):  # a second top-level run
            pass
        root = load_trace(list(tr.to_jsonl_lines()))
        assert root.name == "traces" and len(root.children) == 2

    def test_render_tree_shows_rounds_and_structure(self):
        root = load_trace(list(small_trace().to_jsonl_lines()))
        out = render_trace_tree(root)
        lines = out.splitlines()
        assert lines[0].startswith("run")
        assert "· 6 rounds" in lines[0]
        assert any("bfs" in ln and "1 rounds" in ln for ln in lines)
        assert any("call" in ln and "size=3" in ln for ln in lines)

    def test_render_tree_prunes_with_summary(self):
        root = load_trace(list(small_trace().to_jsonl_lines()))
        out = render_trace_tree(root, min_rounds=100)
        assert "(+2 spans under 100 rounds)" in out

    def test_phase_timeline_from_span_metrics_and_mapping(self):
        root = load_trace(list(small_trace().to_jsonl_lines()))
        from_span = render_phase_timeline(root)
        assert "merge" in from_span and "#" in from_span
        m = RoundMetrics()
        m.charge("merge", 5)
        m.tag_phase("bfs", 1)
        from_metrics = render_phase_timeline(m)
        assert from_metrics.splitlines()[0].startswith("merge")  # sorted desc
        assert render_phase_timeline({"a": 3}).startswith("a")
        with pytest.raises(TypeError):
            render_phase_timeline(42)

    def test_phase_timeline_empty(self):
        assert render_phase_timeline({}) == "(no phase data)"
