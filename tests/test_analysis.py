"""The analysis helpers used by the benchmark harness."""

import math

import pytest

from repro.analysis import (
    bound_ratios,
    fit_power_law,
    format_table,
    geometric_sizes,
    headline_bound,
    verdict,
)


class TestPowerFit:
    def test_exact_square(self):
        xs = [1, 2, 4, 8, 16]
        ys = [x**2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - 2.0) < 1e-9
        assert abs(fit.coefficient - 1.0) < 1e-9
        assert fit.r_squared > 0.999

    def test_linear_with_constant(self):
        xs = [10, 20, 40, 80]
        ys = [7 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert abs(fit.exponent - 1.0) < 1e-9
        assert abs(fit.coefficient - 7.0) < 1e-6

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [3, 6, 12])
        assert abs(fit.predict(8) - 24) < 1e-6

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])
        with pytest.raises(ValueError):
            fit_power_law([1, -2], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([3, 3], [1, 2])


class TestBounds:
    def test_headline_bound(self):
        assert headline_bound(1024, 10) == 10 * 10  # min(log2 1024, 10) = 10
        assert headline_bound(16, 100) == 100 * 4  # log side binds
        assert headline_bound(1, 0) == 1.0

    def test_bound_ratios(self):
        ratios = bound_ratios([100], [256], [10])
        assert abs(ratios[0] - 100 / (10 * 8)) < 1e-9


class TestSizes:
    def test_geometric(self):
        sizes = geometric_sizes(10, 1000, 5)
        assert sizes[0] == 10
        assert sizes[-1] == 1000
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_sizes(10, 5, 3)


class TestTables:
    def test_format_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "30" in lines[-1]

    def test_verdict_returns_flag(self, capsys):
        assert verdict("x", True, "det") is True
        assert verdict("y", False) is False
        out = capsys.readouterr().out
        assert "REPRODUCED" in out and "NOT REPRODUCED" in out
