"""The synchronous CONGEST round loop: delivery, bandwidth, quiescence."""

import pytest

from repro.congest import (
    BandwidthExceededError,
    CongestNetwork,
    NodeProgram,
    ProtocolViolationError,
    RoundLimitExceededError,
    RoundMetrics,
    run_program,
)
from repro.planar.generators import path_graph


class EchoOnce(NodeProgram):
    """Round 1: everyone pings neighbors; afterwards just record."""

    def __init__(self, node_id, neighbors):
        super().__init__(node_id, neighbors)
        self.heard = {}
        self.done = True

    def on_start(self):
        return {u: ("ping", self.node_id) for u in self.neighbors}

    def on_round(self, round_no, inbox):
        self.heard.update(inbox)
        return {}

    def result(self):
        return sorted(self.heard)


class TestDelivery:
    def test_messages_arrive_next_round(self):
        g = path_graph(3)
        results = run_program(g, EchoOnce)
        assert results[0] == [1]
        assert results[1] == [0, 2]

    def test_round_count_emergent(self):
        g = path_graph(4)
        m = RoundMetrics()
        run_program(g, EchoOnce, metrics=m)
        assert m.rounds == 1  # one round of sends
        assert m.messages == 2 * g.num_edges


class TestEnforcement:
    def test_bandwidth_enforced(self):
        class Blaster(EchoOnce):
            def on_start(self):
                return {u: tuple(range(100)) for u in self.neighbors}

        with pytest.raises(BandwidthExceededError):
            run_program(path_graph(2), Blaster, bandwidth_words=8)

    def test_send_to_non_neighbor_rejected(self):
        class Cheater(EchoOnce):
            def on_start(self):
                return {self.node_id + 2: "hi"} if self.node_id == 0 else {}

        with pytest.raises(ProtocolViolationError):
            run_program(path_graph(3), Cheater)

    def test_round_limit(self):
        class Chatter(NodeProgram):
            def __init__(self, node_id, neighbors):
                super().__init__(node_id, neighbors)
                self.done = True

            def on_start(self):
                return {u: 1 for u in self.neighbors}

            def on_round(self, round_no, inbox):
                return {u: 1 for u in self.neighbors}  # never quiesces

        net = CongestNetwork(path_graph(2))
        programs = {v: Chatter(v, [1 - v]) for v in (0, 1)}
        with pytest.raises(RoundLimitExceededError):
            net.run(programs, max_rounds=10)

    def test_round_limit_diagnosis_is_rich(self):
        """The error must say which phase, where it stopped, what was in
        flight, and give example stuck node IDs."""

        class Chatter(NodeProgram):
            def __init__(self, node_id, neighbors):
                super().__init__(node_id, neighbors)
                self.done = False  # never done

            def on_start(self):
                return {u: 1 for u in self.neighbors}

            def on_round(self, round_no, inbox):
                return {u: 1 for u in self.neighbors}

        g = path_graph(8)
        net = CongestNetwork(g)
        programs = {v: Chatter(v, g.neighbors(v)) for v in g.nodes()}
        with pytest.raises(RoundLimitExceededError) as exc:
            net.run(programs, max_rounds=5, phase="flood")
        msg = str(exc.value)
        assert "phase=flood" in msg
        assert "within 5 rounds" in msg
        assert "stopped at round 6" in msg
        assert "14 messages in flight" in msg  # 2 per edge, 7 edges
        assert "8/8 programs not done" in msg
        assert "e.g. 0, 1, 2, 3, 4, ..." in msg  # 5 examples then ellipsis

    def test_programs_must_cover_nodes(self):
        net = CongestNetwork(path_graph(3))
        with pytest.raises(ProtocolViolationError):
            net.run({0: EchoOnce(0, [1])})


class TestQuiescence:
    def test_terminates_when_all_done_and_silent(self):
        class Silent(NodeProgram):
            def __init__(self, node_id, neighbors):
                super().__init__(node_id, neighbors)
                self.done = True

            def on_round(self, round_no, inbox):
                return {}

        m = RoundMetrics()
        run_program(path_graph(5), Silent, metrics=m)
        assert m.rounds == 0

    def test_not_done_blocks_termination(self):
        class CountDown(NodeProgram):
            def __init__(self, node_id, neighbors):
                super().__init__(node_id, neighbors)
                self.ticks = 0

            def on_round(self, round_no, inbox):
                self.ticks += 1
                if self.ticks >= 3:
                    self.done = True
                return {}

            def result(self):
                return self.ticks

        results = run_program(path_graph(2), CountDown)
        assert all(t >= 3 for t in results.values())


class TestObserverHook:
    def test_observer_sees_every_accounted_round(self):
        rounds_seen = []

        class Spy:
            def on_round(self, round_no, messages, words, max_edge_words):
                rounds_seen.append((round_no, messages, words, max_edge_words))

            def on_charge(self, charge):
                pass

        m = RoundMetrics(observer=Spy())
        run_program(path_graph(3), EchoOnce, metrics=m, phase="echo")
        assert len(rounds_seen) == m.rounds == 1
        _, messages, words, _ = rounds_seen[0]
        assert messages == m.messages
        assert words == m.total_words

    def test_no_observer_means_none_on_network(self):
        net = CongestNetwork(path_graph(2), metrics=RoundMetrics())
        assert net.observer is None
