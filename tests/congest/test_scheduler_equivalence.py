"""Differential suite: the event-driven scheduler is metrics-identical
to the dense reference loop.

Every program family, the certification round-trip, and the full
``embed_planar`` pipeline run under both schedulers on the same inputs;
results, round counts, message counts, word totals, and the per-phase
breakdown must match exactly.  Activation counters are the *only*
permitted divergence — they are what the event scheduler optimizes —
and even those obey a conservation law (dense activations == event
activations + event savings).
"""

from __future__ import annotations

import pytest

from repro.congest import (
    CongestNetwork,
    CrashWindow,
    FaultPlan,
    NodeProgram,
    PayloadMeter,
    RoundLimitExceededError,
    RoundMetrics,
    default_scheduler,
    fault_override,
    run_program,
    scheduler_override,
)
from repro.congest.message import payload_words
from repro.core import distributed_planar_embedding
from repro.obs import Tracer
from repro.planar import generators
from repro.primitives.aggregation import tree_aggregate, tree_broadcast
from repro.primitives.bfs import build_bfs_tree
from repro.primitives.leader import elect_leader
from repro.primitives.splitter import find_splitter


def fingerprint(m: RoundMetrics) -> dict:
    """Everything two schedulers must agree on (activations excluded)."""
    phases = {
        phase: {k: v for k, v in row.items() if not k.startswith("activations")}
        for phase, row in m.phase_breakdown().items()
    }
    return {
        "rounds": m.rounds,
        "messages": m.messages,
        "total_words": m.total_words,
        "max_words_edge_round": m.max_words_edge_round,
        "phases": phases,
    }


def both_schedulers(run):
    """Run ``run(metrics)`` under each scheduler; return both outcomes."""
    out = {}
    for scheduler in ("dense", "event"):
        with scheduler_override(scheduler):
            m = RoundMetrics()
            out[scheduler] = (run(m), m)
    return out["dense"], out["event"]


GRAPHS = {
    "grid": lambda: generators.grid_graph(5, 7),
    "trigrid": lambda: generators.triangulated_grid(4, 6),
    "cycle": lambda: generators.cycle_graph(17),
    "outerplanar": lambda: generators.random_outerplanar(30, seed=3),
    "maximal": lambda: generators.random_maximal_planar(24, seed=7),
    "tree": lambda: generators.random_tree(33, seed=1),
}


@pytest.mark.parametrize("family", sorted(GRAPHS))
class TestPrimitiveEquivalence:
    def test_leader_election(self, family):
        graph = GRAPHS[family]()
        (rd, md), (re_, me) = both_schedulers(lambda m: elect_leader(graph, metrics=m))
        assert rd == re_
        assert fingerprint(md) == fingerprint(me)

    def test_bfs_tree(self, family):
        graph = GRAPHS[family]()
        root = max(graph.nodes())

        def run(m):
            t = build_bfs_tree(graph, root, metrics=m)
            return (t.parent, t.children, t.depth_of)

        (rd, md), (re_, me) = both_schedulers(run)
        assert rd == re_
        assert fingerprint(md) == fingerprint(me)

    def test_aggregate_and_broadcast(self, family):
        graph = GRAPHS[family]()
        root = max(graph.nodes())
        tree = build_bfs_tree(graph, root)

        def run(m):
            agg = tree_aggregate(
                graph, tree.parent, tree.children, {v: 1 for v in graph.nodes()},
                sum, metrics=m,
            )
            bc = tree_broadcast(
                graph, tree.parent, tree.children, ("total", agg[root][0]), metrics=m
            )
            return (agg, bc)

        (rd, md), (re_, me) = both_schedulers(run)
        assert rd == re_
        assert fingerprint(md) == fingerprint(me)

    def test_splitter_walk(self, family):
        graph = GRAPHS[family]()
        root = max(graph.nodes())
        tree = build_bfs_tree(graph, root)
        # The walk runs on the BFS tree itself (its edges are graph edges).
        from repro.planar import Graph

        tg = Graph()
        for v in graph.nodes():
            tg.add_node(v)
        for v, p in tree.parent.items():
            if p is not None:
                tg.add_edge(v, p)

        (rd, md), (re_, me) = both_schedulers(
            lambda m: find_splitter(tg, root, tree.parent, tree.children, metrics=m)
        )
        assert rd == re_
        assert fingerprint(md) == fingerprint(me)


class TestPipelineEquivalence:
    """The whole Theorem 1.1 pipeline — including prover + distributed
    verifier — is scheduler-invariant on the CLI demo families."""

    PIPELINE_GRAPHS = {
        "grid": lambda: generators.grid_graph(6, 6),
        "outerplanar": lambda: generators.random_outerplanar(40, seed=11),
        "tree": lambda: generators.random_tree(40, seed=5),
    }

    @pytest.mark.parametrize("family", sorted(PIPELINE_GRAPHS))
    def test_embed_with_certification(self, family):
        graph = self.PIPELINE_GRAPHS[family]()
        results = {}
        for scheduler in ("dense", "event"):
            with scheduler_override(scheduler):
                results[scheduler] = distributed_planar_embedding(graph, certify=True)
        dense, event = results["dense"], results["event"]
        assert dense.rotation == event.rotation
        assert dense.leader == event.leader
        assert dense.bfs_depth == event.bfs_depth
        assert dense.certification.accepted and event.certification.accepted
        assert fingerprint(dense.metrics) == fingerprint(event.metrics)

    def test_activation_conservation(self):
        """dense activations == event activations + event savings; the
        dense loop never saves anything."""
        graph = generators.grid_graph(6, 6)
        results = {}
        for scheduler in ("dense", "event"):
            with scheduler_override(scheduler):
                results[scheduler] = distributed_planar_embedding(graph)
        dense_m, event_m = results["dense"].metrics, results["event"].metrics
        assert dense_m.activations_saved == 0
        assert event_m.activations_saved > 0
        assert (
            event_m.node_activations + event_m.activations_saved
            == dense_m.node_activations
        )

    @pytest.mark.parametrize("scheduler", ["dense", "event"])
    def test_tracer_rollup_matches_ledger(self, scheduler):
        """root.total_rounds() == metrics.rounds under either scheduler."""
        graph = generators.grid_graph(5, 5)
        tracer = Tracer()
        with scheduler_override(scheduler):
            result = distributed_planar_embedding(graph, tracer=tracer)
        assert tracer.root.total_rounds() == result.metrics.rounds
        assert tracer.root.total_words() == result.metrics.total_words
        assert tracer.root.total_activations() == result.metrics.node_activations
        assert (
            tracer.root.total_activations_saved() == result.metrics.activations_saved
        )


class SilentCountdown(NodeProgram):
    """Event-driven program that must observe message-free rounds: each
    node counts ``ticks`` silent rounds via ``needs_wakeup`` before
    finishing.  Exercises the wake-request half of the contract."""

    event_driven = True

    def __init__(self, node_id, neighbors, ticks=4):
        super().__init__(node_id, neighbors)
        self.ticks = ticks
        self.seen = []
        self.needs_wakeup = True

    def on_round(self, round_no, inbox):
        self.seen.append(round_no)
        self.ticks -= 1
        if self.ticks <= 0:
            self.done = True
            self.needs_wakeup = False
        return {}

    def result(self):
        return tuple(self.seen)


class LateFlood(NodeProgram):
    """Unported (``event_driven = False``): sits silent until its local
    round counter fires, then floods.  Legal only because unported
    programs are polled every round by both schedulers."""

    def __init__(self, node_id, neighbors, fire_at=4):
        super().__init__(node_id, neighbors)
        self.fire_at = fire_at
        self.value = None

    def on_start(self):
        return {}

    def on_round(self, round_no, inbox):
        for sender, payload in inbox.items():
            if self.value is None:
                self.value = payload
                self.done = True
                return {u: payload for u in self.neighbors if u != sender}
        if round_no == self.fire_at and self.node_id == min(self.neighbors + [self.node_id]):
            self.value = ("spark", self.node_id)
            self.done = True
            return {u: self.value for u in self.neighbors}
        return {}

    def result(self):
        return self.value


class Stuck(NodeProgram):
    """A buggy event-driven program: never done, never asks for wakeup."""

    event_driven = True

    def on_round(self, round_no, inbox):
        return {}


class TestSchedulingContract:
    def test_needs_wakeup_gets_silent_rounds(self):
        graph = generators.path_graph(4)
        outcomes = {}
        for scheduler in ("dense", "event"):
            with scheduler_override(scheduler):
                m = RoundMetrics()
                outcomes[scheduler] = (
                    run_program(graph, SilentCountdown, metrics=m, phase="tick"), m
                )
        (rd, md), (re_, me) = outcomes["dense"], outcomes["event"]
        assert rd == re_
        # every node saw rounds 2..5 even though no message was ever sent
        assert all(v == (2, 3, 4, 5) for v in rd.values())
        assert fingerprint(md) == fingerprint(me)
        # wakeup-requesters are woken every round: nothing saved here
        assert me.activations_saved == 0

    def test_unported_program_is_polled(self):
        graph = generators.cycle_graph(9)
        outcomes = {}
        for scheduler in ("dense", "event"):
            with scheduler_override(scheduler):
                m = RoundMetrics()
                outcomes[scheduler] = (
                    run_program(graph, LateFlood, metrics=m, phase="flood"), m
                )
        (rd, md), (re_, me) = outcomes["dense"], outcomes["event"]
        assert rd == re_
        assert fingerprint(md) == fingerprint(me)
        # a polled node is an activation in both loops: no savings at all
        assert me.activations_saved == 0

    def test_stalled_event_program_fails_fast(self):
        """Empty active set with undone programs raises immediately (the
        dense loop would spin to max_rounds) and names the contract."""
        graph = generators.path_graph(3)
        with scheduler_override("event"):
            network = CongestNetwork(graph)
            programs = {v: Stuck(v, graph.neighbors(v)) for v in graph.nodes()}
            with pytest.raises(RoundLimitExceededError, match="needs_wakeup"):
                network.run(programs, phase="stuck")

    def test_explicit_scheduler_beats_default(self):
        graph = generators.path_graph(3)
        with scheduler_override("dense"):
            assert default_scheduler() == "dense"
            network = CongestNetwork(graph, scheduler="event")
            assert network.scheduler == "event"
        assert default_scheduler() == "event"

    def test_unknown_scheduler_rejected(self):
        graph = generators.path_graph(2)
        with pytest.raises(ValueError):
            CongestNetwork(graph, scheduler="lazy")
        with pytest.raises(ValueError):
            with scheduler_override("lazy"):
                pass  # pragma: no cover


class TestFaultEquivalence:
    """The chaos layer rides the single shared delivery hook, so an
    identical :class:`FaultPlan` replayed on both scheduler loops must
    produce identical ledgers, identical results, and an identical fault
    history — the differential property the satellite demands.

    Every run constructs a *fresh* plan (and hence a fresh injector with
    its clock at zero), so both loops see the very same global-round
    fault draws.
    """

    CHAOS_KW = dict(
        seed=31, drop_rate=0.1, duplicate_rate=0.05,
        delay_rate=0.1, max_delay=3, corruption_rate=0.05,
    )

    def _both(self, run):
        out = {}
        for scheduler in ("dense", "event"):
            with scheduler_override(scheduler):
                with fault_override(FaultPlan(**self.CHAOS_KW)) as injector:
                    m = RoundMetrics()
                    out[scheduler] = (run(m), m, injector.stats.to_dict())
        return out["dense"], out["event"]

    @pytest.mark.parametrize("family", ["grid", "cycle", "tree"])
    def test_leader_election_under_chaos(self, family):
        graph = GRAPHS[family]()
        (rd, md, sd), (re_, me, se) = self._both(
            lambda m: elect_leader(graph, metrics=m)
        )
        assert rd == re_ == max(graph.nodes())
        assert fingerprint(md) == fingerprint(me)
        assert sd == se  # same drops, same delays, same corruptions

    def test_bfs_under_chaos(self):
        graph = GRAPHS["grid"]()
        root = max(graph.nodes())

        def run(m):
            t = build_bfs_tree(graph, root, metrics=m)
            return (t.parent, t.depth_of)

        (rd, md, sd), (re_, me, se) = self._both(run)
        assert rd == re_
        assert fingerprint(md) == fingerprint(me)
        assert sd == se

    def test_crash_window_replayed_identically(self):
        graph = GRAPHS["grid"]()
        victim = sorted(graph.nodes())[7]
        crash = CrashWindow(start=2, stop=6, node=victim)
        out = {}
        for scheduler in ("dense", "event"):
            with scheduler_override(scheduler):
                plan = FaultPlan(seed=8, drop_rate=0.05, crashes=(crash,))
                with fault_override(plan) as injector:
                    m = RoundMetrics()
                    out[scheduler] = (
                        elect_leader(graph, metrics=m), m, injector.stats.to_dict()
                    )
        (rd, md, sd), (re_, me, se) = out["dense"], out["event"]
        assert rd == re_ == max(graph.nodes())
        assert fingerprint(md) == fingerprint(me)
        assert sd == se
        assert sd["crash_node_rounds"] > 0

    def test_self_healing_pipeline_under_chaos(self):
        """The full chaos pipeline — embed, certify, verify, heal — is
        scheduler-invariant: same rotations, same ledger, same faults."""
        from repro.core import self_healing_embedding

        graph = generators.grid_graph(4, 4)
        results = {}
        for scheduler in ("dense", "event"):
            with scheduler_override(scheduler):
                results[scheduler] = self_healing_embedding(
                    graph, faults=FaultPlan(seed=5, drop_rate=0.04, corruption_rate=0.02)
                )
        dense, event = results["dense"], results["event"]
        assert not getattr(dense, "degraded", False)
        assert not getattr(event, "degraded", False)
        assert dense.rotation == event.rotation
        assert dense.heal_attempts == event.heal_attempts
        assert dense.fault_stats == event.fault_stats
        assert fingerprint(dense.metrics) == fingerprint(event.metrics)


class TestPayloadMeter:
    """The memo cache must never conflate equal-comparing payloads of
    different types — ``2 == 2.0 == True`` but they measure differently."""

    def test_type_aware_keys(self):
        meter = PayloadMeter(bits_per_word=7)
        for payload in (2, 2.0, True, ("x", 2), ("x", 2.0), ("x", True)):
            assert meter(payload) == payload_words(payload, 7), payload
            # and again, from the cache
            assert meter(payload) == payload_words(payload, 7), payload

    def test_unhashable_payloads_measured_uncached(self):
        meter = PayloadMeter(bits_per_word=7)
        payload = ("list", [1, 2, 3])
        assert meter(payload) == payload_words(payload, 7)
        assert meter(payload) == payload_words(payload, 7)

    def test_cache_is_capped(self):
        class TinyMeter(PayloadMeter):
            MAX_ENTRIES = 4

        meter = TinyMeter(bits_per_word=7)
        for i in range(10):
            meter(("k", i))
        assert len(meter._cache) <= 4
        # uncached values still measure correctly
        assert meter(("k", 9)) == payload_words(("k", 9), 7)
