"""The reliable-delivery (ARQ) layer: exactly-once in-order delivery on
every link under heavy chaos, and a typed give-up when the budget runs
out.
"""

from __future__ import annotations

import pytest

from repro.congest import (
    FaultPlan,
    ReliableProgram,
    RetransmitBudgetExceededError,
    RoundMetrics,
    run_reliable,
)
from repro.congest.node import NodeProgram
from repro.planar import generators

HEAVY = FaultPlan(
    seed=21,
    drop_rate=0.2,
    duplicate_rate=0.2,
    delay_rate=0.3,
    max_delay=4,
    corruption_rate=0.1,
)


class Streamer(NodeProgram):
    """The minimum node streams ``count`` numbered payloads to every
    neighbor, one per round; every node records what it receives, in
    order.  Exactly-once in-order delivery means every receiver ends
    with exactly ``[1..count]`` from that sender."""

    event_driven = True

    def __init__(self, node_id, neighbors, count=12):
        super().__init__(node_id, neighbors)
        self.count = count
        self.received: dict = {v: [] for v in neighbors}
        self.sent = 0
        self.is_source = node_id == min([node_id] + neighbors)
        if self.is_source:
            self.needs_wakeup = True
        else:
            self.done = True  # receivers are passive

    def on_start(self):
        return self._pump()

    def on_round(self, round_no, inbox):
        for sender, payload in inbox.items():
            self.received[sender].append(payload)
        return self._pump()

    def _pump(self):
        if not self.is_source or self.sent >= self.count:
            self.needs_wakeup = False
            self.done = True
            return {}
        self.sent += 1
        return {v: ("n", self.sent) for v in self.neighbors}

    def result(self):
        return self.received


def expected_stream(count):
    return [("n", i) for i in range(1, count + 1)]


class TestExactlyOnceInOrder:
    @pytest.mark.parametrize("plan", [None, HEAVY], ids=["clean", "heavy-chaos"])
    def test_stream_delivered_exactly_once_in_order(self, plan):
        graph = generators.path_graph(2)
        m = RoundMetrics()
        results = run_reliable(
            graph, Streamer, metrics=m, phase="stream", faults=plan
        )
        source = min(graph.nodes())
        sink = max(graph.nodes())
        assert results[sink][source] == expected_stream(12)

    def test_star_fanout_under_chaos(self):
        """One source streaming to several sinks at once: per-link ARQ
        state must not bleed across links."""
        from repro.planar import Graph

        graph = Graph()
        hub = 0
        for leaf in (1, 2, 3, 4):
            graph.add_edge(hub, leaf)
        results = run_reliable(
            graph, Streamer, metrics=RoundMetrics(), phase="fan", faults=HEAVY
        )
        for leaf in (1, 2, 3, 4):
            assert results[leaf][hub] == expected_stream(12)

    def test_duplicates_are_dropped_not_delivered(self):
        graph = generators.path_graph(2)
        plan = FaultPlan(seed=4, duplicate_rate=0.6, max_delay=3)
        network_programs = {}

        def factory(v, neighbors):
            p = Streamer(v, neighbors)
            network_programs[v] = p
            return p

        results = run_reliable(
            graph, factory, metrics=RoundMetrics(), phase="dup", faults=plan
        )
        source, sink = min(graph.nodes()), max(graph.nodes())
        assert results[sink][source] == expected_stream(12)


class TestBudgetExhaustion:
    def test_total_loss_raises_typed_error(self):
        graph = generators.path_graph(2)
        plan = FaultPlan(seed=1, drop_rate=1.0)
        with pytest.raises(RetransmitBudgetExceededError) as info:
            run_reliable(
                graph, Streamer, metrics=RoundMetrics(), phase="doomed",
                faults=plan, max_attempts=3,
            )
        assert "3 attempts" in str(info.value)

    def test_backoff_parameters_validated(self):
        inner = Streamer(0, [1])
        with pytest.raises(ValueError):
            ReliableProgram(inner, 0, [1], initial_rto=0)
        with pytest.raises(ValueError):
            ReliableProgram(inner, 0, [1], backoff=0.5)
        with pytest.raises(ValueError):
            ReliableProgram(inner, 0, [1], max_attempts=0)


class TestOverheadAccounting:
    def test_recovery_phase_separates_overhead(self):
        """Retransmission traffic must appear under ``recovery``, and the
        named phase's own message count must equal the clean run's."""
        graph = generators.path_graph(2)
        m_clean = RoundMetrics()
        run_reliable(graph, Streamer, metrics=m_clean, phase="stream")
        m_chaos = RoundMetrics()
        run_reliable(graph, Streamer, metrics=m_chaos, phase="stream", faults=HEAVY)
        clean_phases = m_clean.phase_breakdown()
        chaos_phases = m_chaos.phase_breakdown()
        assert "recovery" not in clean_phases
        assert chaos_phases["recovery"]["messages"] > 0
        # every retransmit/ack is accounted: total == phase + recovery
        assert (
            chaos_phases["stream"]["messages"]
            + chaos_phases["recovery"]["messages"]
            == m_chaos.messages
        )

    def test_wrapper_counters(self):
        graph = generators.path_graph(2)
        programs = {}

        def factory(v, neighbors):
            p = Streamer(v, neighbors)
            programs[v] = p
            return p

        from repro.congest import CongestNetwork
        from repro.congest.reliable import RELIABLE_HEADER_WORDS

        network = CongestNetwork(
            graph, bandwidth_words=8 + RELIABLE_HEADER_WORDS,
            metrics=RoundMetrics(), faults=FaultPlan(seed=6, drop_rate=0.4),
        )
        wrapped = {
            v: ReliableProgram(Streamer(v, graph.neighbors(v)), v, graph.neighbors(v))
            for v in graph.nodes()
        }
        network.run(wrapped, phase="stream")
        assert sum(w.retransmits for w in wrapped.values()) > 0
        assert all(w.done for w in wrapped.values())
