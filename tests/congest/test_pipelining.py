"""Exact pipelined communication cost formulas."""

import pytest

from repro.congest import (
    aggregate_rounds,
    broadcast_rounds,
    convergecast_rounds,
    gather_scatter_rounds,
    stream_rounds,
)


class TestStream:
    def test_single_word(self):
        assert stream_rounds(hops=5, words=1) == 5

    def test_pipelining(self):
        # d + W - 1: the classic pipeline fill + drain.
        assert stream_rounds(hops=5, words=10) == 14

    def test_bandwidth_divides(self):
        assert stream_rounds(hops=5, words=10, bandwidth=2) == 9
        assert stream_rounds(hops=5, words=10, bandwidth=10) == 5

    def test_zero_cases(self):
        assert stream_rounds(0, 10) == 0
        assert stream_rounds(10, 0) == 0

    def test_invalid(self):
        with pytest.raises(ValueError):
            stream_rounds(-1, 1)
        with pytest.raises(ValueError):
            stream_rounds(1, 1, bandwidth=0)


def test_convergecast_equals_stream():
    assert convergecast_rounds(7, 20) == stream_rounds(7, 20)


def test_broadcast_equals_stream():
    assert broadcast_rounds(7, 20) == stream_rounds(7, 20)


def test_aggregate_up_down():
    assert aggregate_rounds(6) == 12
    assert aggregate_rounds(6, repetitions=3) == 36
    with pytest.raises(ValueError):
        aggregate_rounds(-1)


def test_gather_scatter_sum():
    assert gather_scatter_rounds(4, 10, 6) == stream_rounds(4, 10) + stream_rounds(4, 6)
