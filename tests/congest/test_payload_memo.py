"""PayloadMeter memo keys must never conflate distinct measurements.

The meter caches :func:`payload_words` per payload value, but Python
equality crosses types (``2 == 2.0 == True``) while the measurement does
not — so the cache key must carry type information, recursively through
nested tuples.  A collision here would silently corrupt the word ledger.
"""

import random

from repro.congest.message import PayloadMeter, _memo_key, payload_words


def test_equal_values_of_different_types_measure_independently():
    meter = PayloadMeter(5)
    # 2 == 2.0 == True, but words differ: int 2 -> 1 word @5 bits,
    # float -> ceil(64/5), bool -> 1 (tag).
    for payload in (2, 2.0, True, 2, 2.0, True):
        assert meter(payload) == payload_words(payload, 5)


def test_nested_tuples_with_equal_values_do_not_collide():
    meter = PayloadMeter(5)
    a, b = ("x", (2,)), ("x", (2.0,))
    assert a == b  # equal values, equal top-level item types...
    assert _memo_key(a) != _memo_key(b)  # ...distinct keys regardless
    assert meter(a) == payload_words(a, 5)
    assert meter(b) == payload_words(b, 5)
    assert meter(a) != meter(b)


def test_flat_tuple_fast_path_matches_direct_measurement():
    meter = PayloadMeter(7)
    rng = random.Random(5)
    atoms = [0, 1, -3, 2**40, "bfs", "agg", True, None, 3.5]
    for _ in range(200):
        payload = tuple(rng.choice(atoms) for _ in range(rng.randrange(5)))
        assert meter(payload) == payload_words(payload, 7)
        assert meter(payload) == payload_words(payload, 7)  # cached path


def test_unhashable_payloads_measure_without_caching():
    meter = PayloadMeter(5)
    payload = ("tag", [1, 2, 3])
    assert meter(payload) == payload_words(payload, 5)
    assert len(meter._cache) == 0


def test_cache_is_capped():
    meter = PayloadMeter(5)
    for i in range(100):
        meter(("k", i))
    assert 0 < len(meter._cache) <= meter.MAX_ENTRIES
