"""Round ledgers: real rounds, charges, and composition rules."""

import json

import pytest

from repro.congest import RoundMetrics
from repro.congest.metrics import Charge


def test_record_round():
    m = RoundMetrics()
    m.record_round(messages=5, words=9, max_edge_words=3)
    m.record_round(messages=1, words=1, max_edge_words=1)
    assert m.rounds == 2
    assert m.messages == 6
    assert m.total_words == 10
    assert m.max_words_edge_round == 3


def test_charge_with_provenance():
    m = RoundMetrics()
    m.charge("merge:star", 12, words=40, detail="3 leaves")
    assert m.rounds == 12
    assert m.phase_rounds["merge:star"] == 12
    assert m.charges[0].detail == "3 leaves"


def test_charge_negative_rejected():
    with pytest.raises(ValueError):
        RoundMetrics().charge("x", -1)


def test_absorb_parallel_takes_max():
    m = RoundMetrics()
    b1, b2 = RoundMetrics(), RoundMetrics()
    b1.charge("a", 10, words=5)
    b2.charge("a", 3, words=7)
    m.absorb_parallel([b1, b2], phase="recursion")
    assert m.rounds == 10  # parallel branches: max
    assert m.total_words == 12  # traffic always adds
    assert m.phase_rounds["recursion"] == 10


def test_absorb_parallel_empty_is_noop():
    m = RoundMetrics()
    m.absorb_parallel([], phase="recursion")
    assert m.rounds == 0


def test_absorb_serial_adds():
    m = RoundMetrics()
    m.charge("x", 5)
    other = RoundMetrics()
    other.charge("x", 7)
    other.record_round(2, 2, 1)
    m.absorb_serial(other)
    assert m.rounds == 13
    assert m.phase_rounds["x"] == 12


def test_summary_mentions_phases():
    m = RoundMetrics()
    m.charge("bfs", 4)
    assert "bfs" in m.summary()


def test_summary_shows_per_phase_traffic():
    m = RoundMetrics()
    m.charge("merge", 3, words=17, messages=5)
    line = next(ln for ln in m.summary().splitlines() if "merge" in ln)
    assert "3 rounds" in line and "5 msgs" in line and "17 words" in line


class TestSerialization:
    def make_ledger(self):
        m = RoundMetrics()
        m.record_round(messages=4, words=9, max_edge_words=3)
        m.record_round(messages=2, words=2, max_edge_words=1)
        m.tag_phase("bfs", 2, messages=6, words=11)
        m.charge("merge:star", 5, words=20, detail="3 leaves", messages=7)
        return m

    def test_round_trip_is_lossless(self):
        m = self.make_ledger()
        back = RoundMetrics.from_dict(m.to_dict())
        assert back == m  # observer is excluded from comparison

    def test_round_trip_through_json(self):
        m = self.make_ledger()
        back = RoundMetrics.from_dict(json.loads(json.dumps(m.to_dict())))
        assert back == m
        assert back.charges[-1] == Charge(
            "merge:star", 5, words=20, detail="3 leaves", messages=7
        )
        assert back.charges[0].kind == "real"

    def test_phase_breakdown_from_charge_provenance(self):
        m = self.make_ledger()
        phases = m.to_dict()["phases"]
        assert phases["bfs"] == {
            "rounds": 2, "messages": 6, "words": 11, "charges": 1,
            "activations": 0, "activations_saved": 0,
        }
        assert phases["merge:star"] == {
            "rounds": 5, "messages": 7, "words": 20, "charges": 1,
            "activations": 0, "activations_saved": 0,
        }


class TestCompositionInvariants:
    """Satellite: absorb_parallel / absorb_serial invariants across nesting."""

    def branch(self, phase, rounds, words, messages=0):
        b = RoundMetrics()
        b.charge(phase, rounds, words=words, messages=messages)
        b.record_round(messages=1, words=1, max_edge_words=1)
        b.tag_phase(phase, 1, messages=1, words=1)
        return b

    def test_parallel_rounds_max_traffic_sum(self):
        m = RoundMetrics()
        b1 = self.branch("work", 10, words=50, messages=5)
        b2 = self.branch("work", 3, words=70, messages=9)
        m.absorb_parallel([b1, b2], phase="recursion")
        assert m.rounds == max(b1.rounds, b2.rounds)
        assert m.total_words == b1.total_words + b2.total_words
        assert m.messages == b1.messages + b2.messages

    def test_serial_rounds_and_traffic_sum(self):
        m = self.branch("a", 4, words=8)
        other = self.branch("b", 6, words=5)
        total_before = m.rounds + other.rounds
        m.absorb_serial(other)
        assert m.rounds == total_before
        assert m.phase_rounds["a"] == 5 and m.phase_rounds["b"] == 7

    def test_charges_preserved_across_nesting(self):
        inner1 = self.branch("leaf", 2, words=3)
        inner2 = self.branch("leaf", 9, words=4)
        mid = RoundMetrics()
        mid.absorb_parallel([inner1, inner2], phase="level1")
        outer = RoundMetrics()
        outer.absorb_serial(mid)
        # every charge survives two levels of composition, provenance intact
        assert len(outer.charges) == len(inner1.charges) + len(inner2.charges)
        assert all(c.phase == "leaf" for c in outer.charges)
        kinds = sorted(c.kind for c in outer.charges)
        assert kinds == ["charge", "charge", "real", "real"]

    def test_phase_rounds_preserved_across_nesting(self):
        inner = self.branch("leaf", 5, words=0)
        mid = RoundMetrics()
        mid.absorb_parallel([inner], phase="level1")
        outer = RoundMetrics()
        outer.absorb_serial(mid)
        # the parallel composition's max lands under its own phase label
        assert outer.phase_rounds["level1"] == inner.rounds
        assert outer.rounds == inner.rounds

    def test_max_edge_words_is_max_under_both_compositions(self):
        b1, b2 = RoundMetrics(), RoundMetrics()
        b1.record_round(1, 1, max_edge_words=3)
        b2.record_round(1, 1, max_edge_words=8)
        par = RoundMetrics()
        par.absorb_parallel([b1, b2], phase="p")
        assert par.max_words_edge_round == 8
        ser = RoundMetrics()
        ser.record_round(1, 1, max_edge_words=2)
        ser.absorb_serial(par)
        assert ser.max_words_edge_round == 8

    def test_observer_not_notified_by_composition(self):
        """Composition only moves already-accounted charges; re-notifying
        would double-count them on an attached tracer's spans."""
        seen = []

        class Spy:
            def on_charge(self, c):
                seen.append(c)

            def on_round(self, *a):
                seen.append(a)

        m = RoundMetrics(observer=Spy())
        b = RoundMetrics()
        b.charge("x", 2)
        m.absorb_parallel([b], phase="p")
        m.absorb_serial(b)
        assert seen == []
