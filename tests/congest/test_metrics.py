"""Round ledgers: real rounds, charges, and composition rules."""

import pytest

from repro.congest import RoundMetrics


def test_record_round():
    m = RoundMetrics()
    m.record_round(messages=5, words=9, max_edge_words=3)
    m.record_round(messages=1, words=1, max_edge_words=1)
    assert m.rounds == 2
    assert m.messages == 6
    assert m.total_words == 10
    assert m.max_words_edge_round == 3


def test_charge_with_provenance():
    m = RoundMetrics()
    m.charge("merge:star", 12, words=40, detail="3 leaves")
    assert m.rounds == 12
    assert m.phase_rounds["merge:star"] == 12
    assert m.charges[0].detail == "3 leaves"


def test_charge_negative_rejected():
    with pytest.raises(ValueError):
        RoundMetrics().charge("x", -1)


def test_absorb_parallel_takes_max():
    m = RoundMetrics()
    b1, b2 = RoundMetrics(), RoundMetrics()
    b1.charge("a", 10, words=5)
    b2.charge("a", 3, words=7)
    m.absorb_parallel([b1, b2], phase="recursion")
    assert m.rounds == 10  # parallel branches: max
    assert m.total_words == 12  # traffic always adds
    assert m.phase_rounds["recursion"] == 10


def test_absorb_parallel_empty_is_noop():
    m = RoundMetrics()
    m.absorb_parallel([], phase="recursion")
    assert m.rounds == 0


def test_absorb_serial_adds():
    m = RoundMetrics()
    m.charge("x", 5)
    other = RoundMetrics()
    other.charge("x", 7)
    other.record_round(2, 2, 1)
    m.absorb_serial(other)
    assert m.rounds == 13
    assert m.phase_rounds["x"] == 12


def test_summary_mentions_phases():
    m = RoundMetrics()
    m.charge("bfs", 4)
    assert "bfs" in m.summary()
