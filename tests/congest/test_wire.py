"""The wire format: canonical byte encoding, CRC framing, and the
guarantee that corruption is a *typed, countable* event.

Satellite contract: a corrupted frame must raise (or be counted as)
:class:`repro.congest.errors.MessageCorruptionError` — never propagate a
bare ``ValueError``/``struct.error``, never silently decode to a wrong
payload the receiver would act on.
"""

from __future__ import annotations

import pytest

from repro.congest import (
    FaultPlan,
    Message,
    MessageCorruptionError,
    RoundMetrics,
    decode_payload,
    encode_payload,
    fault_override,
    flip_bit,
    run_program,
)
from repro.congest.node import NodeProgram
from repro.planar import generators

PAYLOADS = [
    None,
    True,
    False,
    0,
    -1,
    12345678901234567890,
    -(1 << 200),
    3.5,
    -0.0,
    "",
    "hello",
    "üñïçødé ✓",
    (),
    ("tag", 7),
    ("nested", ("deep", (1, 2, (3,)))),
    [1, "two", 3.0],
    {"a": 1, "b": (2, 3)},
    {1: "one", ("k",): None},
    set(),
    {1, 2, 3},
    frozenset({("x", 1), ("y", 2)}),
    ("mixed", [{"s": {1, 2}}, frozenset({"f"})], None),
]


@pytest.mark.parametrize("payload", PAYLOADS, ids=[repr(p)[:40] for p in PAYLOADS])
def test_payload_round_trip(payload):
    assert decode_payload(encode_payload(payload)) == payload


def test_bool_int_not_conflated():
    """``True == 1`` but the wire keeps the types distinct."""
    for a, b in ((True, 1), (False, 0)):
        assert encode_payload(a) != encode_payload(b)
        assert decode_payload(encode_payload(a)) is a


def test_sets_and_dicts_canonical():
    """Equal values encode to identical bytes regardless of build order."""
    assert encode_payload({3, 1, 2}) == encode_payload({2, 3, 1})
    d1 = {"a": 1, "b": 2}
    d2 = {"b": 2, "a": 1}
    assert encode_payload(d1) == encode_payload(d2)


def test_unsupported_type_raises_typeerror():
    with pytest.raises(TypeError):
        encode_payload(object())
    with pytest.raises(TypeError):
        encode_payload(("outer", b"bytes"))


def test_message_round_trip():
    msg = Message(("v", 0), ("v", 1), ("bfs", 3, (1, 2)))
    assert Message.decode(msg.encode()) == msg


class TestLamportPiggyback:
    """The optional causal stamp rides the wire as a 4-tuple body and
    stays invisible to unstamped frames."""

    def test_stamped_round_trip(self):
        msg = Message(("v", 0), ("v", 1), ("bfs", 3), lamport=42)
        decoded = Message.decode(msg.encode())
        assert decoded == msg
        assert decoded.lamport == 42

    def test_unstamped_frames_keep_the_legacy_3_tuple(self):
        """Backward compatibility: no stamp => the pre-causal wire bytes,
        so old dumps and mixed-version traffic decode unchanged."""
        stamped = Message(1, 2, "x", lamport=0).encode()
        legacy = Message(1, 2, "x").encode()
        assert stamped != legacy
        assert Message.decode(legacy).lamport is None

    def test_stamp_does_not_change_payload_words(self):
        from repro.congest import payload_words

        assert payload_words(Message(1, 2, (1, 2, 3)).payload) == payload_words(
            Message(1, 2, (1, 2, 3), lamport=9).payload
        )

    def test_non_int_stamp_is_typed_corruption(self):
        from repro.congest.message import encode_payload as enc

        import zlib

        bad_body = enc((1, 2, "x", "not-a-stamp"))
        # Re-frame with a valid CRC so only the semantic check can fire.
        frame = (
            len(bad_body).to_bytes(4, "big")
            + bad_body
            + zlib.crc32(bad_body).to_bytes(4, "big")
        )
        with pytest.raises(MessageCorruptionError, match="lamport"):
            Message.decode(frame)


class TestCorruptionIsTyped:
    """Every malformation → MessageCorruptionError, nothing else."""

    def test_every_single_bit_flip_detected(self):
        """CRC-32 catches 100% of single-bit errors — exhaustively."""
        blob = Message(1, 2, ("payload", 42)).encode()
        for bit in range(len(blob) * 8):
            with pytest.raises(MessageCorruptionError):
                Message.decode(flip_bit(blob, bit))

    def test_truncation(self):
        blob = Message(1, 2, "hello").encode()
        for cut in (0, 1, 7, len(blob) - 1):
            with pytest.raises(MessageCorruptionError):
                Message.decode(blob[:cut])

    def test_trailing_garbage(self):
        blob = Message(1, 2, "hello").encode()
        with pytest.raises(MessageCorruptionError):
            Message.decode(blob + b"\x00")

    def test_garbage_bytes(self):
        for blob in (b"", b"\xff" * 16, b"not a frame at all"):
            with pytest.raises(MessageCorruptionError):
                Message.decode(blob)

    def test_payload_body_malformations_wrapped(self):
        """Direct body decoding wraps struct/unicode errors too."""
        cases = [
            b"",  # truncated
            b"Q",  # unknown tag
            b"i\x00\x05ab",  # int claims 5 bytes, has 2
            b"s\x00\x00\x00\x05ab",  # str claims 5 bytes, has 2
            b"s\x00\x00\x00\x02\xff\xfe",  # invalid utf-8
            b"t\xff\xff\xff\xff",  # implausible container size
            b"f\x00",  # truncated float
            encode_payload("ok") + b"X",  # trailing bytes
        ]
        for body in cases:
            with pytest.raises(MessageCorruptionError):
                decode_payload(body)

    def test_nesting_bomb_rejected(self):
        body = b"t\x00\x00\x00\x01" * 100 + b"N"
        with pytest.raises(MessageCorruptionError):
            decode_payload(body)

    def test_corruption_error_is_typed_not_bare(self):
        """The exception is a CongestError subclass, not a ValueError a
        caller might conflate with its own validation."""
        from repro.congest import CongestError

        blob = Message(1, 2, "x").encode()
        try:
            Message.decode(flip_bit(blob, 13))
        except MessageCorruptionError as exc:
            assert isinstance(exc, CongestError)
            assert not isinstance(exc, ValueError)
        else:  # pragma: no cover
            pytest.fail("corrupted frame decoded cleanly")


class _Flood(NodeProgram):
    """Minimal flood used to push real frames through a corrupting net."""

    event_driven = True

    def on_start(self):
        self.done = True
        return {u: ("hi", self.node_id) for u in self.neighbors}

    def on_round(self, round_no, inbox):
        return {}


class TestCorruptionCounted:
    def test_partial_corruption_absorbed_and_counted(self):
        """Under a 40% corruption schedule the run still completes (the
        transparent ARQ wrap retransmits what the CRC discarded), every
        hit is counted, and none ever decodes."""
        from repro.congest import CongestNetwork

        graph = generators.cycle_graph(6)
        plan = FaultPlan(seed=5, corruption_rate=0.4)
        m = RoundMetrics()
        network = CongestNetwork(graph, metrics=m, faults=plan)
        programs = {v: _Flood(v, graph.neighbors(v)) for v in graph.nodes()}
        results = network.run(programs, phase="flood")
        assert set(results) == set(graph.nodes())
        stats = network.fault_stats
        assert stats.corrupted > 0
        assert stats.corruption_detected == stats.corrupted
        assert stats.corruption_delivered == 0

    def test_total_corruption_exhausts_typed_budget(self):
        """corrupt=1.0 kills every frame; the reliable layer gives up
        with the *typed* budget error — the CRC never lets a garbled
        frame through to a program, and nothing raises a bare
        ValueError."""
        from repro.congest import CongestNetwork, RetransmitBudgetExceededError

        graph = generators.path_graph(3)
        plan = FaultPlan(seed=2, corruption_rate=1.0)
        m = RoundMetrics()
        network = CongestNetwork(graph, metrics=m, faults=plan)
        programs = {v: _Flood(v, graph.neighbors(v)) for v in graph.nodes()}
        with pytest.raises(RetransmitBudgetExceededError):
            network.run(programs, phase="flood")
        stats = network.fault_stats
        assert stats.corrupted > 0
        assert stats.corruption_detected == stats.corrupted
        assert stats.corruption_delivered == 0
