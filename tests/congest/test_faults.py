"""The deterministic fault layer: spec parsing, seeded reproducibility,
clean-path identity, and each fault class's observable behavior.

The reproducibility contract is the satellite's RNG audit: every fault
decision must derive from ``--fault-seed`` alone — never from Python's
(process-salted) ``hash``, never from module-level ``random`` state — so
a chaos run replays bit-for-bit from its seed.
"""

from __future__ import annotations

import random

import pytest

from repro.congest import (
    CongestNetwork,
    CrashWindow,
    FaultInjector,
    FaultPlan,
    FaultSpecError,
    LinkOutage,
    RoundMetrics,
    default_fault_injector,
    fault_override,
)
from repro.planar import generators
from repro.primitives.leader import elect_leader
from tests.congest.test_scheduler_equivalence import fingerprint


class TestFaultPlanParsing:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "drop=0.05,dup=0.01,delay=0.1:2,corrupt=0.02,crash=2:5,link=1:6",
            seed=9,
        )
        assert plan.seed == 9
        assert plan.drop_rate == 0.05
        assert plan.duplicate_rate == 0.01
        assert plan.delay_rate == 0.1
        assert plan.max_delay == 2
        assert plan.corruption_rate == 0.02
        assert plan.crash_count == 2
        assert plan.crash_length == 5
        assert plan.link_outage_count == 1
        assert plan.link_outage_length == 6
        assert not plan.is_null

    def test_empty_spec_is_null(self):
        assert FaultPlan.parse("").is_null
        assert FaultPlan().is_null

    def test_seed_in_spec_overrides_argument(self):
        assert FaultPlan.parse("seed=42,drop=0.1", seed=7).seed == 42

    @pytest.mark.parametrize("bad", [
        "drop",  # no value
        "drop=lots",  # not a float
        "drop=1.5",  # out of range
        "warp=0.1",  # unknown class
        "delay=0.1:0",  # max_delay < 1
        "crash=-1",  # negative count
    ])
    def test_bad_specs_raise_typed_error(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)

    def test_window_validation(self):
        with pytest.raises(FaultSpecError):
            CrashWindow(start=5, stop=5)
        with pytest.raises(FaultSpecError):
            CrashWindow(start=0, stop=3)  # round 0 does not exist
        with pytest.raises(FaultSpecError):
            LinkOutage(start=2, stop=6, u="a", v=None)  # one endpoint

    def test_describe_mentions_every_active_class(self):
        plan = FaultPlan.parse("drop=0.05,crash=1", seed=3)
        text = plan.describe()
        assert "seed=3" in text and "drop=0.05" in text and "crash-windows=1" in text
        assert FaultPlan().describe() == "no faults (null plan)"


class TestDeterminism:
    """Identical seed → identical chaos, regardless of ambient RNG state."""

    PLAN = dict(seed=13, drop_rate=0.15, duplicate_rate=0.05,
                delay_rate=0.1, corruption_rate=0.05)

    def _chaos_run(self):
        graph = generators.grid_graph(4, 4)
        m = RoundMetrics()
        with fault_override(FaultPlan(**self.PLAN)) as injector:
            leader = elect_leader(graph, metrics=m)
        return leader, fingerprint(m), injector.stats.to_dict()

    def test_repeat_run_bit_identical(self):
        first = self._chaos_run()
        # Aggressively perturb every ambient source of nondeterminism the
        # fault path could illegally consult.
        random.seed(999)
        for _ in range(100):
            random.random()
        second = self._chaos_run()
        assert first == second

    def test_different_seeds_differ(self):
        base = self._chaos_run()
        with fault_override(FaultPlan(**{**self.PLAN, "seed": 14})) as injector:
            m = RoundMetrics()
            elect_leader(generators.grid_graph(4, 4), metrics=m)
        assert injector.stats.to_dict() != base[2]

    def test_no_module_level_random_on_fault_path(self):
        """Source audit: nothing on the delivery path may touch the
        ``random`` module (the certify adversary uses it deliberately —
        tampering is test harness, not fault path)."""
        import repro.congest.faults as faults
        import repro.congest.message as message
        import repro.congest.network as network
        import repro.congest.reliable as reliable

        for mod in (faults, message, network, reliable):
            assert not hasattr(mod, "random"), f"{mod.__name__} imports random"
            with open(mod.__file__) as fh:
                source = fh.read()
            assert "import random" not in source, f"{mod.__name__} imports random"
            assert "hash(" not in source, f"{mod.__name__} uses salted hash()"

    def test_reseed_derives_new_seed(self):
        plan = FaultPlan(seed=5, drop_rate=0.1)
        assert plan.reseed(1).seed != plan.seed
        assert plan.reseed(1) == plan.reseed(1)
        assert plan.reseed(1).seed != plan.reseed(2).seed


class TestNullPlanIdentity:
    """A null plan activates the fault hook but must change *nothing*
    observable: same results, same ledger, zero faults."""

    def test_ledger_bit_identical(self):
        graph = generators.grid_graph(5, 5)
        m_clean = RoundMetrics()
        leader_clean = elect_leader(graph, metrics=m_clean)
        m_null = RoundMetrics()
        with fault_override(FaultPlan()) as injector:
            leader_null = elect_leader(graph, metrics=m_null)
        assert leader_clean == leader_null
        assert fingerprint(m_clean) == fingerprint(m_null)
        assert m_clean.node_activations == m_null.node_activations
        assert injector.stats.faults_injected == 0

    def test_default_injector_scoping(self):
        assert default_fault_injector() is None
        with fault_override(FaultPlan(seed=1)) as outer:
            assert default_fault_injector() is outer
            with fault_override(None):
                assert default_fault_injector() is None
            assert default_fault_injector() is outer
        assert default_fault_injector() is None

    def test_explicit_argument_beats_default(self):
        graph = generators.path_graph(3)
        with fault_override(FaultPlan(seed=1, drop_rate=0.5)):
            network = CongestNetwork(graph, faults=FaultPlan())
            assert network.fault_stats is not None
            assert network._fault_state.plan.is_null


class TestFaultClasses:
    """Each fault class leaves its fingerprint in the stats and the run
    still completes correctly (the transparent ARQ wrap absorbs loss)."""

    def _run(self, plan, rows=4, cols=4):
        graph = generators.grid_graph(rows, cols)
        m = RoundMetrics()
        with fault_override(plan) as injector:
            leader = elect_leader(graph, metrics=m)
        assert leader == max(graph.nodes())
        return injector.stats, m

    def test_drops_absorbed(self):
        stats, _ = self._run(FaultPlan(seed=3, drop_rate=0.2))
        assert stats.dropped > 0
        assert stats.recovery_messages > 0  # retransmits happened

    def test_duplicates_discarded(self):
        stats, _ = self._run(FaultPlan(seed=3, duplicate_rate=0.3))
        assert stats.duplicated > 0

    def test_delays_reorder(self):
        stats, _ = self._run(FaultPlan(seed=3, delay_rate=0.4, max_delay=3))
        assert stats.delayed > 0

    def test_corruption_always_detected(self):
        stats, _ = self._run(FaultPlan(seed=3, corruption_rate=0.2))
        assert stats.corrupted > 0
        assert stats.corruption_detected == stats.corrupted
        assert stats.corruption_delivered == 0

    def test_explicit_crash_window_survived(self):
        graph = generators.grid_graph(4, 4)
        victim = sorted(graph.nodes())[5]
        plan = FaultPlan(seed=3, crashes=(CrashWindow(start=2, stop=6, node=victim),))
        m = RoundMetrics()
        with fault_override(plan) as injector:
            leader = elect_leader(graph, metrics=m)
        assert leader == max(graph.nodes())
        assert injector.stats.crash_node_rounds > 0

    def test_explicit_link_outage_survived(self):
        graph = generators.grid_graph(4, 4)
        u, v = sorted(graph.edges(), key=repr)[3]
        plan = FaultPlan(seed=3, link_outages=(LinkOutage(start=2, stop=8, u=u, v=v),))
        m = RoundMetrics()
        with fault_override(plan) as injector:
            leader = elect_leader(graph, metrics=m)
        assert leader == max(graph.nodes())
        assert injector.stats.link_dropped > 0

    def test_auto_windows_resolved_per_seed(self):
        plan = FaultPlan(seed=11, crash_count=2, link_outage_count=1)
        crashes, outages = plan.all_windows()
        assert len(crashes) == 2 and len(outages) == 1
        assert all(w.stop - w.start == plan.crash_length for w in crashes)
        # and they are a pure function of the seed
        again, _ = FaultPlan(seed=11, crash_count=2, link_outage_count=1).all_windows()
        assert crashes == again

    def test_recovery_traffic_lands_in_ledger(self):
        """Retransmit/ack traffic must show up under the ``recovery``
        phase tag, separated from the real phase's own traffic."""
        _, m = self._run(FaultPlan(seed=3, drop_rate=0.25))
        phases = m.phase_breakdown()
        assert "recovery" in phases
        assert phases["recovery"]["messages"] > 0


class TestSharedInjectorClock:
    def test_clock_advances_across_networks(self):
        graph = generators.path_graph(4)
        injector = FaultInjector(FaultPlan(seed=2, drop_rate=0.3))
        m = RoundMetrics()
        assert injector.clock == 0
        elect_leader(graph, metrics=m)  # clean run: clock untouched
        with fault_override(injector):
            elect_leader(graph, metrics=RoundMetrics())
            after_first = injector.clock
            elect_leader(graph, metrics=RoundMetrics())
        assert after_first > 0
        assert injector.clock > after_first

    def test_fresh_draws_after_clock_advance(self):
        """The same send in a later execution sees different fault draws
        — this is what lets retries outrun a bad schedule."""
        graph = generators.path_graph(4)
        injector = FaultInjector(FaultPlan(seed=2, drop_rate=0.3))
        outcomes = []
        with fault_override(injector):
            for _ in range(4):
                before = injector.stats.dropped
                elect_leader(graph, metrics=RoundMetrics())
                outcomes.append(injector.stats.dropped - before)
        # not every execution loses the identical number of frames
        assert len(set(outcomes)) > 1
