"""Multi-round protocols on the simulator: richer executions than the
single-shot programs, validating ordering, pipelining, and termination."""

from typing import Any

from repro.congest import CongestNetwork, NodeProgram, RoundMetrics
from repro.planar.generators import cycle_graph, grid_graph, path_graph


class TokenRing(NodeProgram):
    """Pass a counter token around a cycle exactly ``laps`` times."""

    def __init__(self, node_id, neighbors, laps, n):
        super().__init__(node_id, neighbors)
        self.laps = laps
        self.n = n
        self.seen = 0
        self.done = node_id != 0

    def _successor(self):
        return (self.node_id + 1) % self.n

    def on_start(self):
        if self.node_id == 0:
            return {self._successor(): ("token", 1)}
        return {}

    def on_round(self, round_no, inbox):
        for _, (tag, count) in inbox.items():
            if tag != "token":
                continue
            self.seen += 1
            if self.node_id == 0:
                if count >= self.laps * self.n:
                    self.done = True
                    return {}
                self.done = False
            return {self._successor(): ("token", count + 1)}
        return {}

    def result(self):
        return self.seen


def test_token_ring_rounds_exact():
    n, laps = 10, 3
    g = cycle_graph(n)
    m = RoundMetrics()
    net = CongestNetwork(g, metrics=m)
    programs = {v: TokenRing(v, g.neighbors(v), laps, n) for v in g.nodes()}
    results = net.run(programs)
    assert m.rounds == laps * n
    assert all(results[v] == laps for v in range(1, n))


class PipelinedSend(NodeProgram):
    """Stream ``k`` words from node 0 down a path, one word per round."""

    def __init__(self, node_id, neighbors, k, n):
        super().__init__(node_id, neighbors)
        self.k = k
        self.n = n
        self.received: list[int] = []
        self.to_send = list(range(k)) if node_id == 0 else []
        self.done = True

    def on_start(self):
        return self._send()

    def _send(self) -> dict[Any, Any]:
        if self.to_send and self.node_id + 1 < self.n:
            return {self.node_id + 1: ("w", self.to_send.pop(0))}
        return {}

    def on_round(self, round_no, inbox):
        for _, (tag, w) in inbox.items():
            if tag == "w":
                self.received.append(w)
                self.to_send.append(w)  # store-and-forward
        return self._send()

    def result(self):
        return self.received


def test_pipelined_stream_matches_formula():
    """Streaming k words over a path of h hops takes h + k - 1 rounds —
    the exact formula the cost model charges."""
    from repro.congest import stream_rounds

    n, k = 8, 5
    g = path_graph(n)
    m = RoundMetrics()
    net = CongestNetwork(g, metrics=m)
    programs = {v: PipelinedSend(v, g.neighbors(v), k, n) for v in g.nodes()}
    results = net.run(programs)
    assert results[n - 1] == list(range(k))  # in-order delivery
    assert m.rounds == stream_rounds(n - 1, k)


class FloodWithEcho(NodeProgram):
    """Flood from a root; leaves echo; root learns when all echoed."""

    def __init__(self, node_id, neighbors, root):
        super().__init__(node_id, neighbors)
        self.root = root
        self.parent = None
        self.reached = node_id == root
        self.pending: set = set()
        self.echoed = False
        self.done = True

    def on_start(self):
        if self.node_id == self.root:
            self.pending = set(self.neighbors)
            return {u: ("flood", 0) for u in self.neighbors}
        return {}

    def on_round(self, round_no, inbox):
        out = {}
        flooders = {u for u, (tag, _) in inbox.items() if tag == "flood"}
        for u, (tag, _) in inbox.items():
            if tag == "echo":
                self.pending.discard(u)
        if flooders and not self.reached:
            self.reached = True
            self.parent = min(flooders)
            # anyone who flooded us is already reached: echo them instead
            # of flooding back (one message per edge per round).
            for w in flooders - {self.parent}:
                out[w] = ("echo", 0)
            rest = [
                w for w in self.neighbors if w != self.parent and w not in flooders
            ]
            self.pending = set(rest)
            for w in rest:
                out[w] = ("flood", 0)
        elif flooders and self.reached:
            for u in flooders:
                out[u] = ("echo", 0)  # reject: already have a parent
                self.pending.discard(u)  # a flooder is reached; no echo will come
        if (
            self.reached
            and not self.pending
            and not self.echoed
            and self.parent is not None
        ):
            self.echoed = True
            out[self.parent] = ("echo", 0)
        return out

    def result(self):
        return self.reached and not self.pending


def test_flood_echo_terminates_everywhere():
    g = grid_graph(5, 5)
    m = RoundMetrics()
    net = CongestNetwork(g, metrics=m)
    programs = {v: FloodWithEcho(v, g.neighbors(v), 0) for v in g.nodes()}
    results = net.run(programs)
    assert results[0] is True
    assert all(results.values())
    # flood down + echo up: <= ~2 * (diameter + 2)
    assert m.rounds <= 2 * (8 + 3)
