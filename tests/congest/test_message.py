"""Word/bit accounting of CONGEST payloads."""

import pytest

from repro.congest import payload_bits, payload_words, word_bits


class TestWordBits:
    def test_small_networks(self):
        assert word_bits(1) == 3
        assert word_bits(2) == 4  # ceil(log2 3) + 2

    def test_growth_is_logarithmic(self):
        assert word_bits(1024) == 13  # ceil(log2 1025) + 2 = 11 + 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            word_bits(0)


class TestPayloadWords:
    def test_atoms(self):
        assert payload_words(None) == 1
        assert payload_words(True) == 1
        assert payload_words(0) == 1
        assert payload_words(7) == 1
        assert payload_words(3.14) >= 2

    def test_big_int_costs_more_words(self):
        assert payload_words(2**100, bits_per_word=32) == 4

    def test_tuple_is_sum(self):
        assert payload_words((1, 2, 3)) == 3
        assert payload_words(((1, 2), 3)) == 3

    def test_string_by_length(self):
        assert payload_words("abcd") == 1
        assert payload_words("abcdefgh") == 2

    def test_dict(self):
        assert payload_words({1: 2, 3: 4}) == 4

    def test_set_is_deterministic(self):
        assert payload_words({3, 1, 2}) == 3

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            payload_words(object())

    def test_payload_bits_scales_with_n(self):
        assert payload_bits((1, 2), n=1000) == 2 * word_bits(1000)
