"""The recursive embedding order (paper Section 4)."""

import pytest

from repro.core.algorithm import _wrap
from repro.core.recursion import RecursionContext, embed_subtree
from repro.planar.generators import grid_graph, path_graph, random_tree
from repro.primitives import build_bfs_tree, elect_leader


def run_recursion(graph, strategy="balanced"):
    wrapped = _wrap(graph)
    leader = elect_leader(wrapped)
    tree = build_bfs_tree(wrapped, leader)
    ctx = RecursionContext(
        graph=wrapped, tree=tree, splitter_strategy=strategy
    )
    part, metrics = embed_subtree(ctx, leader)
    return ctx, part, metrics


class TestRecursion:
    def test_full_graph_covered(self):
        g = grid_graph(5, 5)
        ctx, part, metrics = run_recursion(g)
        wrapped_nodes = {("v", v) for v in g.nodes()}
        assert wrapped_nodes <= part.vertices  # plus possible copies
        assert part.boundary == []

    def test_trace_levels_contiguous(self):
        g = grid_graph(6, 6)
        ctx, part, _ = run_recursion(g)
        levels = {r.level for r in ctx.trace}
        assert levels == set(range(max(levels) + 1))

    def test_part_sizes_bounded(self):
        g = random_tree(120, 3)
        ctx, part, _ = run_recursion(g)
        for record in ctx.trace:
            for size in record.part_sizes:
                assert 3 * size <= 2 * record.subtree_size

    def test_rounds_accumulate(self):
        g = grid_graph(5, 5)
        _, _, metrics = run_recursion(g)
        assert metrics.rounds > 0
        assert "subtree-stats" in metrics.phase_rounds
        assert "splitter-walk" in metrics.phase_rounds

    def test_invalid_strategy_rejected(self):
        g = path_graph(6)
        with pytest.raises(ValueError):
            run_recursion(g, strategy="nonsense")

    def test_root_strategy_deepens_recursion(self):
        g = path_graph(40)
        ctx_bal, _, _ = run_recursion(g, "balanced")
        import sys

        sys.setrecursionlimit(20_000)
        ctx_root, _, _ = run_recursion(g, "root")
        assert max(r.level for r in ctx_root.trace) > max(
            r.level for r in ctx_bal.trace
        )

    def test_split_oracle_bookkeeping(self):
        g = grid_graph(6, 6)
        ctx, _, _ = run_recursion(g)
        # oracle rejections never exceed tests
        assert ctx.split_rejections <= ctx.split_tests
