"""Rejection-path regression: ``try_split`` must restore ``ctx.current``
*exactly* — including adjacency insertion order.

A rejected split-off rolls the evolving graph back from dict snapshots.
Naively re-adding the removed ``(u, coordinator)`` edges would append
them at the *back* of the neighbor dicts, silently permuting iteration
order — and downstream determinism (boundary enumeration, canonical
sorts, the whole bit-identical-ledger contract) rides on that order.
These tests spy on every ``try_split`` call during full pipeline runs on
seeded workloads known to produce rejections, snapshotting the adjacency
structure beforehand and asserting exact iteration-order equality after
every rejection.
"""

import pytest

from repro import distributed_planar_embedding
from repro.core import recursion as recursion_mod
from repro.planar.generators import random_maximal_planar

# Seeded instances whose recursions reject at least one multi-edge
# bundle split (asserted below, so a generator change can't silently
# turn these into no-op tests).
REJECTION_CASES = [
    ("maximal-48-s2", lambda: random_maximal_planar(48, seed=2)),
    ("maximal-64-s3", lambda: random_maximal_planar(64, seed=3)),
    ("maximal-48-s8", lambda: random_maximal_planar(48, seed=8)),
    ("maximal-64-s8", lambda: random_maximal_planar(64, seed=8)),
]


def _spy_try_split(monkeypatch, seen):
    """Wrap RecursionContext.try_split with a pre/post structure check."""
    original = recursion_mod.RecursionContext.try_split

    def spy(self, copy, coordinator, rerouted):
        adj = self.current._adj
        pre_nodes = list(adj)
        pre_rings = {v: list(neighbors) for v, neighbors in adj.items()}
        pre_num_edges = self.current.num_edges
        accepted = original(self, copy, coordinator, rerouted)
        if not accepted:
            seen["rejections"] += 1
            # Node set, node insertion order, and every per-vertex
            # neighbor iteration order must match the pre-split snapshot.
            assert list(adj) == pre_nodes
            for v in pre_nodes:
                assert list(adj[v]) == pre_rings[v], (
                    f"adjacency order of {v!r} changed across a rejected split"
                )
            assert self.current.num_edges == pre_num_edges
        else:
            seen["accepts"] += 1
        return accepted

    monkeypatch.setattr(recursion_mod.RecursionContext, "try_split", spy)


@pytest.mark.parametrize(
    "name,make", REJECTION_CASES, ids=[n for n, _ in REJECTION_CASES]
)
@pytest.mark.parametrize("reference", [False, True], ids=["optimized", "reference"])
def test_rejection_restores_graph_exactly(name, make, reference, monkeypatch):
    if reference:
        monkeypatch.setenv("REPRO_REFERENCE_PATHS", "1")
    else:
        monkeypatch.delenv("REPRO_REFERENCE_PATHS", raising=False)
    seen = {"rejections": 0, "accepts": 0}
    _spy_try_split(monkeypatch, seen)
    result = distributed_planar_embedding(make())
    assert result.rotation  # the run completed and embedded
    assert seen["rejections"] > 0, (
        f"{name} no longer produces a split rejection; pick a new seed"
    )
    assert result.split_rejections == seen["rejections"]
