"""The unrestricted path-coordinated merge driver (paper Section 5.3)."""

from repro.congest import RoundMetrics
from repro.core import fresh_part, unrestricted_path_merge
from repro.planar import Graph
from repro.planar.generators import grid_graph, path_graph


def build_scenario(graph, p0_nodes, hanging_groups):
    """Assemble P0 + hanging parts over ``graph`` with full boundaries."""
    def boundary_of(nodes):
        return [
            (u, x)
            for u in sorted(nodes, key=repr)
            for x in graph.neighbors(u)
            if x not in nodes
        ]

    p0_graph = graph.subgraph(p0_nodes)
    p0 = fresh_part(p0_graph, boundary_of(set(p0_nodes)))
    hanging = [
        fresh_part(graph.subgraph(nodes), boundary_of(set(nodes)))
        for nodes in hanging_groups
    ]
    return p0, hanging


class TestWholeGraphMerges:
    def test_grid_rows(self):
        # P0 = middle row of a 3xK grid; hanging parts = the other rows.
        g = grid_graph(3, 5)
        p0_nodes = [5, 6, 7, 8, 9]
        rows = [{0, 1, 2, 3, 4}, {10, 11, 12, 13, 14}]
        p0, hanging = build_scenario(g, p0_nodes, rows)
        metrics = RoundMetrics()
        merged, stats = unrestricted_path_merge(p0, p0_nodes, hanging, metrics)
        assert merged.vertices >= set(g.nodes())
        assert merged.boundary == []
        assert merged.rotation.genus() == 0
        assert stats.initial_parts == 2
        assert metrics.rounds > 0

    def test_path_with_pendants(self):
        # star-of-paths: P0 is the center path, pendant paths hang off it.
        g = path_graph(5)
        pendant_nodes = []
        nxt = 100
        for v in range(5):
            g.add_edge(v, nxt)
            g.add_edge(nxt, nxt + 1)
            pendant_nodes.append({nxt, nxt + 1})
            nxt += 10
        p0_nodes = [0, 1, 2, 3, 4]
        p0, hanging = build_scenario(g, p0_nodes, pendant_nodes)
        metrics = RoundMetrics()
        merged, stats = unrestricted_path_merge(p0, p0_nodes, hanging, metrics)
        assert merged.boundary == []
        assert merged.rotation.genus() == 0
        # each pendant connects to exactly one P0 vertex and nothing else:
        # all must discharge via step 2(c)
        assert stats.pendants_discharged == 5

    def test_two_terminal_parts_deduped(self):
        # several parallel 2-terminal parts between P0's ends
        g = path_graph(3)
        groups = []
        nxt = 50
        for _ in range(4):
            g.add_edge(0, nxt)
            g.add_edge(nxt, nxt + 1)
            g.add_edge(nxt + 1, 2)
            groups.append({nxt, nxt + 1})
            nxt += 10
        p0_nodes = [0, 1, 2]
        p0, hanging = build_scenario(g, p0_nodes, groups)
        metrics = RoundMetrics()
        merged, stats = unrestricted_path_merge(p0, p0_nodes, hanging, metrics)
        assert merged.boundary == []
        assert merged.rotation.genus() == 0
        assert stats.two_terminal_exited == 3  # all but the highest-ID one

    def test_external_boundary_preserved(self):
        g = grid_graph(2, 4)
        p0_nodes = [0, 1, 2, 3]
        p0, hanging = build_scenario(g, p0_nodes, [{4, 5, 6, 7}])
        # fake outside world: attach external half-edges to the hanging part
        hanging[0] = fresh_part(
            hanging[0].graph, hanging[0].boundary + [(4, 999)]
        )
        metrics = RoundMetrics()
        merged, stats = unrestricted_path_merge(p0, p0_nodes, hanging, metrics)
        assert merged.boundary == [(4, 999)]
        assert merged.rotation.genus() == 0

    def test_no_hanging_parts(self):
        g = path_graph(4)
        p0, _ = build_scenario(g, [0, 1, 2, 3], [])
        metrics = RoundMetrics()
        merged, stats = unrestricted_path_merge(p0, [0, 1, 2, 3], [], metrics)
        assert merged.vertices == {0, 1, 2, 3}
        assert stats.initial_parts == 0


class TestStatsAndCharges:
    def test_phase_charges_recorded(self):
        # P0 = middle row; four hanging parts, each touching P0 (the
        # recursion's invariant) and some touching each other.
        g = grid_graph(3, 6)
        p0_nodes = [6, 7, 8, 9, 10, 11]
        rows = [{0, 1, 2}, {3, 4, 5}, {12, 13, 14}, {15, 16, 17}]
        p0, hanging = build_scenario(g, p0_nodes, rows)
        metrics = RoundMetrics()
        merged, stats = unrestricted_path_merge(p0, p0_nodes, hanging, metrics)
        assert "unrestricted:low-connection" in metrics.phase_rounds
        assert "merge:path" in metrics.phase_rounds
        assert stats.final_instance_parts >= 1
        assert len(stats.parts_after_iteration) == 2
