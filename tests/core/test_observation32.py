"""Empirical validation of Observation 3.2 — the paper's key structural fact.

"The interface for a part is uniquely identified by the bi-connected
component decomposition and the fixed cyclic order interface of the
bi-connected components":

* for a *biconnected* planar graph, the cyclic order of any co-facial
  vertex set is the same in every planar embedding, up to a flip
  (Figure 2);
* flips of blocks and permutations of blocks around cut vertices
  (Figure 4's moves) preserve planarity.

These tests probe both halves on randomized instances, independent of
the algorithm that relies on them.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.interface import block_attachment_order
from repro.planar import Graph, biconnected_components, planar_embedding
from repro.planar.generators import random_maximal_planar, theta_graph, wheel_graph


def shuffled_copy(g: Graph, seed: int) -> Graph:
    """The same graph with randomized adjacency insertion order — drives
    the deterministic LR kernel to a different embedding."""
    rng = random.Random(seed)
    nodes = g.nodes()
    rng.shuffle(nodes)
    out = Graph(nodes=nodes)
    edges = g.edges()
    rng.shuffle(edges)
    for u, v in edges:
        if rng.random() < 0.5:
            u, v = v, u
        out.add_edge(u, v)
    return out


def cyclic_or_mirror_equal(a, b):
    from repro.core import cyclic_equal

    return cyclic_equal(a, b) or cyclic_equal(a, list(reversed(b)))


def cofacial_sets(g, k, rng):
    """Vertex sets of size k lying on one face of some embedding."""
    rot = planar_embedding(g)
    faces = rot.faces()
    rng.shuffle(faces)
    for face in faces:
        vertices = []
        for u, _ in face:
            if u not in vertices:
                vertices.append(u)
        if len(vertices) >= k:
            return vertices[:k]
    return None


class TestFixedCyclicOrder:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(min_value=4, max_value=30),
        seed=st.integers(0, 10**6),
        k=st.integers(min_value=3, max_value=5),
    )
    def test_attachment_order_unique_up_to_flip(self, n, seed, k):
        # maximal planar graphs are 3-connected for n >= 4: biconnected.
        g = random_maximal_planar(n, seed)
        rng = random.Random(seed)
        relevant = cofacial_sets(g, k, rng)
        if relevant is None:
            return
        base = block_attachment_order(g, sorted(relevant, key=repr))
        for variant_seed in range(3):
            shuffled = shuffled_copy(g, seed * 7 + variant_seed)
            other = block_attachment_order(shuffled, sorted(relevant, key=repr))
            assert cyclic_or_mirror_equal(base, other), (
                f"orders differ beyond a flip: {base} vs {other}"
            )

    def test_wheel_rim_order_is_the_rim(self):
        g = wheel_graph(9)
        rim = [1, 4, 7]
        order = block_attachment_order(g, rim)
        # rim positions 1 < 4 < 7: their cyclic order must follow the rim
        assert cyclic_or_mirror_equal(order, [1, 4, 7])

    def test_theta_terminals(self):
        g = theta_graph(3, 4)
        order = block_attachment_order(g, [0, 1])
        assert sorted(order) == [0, 1]


class TestInterfaceMoves:
    def test_mirror_flip_preserves_planarity(self):
        g = random_maximal_planar(25, 3)
        rot = planar_embedding(g)
        assert rot.mirrored().genus() == 0

    def test_block_flip_preserves_planarity(self):
        # Two triangles sharing a cut vertex: flipping one block's
        # rotation (mirroring only its vertices' restricted order)
        # keeps the whole embedding planar.
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)])
        rot = planar_embedding(g)
        decomp = biconnected_components(g)
        block = decomp.components[0]
        order = {}
        for v in g.nodes():
            ring = list(rot.order(v))
            if v in block.vertices:
                inside = [u for u in ring if u in block.vertices]
                flipped = list(reversed(inside))
                it = iter(flipped)
                ring = [next(it) if u in block.vertices else u for u in ring]
            order[v] = tuple(ring)
        from repro.planar import RotationSystem

        flipped_rot = RotationSystem(g, order)
        assert flipped_rot.genus() == 0

    def test_permutation_around_cut_vertex_preserves_planarity(self):
        # A star of three triangles at one cut vertex: any rotation of
        # the block bundles around the cut vertex stays planar.
        g = Graph()
        c = 0
        blocks = []
        nxt = 1
        for _ in range(3):
            a, b = nxt, nxt + 1
            g.add_edge(c, a)
            g.add_edge(a, b)
            g.add_edge(b, c)
            blocks.append((a, b))
            nxt += 2
        rot = planar_embedding(g)
        ring = list(rot.order(c))
        # rotate the ring by one whole block bundle (2 darts per block)
        rotated = ring[2:] + ring[:2]
        order = rot.as_dict()
        order[c] = tuple(rotated)
        from repro.planar import RotationSystem

        assert RotationSystem(g, order).genus() == 0
