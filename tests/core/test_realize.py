"""Realizing prescribed boundary orders (block flips / permutations)."""

import pytest

from repro.core import RealizationError, cyclic_equal, fresh_part, realize_boundary_order
from repro.planar.generators import cycle_graph, path_graph, star_graph


class TestCyclicEqual:
    def test_rotations_equal(self):
        assert cyclic_equal([1, 2, 3], [2, 3, 1])
        assert cyclic_equal([1, 2, 3], [3, 1, 2])

    def test_reversal_not_equal(self):
        assert not cyclic_equal([1, 2, 3, 4], [4, 3, 2, 1])

    def test_empty_and_mismatched(self):
        assert cyclic_equal([], [])
        assert not cyclic_equal([1], [1, 2])

    def test_repeats(self):
        assert cyclic_equal([1, 1, 2], [1, 2, 1])
        assert not cyclic_equal([1, 1, 2], [1, 2, 2])


class TestRealize:
    def test_tree_part_any_order(self):
        # A star part has full permutation freedom.
        g = star_graph(4)
        boundary = [(1, 90), (2, 91), (3, 92), (4, 93)]
        part = fresh_part(g, boundary)
        prescribed = [(3, 92), (1, 90), (4, 93), (2, 91)]
        rot = realize_boundary_order(part, prescribed)
        walk = part.with_rotation(rot).boundary_order()
        assert cyclic_equal(walk, prescribed)

    def test_cycle_part_respects_block_order(self):
        # A cycle's attachments have a fixed cyclic order (up to flip):
        # the block order 0,3,6 is realizable, an interleaving is not.
        g = cycle_graph(9)
        boundary = [(0, 100), (3, 101), (6, 102)]
        part = fresh_part(g, boundary)
        ok = realize_boundary_order(part, [(0, 100), (3, 101), (6, 102)])
        walk = part.with_rotation(ok).boundary_order()
        assert cyclic_equal(walk, boundary)

    def test_impossible_order_raises(self):
        # Four attachments on a cycle: the "crossed" order is not planar.
        g = cycle_graph(8)
        boundary = [(0, 100), (2, 101), (4, 102), (6, 103)]
        part = fresh_part(g, boundary)
        crossed = [(0, 100), (4, 102), (2, 101), (6, 103)]
        with pytest.raises(RealizationError):
            realize_boundary_order(part, crossed)

    def test_flip_also_realizable(self):
        g = cycle_graph(9)
        boundary = [(0, 100), (3, 101), (6, 102)]
        part = fresh_part(g, boundary)
        flipped = [(6, 102), (3, 101), (0, 100)]
        rot = realize_boundary_order(part, flipped)
        walk = part.with_rotation(rot).boundary_order()
        assert cyclic_equal(walk, flipped)

    def test_small_boundaries_trivial(self):
        part = fresh_part(path_graph(4), [(0, 50), (3, 51)])
        rot = realize_boundary_order(part, [(3, 51), (0, 50)])
        assert rot.genus() == 0

    def test_not_a_permutation_rejected(self):
        part = fresh_part(path_graph(3), [(0, 50)])
        with pytest.raises(ValueError):
            realize_boundary_order(part, [(0, 99)])

    def test_multiple_stubs_one_vertex(self):
        g = path_graph(3)
        boundary = [(1, 70), (1, 71), (1, 72)]
        part = fresh_part(g, boundary)
        prescribed = [(1, 71), (1, 70), (1, 72)]
        rot = realize_boundary_order(part, prescribed)
        walk = part.with_rotation(rot).boundary_order()
        assert cyclic_equal(walk, prescribed)
