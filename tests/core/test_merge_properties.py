"""Property-based merge testing: random planar graphs, random bipartitions.

The central correctness property of the merge engine: splitting any
connected planar graph into connected parts, embedding each with its
half-embedded edges co-facial, and merging must reproduce a planar
embedding of the whole — via the skeleton path, without fallbacks.
Also exercises the correctness fallback by sabotaging the skeleton.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core.merges as merges_module
from repro.core import fresh_part, merge_parts
from repro.core.interface import SkeletonError
from repro.planar.generators import grid_graph, random_planar


def random_connected_bipartition(g, rng):
    """Grow one connected half; keep only splits whose other side is
    connected too (else report None)."""
    nodes = g.nodes()
    size = rng.randrange(1, g.num_nodes)
    seed = rng.choice(nodes)
    side = {seed}
    frontier = [seed]
    while frontier and len(side) < size:
        v = frontier.pop(rng.randrange(len(frontier)))
        for u in g.neighbors(v):
            if u not in side and len(side) < size:
                side.add(u)
                frontier.append(u)
    other = set(nodes) - side
    if not other or not g.subgraph(other).is_connected():
        return None
    return side, other


def part_of(g, nodes):
    sub = g.subgraph(nodes)
    boundary = [
        (u, x)
        for u in sorted(nodes, key=repr)
        for x in g.neighbors(u)
        if x not in nodes
    ]
    return fresh_part(sub, boundary)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(min_value=4, max_value=40),
    graph_seed=st.integers(0, 10**6),
    split_seed=st.integers(0, 10**6),
)
def test_split_and_merge_roundtrip(n, graph_seed, split_seed):
    g = random_planar(n, 2 * n, graph_seed)
    rng = random.Random(split_seed)
    split = random_connected_bipartition(g, rng)
    if split is None:
        return
    parts = [part_of(g, side) for side in split]
    result = merge_parts(parts)
    merged = result.part
    assert merged.vertices == set(g.nodes())
    assert merged.boundary == []
    assert merged.rotation.genus() == 0
    assert not result.fallback_used
    assert merged.graph.num_edges == g.num_edges


def test_fallback_engages_on_skeleton_sabotage(monkeypatch):
    """If the skeleton layer misbehaves, the merge must still succeed
    through the direct re-embedding fallback and report it."""

    def broken_skeleton(part, decomposition=None):
        raise SkeletonError("sabotaged for testing")

    monkeypatch.setattr(merges_module, "interface_skeleton", broken_skeleton)
    g = grid_graph(3, 4)
    top = {0, 1, 2, 3}
    bottom = set(g.nodes()) - top
    result = merge_parts([part_of(g, top), part_of(g, bottom)])
    assert result.fallback_used
    assert result.part.rotation.genus() == 0
    assert result.part.vertices == set(g.nodes())


def test_fallback_still_detects_nonplanar(monkeypatch):
    from repro.core import NonPlanarNetworkError
    from repro.planar.generators import complete_graph

    def broken_skeleton(part, decomposition=None):
        raise SkeletonError("sabotaged for testing")

    monkeypatch.setattr(merges_module, "interface_skeleton", broken_skeleton)
    g = complete_graph(5)
    parts = [part_of(g, {0, 1}), part_of(g, {2, 3, 4})]
    with pytest.raises(NonPlanarNetworkError):
        merge_parts(parts)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=30),
    graph_seed=st.integers(0, 10**6),
    split_seed=st.integers(0, 10**6),
)
def test_three_way_split_and_merge(n, graph_seed, split_seed):
    g = random_planar(n, 2 * n, graph_seed)
    rng = random.Random(split_seed)
    first = random_connected_bipartition(g, rng)
    if first is None:
        return
    side_a, rest = first
    sub_rest = g.subgraph(rest)
    second = random_connected_bipartition(sub_rest, rng) if len(rest) >= 2 else None
    if second is None:
        groups = [side_a, rest]
    else:
        groups = [side_a, second[0], second[1]]
    # Merging requires a safe partition (Definition 3.1): every part's
    # complement must stay connected; skip generated splits that are not.
    all_nodes = set(g.nodes())
    for nodes in groups:
        complement = all_nodes - set(nodes)
        if complement and not g.subgraph(complement).is_connected():
            return
    parts = [part_of(g, nodes) for nodes in groups]
    result = merge_parts(parts)
    assert result.part.rotation.genus() == 0
    assert result.part.vertices == set(g.nodes())
    assert not result.fallback_used
