"""Lemma 5.3 symmetry breaking: stars + color-monotone chains."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import symmetry_break
from repro.planar import Graph, is_outerplanar
from repro.planar.generators import cycle_graph, path_graph, random_outerplanar, star_graph


def proper_greedy_coloring(g, offset=0):
    colors = {}
    for v in sorted(g.nodes(), key=repr):
        used = {colors[u] for u in g.neighbors(v) if u in colors}
        c = offset
        while c in used:
            c += 1
        colors[v] = c
    return colors


class TestInterface:
    def test_rejects_improper_coloring(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            symmetry_break(g, {0: 1, 1: 1, 2: 0})

    def test_single_node(self):
        g = Graph(nodes=[0])
        out = symmetry_break(g, {0: 0})
        assert out.stars == []
        assert out.chains == [[0]]

    def test_star_graph_forms_star(self):
        g = star_graph(5)
        colors = {0: 0, **{i: i for i in range(1, 6)}}
        out = symmetry_break(g, colors)
        assert len(out.stars) == 1
        center, leaves = out.stars[0]
        assert center == 0
        assert len(leaves) >= 1

    def test_path_output_structure(self):
        g = path_graph(10)
        out = symmetry_break(g, {v: v % 3 if v % 3 != (v - 1) % 3 else v for v in g.nodes()}
                             if False else proper_greedy_coloring(g))
        # every node is covered by stars or chains over the contracted graph
        star_nodes = out.star_nodes()
        chain_nodes = {v for chain in out.chains for v in chain}
        leaves = {l for _, ls in out.stars for l in ls}
        assert (set(g.nodes()) - leaves) == chain_nodes


class TestLemmaProperties:
    """The structural guarantees the validation inside symmetry_break
    enforces — exercised across many random outerplanar instances."""

    @pytest.mark.parametrize("seed", range(20))
    def test_random_outerplanar(self, seed):
        rng = random.Random(seed)
        g = random_outerplanar(rng.randrange(3, 40), seed)
        assert is_outerplanar(g)
        colors = proper_greedy_coloring(g, offset=rng.randrange(3))
        out = symmetry_break(g, colors)
        # guarantees are asserted internally; check the coverage claim:
        leaves = {l for _, ls in out.stars for l in ls}
        chain_nodes = {v for chain in out.chains for v in chain}
        assert chain_nodes == set(g.nodes()) - leaves
        # stars have >= 2 members and chains carry distinct colors
        for center, ls in out.stars:
            assert len(ls) >= 1
        for chain in out.chains:
            cs = [colors[v] for v in chain]
            assert len(set(cs)) == len(cs)

    def test_steps_constant(self):
        for n in (5, 20, 45):
            g = random_outerplanar(n, n)
            out = symmetry_break(g, proper_greedy_coloring(g))
            assert out.steps <= 6

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=60),
        seed=st.integers(min_value=0, max_value=99999),
    )
    def test_hypothesis_sweep(self, n, seed):
        g = random_outerplanar(n, seed)
        colors = proper_greedy_coloring(g)
        out = symmetry_break(g, colors)
        # progress: on any graph with >= 2 nodes and >= 1 edge, something
        # pairs up — either a star exists or some chain has length >= 2.
        if g.num_edges >= 1:
            assert out.stars or any(len(c) >= 2 for c in out.chains)


class TestMergeProgress:
    def test_cycle_parts_make_progress(self):
        # colored cycle: at least half the nodes end up grouped
        g = cycle_graph(9)
        colors = proper_greedy_coloring(g)
        out = symmetry_break(g, colors)
        grouped = len(out.star_nodes()) + sum(
            len(c) for c in out.chains if len(c) >= 2
        )
        assert grouped >= 3
