"""Unit tests for the merge round-charging math (the cost model itself)."""

from repro.congest import RoundMetrics
from repro.core.merges import (
    MergeResult,
    charge_path_coordinated_merge,
    charge_vertex_coordinated_merge,
    vertex_coordinated_rounds,
)
from repro.core.parts import fresh_part
from repro.planar.generators import path_graph


def synthetic_result(depths, ups, downs, lanes):
    part = fresh_part(path_graph(2), [])
    r = MergeResult(part=part)
    r.part_depths = dict(depths)
    r.up_words = dict(ups)
    r.down_words = dict(downs)
    r.attachment_edges = dict(lanes)
    return r


class TestVertexCoordinated:
    def test_single_part_single_lane(self):
        r = synthetic_result({1: 4}, {1: 10}, {1: 6}, {1: 1})
        # up: (4+1) hops + 10 words - 1 ; down: 5 hops + 6 words - 1
        assert vertex_coordinated_rounds(r) == (5 + 9) + (5 + 5)

    def test_lanes_divide_words(self):
        r1 = synthetic_result({1: 4}, {1: 12}, {1: 12}, {1: 1})
        r4 = synthetic_result({1: 4}, {1: 12}, {1: 12}, {1: 4})
        assert vertex_coordinated_rounds(r4) < vertex_coordinated_rounds(r1)

    def test_parallel_parts_take_max(self):
        slow = synthetic_result({1: 10}, {1: 5}, {1: 5}, {1: 1})
        both = synthetic_result(
            {1: 10, 2: 1}, {1: 5, 2: 2}, {1: 5, 2: 2}, {1: 1, 2: 1}
        )
        assert vertex_coordinated_rounds(both) == vertex_coordinated_rounds(slow)

    def test_bandwidth_scales(self):
        r = synthetic_result({1: 2}, {1: 16}, {1: 16}, {1: 1})
        assert vertex_coordinated_rounds(r, bandwidth=8) < vertex_coordinated_rounds(r)

    def test_charge_records_phase_and_words(self):
        m = RoundMetrics()
        r = synthetic_result({1: 2}, {1: 3}, {1: 3}, {1: 1})
        rounds = charge_vertex_coordinated_merge(m, r, detail="unit")
        assert m.phase_rounds["merge:vertex"] == rounds
        assert m.total_words == 6
        assert m.charges[0].detail == "unit"


class TestPathCoordinated:
    def test_backbone_scales_with_path_and_parts(self):
        m = RoundMetrics()
        few = synthetic_result({1: 1, 2: 1}, {1: 2, 2: 2}, {1: 2, 2: 2}, {1: 1, 2: 1})
        many = synthetic_result(
            {i: 1 for i in range(12)},
            {i: 2 for i in range(12)},
            {i: 2 for i in range(12)},
            {i: 1 for i in range(12)},
        )
        short_few = charge_path_coordinated_merge(RoundMetrics(), few, path_length=3)
        long_few = charge_path_coordinated_merge(RoundMetrics(), few, path_length=30)
        long_many = charge_path_coordinated_merge(RoundMetrics(), many, path_length=30)
        assert long_few > short_few  # path length enters
        assert long_many > long_few  # part count enters (O(1) words each)

    def test_local_terms_use_lanes(self):
        wide = synthetic_result({1: 3}, {1: 20}, {1: 20}, {1: 10})
        narrow = synthetic_result({1: 3}, {1: 20}, {1: 20}, {1: 1})
        r_wide = charge_path_coordinated_merge(RoundMetrics(), wide, path_length=5)
        r_narrow = charge_path_coordinated_merge(RoundMetrics(), narrow, path_length=5)
        assert r_wide < r_narrow
