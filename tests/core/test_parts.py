"""Parts, stub embeddings, and the Definition 3.1 safety audit."""

import pytest

from repro.core import NonPlanarNetworkError, PartEmbedding, PartitionState, fresh_part
from repro.core.parts import (
    augment_with_stubs,
    embed_with_boundary,
    graph_depth,
    is_stub,
    stub_node,
)
from repro.planar import Graph
from repro.planar.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)


class TestStubs:
    def test_stub_roundtrip(self):
        s = stub_node((1, 2))
        assert is_stub(s)
        assert s == ("stub", 1, 2)

    def test_augment(self):
        g = path_graph(3)
        aug = augment_with_stubs(g, [(0, 99), (2, 98)])
        assert aug.num_nodes == 5
        assert aug.has_edge(0, ("stub", 0, 99))

    def test_augment_requires_inside_endpoint(self):
        with pytest.raises(ValueError):
            augment_with_stubs(path_graph(2), [(5, 6)])


class TestEmbedWithBoundary:
    def test_boundary_cofacial(self):
        g = grid_graph(3, 3)
        boundary = [(0, 100), (2, 101), (8, 102), (6, 103)]
        rot = embed_with_boundary(g, boundary)
        from repro.planar import check_embedding_with_boundary

        face = check_embedding_with_boundary(rot, [stub_node(h) for h in boundary])
        assert face

    def test_impossible_boundary_raises(self):
        # Grid center + opposite corners cannot be co-facial.
        g = grid_graph(5, 5)
        boundary = [(12, 100), (0, 101), (24, 102), (4, 103), (20, 104)]
        with pytest.raises(NonPlanarNetworkError):
            embed_with_boundary(g, boundary)

    def test_nonplanar_part_raises(self):
        with pytest.raises(NonPlanarNetworkError):
            embed_with_boundary(complete_graph(5), [])

    def test_no_boundary_is_plain_embedding(self):
        rot = embed_with_boundary(cycle_graph(6), [])
        assert rot.genus() == 0


class TestPartEmbedding:
    def test_fresh_part_basics(self):
        g = path_graph(4)
        part = fresh_part(g, [(0, 50), (3, 51)])
        assert part.vertices == {0, 1, 2, 3}
        assert part.is_trivial  # paths are trees
        assert part.attachments() == [0, 3]
        assert part.boundary_targets() == {50, 51}

    def test_nontrivial_part(self):
        part = fresh_part(cycle_graph(4), [])
        assert not part.is_trivial

    def test_disconnected_part_rejected(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            fresh_part(g, [])

    def test_boundary_order_is_permutation(self):
        g = star_graph(4)
        boundary = [(1, 90), (2, 91), (3, 92), (4, 93)]
        part = fresh_part(g, boundary)
        order = part.boundary_order()
        assert sorted(order) == sorted(boundary)

    def test_boundary_order_empty(self):
        part = fresh_part(path_graph(3), [])
        assert part.boundary_order() == []

    def test_internal_rotations_resolve_stubs(self):
        part = fresh_part(path_graph(2), [(0, 7)])
        rot = part.internal_rotations()
        assert set(rot[0]) == {1, 7}

    def test_graph_depth(self):
        assert graph_depth(path_graph(10), 0) == 9
        assert graph_depth(cycle_graph(10), 0) == 5
        assert graph_depth(Graph(nodes=[1])) == 0


class TestPartitionSafety:
    def test_safe_partition(self):
        g = grid_graph(3, 3)
        rows = [{0, 1, 2}, {3, 4, 5}, {6, 7, 8}]
        parts = []
        for row in rows:
            sub = g.subgraph(row)
            boundary = [
                (u, x) for u in row for x in g.neighbors(u) if x not in row
            ]
            parts.append(fresh_part(sub, boundary))
        state = PartitionState(network=g, parts=parts)
        assert state.is_partition()
        assert state.is_safe()

    def test_trivial_parts_exempt(self):
        # A tree part may disconnect the remainder without violating safety.
        g = path_graph(5)
        middle = fresh_part(g.subgraph({2}), [(2, 1), (2, 3)])
        left = fresh_part(g.subgraph({0, 1}), [(1, 2)])
        right = fresh_part(g.subgraph({3, 4}), [(3, 2)])
        state = PartitionState(network=g, parts=[left, middle, right])
        assert state.is_safe()  # all parts are trees

    def test_unsafe_partition_detected(self):
        # A non-trivial (cyclic) separator part whose removal splits the
        # remainder into two islands violates Definition 3.1.
        g = Graph(
            edges=[
                (2, 3), (3, 4), (2, 4),  # middle triangle (non-trivial part)
                (0, 1), (1, 2),          # left island, attached at 2
                (4, 5), (5, 6),          # right island, attached at 4
            ]
        )
        triangle = {2, 3, 4}
        part = fresh_part(
            g.subgraph(triangle), [(2, 1), (4, 5)]
        )
        left = fresh_part(g.subgraph({0, 1}), [(1, 2)])
        right = fresh_part(g.subgraph({5, 6}), [(5, 4)])
        state = PartitionState(network=g, parts=[part, left, right])
        assert state.is_partition()
        assert not state.is_safe()
        assert state.violating_parts() == [part.part_id]
