"""``distributed_planarity_test`` must return the pre-detection ledger.

A non-planar input aborts the pipeline mid-recursion, but the rounds
already spent (election, BFS, preamble, the recursion up to the failed
merge) are real cost the caller paid; the returned ledger must contain
them, not a stale or empty counter.
"""

import pytest

from repro.core.algorithm import distributed_planarity_test
from repro.planar.generators import grid_graph
from repro.planar.graph import Graph


def _k5():
    g = Graph()
    for i in range(5):
        for j in range(i + 1, 5):
            g.add_edge(i, j)
    return g


def _k33():
    g = Graph()
    for u in (0, 1, 2):
        for v in (3, 4, 5):
            g.add_edge(u, v)
    return g


@pytest.mark.parametrize("make", [_k5, _k33], ids=["K5", "K3,3"])
def test_nonplanar_ledger_includes_pre_detection_rounds(make):
    verdict, metrics = distributed_planarity_test(make())
    assert verdict is False
    assert metrics is not None
    # The run got through the preamble phases before detection fired.
    assert metrics.rounds > 0
    phases = metrics.phase_breakdown()
    for phase in ("leader-election", "bfs"):
        assert phase in phases
        assert phases[phase]["rounds"] > 0


def test_planar_ledger_matches_full_run():
    verdict, metrics = distributed_planarity_test(grid_graph(4, 5))
    assert verdict is True
    assert metrics.rounds > 0
    assert "leader-election" in metrics.phase_breakdown()
