"""Interface skeletons: the compressed-PQ-tree analogue (Observation 3.2)."""

from repro.core import fresh_part, interface_skeleton
from repro.core.interface import block_attachment_order
from repro.planar import Graph, is_planar
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_maximal_planar,
    theta_graph,
    wheel_graph,
)


class TestBlockAttachmentOrder:
    def test_cycle_order_matches_cycle(self):
        g = cycle_graph(8)
        order = block_attachment_order(g, [0, 2, 5])
        # On a cycle, co-facial order is the cyclic position order (up to
        # rotation/flip).
        seq = sorted(order, key=lambda v: v)
        assert seq == [0, 2, 5]
        idx = [order.index(v) for v in (0, 2, 5)]
        # consecutive in one of the two cyclic directions
        assert len(set(idx)) == 3

    def test_two_or_fewer_passthrough(self):
        g = cycle_graph(4)
        assert block_attachment_order(g, [1, 3]) == [1, 3]
        assert block_attachment_order(g, [2]) == [2]

    def test_unique_up_to_flip(self):
        # Observation 3.2: any valid embedding gives the same cyclic
        # order up to reversal — check against the cycle's true order.
        g = cycle_graph(10)
        relevant = [0, 3, 6, 9]
        order = block_attachment_order(g, relevant)
        pos = {v: i for i, v in enumerate(order)}
        ring = sorted(relevant)
        forward = [pos[v] for v in ring]
        diffs = {(forward[(i + 1) % 4] - forward[i]) % 4 for i in range(4)}
        assert diffs == {1} or diffs == {3}  # rotation or reflection


class TestSkeleton:
    def test_single_attachment_is_a_point(self):
        part = fresh_part(grid_graph(3, 3), [(4, 100)])
        sk = interface_skeleton(part)
        assert sk.graph.num_nodes == 1
        assert sk.words <= 4

    def test_no_attachment(self):
        part = fresh_part(path_graph(5), [])
        sk = interface_skeleton(part)
        assert sk.graph.num_nodes == 1

    def test_path_part_skeleton_is_path(self):
        part = fresh_part(path_graph(10), [(0, 50), (9, 51)])
        sk = interface_skeleton(part)
        # A tree part between two attachments compresses to a single edge.
        assert sk.graph.num_edges == 1
        assert set(sk.anchors) == {0, 9}

    def test_cycle_part_becomes_wheel(self):
        g = cycle_graph(12)
        boundary = [(0, 100), (4, 101), (8, 102)]
        part = fresh_part(g, boundary)
        sk = interface_skeleton(part)
        hubs = [v for v in sk.graph.nodes() if isinstance(v, tuple) and v[0] == "hub"]
        assert len(hubs) == 1
        assert sk.graph.degree(hubs[0]) == 3
        assert is_planar(sk.graph)

    def test_skeleton_size_independent_of_part_size(self):
        # E10's claim in miniature: same boundary, growing part.
        sizes = []
        for n in (12, 48, 120):
            g = cycle_graph(n)
            part = fresh_part(g, [(0, 100), (n // 3, 101), (2 * n // 3, 102)])
            sizes.append(interface_skeleton(part).words)
        assert sizes[0] == sizes[1] == sizes[2]

    def test_theta_part(self):
        g = theta_graph(3, 4)
        boundary = [(0, 100), (1, 101)]
        part = fresh_part(g, boundary)
        sk = interface_skeleton(part)
        assert {0, 1} <= set(sk.anchors)
        assert sk.graph.is_connected()

    def test_block_cut_chain(self):
        # Two triangles joined by a bridge: attachments at far ends.
        g = Graph(
            edges=[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
        )
        part = fresh_part(g, [(0, 100), (5, 101)])
        sk = interface_skeleton(part)
        assert sk.graph.is_connected()
        assert {0, 5} <= set(sk.anchors)
        # Blocks with two relevant vertices compress to edges, so the
        # skeleton is a short path, not the original 6 edges.
        assert sk.graph.num_edges <= 3

    def test_skeleton_planar_for_grid_part(self):
        g = grid_graph(5, 5)
        # attachments on the grid's outer face (always co-facial)
        boundary = [(v, 1000 + v) for v in (0, 2, 4, 14, 24, 22, 20, 10)]
        part = fresh_part(g, boundary)
        sk = interface_skeleton(part)
        assert is_planar(sk.graph)
        assert sk.words < 8 * len(boundary)

    def test_wheel_part(self):
        g = wheel_graph(8)
        boundary = [(1, 100), (4, 101), (7, 102)]
        part = fresh_part(g, boundary)
        sk = interface_skeleton(part)
        assert sk.graph.is_connected()
        assert set(part.attachments()) <= set(sk.anchors)
