"""Pendant / two-terminal insertion and copy expansion."""

import pytest

from repro.core import expand_copies, fresh_part, insert_pendant, insert_two_terminal
from repro.core.assembly import is_copy
from repro.planar import Graph, RotationSystem
from repro.planar.generators import cycle_graph, grid_graph, path_graph
from repro.planar.lr_planarity import planar_embedding


class TestInsertPendant:
    def test_pendant_path_into_grid(self):
        host = fresh_part(grid_graph(3, 3), [])
        pendant_graph = Graph(edges=[(100, 101), (101, 102)])
        pendant = fresh_part(pendant_graph, [(100, 4), (102, 4)])
        merged = insert_pendant(host, 4, pendant)
        assert merged.graph.has_edge(100, 4)
        assert merged.graph.has_edge(102, 4)
        assert merged.rotation.genus() == 0
        assert 101 in merged.vertices

    def test_pendant_preserves_host_boundary(self):
        host = fresh_part(path_graph(4), [(0, 900)])
        pendant = fresh_part(Graph(nodes=[50]), [(50, 2)])
        merged = insert_pendant(host, 2, pendant)
        assert merged.boundary == [(0, 900)]
        assert merged.rotation.genus() == 0

    def test_bad_anchor_rejected(self):
        host = fresh_part(path_graph(3), [])
        pendant = fresh_part(Graph(nodes=[50]), [(50, 77)])
        with pytest.raises(ValueError):
            insert_pendant(host, 77, pendant)

    def test_pendant_with_wrong_targets_rejected(self):
        host = fresh_part(path_graph(3), [])
        pendant = fresh_part(Graph(nodes=[50]), [(50, 1), (50, 2)])
        with pytest.raises(ValueError):
            insert_pendant(host, 1, pendant)


class TestInsertTwoTerminal:
    def test_cycle_part_between_grid_corners(self):
        host = fresh_part(grid_graph(2, 3), [])  # 0..5; 0 and 2 on outer face
        part_graph = Graph(edges=[(100, 101)])
        part = fresh_part(part_graph, [(100, 0), (101, 2)])
        merged = insert_two_terminal(host, 0, 2, part)
        assert merged.graph.has_edge(100, 0)
        assert merged.graph.has_edge(101, 2)
        assert merged.rotation.genus() == 0

    def test_multiple_parallel_parts(self):
        host = fresh_part(path_graph(4), [])
        merged = host
        for k in range(3):
            base = 100 + 10 * k
            pg = Graph(edges=[(base, base + 1), (base + 1, base + 2)])
            part = fresh_part(pg, [(base, 0), (base + 2, 3)])
            merged = insert_two_terminal(merged, 0, 3, part)
        assert merged.rotation.genus() == 0
        assert merged.graph.num_nodes == 4 + 9

    def test_single_sided_part_falls_back_to_pendant(self):
        host = fresh_part(path_graph(3), [])
        part = fresh_part(Graph(nodes=[50]), [(50, 1)])
        merged = insert_two_terminal(host, 1, 2, part)
        assert merged.rotation.genus() == 0


class TestExpandCopies:
    def test_is_copy(self):
        assert is_copy(("copy", 5, 3, 1))
        assert not is_copy(("v", 5))
        assert not is_copy(5)

    def test_simple_contraction(self):
        # A path 0 - c - 2 where c is a copy of 1... build: star at copy.
        c = ("copy", 1, 7, 1)
        g = Graph(edges=[(0, c), (c, 1), (1, 2)])
        rot = planar_embedding(g)
        graph, order = expand_copies(g, rot.as_dict())
        assert c not in graph
        assert graph.has_edge(0, 1)
        assert RotationSystem(graph, order).genus() == 0

    def test_nested_copies(self):
        c1 = ("copy", 9, 1, 1)
        c2 = ("copy", 9, 2, 2)
        # c2 -> c1 -> 9 chain plus real vertices hanging off each copy
        g = Graph(edges=[(c2, c1), (c1, 9), (0, c2), (1, c1), (9, 2)])
        rot = planar_embedding(g)
        graph, order = expand_copies(g, rot.as_dict())
        assert all(not is_copy(v) for v in graph.nodes())
        assert graph.has_edge(0, 9)
        assert graph.has_edge(1, 9)
        assert RotationSystem(graph, order).genus() == 0

    def test_expansion_preserves_planarity_on_wheel(self):
        g = cycle_graph(6)
        c = ("copy", 0, 3, 1)
        # reroute 2's and 4's hypothetical edges to 0 through the copy
        g.add_edge(2, c)
        g.add_edge(4, c)
        g.add_edge(c, 0)
        rot = planar_embedding(g)
        graph, order = expand_copies(g, rot.as_dict())
        assert graph.has_edge(2, 0)
        assert graph.has_edge(4, 0)
        assert RotationSystem(graph, order).genus() == 0

    def test_no_copies_is_identity(self):
        g = grid_graph(3, 3)
        rot = planar_embedding(g)
        graph, order = expand_copies(g, rot.as_dict())
        assert graph.edges() == g.edges()
        assert order == rot.as_dict()
