"""The top-level driver: options, result surface, edge cases."""

import pytest

from repro import DistributedPlanarEmbedding, distributed_planar_embedding
from repro.planar import Graph, verify_planar_embedding
from repro.planar.generators import grid_graph, path_graph


class TestDriverSurface:
    def test_result_fields(self):
        g = grid_graph(4, 4)
        result = distributed_planar_embedding(g)
        assert result.graph is g
        assert result.leader == 15  # max ID
        assert result.bfs_depth >= 1
        assert result.rounds == result.metrics.rounds
        assert result.recursion_depth >= 1
        assert result.merge_fallbacks == 0
        assert result.rotation_system.genus() == 0

    def test_single_vertex(self):
        result = distributed_planar_embedding(Graph(nodes=[9]))
        assert result.rotation == {9: ()}
        assert result.rounds == 0

    def test_two_vertices(self):
        result = distributed_planar_embedding(path_graph(2))
        assert result.rotation == {0: (1,), 1: (0,)}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distributed_planar_embedding(Graph())

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            distributed_planar_embedding(Graph(edges=[(0, 1), (5, 6)]))

    def test_verify_flag(self):
        g = grid_graph(3, 3)
        result = DistributedPlanarEmbedding(g, verify=False).run()
        # even unverified output must be checkable after the fact
        verify_planar_embedding(g, result.rotation)

    def test_bandwidth_knob_changes_charges(self):
        g = grid_graph(6, 6)
        tight = DistributedPlanarEmbedding(g, bandwidth_words=1).run()
        loose = DistributedPlanarEmbedding(g, bandwidth_words=8).run()
        assert loose.rounds <= tight.rounds

    def test_deterministic(self):
        g = grid_graph(5, 5)
        r1 = distributed_planar_embedding(g)
        r2 = distributed_planar_embedding(g)
        assert r1.rotation == r2.rotation
        assert r1.rounds == r2.rounds

    def test_output_covers_exactly_the_edges(self):
        g = grid_graph(4, 5)
        result = distributed_planar_embedding(g)
        for v in g.nodes():
            assert sorted(result.rotation[v]) == sorted(g.neighbors(v))


class TestSplitterStrategies:
    def test_root_strategy_still_correct(self):
        g = grid_graph(6, 6)
        result = DistributedPlanarEmbedding(g, splitter_strategy="root").run()
        verify_planar_embedding(g, result.rotation)

    def test_unknown_strategy(self):
        g = grid_graph(3, 3)
        with pytest.raises(ValueError):
            DistributedPlanarEmbedding(g, splitter_strategy="???").run()
