"""RecursionIndex must agree with the per-call BfsTree recomputation.

The index replaces ``BfsTree.subtree_nodes`` / ``subtree_depth`` walks
and ``sorted(..., key=repr)`` with Euler-tour interval queries and
integer ranks; every query must return exactly what the naive walk
returns, or the optimized recursion would diverge from the reference
path.
"""

import random

from repro.core.index import RecursionIndex
from repro.primitives.bfs import build_bfs_tree
from repro.planar.generators import grid_graph, random_tree, triangulated_grid
from repro.planar.graph import Graph


def _wrap(graph):
    wrapped = Graph()
    for v in graph.nodes():
        wrapped.add_node(("v", v))
    for u, v in graph.edges():
        wrapped.add_edge(("v", u), ("v", v))
    return wrapped


def _tree_for(graph, root=None):
    wrapped = _wrap(graph)
    nodes = wrapped.nodes()
    return wrapped, build_bfs_tree(wrapped, root or nodes[0])


def _check_against_naive(wrapped, tree):
    index = RecursionIndex.build(tree)
    nodes = wrapped.nodes()
    assert sorted(index.order, key=repr) == sorted(nodes, key=repr)
    for s in nodes:
        naive = tree.subtree_nodes(s)
        span = index.subtree_span(s)
        assert set(span) == naive
        assert index.subtree_size(s) == len(naive)
        assert index.subtree_depth(s) == tree.subtree_depth(s)
    rng = random.Random(7)
    for _ in range(200):
        v, s = rng.choice(nodes), rng.choice(nodes)
        assert index.in_subtree(v, s) == (v in tree.subtree_nodes(s))
    sample = rng.sample(nodes, min(25, len(nodes)))
    assert index.sort(sample) == sorted(sample, key=repr)


def test_index_matches_naive_on_grid():
    _check_against_naive(*_tree_for(grid_graph(6, 7)))


def test_index_matches_naive_on_trigrid():
    _check_against_naive(*_tree_for(triangulated_grid(5, 5)))


def test_index_matches_naive_on_random_trees():
    for seed in range(5):
        _check_against_naive(*_tree_for(random_tree(40, seed=seed)))


def test_subtree_span_is_contiguous_preorder():
    wrapped, tree = _tree_for(grid_graph(5, 5))
    index = RecursionIndex.build(tree)
    for s in wrapped.nodes():
        span = index.subtree_span(s)
        assert span[0] == s  # preorder: the root of the slice leads it
        assert span == index.order[index.tin[s] : index.tout[s]]
