"""The merge engine: pairwise/star/coordinated merges and their charges."""

import pytest

from repro.congest import RoundMetrics
from repro.core import (
    NonPlanarNetworkError,
    charge_pairwise_merge,
    charge_path_coordinated_merge,
    charge_star_merge,
    fresh_part,
    merge_parts,
)
from repro.core.parts import stub_node
from repro.planar import Graph, check_embedding_with_boundary
from repro.planar.generators import cycle_graph, grid_graph, path_graph


def make_grid_halves():
    """A 4x4 grid split into two 8-vertex halves."""
    g = grid_graph(4, 4)
    top = {0, 1, 2, 3, 4, 5, 6, 7}
    bottom = set(g.nodes()) - top
    parts = []
    for nodes in (top, bottom):
        sub = g.subgraph(nodes)
        boundary = [(u, x) for u in sorted(nodes) for x in g.neighbors(u) if x not in nodes]
        parts.append(fresh_part(sub, boundary))
    return g, parts


class TestPairwise:
    def test_merge_two_halves(self):
        g, parts = make_grid_halves()
        result = merge_parts(parts)
        merged = result.part
        assert merged.vertices == set(g.nodes())
        assert merged.boundary == []
        assert not result.fallback_used
        assert merged.rotation.genus() == 0

    def test_merged_graph_has_connecting_edges(self):
        g, parts = make_grid_halves()
        merged = merge_parts(parts).part
        for c in range(4):
            assert merged.graph.has_edge(4 + c, 8 + c)

    def test_single_part_identity(self):
        part = fresh_part(path_graph(3), [(0, 9)])
        result = merge_parts([part])
        assert result.part is part

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_parts([])

    def test_disconnected_parts_rejected(self):
        a = fresh_part(path_graph(2), [(0, 77)])
        b = fresh_part(Graph(edges=[(10, 11)]), [(10, 78)])
        with pytest.raises(ValueError):
            merge_parts([a, b])

    def test_overlapping_parts_rejected(self):
        a = fresh_part(path_graph(3), [])
        b = fresh_part(path_graph(3), [])
        with pytest.raises(ValueError):
            merge_parts([a, b])


class TestBoundaryHandling:
    def test_external_edges_survive(self):
        g = grid_graph(2, 4)  # nodes 0..7
        left = {0, 1, 4, 5}
        right = {2, 3, 6, 7}
        parts = []
        for nodes in (left, right):
            sub = g.subgraph(nodes)
            boundary = [
                (u, x) for u in sorted(nodes) for x in g.neighbors(u) if x not in nodes
            ]
            # add external half-edges to the wider world
            boundary += [(u, 1000 + u) for u in sorted(nodes)[:1]]
            parts.append(fresh_part(sub, boundary))
        result = merge_parts(parts)
        merged = result.part
        assert set(merged.boundary) == {(0, 1000), (2, 1002)}
        stubs = [stub_node(h) for h in merged.boundary]
        check_embedding_with_boundary(merged.rotation, stubs)

    def test_nonplanar_merge_detected(self):
        # Two halves of K5: merging them must fail.
        from repro.planar.generators import complete_graph

        g = complete_graph(5)
        a_nodes, b_nodes = {0, 1}, {2, 3, 4}
        parts = []
        for nodes in (a_nodes, b_nodes):
            sub = g.subgraph(nodes)
            boundary = [
                (u, x) for u in sorted(nodes) for x in g.neighbors(u) if x not in nodes
            ]
            parts.append(fresh_part(sub, boundary))
        with pytest.raises(NonPlanarNetworkError):
            merge_parts(parts)


class TestChargers:
    def make_result(self):
        g, parts = make_grid_halves()
        return merge_parts(parts)

    def test_pairwise_charge(self):
        m = RoundMetrics()
        result = self.make_result()
        rounds = charge_pairwise_merge(m, result)
        assert rounds > 0
        assert m.rounds == rounds
        assert "merge:pairwise" in m.phase_rounds

    def test_star_charge(self):
        m = RoundMetrics()
        rounds = charge_star_merge(m, self.make_result())
        assert m.phase_rounds["merge:star"] == rounds

    def test_path_charge_scales_with_path(self):
        result = self.make_result()
        m1, m2 = RoundMetrics(), RoundMetrics()
        r_short = charge_path_coordinated_merge(m1, result, path_length=2)
        r_long = charge_path_coordinated_merge(m2, result, path_length=50)
        assert r_long > r_short

    def test_measured_words_present(self):
        result = self.make_result()
        assert result.total_up > 0
        assert result.total_down > 0
        assert set(result.up_words) == set(result.part_depths)

    def test_bandwidth_reduces_rounds(self):
        result = self.make_result()
        m1, m2 = RoundMetrics(), RoundMetrics()
        r1 = charge_pairwise_merge(m1, result, bandwidth=1)
        r8 = charge_pairwise_merge(m2, result, bandwidth=8)
        assert r8 <= r1


class TestThreeWay:
    def test_star_of_three_cycle_parts(self):
        # Three arcs of a C12 merge back into the full cycle.
        g = cycle_graph(12)
        arcs = [set(range(0, 4)), set(range(4, 8)), set(range(8, 12))]
        parts = []
        for nodes in arcs:
            sub = g.subgraph(nodes)
            boundary = [
                (u, x) for u in sorted(nodes) for x in g.neighbors(u) if x not in nodes
            ]
            parts.append(fresh_part(sub, boundary))
        result = merge_parts(parts)
        assert result.part.boundary == []
        assert result.part.rotation.genus() == 0
        assert result.part.graph.num_edges == 12
