"""The trivial O(n) gather-and-solve baseline (paper footnote 2)."""

import pytest

from repro.core import NonPlanarNetworkError, trivial_baseline_embedding
from repro.planar import Graph, verify_planar_embedding
from repro.planar.generators import (
    complete_graph,
    grid_graph,
    path_graph,
    random_maximal_planar,
)


def test_produces_valid_embedding():
    g = grid_graph(5, 6)
    result = trivial_baseline_embedding(g)
    verify_planar_embedding(g, result.rotation)


def test_rounds_linear_in_n():
    rounds = []
    for k in (6, 12, 24):
        g = path_graph(k * 10)
        rounds.append(trivial_baseline_embedding(g).rounds)
    # doubling n roughly doubles the rounds (gather is the bottleneck)
    assert 1.6 <= rounds[1] / rounds[0] <= 2.4
    assert 1.6 <= rounds[2] / rounds[1] <= 2.4


def test_rounds_at_least_n():
    g = random_maximal_planar(80, 2)
    result = trivial_baseline_embedding(g)
    assert result.rounds >= g.num_nodes  # n + 2m words through the root


def test_nonplanar_rejected():
    with pytest.raises(NonPlanarNetworkError):
        trivial_baseline_embedding(complete_graph(5))


def test_single_node():
    result = trivial_baseline_embedding(Graph(nodes=[3]))
    assert result.rotation == {3: ()}


def test_disconnected_rejected():
    with pytest.raises(ValueError):
        trivial_baseline_embedding(Graph(edges=[(0, 1), (2, 3)]))


def test_phases_recorded():
    result = trivial_baseline_embedding(grid_graph(4, 4))
    assert "baseline:gather" in result.metrics.phase_rounds
    assert "baseline:scatter" in result.metrics.phase_rounds
