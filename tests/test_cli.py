"""The `python -m repro` command-line interface."""

import json

import pytest

from repro import distributed_planar_embedding
from repro.__main__ import load_edgelist, main
from repro.analysis import load_trace
from repro.planar.generators import grid_graph


def test_demo_grid(capsys):
    code = main(["--demo", "grid", "4", "4", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "n=16" in out
    assert "planar embedding in" in out
    assert "round ledger" in out


def test_demo_rotations_printed(capsys):
    main(["--demo", "cycle", "5"])
    out = capsys.readouterr().out
    assert "clockwise edge orders" in out
    assert "  0: " in out


def test_baseline_mode(capsys):
    code = main(["--demo", "grid", "3", "3", "--baseline", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "baseline" in out


def test_nonplanar_exit_code_and_witness(tmp_path, capsys):
    f = tmp_path / "k5.txt"
    f.write_text(
        "# complete graph on 5 nodes\n"
        + "\n".join(f"{i} {j}" for i in range(5) for j in range(i + 1, 5))
    )
    code = main([str(f), "--quiet"])
    out = capsys.readouterr().out
    assert code == 1
    assert "NOT PLANAR" in out
    assert "K5 subdivision" in out


def test_edgelist_parsing(tmp_path):
    f = tmp_path / "g.txt"
    f.write_text("0 1\n1 2  # comment\n\n2 0\n")
    g = load_edgelist(str(f))
    assert g.num_nodes == 3
    assert g.num_edges == 3


def test_edgelist_bad_line(tmp_path):
    f = tmp_path / "bad.txt"
    f.write_text("0 1 2\n")
    with pytest.raises(SystemExit):
        load_edgelist(str(f))


def test_requires_exactly_one_input(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_unknown_demo_family():
    with pytest.raises(SystemExit):
        main(["--demo", "hypercube", "3"])


def test_bandwidth_flag(capsys):
    code = main(["--demo", "grid", "4", "4", "--bandwidth", "8", "--quiet"])
    assert code == 0


class TestCertification:
    def test_certify_accepts_and_exits_zero(self, capsys):
        code = main(["--demo", "grid", "4", "4", "--certify", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "certification ACCEPTED by all 16 nodes" in out
        assert "certify:" in out  # the ledger shows the new phases

    def test_certify_adversary_all_detected(self, capsys):
        code = main(["--demo", "trigrid", "4", "4", "--certify-adversary", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "tamper suite: 15/15 detected" in out
        assert "rejected by node" in out
        assert "MISSED" not in out

    def test_certify_with_baseline(self, capsys):
        code = main(["--demo", "grid", "3", "3", "--baseline", "--certify", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "certification ACCEPTED" in out

    def test_certify_json_report(self, capsys):
        code = main(["--demo", "maximal", "20", "--certify-adversary", "--json"])
        captured = capsys.readouterr()
        assert code == 0
        report = json.loads(captured.out)
        assert report["certification"]["accepted"] is True
        assert report["certification"]["rounds"] > 0
        assert report["certificates"]["nodes"] == 20
        assert report["tamper_suite"]["all_detected"] is True

    def test_rejected_embedding_exits_three(self, monkeypatch, capsys):
        from repro.planar.verify import EmbeddingViolation

        def always_reject(graph, order):
            raise EmbeddingViolation("injected failure")

        monkeypatch.setattr(
            "repro.core.algorithm.verify_planar_embedding", always_reject
        )
        code = main(["--demo", "grid", "3", "3", "--quiet"])
        out = capsys.readouterr().out
        assert code == 3
        assert "EMBEDDING REJECTED" in out
        assert "injected failure" in out

    def test_rejected_embedding_json_exits_three(self, monkeypatch, capsys):
        from repro.planar.verify import EmbeddingViolation

        def always_reject(graph, order):
            raise EmbeddingViolation("injected failure")

        monkeypatch.setattr(
            "repro.core.algorithm.verify_planar_embedding", always_reject
        )
        code = main(["--demo", "grid", "3", "3", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 3
        assert report["accepted"] is False
        assert "injected failure" in report["error"]


class TestFaults:
    def test_chaos_run_heals_and_exits_zero(self, capsys):
        code = main([
            "--demo", "grid", "4", "4",
            "--faults", "drop=0.05,corrupt=0.02", "--fault-seed", "7", "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "self-healing" in out
        assert "chaos schedule: seed=7" in out
        assert "recovery" in out  # the ledger shows the overhead phase
        assert "certification ACCEPTED" in out

    def test_degraded_exits_four(self, capsys):
        code = main([
            "--demo", "path", "4",
            "--faults", "drop=0.9", "--max-retries", "0", "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 4
        assert "DEGRADED" in out
        assert "healing attempts: 1" in out

    def test_degraded_json_report(self, capsys):
        code = main([
            "--demo", "path", "4",
            "--faults", "drop=0.9", "--max-retries", "0", "--json",
        ])
        captured = capsys.readouterr()
        assert code == 4
        report = json.loads(captured.out)
        assert report["type"] == "degraded-report"
        assert report["planar"] is None
        assert report["healing"]["attempts"] == 1
        assert report["fault_stats"]["faults_injected"] > 0
        assert "DEGRADED" in captured.err

    def test_healed_json_report_carries_fault_stats(self, capsys):
        code = main([
            "--demo", "grid", "4", "4",
            "--faults", "drop=0.05", "--fault-seed", "3", "--json",
        ])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["algorithm"] == "theorem-1.1-self-healing"
        assert report["fault_stats"]["dropped"] > 0
        assert report["certification"]["accepted"] is True
        assert "recovery" in report["metrics"]["phases"]

    def test_fault_seed_reproducible(self, capsys):
        args = ["--demo", "grid", "4", "4", "--faults", "drop=0.1,dup=0.05",
                "--fault-seed", "11", "--json"]
        first = (main(args), capsys.readouterr().out)
        second = (main(args), capsys.readouterr().out)
        # wall_s differs between runs; everything else must not
        a, b = json.loads(first[1]), json.loads(second[1])
        a.pop("wall_s"), b.pop("wall_s")
        assert first[0] == second[0] == 0
        assert a == b

    def test_bad_fault_spec_is_usage_error(self):
        with pytest.raises(SystemExit) as info:
            main(["--demo", "grid", "3", "3", "--faults", "warp=0.5"])
        assert info.value.code == 2

    def test_faults_with_baseline_conflict(self):
        with pytest.raises(SystemExit):
            main(["--demo", "grid", "3", "3", "--baseline", "--faults", "drop=0.1"])

    def test_nonplanar_under_faults_still_exits_one(self, tmp_path, capsys):
        f = tmp_path / "k5.txt"
        f.write_text(
            "\n".join(f"{i} {j}" for i in range(5) for j in range(i + 1, 5))
        )
        code = main([str(f), "--faults", "drop=0.02", "--quiet"])
        out = capsys.readouterr().out
        assert code == 1
        assert "NOT PLANAR" in out


class TestSeededDemos:
    def test_seed_reproducible(self, capsys):
        main(["--demo", "maximal", "18", "--seed", "7"])
        first = capsys.readouterr().out
        main(["--demo", "maximal", "18", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second

    def test_seed_changes_instance(self, capsys):
        main(["--demo", "outerplanar", "18", "--seed", "1"])
        first = capsys.readouterr().out
        main(["--demo", "outerplanar", "18", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_new_demo_families(self, capsys):
        assert main(["--demo", "tree", "12", "--quiet"]) == 0
        assert main(["--demo", "outerplanar", "12", "--quiet"]) == 0


class TestTracing:
    def test_trace_stdout_is_valid_jsonl_matching_result(self, capsys):
        """Satellite: `--demo grid 6 6 --trace -` emits valid JSONL whose
        root span's round total equals the run's EmbeddingResult.rounds."""
        code = main(["--demo", "grid", "6", "6", "--trace", "-"])
        captured = capsys.readouterr()
        assert code == 0
        lines = captured.out.splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "trace"
        assert all(json.loads(ln) for ln in lines[1:])  # every line parses
        root = load_trace(lines)
        expected = distributed_planar_embedding(grid_graph(6, 6))
        assert root.total_rounds() == expected.rounds
        # human-facing report moved to stderr, stdout is machine-clean
        assert "planar embedding in" in captured.err

    def test_trace_to_file(self, tmp_path, capsys):
        f = tmp_path / "run.jsonl"
        code = main(["--demo", "cycle", "8", "--trace", str(f), "--quiet"])
        assert code == 0
        root = load_trace(str(f))
        assert root.kind == "run"
        assert root.total_rounds() > 0

    def test_json_report(self, capsys):
        code = main(["--demo", "grid", "4", "4", "--json"])
        captured = capsys.readouterr()
        assert code == 0
        report = json.loads(captured.out)
        assert report["planar"] is True
        assert report["n"] == 16
        assert report["rounds"] == report["metrics"]["rounds"] > 0
        assert "wall_s" in report

    def test_json_report_nonplanar(self, tmp_path, capsys):
        f = tmp_path / "k5.txt"
        f.write_text(
            "\n".join(f"{i} {j}" for i in range(5) for j in range(i + 1, 5))
        )
        code = main([str(f), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["planar"] is False
        assert report["witness"]["kind"] == "K5"
        assert report["witness"]["nodes"] == 5

    def test_view_trace(self, tmp_path, capsys):
        f = tmp_path / "run.jsonl"
        main(["--demo", "grid", "4", "4", "--trace", str(f), "--quiet"])
        capsys.readouterr()
        code = main(["--view-trace", str(f)])
        out = capsys.readouterr().out
        assert code == 0
        assert "run" in out and "rounds" in out

    def test_json_with_trace_stdout_conflict(self):
        with pytest.raises(SystemExit):
            main(["--demo", "grid", "4", "4", "--json", "--trace", "-"])

    def test_trace_with_baseline_conflict(self):
        with pytest.raises(SystemExit):
            main(["--demo", "grid", "4", "4", "--baseline", "--trace", "-"])


class TestChurn:
    def test_incremental_churn_exits_zero(self, capsys):
        code = main(["--demo", "grid", "5", "5", "--churn", "4",
                     "--incremental-certify", "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dynamic re-certification" in out
        assert "churn mode: incremental" in out
        assert "churn: 4 ops" in out
        assert "certification ACCEPTED" in out

    def test_full_rebuild_churn_json(self, capsys):
        code = main(["--demo", "grid", "4", "4", "--churn", "3", "--json", "--quiet"])
        captured = capsys.readouterr()
        assert code == 0
        report = json.loads(captured.out)
        churn = report["churn"]
        assert churn["incremental"] is False
        assert churn["accepted"] is True
        assert churn["ops"] == 3
        assert len(churn["records"]) == 3
        assert all(r["mode"] == "rebuild-embed" for r in churn["records"])
        assert report["certification"]["accepted"] is True
        assert report["certification"]["label_bits_total"] > 0
        assert report["certificates"]["compact"]["bits_total"] > 0

    def test_incremental_cheaper_than_rebuild(self, capsys):
        main(["--demo", "grid", "5", "5", "--churn", "4",
              "--incremental-certify", "--json", "--quiet"])
        inc = json.loads(capsys.readouterr().out)["churn"]
        main(["--demo", "grid", "5", "5", "--churn", "4", "--json", "--quiet"])
        full = json.loads(capsys.readouterr().out)["churn"]
        assert inc["op_rounds"] < full["op_rounds"]

    def test_churn_seed_reproducible(self, capsys):
        main(["--demo", "grid", "4", "4", "--churn", "3", "--seed", "5",
              "--incremental-certify", "--json", "--quiet"])
        first = json.loads(capsys.readouterr().out)["churn"]
        main(["--demo", "grid", "4", "4", "--churn", "3", "--seed", "5",
              "--incremental-certify", "--json", "--quiet"])
        second = json.loads(capsys.readouterr().out)["churn"]
        assert first == second

    def test_churn_flag_conflicts(self):
        with pytest.raises(SystemExit):
            main(["--demo", "grid", "4", "4", "--incremental-certify"])
        with pytest.raises(SystemExit):
            main(["--demo", "grid", "4", "4", "--churn", "0"])
        with pytest.raises(SystemExit):
            main(["--demo", "grid", "4", "4", "--churn", "2", "--baseline"])
        with pytest.raises(SystemExit):
            main(["--demo", "grid", "4", "4", "--churn", "2", "--faults", "drop=0.01"])
        with pytest.raises(SystemExit):
            main(["--demo", "grid", "4", "4", "--churn", "2", "--certify-adversary"])


class TestShardStats:
    def test_hidden_by_default(self, capsys):
        main(["--demo", "grid", "5", "5", "--shard-workers", "2", "--json", "--quiet"])
        report = json.loads(capsys.readouterr().out)
        assert "shard_stats" not in report

    def test_surfaced_behind_flag(self, capsys):
        main(["--demo", "grid", "5", "5", "--shard-workers", "2",
              "--shard-stats", "--json", "--quiet"])
        report = json.loads(capsys.readouterr().out)
        assert report["shard_stats"] is not None
        assert report["shard_stats"]["workers"] == 2

    def test_sequential_run_reports_null(self, capsys):
        main(["--demo", "grid", "4", "4", "--shard-stats", "--json", "--quiet"])
        report = json.loads(capsys.readouterr().out)
        assert "shard_stats" in report and report["shard_stats"] is None

    def test_report_identical_modulo_shard_stats(self, capsys):
        """The flag only *adds* a key: everything else stays bit-identical
        (the serve-cache contract)."""
        main(["--demo", "grid", "5", "5", "--shard-workers", "2",
              "--shard-stats", "--json", "--quiet"])
        with_stats = json.loads(capsys.readouterr().out)
        main(["--demo", "grid", "5", "5", "--json", "--quiet"])
        plain = json.loads(capsys.readouterr().out)
        del with_stats["shard_stats"]
        with_stats.pop("wall_s"), plain.pop("wall_s")
        assert with_stats == plain
