"""The `python -m repro` command-line interface."""

import pytest

from repro.__main__ import load_edgelist, main


def test_demo_grid(capsys):
    code = main(["--demo", "grid", "4", "4", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "n=16" in out
    assert "planar embedding in" in out
    assert "round ledger" in out


def test_demo_rotations_printed(capsys):
    main(["--demo", "cycle", "5"])
    out = capsys.readouterr().out
    assert "clockwise edge orders" in out
    assert "  0: " in out


def test_baseline_mode(capsys):
    code = main(["--demo", "grid", "3", "3", "--baseline", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0
    assert "baseline" in out


def test_nonplanar_exit_code_and_witness(tmp_path, capsys):
    f = tmp_path / "k5.txt"
    f.write_text(
        "# complete graph on 5 nodes\n"
        + "\n".join(f"{i} {j}" for i in range(5) for j in range(i + 1, 5))
    )
    code = main([str(f), "--quiet"])
    out = capsys.readouterr().out
    assert code == 1
    assert "NOT PLANAR" in out
    assert "K5 subdivision" in out


def test_edgelist_parsing(tmp_path):
    f = tmp_path / "g.txt"
    f.write_text("0 1\n1 2  # comment\n\n2 0\n")
    g = load_edgelist(str(f))
    assert g.num_nodes == 3
    assert g.num_edges == 3


def test_edgelist_bad_line(tmp_path):
    f = tmp_path / "bad.txt"
    f.write_text("0 1 2\n")
    with pytest.raises(SystemExit):
        load_edgelist(str(f))


def test_requires_exactly_one_input(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_unknown_demo_family():
    with pytest.raises(SystemExit):
        main(["--demo", "hypercube", "3"])


def test_bandwidth_flag(capsys):
    code = main(["--demo", "grid", "4", "4", "--bandwidth", "8", "--quiet"])
    assert code == 0
