"""Trace diffing: identical-seed runs diff clean, tampering is caught
and localized with its recursion-ancestry path."""

import io
import json

import pytest

from repro import distributed_planar_embedding
from repro.analysis import diff_spans, diff_traces, load_trace, render_diff
from repro.obs import TraceFormatError, Tracer
from repro.planar.generators import grid_graph


def trace_lines(graph=None):
    tracer = Tracer()
    distributed_planar_embedding(graph or grid_graph(4, 4), tracer=tracer)
    buf = io.StringIO()
    tracer.write_jsonl(buf)
    return buf.getvalue().splitlines()


class TestIdenticalRuns:
    def test_same_seed_runs_diff_clean(self):
        """Acceptance: two identical-seed runs produce traces with zero
        divergence — wall-clock noise is excluded from the comparison."""
        report = diff_traces(trace_lines(), trace_lines())
        assert report["identical"]
        assert report["divergences"] == []
        assert report["spans_a"] == report["spans_b"] > 1
        assert "identical" in render_diff(report)

    def test_trace_diffs_clean_against_itself_from_disk(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join(trace_lines()) + "\n")
        assert diff_traces(path, path)["identical"]


class TestTamperLocalization:
    def tamper(self, lines, field, mutate):
        out = []
        done = False
        for line in lines:
            record = json.loads(line)
            if not done and record.get("type") == "span" and record.get(field):
                record[field] = mutate(record[field])
                done = True
            out.append(json.dumps(record))
        assert done, f"no span line with {field!r} to tamper"
        return out

    def test_single_field_tamper_is_localized(self):
        lines = trace_lines()
        tampered = self.tamper(lines, "rounds", lambda r: r ^ 1)
        report = diff_traces(lines, tampered)
        assert not report["identical"]
        first = report["divergences"][0]
        assert first["kind"] == "field"
        assert first["detail"] == "rounds"
        assert abs(first["a"] - first["b"]) == 1
        # The path is the span ancestry from the root down.
        assert first["path"][0].startswith("run:")
        assert "first divergence" in render_diff(report)

    def test_dropped_subtree_reports_structure(self):
        lines = trace_lines()
        root = load_trace(lines)
        victim = root.children[-1]
        pruned = [
            line for line in lines
            if json.loads(line).get("span_id")
            not in {sp.span_id for sp in victim.walk()}
        ]
        report = diff_traces(lines, pruned)
        assert not report["identical"]
        assert any(d["kind"] == "structure" for d in report["divergences"])

    def test_attr_tamper_names_the_key(self):
        lines = trace_lines()
        out, done = [], False
        for line in lines:
            record = json.loads(line)
            if not done and record.get("type") == "span" and record.get("attrs"):
                key = sorted(record["attrs"])[0]
                record["attrs"][key] = "tampered"
                done = True
            out.append(json.dumps(record))
        report = diff_traces(lines, out)
        kinds = {(d["kind"], d["detail"]) for d in report["divergences"]}
        assert any(k == "attr" for k, _ in kinds)

    def test_limit_truncates_and_flags(self):
        lines = trace_lines()
        # Tamper every span's rounds: far more divergences than the limit.
        out = []
        for line in lines:
            record = json.loads(line)
            if record.get("type") == "span":
                record["rounds"] = record.get("rounds", 0) + 1
            out.append(json.dumps(record))
        report = diff_traces(lines, out, limit=3)
        assert len(report["divergences"]) == 3
        assert report["truncated"]


class TestMalformedInput:
    def test_unreadable_input_raises_loader_errors(self):
        with pytest.raises(ValueError):
            diff_traces(["garbage"], trace_lines())

    def test_version_drift_is_typed(self):
        lines = trace_lines()
        header = json.loads(lines[0])
        assert header["type"] == "trace"
        header["version"] = 999
        with pytest.raises(TraceFormatError):
            diff_traces([json.dumps(header)] + lines[1:], lines)


class TestDiffSpans:
    def test_span_level_api(self):
        root_a = load_trace(trace_lines())
        root_b = load_trace(trace_lines())
        assert diff_spans(root_a, root_b) == []
        root_b.children[0].rounds += 5
        divergences = diff_spans(root_a, root_b)
        assert divergences and divergences[0].detail == "rounds"
        assert divergences[0].where.startswith("run:")
