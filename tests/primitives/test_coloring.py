"""Cole-Vishkin color reduction and MIS on linear forests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planar import Graph
from repro.planar.generators import cycle_graph, path_graph, star_graph
from repro.primitives import (
    cole_vishkin_3coloring,
    is_proper_coloring,
    log_star,
    mis_from_coloring,
)


class TestLogStar:
    def test_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2**20) == 5


class TestColeVishkin:
    def test_path_reduces_to_three_colors(self):
        g = path_graph(64)
        colors, steps = cole_vishkin_3coloring(g, {v: v for v in g.nodes()})
        assert set(colors.values()) <= {0, 1, 2}
        assert is_proper_coloring(g, colors)
        # O(log* n) bit-reduction steps + 3 elimination steps
        assert steps <= log_star(64) + 6

    def test_linear_forest(self):
        g = Graph(edges=[(0, 1), (1, 2), (10, 11), (20, 21), (21, 22), (22, 23)])
        g.add_node(30)
        colors, _ = cole_vishkin_3coloring(g, {v: v for v in g.nodes()})
        assert is_proper_coloring(g, colors)
        assert set(colors.values()) <= {0, 1, 2}

    def test_rejects_cycle(self):
        with pytest.raises(ValueError):
            cole_vishkin_3coloring(cycle_graph(5), {v: v for v in range(5)})

    def test_rejects_high_degree(self):
        g = star_graph(3)
        with pytest.raises(ValueError):
            cole_vishkin_3coloring(g, {v: v for v in g.nodes()})

    def test_rejects_improper_input(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            cole_vishkin_3coloring(g, {0: 5, 1: 5, 2: 1})

    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=200),
        mult=st.integers(min_value=1, max_value=1000),
    )
    def test_huge_initial_palettes(self, n, mult):
        g = path_graph(n)
        colors, steps = cole_vishkin_3coloring(g, {v: v * mult for v in g.nodes()})
        assert set(colors.values()) <= {0, 1, 2}
        assert is_proper_coloring(g, colors)


class TestMis:
    def test_path_mis(self):
        g = path_graph(30)
        colors, _ = cole_vishkin_3coloring(g, {v: v for v in g.nodes()})
        mis, steps = mis_from_coloring(g, colors)
        assert steps == 3
        assert len(mis) >= 10  # MIS of a 30-path has >= n/3 nodes

    def test_requires_proper(self):
        g = path_graph(3)
        with pytest.raises(ValueError):
            mis_from_coloring(g, {0: 1, 1: 1, 2: 0})

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=150))
    def test_mis_valid_on_paths(self, n):
        g = path_graph(n)
        colors, _ = cole_vishkin_3coloring(g, {v: v for v in g.nodes()})
        mis, _ = mis_from_coloring(g, colors)
        for u, v in g.edges():
            assert not (u in mis and v in mis)
        for v in g.nodes():
            assert v in mis or any(u in mis for u in g.neighbors(v))
