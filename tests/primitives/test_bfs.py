"""Distributed BFS: tree validity, depths, and O(D) rounds."""

import pytest

from repro.congest import RoundMetrics
from repro.planar import Graph
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_planar,
    random_tree,
)
from repro.primitives import build_bfs_tree


def bfs_distances(g, root):
    dist = {root: 0}
    frontier = [root]
    while frontier:
        nxt = []
        for v in frontier:
            for u in g.neighbors(v):
                if u not in dist:
                    dist[u] = dist[v] + 1
                    nxt.append(u)
        frontier = nxt
    return dist


@pytest.mark.parametrize(
    "g,root",
    [
        (path_graph(12), 0),
        (cycle_graph(9), 4),
        (grid_graph(5, 7), 0),
        (random_planar(40, 70, seed=5), 17),
        (random_tree(30, 3), 29),
    ],
    ids=["path", "cycle", "grid", "planar", "tree"],
)
def test_depths_are_true_bfs_distances(g, root):
    tree = build_bfs_tree(g, root)
    assert tree.depth_of == bfs_distances(g, root)


def test_parent_child_consistency():
    g = grid_graph(4, 5)
    tree = build_bfs_tree(g, 0)
    assert tree.parent[0] is None
    for v, p in tree.parent.items():
        if p is not None:
            assert v in tree.children[p]
            assert g.has_edge(v, p)
            assert tree.depth_of[v] == tree.depth_of[p] + 1
    total_children = sum(len(c) for c in tree.children.values())
    assert total_children == g.num_nodes - 1


def test_rounds_order_of_depth():
    g = path_graph(25)
    m = RoundMetrics()
    tree = build_bfs_tree(g, 0, metrics=m)
    assert tree.depth == 24
    assert m.rounds <= tree.depth + 3


def test_disconnected_raises():
    g = Graph(edges=[(0, 1), (2, 3)])
    with pytest.raises(ValueError):
        build_bfs_tree(g, 0)


def test_subtree_nodes_and_depth():
    g = path_graph(6)
    tree = build_bfs_tree(g, 0)
    assert tree.subtree_nodes(3) == {3, 4, 5}
    assert tree.subtree_depth(3) == 2
    assert tree.subtree_depth(5) == 0


def test_path_to_descendant():
    g = path_graph(6)
    tree = build_bfs_tree(g, 0)
    assert tree.path_to_descendant(1, 4) == [1, 2, 3, 4]
    with pytest.raises(ValueError):
        tree.path_to_descendant(3, 1)


def test_min_id_parent_tie_break():
    g = Graph(edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
    tree = build_bfs_tree(g, 0)
    assert tree.parent[3] == 1  # both 1 and 2 offer at the same round
