"""Low-arboricity peeling orientations and neighborhood views."""

import pytest

from repro.planar.generators import (
    complete_graph,
    grid_graph,
    random_maximal_planar,
    random_outerplanar,
    random_tree,
    triangulated_grid,
)
from repro.primitives import neighborhood_views, peel_orientation


class TestPeeling:
    def test_planar_out_degree_bounded(self):
        g = random_maximal_planar(60, 3)
        so = peel_orientation(g, sparsity=3)
        assert so.max_out_degree <= 6
        assert all(v in so.layer for v in g.nodes())

    def test_every_edge_oriented_once(self):
        g = triangulated_grid(5, 5)
        so = peel_orientation(g, sparsity=3)
        oriented = sum(len(ns) for ns in so.out_neighbors.values())
        assert oriented == g.num_edges

    def test_tree_is_one_phase(self):
        g = random_tree(40, 1)
        so = peel_orientation(g, sparsity=1)
        # every tree vertex has degree <= 2*1 after enough peeling;
        # phases stay logarithmic-ish, and out-degree <= 2
        assert so.max_out_degree <= 2

    def test_outerplanar_sparsity2(self):
        g = random_outerplanar(40, 5)
        so = peel_orientation(g, sparsity=2)
        assert so.max_out_degree <= 4

    def test_dense_graph_rejected(self):
        with pytest.raises(ValueError):
            peel_orientation(complete_graph(30), sparsity=2)

    def test_phases_logarithmic(self):
        g = grid_graph(12, 12)
        so = peel_orientation(g, sparsity=3)
        assert so.phases <= 12  # comfortably O(log n)

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            peel_orientation(grid_graph(2, 2), sparsity=0)


class TestNeighborhoodViews:
    def test_views_match_truth(self):
        # neighborhood_views verifies itself against ground truth internally
        g = random_maximal_planar(40, 8)
        views, steps = neighborhood_views(g)
        assert len(views) == 40
        assert steps >= 1

    def test_view_contents(self):
        g = grid_graph(3, 3)
        views, _ = neighborhood_views(g)
        center = views[4]
        assert 4 in center
        assert set(center.nodes()) == {1, 3, 4, 5, 7}

    def test_steps_scale_with_sparsity(self):
        g = random_outerplanar(30, 2)
        so = peel_orientation(g, sparsity=2)
        _, steps = neighborhood_views(g, so)
        assert steps == so.phases + so.max_out_degree
