"""The 2/3-balanced splitter: Lemma 4.2's engine, property-tested."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import RoundMetrics
from repro.planar import Graph
from repro.planar.generators import caterpillar, path_graph, random_tree
from repro.primitives import (
    build_bfs_tree,
    compute_subtree_stats,
    find_splitter,
    splitter_components,
)


def run_splitter(g, root):
    tree = build_bfs_tree(g, root)
    tg = Graph(nodes=g.nodes())
    for v, p in tree.parent.items():
        if p is not None:
            tg.add_edge(v, p)
    splitter = find_splitter(tg, root, tree.parent, tree.children)
    comps = splitter_components(
        root, splitter, tree.parent, tree.children, set(g.nodes())
    )
    return tree, splitter, comps


def check_balance(g, root):
    tree, splitter, comps = run_splitter(g, root)
    n = g.num_nodes
    assert sum(len(c) for c in comps) == n - 1
    for comp in comps:
        assert 3 * len(comp) <= 2 * n, f"component of {len(comp)} > 2n/3 (n={n})"
    return splitter


def test_path_splitter_is_middleish():
    splitter = check_balance(path_graph(30), 0)
    assert 9 <= splitter <= 20


def test_star_splitter_is_center():
    g = Graph(edges=[(0, i) for i in range(1, 12)])
    assert check_balance(g, 0) == 0


def test_caterpillar():
    check_balance(caterpillar(12, 3), 0)


def test_two_nodes():
    g = path_graph(2)
    tree, splitter, comps = run_splitter(g, 0)
    assert splitter in (0, 1)
    assert all(len(c) <= 1 for c in comps)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=120),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_balance_on_random_trees(n, seed):
    check_balance(random_tree(n, seed), 0)


def test_distributed_cost_is_linear_in_depth():
    g = path_graph(40)
    tree = build_bfs_tree(g, 0)
    tg = Graph(nodes=g.nodes())
    for v, p in tree.parent.items():
        if p is not None:
            tg.add_edge(v, p)
    m = RoundMetrics()
    stats = compute_subtree_stats(tg, tree.parent, tree.children, metrics=m)
    find_splitter(tg, 0, tree.parent, tree.children, metrics=m, stats=stats)
    # one convergecast + one token walk: <= ~2 depth rounds
    assert m.rounds <= 2 * tree.depth + 4


def test_subtree_stats_consistency():
    g = random_tree(50, 9)
    tree = build_bfs_tree(g, 0)
    tg = Graph(nodes=g.nodes())
    for v, p in tree.parent.items():
        if p is not None:
            tg.add_edge(v, p)
    stats = compute_subtree_stats(tg, tree.parent, tree.children)
    assert stats.size[0] == 50
    for v in g.nodes():
        assert stats.size[v] == len(tree.subtree_nodes(v))
        assert stats.height[v] == tree.subtree_depth(v)
        for c in tree.children[v]:
            assert stats.child_sizes[v][c] == stats.size[c]
