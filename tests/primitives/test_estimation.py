"""The Section 2 preamble: distributed estimation of n and D."""

import pytest

from repro.congest import RoundMetrics
from repro.planar import Graph
from repro.planar.generators import cycle_graph, grid_graph, path_graph, random_tree
from repro.primitives import estimate_network


def true_diameter(g):
    best = 0
    for s in g.nodes():
        dist = {s: 0}
        frontier = [s]
        while frontier:
            nxt = []
            for v in frontier:
                for u in g.neighbors(v):
                    if u not in dist:
                        dist[u] = dist[v] + 1
                        nxt.append(u)
            frontier = nxt
        best = max(best, max(dist.values()))
    return best


@pytest.mark.parametrize(
    "g",
    [path_graph(20), cycle_graph(15), grid_graph(5, 6), random_tree(40, 2)],
    ids=["path", "cycle", "grid", "tree"],
)
def test_two_approximation(g):
    est = estimate_network(g)
    d = true_diameter(g)
    assert est.n == g.num_nodes
    assert est.diameter_lower <= d <= est.diameter_upper
    assert est.diameter_upper <= 2 * d  # ecc(root) <= D


def test_leader_is_max_id():
    est = estimate_network(grid_graph(4, 4))
    assert est.leader == 15


def test_single_node():
    est = estimate_network(Graph(nodes=[3]))
    assert est == type(est)(n=1, diameter_lower=0, diameter_upper=0, leader=3)


def test_empty_rejected():
    with pytest.raises(ValueError):
        estimate_network(Graph())


def test_costs_linear_in_depth():
    g = path_graph(30)
    m = RoundMetrics()
    estimate_network(g, metrics=m)
    # leader flood + BFS + convergecast + broadcast: a few multiples of D
    assert m.rounds <= 5 * 30
    assert "estimate-n-D" in m.phase_rounds
