"""Max-ID leader election: correctness and O(D) round emergence."""

import pytest

from repro.congest import RoundMetrics
from repro.planar import Graph
from repro.planar.generators import cycle_graph, grid_graph, path_graph, random_tree
from repro.primitives import elect_leader


def test_elects_max_id():
    g = grid_graph(4, 6)
    assert elect_leader(g) == 23


def test_single_node():
    assert elect_leader(Graph(nodes=[42])) == 42


def test_empty_rejected():
    with pytest.raises(ValueError):
        elect_leader(Graph())


def test_rounds_close_to_eccentricity():
    # Flooding from the max-ID node quiesces within ecc(max) + O(1).
    n = 30
    g = path_graph(n)
    m = RoundMetrics()
    leader = elect_leader(g, metrics=m)
    assert leader == n - 1
    # max-ID sits at one end: its eccentricity is n-1
    assert n - 1 <= m.rounds <= n + 1


def test_rounds_on_cycle():
    g = cycle_graph(20)
    m = RoundMetrics()
    elect_leader(g, metrics=m)
    assert m.rounds <= 12  # ecc = 10


def test_on_random_trees():
    for seed in range(5):
        g = random_tree(40, seed)
        assert elect_leader(g) == 39


def test_phase_recorded():
    m = RoundMetrics()
    elect_leader(grid_graph(3, 3), metrics=m)
    assert "leader-election" in m.phase_rounds
