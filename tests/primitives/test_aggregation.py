"""Tree convergecast/broadcast as real message-passing programs."""

from repro.congest import RoundMetrics
from repro.planar.generators import grid_graph, path_graph
from repro.primitives import build_bfs_tree, tree_aggregate, tree_broadcast


def setup_tree(g, root):
    tree = build_bfs_tree(g, root)
    return tree


def test_sum_convergecast():
    g = grid_graph(4, 4)
    tree = setup_tree(g, 0)
    values = {v: v for v in g.nodes()}
    results = tree_aggregate(
        g, tree.parent, tree.children, values, combine=lambda xs: sum(xs)
    )
    root_value, _ = results[0]
    assert root_value == sum(range(16))


def test_max_convergecast_and_subtree_values():
    g = path_graph(8)
    tree = setup_tree(g, 0)
    values = {v: v * 10 for v in g.nodes()}
    results = tree_aggregate(
        g, tree.parent, tree.children, values, combine=lambda xs: max(xs)
    )
    for v in g.nodes():
        subtree_value, _ = results[v]
        assert subtree_value == 70  # max lives at the deep end


def test_convergecast_rounds_bounded_by_depth():
    g = path_graph(20)
    tree = setup_tree(g, 0)
    m = RoundMetrics()
    tree_aggregate(
        g, tree.parent, tree.children, {v: 1 for v in g.nodes()},
        combine=sum, metrics=m,
    )
    assert m.rounds <= tree.depth + 2


def test_broadcast_reaches_everyone():
    g = grid_graph(5, 5)
    tree = setup_tree(g, 0)
    results = tree_broadcast(g, tree.parent, tree.children, root_value=("go", 7))
    assert all(results[v] == ("go", 7) for v in g.nodes())


def test_broadcast_rounds_bounded_by_depth():
    g = path_graph(15)
    tree = setup_tree(g, 0)
    m = RoundMetrics()
    tree_broadcast(g, tree.parent, tree.children, root_value=1, metrics=m)
    assert m.rounds <= tree.depth + 2


def test_child_values_visible_to_parent():
    g = path_graph(4)
    tree = setup_tree(g, 0)
    results = tree_aggregate(
        g, tree.parent, tree.children, {v: 1 for v in g.nodes()}, combine=sum
    )
    _, child_values = results[0]
    assert child_values == {1: 3}  # subtree of 1 has 3 nodes
