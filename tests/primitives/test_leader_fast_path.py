"""Differential proof that the leader fast path is ledger-exact.

``elect_leader`` replays the event scheduler's execution of
``MaxIdFloodProgram`` in closed form when the ambient configuration
matches what the replay models.  These tests hold the fast path's
``RoundMetrics`` ledger — rounds, messages, words, max edge load,
activations, saved activations, and phase tags — bit-identical to the
real simulator's, and pin down every eligibility gate that must route
back to the simulator.
"""

import pytest

from repro.congest import BandwidthExceededError, RoundMetrics
from repro.congest.network import run_program, scheduler_override
from repro.planar import Graph
from repro.planar.generators import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_maximal_planar,
    random_outerplanar,
    random_tree,
    star_graph,
    triangulated_grid,
)
from repro.primitives import elect_leader
from repro.primitives import leader as leader_mod

FAMILIES = [
    pytest.param(lambda: path_graph(17), id="path17"),
    pytest.param(lambda: cycle_graph(20), id="cycle20"),
    pytest.param(lambda: grid_graph(6, 7), id="grid6x7"),
    pytest.param(lambda: star_graph(12), id="star12"),
    pytest.param(lambda: triangulated_grid(5, 5), id="trigrid5x5"),
    pytest.param(lambda: random_tree(40, seed=2), id="tree40"),
    pytest.param(lambda: random_outerplanar(30, seed=1), id="outer30"),
    pytest.param(lambda: random_maximal_planar(30, seed=6), id="maximal30"),
    pytest.param(lambda: Graph(nodes=[7]), id="singleton"),
]


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_REFERENCE_PATHS", raising=False)


@pytest.mark.parametrize("make", FAMILIES)
def test_ledger_bit_identical_to_simulator(clean_env, make):
    fast_m = RoundMetrics()
    fast_leader = leader_mod._fast_flood(make(), fast_m, "leader-election")
    assert fast_leader is not leader_mod._FALLBACK

    sim_m = RoundMetrics()
    results = run_program(
        make(), leader_mod.MaxIdFloodProgram, metrics=sim_m, phase="leader-election"
    )
    (sim_leader,) = set(results.values())

    assert fast_leader == sim_leader
    assert fast_m.to_dict() == sim_m.to_dict()


@pytest.mark.parametrize("make", FAMILIES)
def test_elect_leader_uses_fast_path_when_eligible(clean_env, make, monkeypatch):
    def no_simulator(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("eligible run must not touch the simulator")

    monkeypatch.setattr(leader_mod, "run_program", no_simulator)
    g = make()
    assert elect_leader(g) == max(g._adj)


def test_reference_paths_routes_to_simulator(monkeypatch):
    monkeypatch.setenv("REPRO_REFERENCE_PATHS", "1")

    def no_fast(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("reference-paths run must not use the fast path")

    monkeypatch.setattr(leader_mod, "_fast_flood", no_fast)
    m = RoundMetrics()
    assert elect_leader(grid_graph(4, 4), metrics=m) == 15
    assert m.rounds > 0


def test_dense_scheduler_routes_to_simulator(clean_env, monkeypatch):
    def no_fast(*args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError("dense-scheduler run must not use the fast path")

    monkeypatch.setattr(leader_mod, "_fast_flood", no_fast)
    with scheduler_override("dense"):
        assert elect_leader(grid_graph(4, 4)) == 15


def test_wide_ids_fall_back_and_raise_from_simulator(clean_env):
    # IDs wider than the per-edge budget must surface the genuine
    # simulator error; the fast path pre-flights and never half-records.
    g = Graph()
    g.add_edge(1 << 600, 0)
    m = RoundMetrics()
    assert leader_mod._fast_flood(g, m, "leader-election") is leader_mod._FALLBACK
    assert m.to_dict() == RoundMetrics().to_dict()
    with pytest.raises(BandwidthExceededError):
        elect_leader(g)


def test_disconnected_rejected_by_both_paths(clean_env):
    g = Graph()
    g.add_edge(0, 1)
    g.add_edge(2, 3)
    with pytest.raises(ValueError):
        leader_mod._fast_flood(g, None, None)
    with scheduler_override("dense"):
        with pytest.raises(ValueError):
            elect_leader(g)


def test_metrics_optional_and_phase_untagged(clean_env):
    # metrics=None and phase=None exercise the fast path's optional arms.
    assert leader_mod._fast_flood(grid_graph(3, 3), None, None) == 8
    m = RoundMetrics()
    leader_mod._fast_flood(grid_graph(3, 3), m, None)
    assert m.rounds > 0
    assert "leader-election" not in m.phase_rounds
