"""Message-level causal tracing: Lamport clocks and the critical path.

The paper's headline claim bounds the number of CONGEST *rounds*, and a
round elapses because some chain of messages forces it to: message m2
causally depends on m1 when m2's sender received m1 (or an ancestor of
m1) before sending.  The longest such chain — the **critical path** —
is the quantity the O(D·log n) analysis actually bounds, so this module
makes it measurable.

A :class:`CausalRecorder` attaches to the simulator's single delivery
hook (``CongestNetwork._post_outbox``, shared by both scheduler loops)
and maintains one Lamport chain-clock per node:

* **send**: a frame posted by ``v`` carries stamp ``L[v] + 1``;
* **receive**: at the next round boundary the receiver merges
  ``L[u] = max(L[u], stamp)`` over everything delivered to it.

The clock therefore counts *message hops*, so the maximum stamp reached
in one network execution is the length of the longest happens-before
chain.  Because stamps are assigned from the post-merge clock of the
sending round, the maximum can grow by at most one per round that
carries traffic — hence ``critical_path <= real message rounds``
structurally, on either scheduler, with or without a fault schedule.
On a fault-free run of a receive-driven protocol (flooding,
convergecast, broadcast — everything the pipeline's primitives are)
every round's frontier extends a maximal chain, so equality holds and
is asserted by ``tests/obs/test_causal.py`` and the E18 bench.

Round boundaries are observed without touching the round loops: both
schedulers allocate a fresh in-flight dict per round and the previous
round's dict is still referenced (as the inbox map) while the next one
is allocated, so consecutive rounds can never reuse an ``id`` — a
change of in-flight dict identity at the delivery hook *is* the round
boundary.

Attachment follows the process-default idiom of
:func:`~repro.congest.faults.fault_override`: wrap a pipeline in
:func:`causal_override` and every internally created network records
into the same recorder.  With no recorder installed the simulator's
delivery hook is the unwrapped original — the per-round hot path of an
untraced run executes no causal code at all.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "CausalRecorder",
    "causal_override",
    "default_causal_recorder",
]


class _ExecState:
    """Clock state for one network execution (one ``CongestNetwork.run``)."""

    __slots__ = (
        "phase", "clock", "link", "pending", "inflight_id", "send_rounds",
        "messages",
    )

    def __init__(self, phase: str | None) -> None:
        self.phase = phase
        self.clock: dict[Any, int] = {}  # node -> merged Lamport chain length
        # node -> (node, stamp, round, parent link): a persistent list
        # snapshotted at *send* time, so walking parents is a true
        # happens-before chain (final clocks keep growing; these don't).
        self.link: dict[Any, tuple] = {}
        # receiver -> (stamp, sender, sender's link at send time)
        self.pending: dict[Any, tuple[int, Any, tuple | None]] = {}
        self.inflight_id: int | None = None
        self.send_rounds = 0  # distinct in-flight dicts seen = rounds with traffic
        self.messages = 0

    def merge_pending(self) -> None:
        clock = self.clock
        link = self.link
        for v, (stamp, sender, parent) in self.pending.items():
            if stamp > clock.get(v, 0):
                clock[v] = stamp
                link[v] = (v, stamp, self.send_rounds, parent)
        self.pending.clear()

    def critical_path(self) -> int:
        self.merge_pending()
        return max(self.clock.values(), default=0)


class CausalRecorder:
    """Observes every delivered frame and computes per-phase critical paths.

    ``max_edges`` bounds the retained happens-before edge sample (the
    raw material for the Perfetto causal lanes); everything beyond the
    cap is still *counted* (``edges_total``) so the report never
    pretends a truncated sample is complete.  ``max_chain`` bounds the
    reconstructed critical-path witness chain.
    """

    def __init__(self, max_edges: int = 4096, max_chain: int = 256) -> None:
        self.max_edges = max_edges
        self.max_chain = max_chain
        self.executions: list[dict[str, Any]] = []
        self.edges: list[dict[str, Any]] = []  # bounded happens-before sample
        self.edges_total = 0
        self.longest: dict[str, Any] | None = None  # deepest execution + witness
        self._exec: _ExecState | None = None
        self._exec_index = 0

    # -- CongestNetwork integration ---------------------------------------

    def begin_execution(self, phase: str | None) -> None:
        """One ``CongestNetwork.run`` is starting (called by the network)."""
        self._exec = _ExecState(phase)
        self._exec_index += 1

    def end_execution(self, rounds_used: int | None) -> None:
        """The execution finished (``rounds_used`` is ``None`` when it
        died in an error — the partial chain is still recorded)."""
        st = self._exec
        self._exec = None
        if st is None:
            return
        critical = st.critical_path()
        record = {
            "index": self._exec_index,
            "phase": st.phase,
            "rounds": rounds_used,
            "send_rounds": st.send_rounds,
            "critical_path": critical,
            "messages": st.messages,
        }
        self.executions.append(record)
        if critical and (self.longest is None or critical > self.longest["critical_path"]):
            self.longest = dict(record)
            self.longest["chain"] = self._witness_chain(st)

    def _witness_chain(self, st: _ExecState) -> list[dict[str, Any]]:
        """Walk the send-time link snapshots back from the deepest node:
        a true happens-before chain, stamps decreasing by exactly one per
        hop (final clocks keep growing after a send; the snapshots don't)."""
        if not st.clock:
            return []
        node = max(st.clock, key=lambda v: (st.clock[v], repr(v)))
        cur = st.link.get(node)
        chain: list[dict[str, Any]] = []
        while cur is not None and len(chain) < self.max_chain:
            v, stamp, round_no, parent = cur
            chain.append({"node": repr(v), "stamp": stamp, "round": round_no})
            cur = parent
        chain.reverse()
        return chain

    def wrap_post(self, post):
        """Wrap the network's delivery hook; installed once per network
        at construction, so unrecorded runs never reach this code."""

        def observing_post(sender, outbox, in_flight):
            self.observe(sender, outbox, in_flight)
            return post(sender, outbox, in_flight)

        return observing_post

    def observe(self, sender, outbox, in_flight) -> None:
        """One outbox is being posted: stamp its frames and sample edges."""
        st = self._exec
        if st is None:
            # A network driven outside run() (unit tests poking loops):
            # open an anonymous execution rather than dropping the data.
            st = self._exec = _ExecState(None)
            self._exec_index += 1
        fid = id(in_flight)
        if fid != st.inflight_id:
            # New in-flight dict = new round: everything delivered into
            # the previous dict is now readable by its receivers.
            st.inflight_id = fid
            st.send_rounds += 1
            st.merge_pending()
        stamp = st.clock.get(sender, 0) + 1
        parent = st.link.get(sender)  # the sender's chain, frozen at send time
        round_no = st.send_rounds
        pending = st.pending
        st.messages += len(outbox)
        for receiver in outbox:
            prev = pending.get(receiver)
            if prev is None or stamp > prev[0]:
                pending[receiver] = (stamp, sender, parent)
            self.edges_total += 1
            if len(self.edges) < self.max_edges:
                self.edges.append({
                    "execution": self._exec_index,
                    "phase": st.phase,
                    "round": round_no,
                    "sender": repr(sender),
                    "receiver": repr(receiver),
                    "stamp": stamp,
                })

    # -- reporting ---------------------------------------------------------

    def phase_summary(self) -> dict[str, dict[str, int]]:
        """Per-phase totals: executions, real send-rounds, critical path.

        Sequential executions of one phase sum — the same *work view* as
        :func:`repro.analysis.render_phase_timeline` (parallel branches
        sum too, so per-phase critical path is comparable to per-phase
        real rounds, not to the ledger's parallel-max clock).
        """
        out: dict[str, dict[str, int]] = {}
        for rec in self.executions:
            phase = rec["phase"] or "<unnamed>"
            row = out.setdefault(
                phase,
                {"executions": 0, "rounds": 0, "critical_path": 0, "messages": 0},
            )
            row["executions"] += 1
            row["rounds"] += rec["rounds"] or 0
            row["critical_path"] += rec["critical_path"]
            row["messages"] += rec["messages"]
        return out

    def total_rounds(self) -> int:
        """Real message rounds across all recorded executions (sum)."""
        return sum(rec["rounds"] or 0 for rec in self.executions)

    def total_critical_path(self) -> int:
        """Critical-path length across all recorded executions (sum —
        sequential executions chain causally through the driver)."""
        return sum(rec["critical_path"] for rec in self.executions)

    def report(self, include_edges: bool = False) -> dict[str, Any]:
        """The JSON-ready causal report (lands on ``EmbeddingResult.causal``
        and in ``--json``)."""
        out = {
            "type": "causal-report",
            "executions": len(self.executions),
            "real_rounds": self.total_rounds(),
            "critical_path": self.total_critical_path(),
            "phases": self.phase_summary(),
            "edges_sampled": len(self.edges),
            "edges_total": self.edges_total,
            "longest": self.longest,
        }
        if include_edges:
            out["edges"] = list(self.edges)
        return out


_default_recorder: CausalRecorder | None = None


def default_causal_recorder() -> CausalRecorder | None:
    """The recorder new networks pick up (None = no causal code runs)."""
    return _default_recorder


@contextmanager
def causal_override(recorder: CausalRecorder | None) -> Iterator[CausalRecorder | None]:
    """Install ``recorder`` as the process-default causal recorder.

    Every :class:`~repro.congest.network.CongestNetwork` created inside
    the block wraps its delivery hook with the recorder — this is how
    causal tracing reaches the networks the embedding pipeline creates
    internally, mirroring :func:`~repro.congest.faults.fault_override`.
    """
    global _default_recorder
    previous = _default_recorder
    _default_recorder = recorder
    try:
        yield recorder
    finally:
        _default_recorder = previous
