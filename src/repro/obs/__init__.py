"""Observability: hierarchical tracing and machine-readable run reports.

The paper's headline claim is a round bound, so the first-class product
of a run is *where the rounds went*.  This package provides the
:class:`Tracer` (spans per recursive call / merge / CONGEST phase,
events for charges, splitter choices, and bandwidth high-water marks)
that the rest of the system hooks into:

* ``DistributedPlanarEmbedding(graph, tracer=Tracer())`` — trace a run;
* ``tracer.write_jsonl(fp)`` — dump the span tree as JSONL;
* ``repro.analysis.load_trace`` / ``render_trace_tree`` — read it back.

See docs/API.md ("Observability") for the rollup semantics.
"""

from .tracer import Span, TraceEvent, Tracer, maybe_span

__all__ = ["Tracer", "Span", "TraceEvent", "maybe_span"]
