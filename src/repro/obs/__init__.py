"""Observability: hierarchical tracing and machine-readable run reports.

The paper's headline claim is a round bound, so the first-class product
of a run is *where the rounds went*.  This package provides:

* the :class:`Tracer` (spans per recursive call / merge / CONGEST phase,
  events for charges, splitter choices, and bandwidth high-water marks):
  ``DistributedPlanarEmbedding(graph, tracer=Tracer())`` traces a run,
  ``tracer.write_jsonl(fp)`` dumps the span tree as JSONL, and
  ``repro.analysis.load_trace`` / ``render_trace_tree`` read it back;
* the :class:`CausalRecorder` (:mod:`repro.obs.causal`): per-node
  Lamport chain clocks at the delivery hook, yielding the critical path
  — the longest happens-before chain of messages — per phase;
* the :class:`FlightRecorder` (:mod:`repro.obs.flightrec`): bounded
  per-node ring buffers of delivery/fault/ARQ events, dumped as JSONL
  when a chaos run dies;
* :func:`export_chrome_trace` (:mod:`repro.obs.export`): Perfetto-
  loadable Chrome trace-event export of span trees and causal lanes.

See docs/API.md ("Observability") for the rollup and clock semantics.
"""

from .causal import CausalRecorder, causal_override, default_causal_recorder
from .export import chrome_trace, export_chrome_trace
from .flightrec import (
    FlightRecorder,
    default_flight_recorder,
    flight_override,
    load_flight,
)
from .tracer import Span, TraceEvent, TraceFormatError, Tracer, maybe_span

__all__ = [
    "Tracer",
    "Span",
    "TraceEvent",
    "TraceFormatError",
    "maybe_span",
    "CausalRecorder",
    "causal_override",
    "default_causal_recorder",
    "FlightRecorder",
    "flight_override",
    "default_flight_recorder",
    "load_flight",
    "chrome_trace",
    "export_chrome_trace",
]
