"""The crash flight recorder: a bounded black box for chaos runs.

When a chaos execution dies — a :class:`RetransmitBudgetExceededError`
from the ARQ layer, a :class:`RoundLimitExceededError` from a stalled
flood, a :class:`DegradedResult` after the self-healing budget runs out
— the summary says *what* failed but not what the network looked like
in its last moments.  A :class:`FlightRecorder` keeps a fixed-size ring
buffer of the most recent events **per node** (sends, deliveries,
faults, ARQ retransmissions and give-ups, driver-level errors), so
every failure leaves a debuggable artifact at O(n·K) memory no matter
how long the run was.

Event sources (all opt-in, all fetched once at construction time so an
unattached recorder costs the hot path nothing):

* :class:`~repro.congest.faults.FaultState` — per-frame send/fault
  events at the delivery hook (chaos runs only; clean runs have no
  fault state and therefore no flight code at all);
* :class:`~repro.congest.reliable.ReliableProgram` — retransmissions,
  duplicate drops, and the give-up that raises
  ``RetransmitBudgetExceededError`` (recorded *before* the raise, so
  the recorder's globally-last event always matches the raised error);
* :func:`~repro.core.algorithm.self_healing_embedding` — escalation
  ladder decisions and caught errors, under the ``__driver__`` lane.

Attachment follows the process-default idiom of
:func:`~repro.congest.faults.fault_override`: install a recorder with
:func:`flight_override` and every fault state / ARQ wrapper created
inside the block records into it.

The dump is JSONL — a header line, then one line per event in global
order (a monotone sequence number orders events across nodes) — and
:func:`load_flight` reads it back with the same typed
:class:`~repro.obs.tracer.TraceFormatError` discipline as span traces.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, TextIO

from .tracer import TraceFormatError

__all__ = [
    "FlightRecorder",
    "FLIGHT_FORMAT_VERSION",
    "DRIVER_LANE",
    "SERVICE_LANE",
    "flight_override",
    "default_flight_recorder",
    "load_flight",
]

FLIGHT_FORMAT_VERSION = 1

#: Lane for events that belong to the run as a whole, not one node.
DRIVER_LANE = "__driver__"

#: Lane for serving-layer fault events (retries, timeouts, pool deaths,
#: quarantine, shed) — process-level chaos, one level above the
#: simulated network's per-node lanes.
SERVICE_LANE = "__service__"


class FlightRecorder:
    """Per-node ring buffers of the last ``capacity`` events each."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("flight-recorder capacity must be >= 1")
        self.capacity = capacity
        self._rings: dict[Any, deque] = {}
        self._seq = 0
        self.events_recorded = 0  # total ever, including evicted

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    def record(self, node: Any, kind: str, round_no: int | None = None, **detail: Any) -> None:
        """Append one event to ``node``'s ring (evicting the oldest)."""
        ring = self._rings.get(node)
        if ring is None:
            ring = self._rings[node] = deque(maxlen=self.capacity)
        self._seq += 1
        self.events_recorded += 1
        ring.append({
            "seq": self._seq,
            "node": repr(node),
            "kind": kind,
            "round": round_no,
            "detail": detail,
        })

    def note_error(self, error: BaseException, round_no: int | None = None, **detail: Any) -> None:
        """Record a caught/raised error on the driver lane."""
        self.record(
            DRIVER_LANE,
            "error",
            round_no=round_no,
            error=type(error).__name__,
            message=str(error),
            **detail,
        )

    def events(self) -> list[dict[str, Any]]:
        """All retained events in global (sequence) order."""
        merged = [ev for ring in self._rings.values() for ev in ring]
        merged.sort(key=lambda ev: ev["seq"])
        return merged

    def last(self) -> dict[str, Any] | None:
        """The most recent retained event across every node."""
        best = None
        for ring in self._rings.values():
            if ring and (best is None or ring[-1]["seq"] > best["seq"]):
                best = ring[-1]
        return best

    # -- dump / load -------------------------------------------------------

    def to_jsonl_lines(self) -> Iterator[str]:
        events = self.events()
        yield json.dumps({
            "type": "flight",
            "version": FLIGHT_FORMAT_VERSION,
            "capacity": self.capacity,
            "nodes": len(self._rings),
            "events": len(events),
            "events_recorded": self.events_recorded,
        })
        for ev in events:
            yield json.dumps(ev, default=repr)

    def write_jsonl(self, stream: TextIO) -> None:
        for line in self.to_jsonl_lines():
            stream.write(line + "\n")

    def dump(self, path: str | Path) -> Path:
        """Write the JSONL dump to ``path``; returns the path written."""
        path = Path(path)
        with path.open("w") as fp:
            self.write_jsonl(fp)
        return path


def load_flight(source: Any) -> list[dict[str, Any]]:
    """Read a flight-recorder JSONL dump back as its event list.

    ``source`` may be a path, an open file, or the document as one
    string.  Raises :class:`TraceFormatError` on malformed input or an
    unsupported format version.
    """
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        lines: list[str] = Path(source).read_text().splitlines()
    elif isinstance(source, str):
        lines = source.splitlines()
    elif hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = list(source)
    events: list[dict[str, Any]] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"flight line {lineno} is not JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceFormatError(f"flight line {lineno} is not an object")
        if record.get("type") == "flight":
            version = record.get("version")
            if version != FLIGHT_FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported flight-recorder format version {version!r}"
                    f" (this build reads {FLIGHT_FORMAT_VERSION})"
                )
            continue
        for key in ("seq", "node", "kind"):
            if key not in record:
                raise TraceFormatError(f"flight line {lineno} lacks {key!r}")
        events.append(record)
    return events


_default_recorder: FlightRecorder | None = None


def default_flight_recorder() -> FlightRecorder | None:
    """The recorder chaos components pick up (None = record nothing)."""
    return _default_recorder


@contextmanager
def flight_override(recorder: FlightRecorder | None) -> Iterator[FlightRecorder | None]:
    """Install ``recorder`` as the process-default flight recorder for
    every fault state and ARQ wrapper created inside the block."""
    global _default_recorder
    previous = _default_recorder
    _default_recorder = recorder
    try:
        yield recorder
    finally:
        _default_recorder = previous
