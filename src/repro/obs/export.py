"""Chrome trace-event export: span trees and causal lanes for Perfetto.

The JSONL trace dump (:meth:`~repro.obs.tracer.Tracer.write_jsonl`) is
the archival format; this module converts the same data into the Chrome
trace-event JSON that ``chrome://tracing`` and https://ui.perfetto.dev
load directly, so a run can be inspected on a zoomable timeline instead
of an ASCII tree.

Two process groups are emitted:

* **pid 1 — "spans"**: every :class:`~repro.obs.tracer.Span` becomes a
  complete ("X") slice on one track, nested by wall time exactly as the
  tracer recorded it (the simulator is single-threaded, so sibling
  spans never overlap); span events become instant ("i") marks carrying
  their attrs.
* **pid 2 — "causal"**: one track per node, built from a
  :class:`~repro.obs.causal.CausalRecorder`'s happens-before edge
  sample.  Time on these tracks is *round* time (1 round = 1 ms of
  synthetic timeline), each (node, round) with traffic gets a slice,
  and every sampled edge becomes a flow arrow from the sender's round
  slice to the receiver's next-round slice — the critical path is then
  literally visible as the longest arrow chain.

Everything is standard trace-event fields (``ts``/``dur`` in
microseconds, ``ph`` in {"X", "i", "s", "f", "M"}), no extensions.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .tracer import Span, Tracer

__all__ = ["chrome_trace", "export_chrome_trace"]

_SPAN_PID = 1
_CAUSAL_PID = 2
#: One CONGEST round of causal-lane time, in trace microseconds.
_ROUND_US = 1000


def _span_roots(spans: Any) -> list[Span]:
    if spans is None:
        return []
    if isinstance(spans, Tracer):
        return list(spans.roots)
    if isinstance(spans, Span):
        return [spans]
    return list(spans)


def _causal_edges(causal: Any) -> list[dict[str, Any]]:
    if causal is None:
        return []
    edges = getattr(causal, "edges", None)  # a CausalRecorder
    if edges is None and isinstance(causal, dict):  # a report(include_edges=True)
        edges = causal.get("edges")
    return list(edges or [])


def _emit_span(sp: Span, out: list[dict[str, Any]]) -> None:
    ts = sp.start_s * 1e6
    out.append({
        "name": sp.name,
        "cat": sp.kind,
        "ph": "X",
        "ts": ts,
        "dur": max(0.0, sp.wall_s * 1e6),
        "pid": _SPAN_PID,
        "tid": 1,
        "args": {
            "rounds": sp.total_rounds(),
            "words": sp.total_words(),
            "parallel": sp.parallel,
            **{k: repr(v) if not isinstance(v, (int, float, str, bool, type(None))) else v
               for k, v in sp.attrs.items()},
        },
    })
    for ev in sp.events:
        out.append({
            "name": ev.name,
            "cat": "event",
            "ph": "i",
            "s": "t",
            "ts": ev.wall_s * 1e6,
            "pid": _SPAN_PID,
            "tid": 1,
            "args": {
                k: v if isinstance(v, (int, float, str, bool, type(None))) else repr(v)
                for k, v in ev.attrs.items()
            },
        })
    for child in sp.children:
        _emit_span(child, out)


def _emit_causal(edges: list[dict[str, Any]], out: list[dict[str, Any]]) -> None:
    lanes: dict[str, int] = {}

    def lane(node: str) -> int:
        tid = lanes.get(node)
        if tid is None:
            tid = lanes[node] = len(lanes) + 1
        return tid

    # Round slices first: flow arrows need enclosing slices to bind to.
    # Executions are laid out sequentially on the synthetic timeline so
    # their rounds never collide.
    exec_offset: dict[int, int] = {}
    next_offset = 0
    for e in edges:
        ex = e.get("execution", 0)
        if ex not in exec_offset:
            exec_offset[ex] = next_offset
        hi = exec_offset[ex] + (e.get("round", 0) + 1) * _ROUND_US
        if hi + _ROUND_US > next_offset:
            next_offset = hi + _ROUND_US
    slices: set[tuple[str, float]] = set()
    for e in edges:
        base = exec_offset.get(e.get("execution", 0), 0)
        send_ts = base + e.get("round", 0) * _ROUND_US
        recv_ts = send_ts + _ROUND_US
        slices.add((e["sender"], send_ts))
        slices.add((e["receiver"], recv_ts))
    for node, ts in sorted(slices):
        out.append({
            "name": f"r{int(ts // _ROUND_US)}",
            "cat": "round",
            "ph": "X",
            "ts": ts,
            "dur": _ROUND_US * 0.9,
            "pid": _CAUSAL_PID,
            "tid": lane(node),
            "args": {},
        })
    for i, e in enumerate(edges, 1):
        base = exec_offset.get(e.get("execution", 0), 0)
        send_ts = base + e.get("round", 0) * _ROUND_US
        common = {"cat": "happens-before", "name": "msg", "id": i, "pid": _CAUSAL_PID}
        out.append({
            **common,
            "ph": "s",
            "ts": send_ts + _ROUND_US * 0.4,
            "tid": lane(e["sender"]),
            "args": {"stamp": e.get("stamp"), "phase": e.get("phase")},
        })
        out.append({
            **common,
            "ph": "f",
            "bp": "e",
            "ts": send_ts + _ROUND_US * 1.4,
            "tid": lane(e["receiver"]),
            "args": {},
        })
    for node, tid in lanes.items():
        out.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _CAUSAL_PID,
            "tid": tid,
            "args": {"name": node},
        })


def chrome_trace(spans: Any = None, causal: Any = None) -> dict[str, Any]:
    """Build the Chrome trace-event document as a dict.

    ``spans`` is a :class:`Tracer`, a :class:`Span` root, or a list of
    roots; ``causal`` is a :class:`~repro.obs.causal.CausalRecorder` or
    a causal report produced with ``include_edges=True``.  Either may be
    ``None``.
    """
    events: list[dict[str, Any]] = []
    roots = _span_roots(spans)
    if roots:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": _SPAN_PID,
            "tid": 0,
            "args": {"name": "spans"},
        })
        for root in roots:
            _emit_span(root, events)
    edges = _causal_edges(causal)
    if edges:
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": _CAUSAL_PID,
            "tid": 0,
            "args": {"name": "causal"},
        })
        _emit_causal(edges, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(sink: Any, spans: Any = None, causal: Any = None) -> None:
    """Write :func:`chrome_trace` output as JSON to a path or stream."""
    doc = chrome_trace(spans=spans, causal=causal)
    if isinstance(sink, (str, Path)):
        with Path(sink).open("w") as fp:
            json.dump(doc, fp)
    else:
        json.dump(doc, sink)
