"""Hierarchical execution tracing for the embedding pipeline.

A :class:`Tracer` records one tree of :class:`Span` objects per run —
a span per recursive call, per CONGEST phase, per merge — plus
structured :class:`TraceEvent` items inside spans (charges, splitter
choices, bandwidth high-water marks).  Spans carry wall-clock time
alongside CONGEST model rounds, so one trace answers both "where did
the rounds go" and "where did the seconds go".

Round accounting is *push-based*: the tracer implements the
:class:`~repro.congest.metrics.RoundMetrics` observer protocol
(``on_round`` / ``on_charge``), so every real round and every charged
cost lands on whatever span is currently open.  The rollup semantics
mirror the ledger's composition rules exactly:

* sequential children **sum**;
* children flagged ``parallel`` (sibling recursive calls on disjoint
  parts) combine as a **max**;

hence ``root.total_rounds() == RoundMetrics.rounds`` for a traced run
(tested in ``tests/obs``).

Attaching a tracer costs two attribute checks per span site; with no
tracer attached the per-round hot path of
:class:`~repro.congest.network.CongestNetwork` executes no tracer code
at all (the observer slot is ``None`` and never consulted again after
``run()`` reads it once).
"""

from __future__ import annotations

import itertools
import json
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterator, TextIO

__all__ = ["TraceEvent", "Span", "Tracer", "TraceFormatError", "maybe_span"]

TRACE_FORMAT_VERSION = 1


class TraceFormatError(ValueError):
    """A serialized trace is malformed or from an unsupported format version.

    Raised by ``TraceEvent.from_dict`` / ``Span.from_dict`` and by
    :func:`repro.analysis.load_trace` instead of silently defaulting
    fields or propagating bad data into the renderers.  Subclasses
    ``ValueError`` so pre-existing ``except ValueError`` handlers (the
    CLI's ``--view-trace``) keep working.
    """


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise TraceFormatError(what)


def _check_number(value: Any, what: str) -> float:
    # bool is an int subclass; a boolean wall_s/rounds is malformed data.
    _require(isinstance(value, (int, float)) and not isinstance(value, bool), what)
    return value


@dataclass
class TraceEvent:
    """One structured point event inside a span."""

    name: str
    wall_s: float  # offset from the tracer's start, in seconds
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "wall_s": round(self.wall_s, 6), "attrs": self.attrs}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TraceEvent":
        _require(isinstance(d, dict), f"trace event is not an object: {d!r}")
        name = d.get("name")
        _require(isinstance(name, str) and bool(name), f"trace event has no name: {d!r}")
        wall_s = d.get("wall_s", 0.0)
        _check_number(wall_s, f"trace event {name!r}: wall_s must be a number, got {wall_s!r}")
        attrs = d.get("attrs", {})
        _require(
            isinstance(attrs, dict),
            f"trace event {name!r}: attrs must be an object, got {type(attrs).__name__}",
        )
        return cls(name=name, wall_s=float(wall_s), attrs=attrs)


@dataclass
class Span:
    """One timed, round-accounted section of a run."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str = "span"  # "run" | "phase" | "call" | "merge" | "span"
    parallel: bool = False  # combines with parallel siblings as a max
    attrs: dict[str, Any] = field(default_factory=dict)
    start_s: float = 0.0
    end_s: float | None = None
    rounds: int = 0  # rounds accounted directly on this span
    messages: int = 0
    words: int = 0
    max_edge_words: int = 0
    activations: int = 0  # scheduler node activations (from real charges)
    activations_saved: int = 0  # activations skipped vs the dense loop
    events: list[TraceEvent] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) - self.start_s

    # -- rollups (mirror RoundMetrics composition) -------------------------

    def total_rounds(self) -> int:
        """Rounds of this span and its subtree: sequential children sum,
        parallel children (disjoint-part recursions) contribute their max."""
        par = [c.total_rounds() for c in self.children if c.parallel]
        seq = sum(c.total_rounds() for c in self.children if not c.parallel)
        return self.rounds + seq + (max(par) if par else 0)

    def total_words(self) -> int:
        """Traffic always sums, parallel or not."""
        return self.words + sum(c.total_words() for c in self.children)

    def total_messages(self) -> int:
        return self.messages + sum(c.total_messages() for c in self.children)

    def total_activations(self) -> int:
        """Scheduler activations, like traffic: they always sum."""
        return self.activations + sum(c.total_activations() for c in self.children)

    def total_activations_saved(self) -> int:
        return self.activations_saved + sum(
            c.total_activations_saved() for c in self.children
        )

    def walk(self) -> Iterator["Span"]:
        yield self
        for c in self.children:
            yield from c.walk()

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "parallel": self.parallel,
            "attrs": self.attrs,
            "start_s": round(self.start_s, 6),
            "end_s": round(self.end_s, 6) if self.end_s is not None else None,
            "rounds": self.rounds,
            "messages": self.messages,
            "words": self.words,
            "max_edge_words": self.max_edge_words,
            "activations": self.activations,
            "activations_saved": self.activations_saved,
            "events": [e.to_dict() for e in self.events],
        }

    def to_tree_dict(self) -> dict[str, Any]:
        """Like :meth:`to_dict` but with the children nested in place —
        the wire format a shard worker ships its span subtree in (the
        flat JSONL form needs stable global span IDs, which a worker
        cannot mint)."""
        d = self.to_dict()
        d["children"] = [c.to_tree_dict() for c in self.children]
        return d

    @classmethod
    def from_tree_dict(cls, d: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_tree_dict`."""
        children = d.get("children", [])
        _require(
            isinstance(children, list),
            f"trace span tree: children must be a list, got {type(children).__name__}",
        )
        sp = cls.from_dict(d)
        sp.children = [cls.from_tree_dict(c) for c in children]
        return sp

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Span":
        _require(isinstance(d, dict), f"trace span is not an object: {d!r}")
        span_id = d.get("span_id")
        _require(
            isinstance(span_id, int) and not isinstance(span_id, bool),
            f"trace span has no integer span_id: {d!r}",
        )
        name = d.get("name")
        _require(isinstance(name, str) and bool(name), f"trace span {span_id} has no name")
        events = d.get("events", [])
        _require(
            isinstance(events, list),
            f"trace span {name!r}: events must be a list, got {type(events).__name__}",
        )
        for key in ("rounds", "messages", "words", "max_edge_words",
                    "activations", "activations_saved"):
            _check_number(
                d.get(key, 0), f"trace span {name!r}: {key} must be a number"
            )
        return cls(
            span_id=span_id,
            parent_id=d.get("parent_id"),
            name=name,
            kind=d.get("kind", "span"),
            parallel=d.get("parallel", False),
            attrs=d.get("attrs", {}),
            start_s=d.get("start_s", 0.0),
            end_s=d.get("end_s"),
            rounds=d.get("rounds", 0),
            messages=d.get("messages", 0),
            words=d.get("words", 0),
            max_edge_words=d.get("max_edge_words", 0),
            activations=d.get("activations", 0),
            activations_saved=d.get("activations_saved", 0),
            events=[TraceEvent.from_dict(e) for e in events],
        )


class Tracer:
    """Collects spans and events for one (or several) runs.

    Doubles as a :class:`RoundMetrics` observer: attach it with
    ``metrics.observer = tracer`` (done automatically by
    ``DistributedPlanarEmbedding(..., tracer=...)``) and every real
    round / charged cost is attributed to the currently open span.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        self._ids = itertools.count(1)
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # -- span lifecycle ----------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._t0

    @contextmanager
    def span(
        self, name: str, kind: str = "span", parallel: bool = False, **attrs: Any
    ) -> Iterator[Span]:
        sp = Span(
            span_id=next(self._ids),
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            parallel=parallel,
            attrs=dict(attrs),
            start_s=self._now(),
        )
        (self._stack[-1].children if self._stack else self.roots).append(sp)
        self._stack.append(sp)
        try:
            yield sp
        finally:
            sp.end_s = self._now()
            self._stack.pop()

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Span | None:
        return self.roots[0] if self.roots else None

    def event(self, name: str, **attrs: Any) -> TraceEvent | None:
        """Record a structured event on the current span (dropped if none)."""
        if not self._stack:
            return None
        ev = TraceEvent(name, self._now(), attrs)
        self._stack[-1].events.append(ev)
        return ev

    # -- RoundMetrics observer protocol ------------------------------------

    def on_round(self, round_no: int, messages: int, words: int, max_edge_words: int) -> None:
        """One real CONGEST round was consumed by the current span."""
        if not self._stack:
            return
        sp = self._stack[-1]
        sp.rounds += 1
        sp.messages += messages
        sp.words += words
        if max_edge_words > sp.max_edge_words:
            sp.max_edge_words = max_edge_words
            sp.events.append(
                TraceEvent(
                    "bandwidth-high-water",
                    self._now(),
                    {"round": round_no, "edge_words": max_edge_words},
                )
            )

    def on_charge(self, charge) -> None:
        """A cost item was appended to the ledger under the current span.

        Real-execution charges (``charge.kind == "real"``) were already
        accounted round-by-round via :meth:`on_round`; only their phase
        attribution is recorded as an event.  Cost-model charges add
        their rounds and traffic to the span.  Scheduler activation
        counts ride only on real charges (rounds never flow through
        :meth:`on_round` for them), so they are added unconditionally.
        """
        if not self._stack:
            return
        sp = self._stack[-1]
        if charge.kind != "real":
            sp.rounds += charge.rounds
            sp.messages += charge.messages
            sp.words += charge.words
        activations = getattr(charge, "activations", 0)
        saved = getattr(charge, "activations_saved", 0)
        sp.activations += activations
        sp.activations_saved += saved
        sp.events.append(
            TraceEvent(
                "charge",
                self._now(),
                {
                    "phase": charge.phase,
                    "kind": charge.kind,
                    "rounds": charge.rounds,
                    "messages": charge.messages,
                    "words": charge.words,
                    "activations": activations,
                    "activations_saved": saved,
                    "detail": charge.detail,
                },
            )
        )

    def on_fault(self, kind: str, round_no: int, *detail: Any) -> None:
        """The fault layer injected (or detected) a fault under the
        current span — see :mod:`repro.congest.faults`.

        Each fault becomes a structured ``fault`` event and bumps the
        span's ``faults`` counter, so chaos runs show *where* in the
        pipeline the schedule actually hit.
        """
        if not self._stack:
            return
        sp = self._stack[-1]
        sp.attrs["faults"] = sp.attrs.get("faults", 0) + 1
        sp.events.append(
            TraceEvent(
                "fault",
                self._now(),
                {
                    "fault": kind,
                    "round": round_no,
                    "detail": ", ".join(repr(d) for d in detail),
                },
            )
        )

    # -- cross-process span reparenting ------------------------------------

    def graft(self, tree: dict[str, Any]) -> Span:
        """Adopt a span subtree recorded by another process.

        ``tree`` is a :meth:`Span.to_tree_dict` payload from a shard
        worker's private tracer.  The subtree is attached under the
        currently open span (or as a root), its span IDs are re-minted
        from this tracer's allocator in DFS preorder — exactly the IDs
        the spans would have received had they been recorded here — and
        its wall-clock offsets are shifted so the subtree nests inside
        the open span's timeline.  Structure, attrs, events, and round
        accounting are adopted verbatim; wall times reflect *this*
        process's graft point (structural trace comparison ignores
        wall clocks — see :mod:`repro.analysis.tracediff`).
        """
        sp = Span.from_tree_dict(tree)
        offset = self._now() - sp.start_s
        parent_id = self._stack[-1].span_id if self._stack else None

        def adopt(span: Span, parent: int | None) -> None:
            span.span_id = next(self._ids)
            span.parent_id = parent
            span.start_s += offset
            if span.end_s is not None:
                span.end_s += offset
            for ev in span.events:
                ev.wall_s += offset
            for child in span.children:
                adopt(child, span.span_id)

        adopt(sp, parent_id)
        (self._stack[-1].children if self._stack else self.roots).append(sp)
        return sp

    # -- export ------------------------------------------------------------

    def spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def to_jsonl_lines(self) -> Iterator[str]:
        """The trace as JSONL: a header line, then one line per span."""
        yield json.dumps(
            {"type": "trace", "version": TRACE_FORMAT_VERSION, "spans": sum(1 for _ in self.spans())}
        )
        for sp in self.spans():
            yield json.dumps(sp.to_dict(), default=repr)

    def write_jsonl(self, stream: TextIO) -> None:
        for line in self.to_jsonl_lines():
            stream.write(line + "\n")


def maybe_span(tracer: Tracer | None, name: str, **kwargs: Any):
    """``tracer.span(...)`` when tracing, a no-op context otherwise.

    Lets instrumented code read as one line without paying for span
    objects on untraced runs.
    """
    if tracer is None:
        return nullcontext(None)
    return tracer.span(name, **kwargs)
