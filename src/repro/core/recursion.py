"""The recursive embedding order (paper Section 4).

Each recursive call owns a BFS subtree ``T_s`` and embeds the subgraph
``H`` induced by it, with its half-embedded edges toward ``G \\ H``:

1. run the real distributed subtree-size convergecast and splitter token
   walk (O(depth) rounds) to find the 2/3-balanced vertex ``v``;
2. ``P0`` = the tree path ``s -> v`` (an induced path, hence a trivial
   part — Lemma 4.1); the hanging parts are the subtrees ``T_w`` for
   ``w`` tree-adjacent to ``P0``;
3. recurse on all hanging parts *in parallel* (they are vertex-disjoint,
   so their executions genuinely interleave; rounds combine as a max);
4. merge everything with the unrestricted path-coordinated merge.

Lemma 4.2/4.3 quantities (part sizes <= 2|T_s|/3, part depth
<= depth(T_s) - 1, recursion depth <= min(O(log n), D)) are recorded per
call in :class:`CallRecord` for experiments E4/E5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..congest.metrics import RoundMetrics
from ..obs import Tracer, maybe_span
from ..planar.graph import Graph, NodeId
from ..primitives.bfs import BfsTree
from ..primitives.splitter import find_splitter
from ..primitives.subtree import compute_subtree_stats
from .parts import PartEmbedding, fresh_part
from .unrestricted import UnrestrictedMergeStats, unrestricted_path_merge

__all__ = ["CallRecord", "RecursionContext", "embed_subtree"]


@dataclass
class CallRecord:
    """Audit record of one recursive call (experiments E4, E5, E8)."""

    level: int
    root: NodeId
    subtree_size: int
    subtree_depth: int
    p0_length: int
    splitter: NodeId
    part_sizes: list[int]
    merge_stats: UnrestrictedMergeStats | None = None


@dataclass
class RecursionContext:
    """Shared inputs of the recursion: the network, its BFS tree, knobs."""

    graph: Graph
    tree: BfsTree
    bandwidth: int = 1
    trace: list[CallRecord] = field(default_factory=list)
    current: Graph | None = None  # graph as modified by accepted split-offs
    split_tests: int = 0
    split_rejections: int = 0
    splitter_strategy: str = "balanced"  # "balanced" (paper) | "root" (E12 ablation)
    tracer: Tracer | None = None  # span/event sink; None = zero instrumentation

    def __post_init__(self) -> None:
        if self.current is None:
            self.current = self.graph.copy()

    def max_level(self) -> int:
        return max((r.level for r in self.trace), default=0)

    def try_split(self, copy: NodeId, coordinator: NodeId, rerouted: list[NodeId]) -> bool:
        """Validate a step-2(e) split-off against the evolving network.

        A split reroutes a part's edge bundle at ``coordinator`` through
        the fresh ``copy``.  A single-edge bundle is an edge subdivision
        and always planarity-safe; a larger bundle is safe only when some
        planar embedding keeps the bundle consecutive around the
        coordinator, which we decide by oracle-testing the modified
        graph (the paper's full version guarantees this by construction;
        see DESIGN.md §3).  On success the modification is kept so later
        splits are tested against the up-to-date network.
        """
        from ..planar.lr_planarity import lr_planarity

        g = self.current
        for u in rerouted:
            g.remove_edge(u, coordinator)
            g.add_edge(u, copy)
        g.add_edge(copy, coordinator)
        if len(rerouted) == 1:
            return True
        self.split_tests += 1
        if lr_planarity(g) is not None:
            return True
        g.remove_edge(copy, coordinator)
        for u in rerouted:
            g.remove_edge(u, copy)
            g.add_edge(u, coordinator)
        g.remove_node(copy)
        self.split_rejections += 1
        return False


def _external_boundary(ctx: RecursionContext, vertices: set[NodeId]) -> list:
    boundary = []
    for u in sorted(vertices, key=repr):
        for x in ctx.graph.neighbors(u):
            if x not in vertices:
                boundary.append((u, x))
    return boundary


def embed_subtree(
    ctx: RecursionContext, s: NodeId, level: int = 0
) -> tuple[PartEmbedding, RoundMetrics]:
    """Embed the subgraph induced by the BFS subtree rooted at ``s``.

    Returns the part (its embedding has every half-embedded edge toward
    the outside on one face) and the round metrics of this call,
    including its parallel children.

    When ``ctx.tracer`` is set, the call is wrapped in a ``call`` span
    (``parallel=True``: sibling calls embed vertex-disjoint parts, so
    their round totals combine as a max) containing a ``partition``
    phase span, the child call spans, and a ``merge`` span; the local
    ledger's observer is pointed at the tracer so real rounds and
    charges attribute themselves to whichever span is open.
    """
    tracer = ctx.tracer
    metrics = RoundMetrics()
    if tracer is not None:
        metrics.observer = tracer
    vertices = ctx.tree.subtree_nodes(s)
    if len(vertices) == 1:
        part = fresh_part(
            Graph(nodes=[s]), _external_boundary(ctx, vertices), depth=0
        )
        ctx.trace.append(
            CallRecord(level, s, 1, 0, 0, s, part_sizes=[])
        )
        if tracer is not None:
            with tracer.span(
                "call", kind="call", parallel=True, root=s, level=level, size=1
            ):
                pass
        return part, metrics

    with maybe_span(
        tracer, "call", kind="call", parallel=True,
        root=s, level=level, size=len(vertices),
    ) as call_span:
        # --- partition phase: real distributed subtree stats + token walk. --
        tree_graph = Graph(nodes=sorted(vertices, key=repr))
        parent: dict[NodeId, NodeId | None] = {}
        children: dict[NodeId, list[NodeId]] = {}
        for v in tree_graph.nodes():
            parent[v] = ctx.tree.parent[v] if v != s else None
            children[v] = list(ctx.tree.children[v])
            if parent[v] is not None:
                tree_graph.add_edge(v, parent[v])
        with maybe_span(tracer, "partition", kind="phase"):
            stats = compute_subtree_stats(tree_graph, parent, children, metrics=metrics)
            if ctx.splitter_strategy == "balanced":
                splitter = find_splitter(
                    tree_graph, s, parent, children, metrics=metrics, stats=stats
                )
            elif ctx.splitter_strategy == "root":
                # E12 ablation: no balancing — P0 degenerates to the root alone,
                # so hanging parts can keep ~all the vertices and the recursion
                # depth grows with the tree depth instead of log n.
                splitter = s
            else:
                raise ValueError(f"unknown splitter strategy {ctx.splitter_strategy!r}")
            if tracer is not None:
                tracer.event(
                    "splitter",
                    root=s,
                    splitter=splitter,
                    strategy=ctx.splitter_strategy,
                    subtree_size=len(vertices),
                )
        p0_order = ctx.tree.path_to_descendant(s, splitter)
        p0_set = set(p0_order)
        hanging_roots = sorted(
            {c for v in p0_order for c in children[v] if c not in p0_set}, key=repr
        )

        # --- parallel recursion on the hanging subtrees. ---------------------
        parts: list[PartEmbedding] = []
        branch_metrics: list[RoundMetrics] = []
        for w in hanging_roots:
            part, branch = embed_subtree(ctx, w, level + 1)
            parts.append(part)
            branch_metrics.append(branch)
        metrics.absorb_parallel(branch_metrics, phase="recursion")

        # --- merge: P0 plus the hanging parts. --------------------------------
        p0_graph = Graph(nodes=p0_order)
        for a, b in zip(p0_order, p0_order[1:]):
            p0_graph.add_edge(a, b)
        p0_part = fresh_part(
            p0_graph, _external_boundary(ctx, p0_set), depth=max(len(p0_order) - 1, 0)
        )
        with maybe_span(
            tracer, "merge", kind="merge",
            p0_length=len(p0_order), hanging_parts=len(parts),
        ) as merge_span:
            merged, merge_stats = unrestricted_path_merge(
                p0_part,
                p0_order,
                parts,
                metrics,
                bandwidth=ctx.bandwidth,
                split_validator=ctx.try_split,
            )
            if merge_span is not None:
                merge_span.attrs["final_instance_parts"] = merge_stats.final_instance_parts
                merge_span.attrs["merge_fallbacks"] = merge_stats.merge_fallbacks
        if call_span is not None:
            call_span.attrs["splitter"] = splitter
            call_span.attrs["p0_length"] = len(p0_order)
            call_span.attrs["hanging_parts"] = len(hanging_roots)

    ctx.trace.append(
        CallRecord(
            level=level,
            root=s,
            subtree_size=len(vertices),
            subtree_depth=ctx.tree.subtree_depth(s),
            p0_length=len(p0_order),
            splitter=splitter,
            part_sizes=sorted((stats.size[w] for w in hanging_roots), reverse=True),
            merge_stats=merge_stats,
        )
    )
    return merged, metrics
