"""The recursive embedding order (paper Section 4).

Each recursive call owns a BFS subtree ``T_s`` and embeds the subgraph
``H`` induced by it, with its half-embedded edges toward ``G \\ H``:

1. run the real distributed subtree-size convergecast and splitter token
   walk (O(depth) rounds) to find the 2/3-balanced vertex ``v``;
2. ``P0`` = the tree path ``s -> v`` (an induced path, hence a trivial
   part — Lemma 4.1); the hanging parts are the subtrees ``T_w`` for
   ``w`` tree-adjacent to ``P0``;
3. recurse on all hanging parts *in parallel* (they are vertex-disjoint,
   so their executions genuinely interleave; rounds combine as a max);
4. merge everything with the unrestricted path-coordinated merge.

Lemma 4.2/4.3 quantities (part sizes <= 2|T_s|/3, part depth
<= depth(T_s) - 1, recursion depth <= min(O(log n), D)) are recorded per
call in :class:`CallRecord` for experiments E4/E5.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..congest.metrics import RoundMetrics
from ..obs import Tracer, maybe_span
from ..planar.graph import Graph, NodeId
from ..planar.scoped import ScopedPlanarityOracle
from ..primitives.bfs import BfsTree
from ..primitives.splitter import find_splitter
from ..primitives.subtree import compute_subtree_stats
from .index import RecursionIndex
from .parts import PartEmbedding, fresh_part
from .unrestricted import UnrestrictedMergeStats, unrestricted_path_merge

__all__ = ["CallRecord", "RecursionContext", "embed_subtree", "reference_paths_enabled"]


def reference_paths_enabled() -> bool:
    """True when ``REPRO_REFERENCE_PATHS`` selects the unoptimized paths.

    The escape hatch disables the shared :class:`RecursionIndex` and the
    scoped split-validation oracle, reverting to per-call subtree walks
    and full-graph planarity tests.  The differential suite runs the
    pipeline both ways and asserts bit-identical ledgers and rotations.
    """
    return os.environ.get("REPRO_REFERENCE_PATHS", "") not in ("", "0")


@dataclass
class CallRecord:
    """Audit record of one recursive call (experiments E4, E5, E8)."""

    level: int
    root: NodeId
    subtree_size: int
    subtree_depth: int
    p0_length: int
    splitter: NodeId
    part_sizes: list[int]
    merge_stats: UnrestrictedMergeStats | None = None


@dataclass
class RecursionContext:
    """Shared inputs of the recursion: the network, its BFS tree, knobs."""

    graph: Graph
    tree: BfsTree
    bandwidth: int = 1
    trace: list[CallRecord] = field(default_factory=list)
    current: Graph | None = None  # graph as modified by accepted split-offs
    split_tests: int = 0
    split_rejections: int = 0
    splitter_strategy: str = "balanced"  # "balanced" (paper) | "root" (E12 ablation)
    tracer: Tracer | None = None  # span/event sink; None = zero instrumentation
    reference_paths: bool | None = None  # None -> from REPRO_REFERENCE_PATHS
    index: RecursionIndex | None = None  # shared subtree stats (optimized path)
    oracle: ScopedPlanarityOracle | None = None  # scoped split validation
    shard: "object | None" = None  # ShardRuntime when multi-process dispatch is on
    split_log: list | None = None  # worker-side journal of try_split calls
    mutation_epoch: int = 0  # bumped per accepted split; keys snapshot caches

    def __post_init__(self) -> None:
        if self.current is None:
            self.current = self.graph.copy()
        if self.reference_paths is None:
            self.reference_paths = reference_paths_enabled()
        if not self.reference_paths:
            if self.index is None:
                self.index = RecursionIndex.build(self.tree)
            if self.oracle is None:
                self.oracle = ScopedPlanarityOracle(self.current)

    def max_level(self) -> int:
        return max((r.level for r in self.trace), default=0)

    def split_oracle_stats(self) -> dict[str, int] | None:
        """Scoped-oracle counters, or ``None`` on the reference path."""
        return self.oracle.stats() if self.oracle is not None else None

    def try_split(self, copy: NodeId, coordinator: NodeId, rerouted: list[NodeId]) -> bool:
        """Validate a step-2(e) split-off against the evolving network.

        A split reroutes a part's edge bundle at ``coordinator`` through
        the fresh ``copy``.  A single-edge bundle is an edge subdivision
        and always planarity-safe; a larger bundle is safe only when some
        planar embedding keeps the bundle consecutive around the
        coordinator, which we decide by oracle-testing the modified
        graph (the paper's full version guarantees this by construction;
        see DESIGN.md §3).  The oracle is scoped to the biconnected
        components containing the copy whenever the evolving graph is
        already known planar (:class:`ScopedPlanarityOracle`); with
        ``REPRO_REFERENCE_PATHS=1`` every test runs on the full graph.

        On success the modification is kept so later splits are tested
        against the up-to-date network.  On rejection the graph is
        restored *exactly* — including adjacency insertion order, which
        downstream iteration depends on for determinism — from dict
        snapshots of the touched vertices.

        In a shard worker every call is journaled to ``split_log``
        (mutation + verdict); the parent replays the journal against its
        authoritative graph and falls back to an inline recompute on any
        verdict divergence (see :mod:`repro.shard.dispatch`).
        """
        g = self.current
        adj = g._adj
        # Snapshot every adjacency dict this split mutates, so rejection
        # can restore iteration order exactly (re-adding edges would move
        # them to the back of the neighbor dicts).
        snapshot = {u: dict(adj[u]) for u in rerouted}
        snapshot[coordinator] = dict(adj[coordinator])
        for u in rerouted:
            g.remove_edge(u, coordinator)
            g.add_edge(u, copy)
        g.add_edge(copy, coordinator)
        if len(rerouted) == 1:
            # Edge subdivision: planarity-invariant, always kept.
            self.mutation_epoch += 1
            if self.split_log is not None:
                self.split_log.append((copy, coordinator, tuple(rerouted), True))
            return True
        self.split_tests += 1
        if self.oracle is not None:
            ok = self.oracle.check_rerouted(copy)
        else:
            from ..planar.lr_planarity import lr_planarity

            ok = lr_planarity(g) is not None
        if ok:
            self.mutation_epoch += 1
            if self.split_log is not None:
                self.split_log.append((copy, coordinator, tuple(rerouted), True))
            return True
        del adj[copy]
        for u, neighbors in snapshot.items():
            adj[u] = neighbors
        self.split_rejections += 1
        if self.split_log is not None:
            # Rejected tests still advance counters and oracle memo
            # state, so the parent must replay them too.
            self.split_log.append((copy, coordinator, tuple(rerouted), False))
        return False


def _external_boundary(
    ctx: RecursionContext, members: set[NodeId], ordered: list[NodeId]
) -> list:
    """Half-embedded edges from ``members`` (iterated in canonical order)
    toward the rest of the network."""
    boundary = []
    graph_adj = ctx.graph._adj
    for u in ordered:
        for x in graph_adj[u]:
            if x not in members:
                boundary.append((u, x))
    return boundary


def embed_subtree(
    ctx: RecursionContext, s: NodeId, level: int = 0, path: tuple = ()
) -> tuple[PartEmbedding, RoundMetrics]:
    """Embed the subgraph induced by the BFS subtree rooted at ``s``.

    Returns the part (its embedding has every half-embedded edge toward
    the outside on one face) and the round metrics of this call,
    including its parallel children.

    ``path`` is the call's position in the recursion tree (the j-th
    hanging child of a call at ``p`` runs at ``p + (j,)``) and doubles
    as the part ID of everything this call creates: the leaf/P0 parts
    take ``path`` itself and child parts take ``path + (j,)``, so the
    merged representative (the minimum ID) is again ``path``.  Position
    is computable in any process, which is what lets shard workers mint
    bit-identical IDs without a shared allocator.

    When ``ctx.tracer`` is set, the call is wrapped in a ``call`` span
    (``parallel=True``: sibling calls embed vertex-disjoint parts, so
    their round totals combine as a max) containing a ``partition``
    phase span, the child call spans, and a ``merge`` span; the local
    ledger's observer is pointed at the tracer so real rounds and
    charges attribute themselves to whichever span is open.

    When ``ctx.shard`` is set (a :class:`repro.shard.dispatch.ShardRuntime`),
    large hanging subtrees are embedded in worker processes while this
    process handles the small ones inline; results are consumed in the
    canonical ``hanging_roots`` order, so every ledger, rotation, and
    trace structure is bit-identical to the sequential path.
    """
    tracer = ctx.tracer
    metrics = RoundMetrics()
    if tracer is not None:
        metrics.observer = tracer
    index = ctx.index
    if index is not None:
        size = index.subtree_size(s)
    else:
        vertices = ctx.tree.subtree_nodes(s)
        size = len(vertices)
    if size == 1:
        part = fresh_part(
            Graph(nodes=[s]), _external_boundary(ctx, {s}, [s]), depth=0,
            part_id=path,
        )
        ctx.trace.append(
            CallRecord(level, s, 1, 0, 0, s, part_sizes=[])
        )
        if tracer is not None:
            with tracer.span(
                "call", kind="call", parallel=True, root=s, level=level, size=1
            ):
                pass
        return part, metrics

    with maybe_span(
        tracer, "call", kind="call", parallel=True,
        root=s, level=level, size=size,
    ) as call_span:
        # --- partition phase: real distributed subtree stats + token walk. --
        if index is not None:
            ordered = index.sort(index.subtree_span(s))
            members = set(ordered)
        else:
            ordered = sorted(vertices, key=repr)
            members = vertices
        tree_graph = Graph(nodes=ordered)
        tree_parent = ctx.tree.parent
        tree_children = ctx.tree.children
        parent: dict[NodeId, NodeId | None] = {}
        children: dict[NodeId, list[NodeId]] = {}
        if index is not None:
            # The convergecast/walk programs copy or only read child
            # lists, so the shared index path threads them by reference.
            for v in ordered:
                p = tree_parent[v] if v != s else None
                parent[v] = p
                children[v] = tree_children[v]
                if p is not None:
                    tree_graph.add_edge(v, p)
        else:
            for v in ordered:
                p = tree_parent[v] if v != s else None
                parent[v] = p
                children[v] = list(tree_children[v])
                if p is not None:
                    tree_graph.add_edge(v, p)
        with maybe_span(tracer, "partition", kind="phase"):
            stats = compute_subtree_stats(tree_graph, parent, children, metrics=metrics)
            if ctx.splitter_strategy == "balanced":
                splitter = find_splitter(
                    tree_graph, s, parent, children, metrics=metrics, stats=stats
                )
            elif ctx.splitter_strategy == "root":
                # E12 ablation: no balancing — P0 degenerates to the root alone,
                # so hanging parts can keep ~all the vertices and the recursion
                # depth grows with the tree depth instead of log n.
                splitter = s
            else:
                raise ValueError(f"unknown splitter strategy {ctx.splitter_strategy!r}")
            if tracer is not None:
                tracer.event(
                    "splitter",
                    root=s,
                    splitter=splitter,
                    strategy=ctx.splitter_strategy,
                    subtree_size=size,
                )
        p0_order = ctx.tree.path_to_descendant(s, splitter)
        p0_set = set(p0_order)
        hanging = {c for v in p0_order for c in children[v] if c not in p0_set}
        hanging_roots = (
            index.sort(hanging) if index is not None else sorted(hanging, key=repr)
        )

        # --- parallel recursion on the hanging subtrees. ---------------------
        # With a shard runtime, large subtrees are shipped to worker
        # processes up front and the loop below *consumes* strictly in
        # canonical order (shipped results overlap with the inline
        # work); without one, the loop is the plain sequential path.
        plan = (
            ctx.shard.plan_children(ctx, hanging_roots, level + 1, path)
            if ctx.shard is not None
            else None
        )
        parts: list[PartEmbedding] = []
        branch_metrics: list[RoundMetrics] = []
        for j, w in enumerate(hanging_roots):
            child_path = path + (j,)
            ticket = plan.get(w) if plan is not None else None
            if ticket is not None:
                part, branch = ctx.shard.consume(
                    ctx, ticket, w, level + 1, child_path
                )
            else:
                part, branch = embed_subtree(ctx, w, level + 1, child_path)
            parts.append(part)
            branch_metrics.append(branch)
        metrics.absorb_parallel(branch_metrics, phase="recursion")

        # --- merge: P0 plus the hanging parts. --------------------------------
        p0_graph = Graph(nodes=p0_order)
        for a, b in zip(p0_order, p0_order[1:]):
            p0_graph.add_edge(a, b)
        p0_sorted = (
            index.sort(p0_set) if index is not None else sorted(p0_set, key=repr)
        )
        p0_part = fresh_part(
            p0_graph,
            _external_boundary(ctx, p0_set, p0_sorted),
            depth=max(len(p0_order) - 1, 0),
            part_id=path,
        )
        with maybe_span(
            tracer, "merge", kind="merge",
            p0_length=len(p0_order), hanging_parts=len(parts),
        ) as merge_span:
            merged, merge_stats = unrestricted_path_merge(
                p0_part,
                p0_order,
                parts,
                metrics,
                bandwidth=ctx.bandwidth,
                split_validator=ctx.try_split,
            )
            if merge_span is not None:
                merge_span.attrs["final_instance_parts"] = merge_stats.final_instance_parts
                merge_span.attrs["merge_fallbacks"] = merge_stats.merge_fallbacks
        if call_span is not None:
            call_span.attrs["splitter"] = splitter
            call_span.attrs["p0_length"] = len(p0_order)
            call_span.attrs["hanging_parts"] = len(hanging_roots)

    ctx.trace.append(
        CallRecord(
            level=level,
            root=s,
            subtree_size=size,
            subtree_depth=(
                index.subtree_depth(s) if index is not None
                else ctx.tree.subtree_depth(s)
            ),
            p0_length=len(p0_order),
            splitter=splitter,
            part_sizes=sorted((stats.size[w] for w in hanging_roots), reverse=True),
            merge_stats=merge_stats,
        )
    )
    return merged, metrics
