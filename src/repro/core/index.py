"""One-shot recursion-tree statistics shared by every recursive call.

Each ``embed_subtree`` call needs its subtree's node set (sorted in the
library's canonical ``repr`` order), its size and depth, and the child
lists of its vertices.  Recomputing those per call walks the subtree
twice and re-sorts wrapped node tuples by ``repr`` — an O(n log n)
*central bookkeeping* cost per call that the CONGEST ledger never sees,
because the real distributed work (the subtree-stats convergecast and
the splitter token walk) is charged separately and stays untouched.

:class:`RecursionIndex` precomputes everything once after BFS:

* an Euler-tour preorder of the BFS tree, so any subtree is a contiguous
  slice ``order[tin[s]:tout[s]]`` (membership and size are O(1));
* per-node BFS depth and the *peak* depth inside each subtree, so
  ``subtree_depth`` is a subtraction instead of a walk;
* the global rank of every node in ``repr`` order, so canonical sorts
  run on integer keys.

The index is simulation bookkeeping, not protocol state: every quantity
is derivable from the BFS tree the nodes already hold locally, so
precomputing it centrally changes no rounds, messages, words, or
activations.  ``REPRO_REFERENCE_PATHS=1`` disables it (the recursion
then recomputes per call, as the reference implementation does), which
the differential suite uses to prove both paths bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..planar.graph import NodeId, sort_key
from ..primitives.bfs import BfsTree

__all__ = ["RecursionIndex"]


@dataclass
class RecursionIndex:
    """Precomputed Euler-tour intervals, depths, and canonical ranks."""

    order: list[NodeId]  # Euler-tour preorder (children in tree order)
    tin: dict[NodeId, int]  # v -> start of v's interval in ``order``
    tout: dict[NodeId, int]  # v -> end (exclusive): order[tin:tout] == subtree
    depth_of: dict[NodeId, int]  # v -> BFS depth (== tree.depth_of)
    peak_depth: dict[NodeId, int]  # v -> max BFS depth within v's subtree
    rank: dict[NodeId, int]  # v -> position in global repr-order

    @classmethod
    def build(cls, tree: BfsTree) -> "RecursionIndex":
        order: list[NodeId] = []
        tin: dict[NodeId, int] = {}
        tout: dict[NodeId, int] = {}
        peak: dict[NodeId, int] = {}
        children = tree.children
        depth_of = tree.depth_of
        stack: list[tuple[NodeId, bool]] = [(tree.root, False)]
        while stack:
            v, processed = stack.pop()
            if processed:
                tout[v] = len(order)
                p = depth_of[v]
                for c in children.get(v, ()):
                    pc = peak[c]
                    if pc > p:
                        p = pc
                peak[v] = p
            else:
                tin[v] = len(order)
                order.append(v)
                stack.append((v, True))
                for c in reversed(children.get(v, ())):
                    stack.append((c, False))
        rank = {v: i for i, v in enumerate(sorted(order, key=sort_key))}
        return cls(
            order=order,
            tin=tin,
            tout=tout,
            depth_of=dict(depth_of),
            peak_depth=peak,
            rank=rank,
        )

    # -- queries -----------------------------------------------------------

    def subtree_span(self, s: NodeId) -> list[NodeId]:
        """The subtree's nodes in Euler order (a contiguous slice)."""
        return self.order[self.tin[s] : self.tout[s]]

    def subtree_size(self, s: NodeId) -> int:
        return self.tout[s] - self.tin[s]

    def subtree_depth(self, s: NodeId) -> int:
        """== ``BfsTree.subtree_depth(s)``, without re-walking the subtree."""
        return self.peak_depth[s] - self.depth_of[s]

    def in_subtree(self, v: NodeId, s: NodeId) -> bool:
        """True iff ``v`` lies in the subtree rooted at ``s``."""
        tv = self.tin.get(v)
        return tv is not None and self.tin[s] <= tv < self.tout[s]

    def sort(self, nodes) -> list[NodeId]:
        """``sorted(nodes, key=repr)`` via the precomputed integer ranks."""
        return sorted(nodes, key=self.rank.__getitem__)
