"""Symmetry breaking on the inter-part graph (paper Lemma 5.3).

Input: the inter-part graph ``G_P`` hanging off the coordinator path
``P0`` — an outerplanar graph — with a proper coloring (the
low-connection numbers: after the per-color vertex-coordinated merges,
adjacent parts have different low-connections).

Output, per the lemma's interface:

* disjoint node sets ``V_1, V_2, ...`` of size >= 2, each inducing a
  star in ``G_P``;
* a partition of the contracted graph ``G'`` into sets that each induce
  a star or form a color-distinct (monotone) path.

The paper proves an O(1)-round algorithm via coding-theoretic tools that
appear only in the unavailable full version; it also notes the algorithm
"can be extended to give a deterministic Θ(log* n)" variant.  We
implement that variant (DESIGN.md §3, substitution 2):

* **V stars**: every node proposes to its minimum-color neighbor; local
  color minima become centers and keep an independent subset of their
  proposers (independence restored by a min-ID rule, one round).
* **G' paths**: in the contracted graph every node again points to its
  minimum-color neighbor; pointers strictly decrease color, so the
  pointer graph is a forest and the ``min-ID child`` chains decompose it
  into color-monotone paths (singletons allowed — the lemma's "paths"
  include trivial ones, and the paper handles non-mergeable parts by
  separate simpler schemes anyway).

The returned ``steps`` counts synchronous super-rounds on ``G_P``; each
super-round costs O(max part diameter) real rounds by Remark 1, which
the caller charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..planar.graph import Graph, NodeId

__all__ = ["StarPathDecomposition", "symmetry_break"]


@dataclass
class StarPathDecomposition:
    """Output of the Lemma 5.3 algorithm."""

    stars: list[tuple[NodeId, list[NodeId]]] = field(default_factory=list)  # (center, leaves)
    chains: list[list[NodeId]] = field(default_factory=list)  # color-monotone paths in G'
    steps: int = 0  # synchronous super-rounds on the inter-part graph

    def star_nodes(self) -> set[NodeId]:
        covered: set[NodeId] = set()
        for center, leaves in self.stars:
            covered.add(center)
            covered.update(leaves)
        return covered


def _min_color_neighbor(
    graph: Graph, colors: dict[NodeId, int], v: NodeId
) -> NodeId | None:
    """The neighbor with the smallest (color, id) strictly below ``v``'s color."""
    best = None
    for u in graph.neighbors(v):
        if colors[u] < colors[v] and (
            best is None or (colors[u], repr(u)) < (colors[best], repr(best))
        ):
            best = u
    return best


def _independent_subset(graph: Graph, candidates: list[NodeId]) -> list[NodeId]:
    """One-round independent refinement: keep nodes with no smaller-ID
    candidate neighbor (two kept nodes cannot be adjacent)."""
    cset = set(candidates)
    kept = []
    for v in candidates:
        if not any(u in cset and repr(u) < repr(v) for u in graph.neighbors(v)):
            kept.append(v)
    return kept


def symmetry_break(
    graph: Graph, colors: dict[NodeId, int]
) -> StarPathDecomposition:
    """Run the Lemma 5.3 decomposition; see the module docstring."""
    for u, v in graph.edges():
        if colors[u] == colors[v]:
            raise ValueError(f"coloring is not proper on edge {u!r}-{v!r}")

    out = StarPathDecomposition()

    # --- Phase 1: V stars around local color minima. --------------------
    proposal: dict[NodeId, NodeId] = {}
    for v in graph.nodes():
        target = _min_color_neighbor(graph, colors, v)
        if target is not None:
            proposal[v] = target
    out.steps += 1  # everyone announces color; proposals are local

    proposers: dict[NodeId, list[NodeId]] = {}
    for v, c in proposal.items():
        if c not in proposal:  # center must be a local color minimum
            proposers.setdefault(c, []).append(v)
    out.steps += 1  # centers learn their proposers

    contracted_into: dict[NodeId, NodeId] = {}
    for center in sorted(proposers, key=repr):
        leaves = _independent_subset(graph, sorted(proposers[center], key=repr))
        if leaves:
            out.stars.append((center, leaves))
            for leaf in leaves:
                contracted_into[leaf] = center
    out.steps += 1  # the independence refinement round

    # --- Phase 2: contract stars, decompose G' into monotone chains. ----
    contracted = Graph()
    rep = {v: contracted_into.get(v, v) for v in graph.nodes()}
    for v in graph.nodes():
        contracted.add_node(rep[v])
    for u, v in graph.edges():
        if rep[u] != rep[v]:
            contracted.add_edge(rep[u], rep[v])

    pointer: dict[NodeId, NodeId] = {}
    for v in contracted.nodes():
        target = _min_color_neighbor(contracted, colors, v)
        if target is not None:
            pointer[v] = target
    out.steps += 1

    # min-ID child chains: each parent keeps its smallest-ID pointer child.
    children: dict[NodeId, list[NodeId]] = {}
    for v, p in pointer.items():
        children.setdefault(p, []).append(v)
    chain_child: dict[NodeId, NodeId] = {
        p: min(cs, key=repr) for p, cs in children.items()
    }
    chain_parent = {c: p for p, c in chain_child.items()}
    out.steps += 1

    visited: set[NodeId] = set()
    for v in contracted.nodes():
        if v in visited:
            continue
        if v in chain_parent:  # not a chain head
            continue
        chain = [v]
        visited.add(v)
        cur = v
        while cur in chain_child:
            cur = chain_child[cur]
            chain.append(cur)
            visited.add(cur)
        out.chains.append(chain)
    leftovers = [v for v in contracted.nodes() if v not in visited]
    for v in leftovers:  # pragma: no cover - every node is head or in a chain
        out.chains.append([v])

    # --- Validate the lemma's guarantees (cheap, structural). -----------
    star_nodes: set[NodeId] = set()
    for center, leaves in out.stars:
        if len(leaves) < 1:
            raise AssertionError("star smaller than two nodes")
        members = [center, *leaves]
        if any(m in star_nodes for m in members):
            raise AssertionError("V stars are not disjoint")
        star_nodes.update(members)
        for i, a in enumerate(leaves):
            if not graph.has_edge(center, a):
                raise AssertionError("star leaf not adjacent to center")
            for b in leaves[i + 1 :]:
                if graph.has_edge(a, b):
                    raise AssertionError("star is not induced")
    seen_chain: set[NodeId] = set()
    for chain in out.chains:
        chain_colors = [colors[v] for v in chain]
        if len(set(chain_colors)) != len(chain_colors):
            raise AssertionError("chain repeats a color")
        for a, b in zip(chain, chain[1:]):
            if not contracted.has_edge(a, b):
                raise AssertionError("chain is not a path in G'")
        for v in chain:
            if v in seen_chain:
                raise AssertionError("chains are not disjoint")
            seen_chain.add(v)
    if seen_chain != set(contracted.nodes()):
        raise AssertionError("chains do not partition G'")
    return out
