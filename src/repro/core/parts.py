"""Parts, partial embeddings, and the safety property (paper Section 3).

A *part* is a connected set of vertices that the algorithm has already
embedded internally.  Edges inside a part are *embedded*; edges with one
endpoint outside are *half-embedded* and represented by **stub** pseudo-
vertices in the part's stored rotation system, so that a part's embedding
fixes the clockwise position of every half-embedded edge around its
endpoint (the paper's output format needs exactly this).

The safety property (Definition 3.1) — removing any non-trivial part
leaves the remainder connected — guarantees that all of a part's stubs
lie on one face.  ``embed_with_boundary`` constructs embeddings with this
invariant, and :class:`PartitionState` provides the auditable
whole-partition safety check used by experiment E6.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from ..planar.graph import Graph, NodeId
from ..planar.lr_planarity import NonPlanarGraphError, planar_embedding
from ..planar.rotation import RotationSystem, contracted_rotation

__all__ = [
    "HalfEdge",
    "NonPlanarNetworkError",
    "PartEmbedding",
    "PartitionState",
    "stub_node",
    "is_stub",
    "augment_with_stubs",
    "embed_with_boundary",
    "fresh_part",
    "graph_depth",
]

HalfEdge = tuple  # (inside endpoint, outside target)

# A part identifier is either a small int from the process-local
# allocator below (standalone construction, tests, the baseline) or a
# recursion-path tuple assigned by ``embed_subtree`` (the pipeline).
# Path tuples are globally unique *by position in the recursion tree*,
# which is what lets shard workers mint the same IDs the sequential
# path would — no cross-process counter to coordinate.  Both kinds are
# mutually comparable within one merge (a merge only ever sees one
# kind), and every tie-break below (min/max/sorted) is kind-agnostic.
PartId = "int | tuple"

_PART_IDS = itertools.count(1)


def reset_part_ids() -> None:
    """Restart the part-ID allocator.

    Part IDs feed deterministic tie-breaks (merge representatives,
    pendant dedup, insertion orders), so a full algorithm run resets the
    allocator to make repeated runs in one process bit-identical.
    """
    global _PART_IDS
    _PART_IDS = itertools.count(1)


class NonPlanarNetworkError(ValueError):
    """The distributed algorithm determined that the network is not planar."""


def stub_node(half_edge: HalfEdge) -> tuple:
    """The pseudo-vertex standing for a half-embedded edge in a rotation."""
    u, x = half_edge
    return ("stub", u, x)


def is_stub(node: NodeId) -> bool:
    return isinstance(node, tuple) and len(node) == 3 and node[0] == "stub"


def augment_with_stubs(graph: Graph, boundary: list[HalfEdge]) -> Graph:
    """The part graph plus one degree-1 stub vertex per half-embedded edge."""
    augmented = graph.copy()
    for half_edge in boundary:
        u, _ = half_edge
        if u not in graph:
            raise ValueError(f"half-edge endpoint {u!r} not in part")
        augmented.add_edge(u, stub_node(half_edge))
    return augmented


def embed_with_boundary(graph: Graph, boundary: list[HalfEdge]) -> RotationSystem:
    """Embed a part with all half-embedded edges on one common face.

    Construction: augment with stubs, add a virtual *rest* vertex
    adjacent to every stub (the contraction of the connected remainder,
    Figure 1(b)), embed with the LR kernel, and delete the rest vertex.
    Raises :class:`NonPlanarNetworkError` when impossible — which, under
    the safety property, happens only for non-planar inputs.
    """
    augmented = augment_with_stubs(graph, boundary)
    rest = ("rest",)
    stubs = [stub_node(h) for h in boundary]
    if len(stubs) >= 2:
        augmented.add_node(rest)
        for s in stubs:
            augmented.add_edge(rest, s)
    try:
        rotation = planar_embedding(augmented)
    except NonPlanarGraphError as exc:
        raise NonPlanarNetworkError(
            "part cannot be embedded with its half-embedded edges on one face"
        ) from exc
    if len(stubs) >= 2:
        # Strip the rest vertex in place.  It was inserted last and each
        # rest-stub dart sits at the back of its stub's adjacency dict, so
        # deleting them leaves exactly the node and neighbor insertion
        # order a fresh stub augmentation would produce — without paying
        # for a second graph copy.
        adj = augmented._adj
        del adj[rest]
        for s in stubs:
            del adj[s][rest]
        order = {}
        for v in adj:
            order[v] = tuple(u for u in rotation.order(v) if u != rest)
        return RotationSystem.trusted(augmented, order)
    return rotation


def graph_depth(graph: Graph, root: NodeId | None = None) -> int:
    """Eccentricity of ``root`` (default: first node) — the depth proxy
    used to charge part-internal upcast/downcast rounds."""
    if graph.num_nodes == 0:
        return 0
    if root is None:
        root = graph.nodes()[0]
    dist = {root: 0}
    frontier = [root]
    ecc = 0
    while frontier:
        nxt = []
        for v in frontier:
            for u in graph.neighbors(v):
                if u not in dist:
                    dist[u] = dist[v] + 1
                    ecc = max(ecc, dist[u])
                    nxt.append(u)
        frontier = nxt
    return ecc


@dataclass
class PartEmbedding:
    """A part with its internal embedding and half-embedded edge stubs."""

    part_id: "int | tuple"
    graph: Graph
    boundary: list[HalfEdge]
    rotation: RotationSystem  # over graph + stubs
    depth: int

    @property
    def vertices(self) -> set[NodeId]:
        return set(self.graph.nodes())

    @property
    def is_trivial(self) -> bool:
        """Trivial parts induce trees (paper Section 3)."""
        return self.graph.num_edges == self.graph.num_nodes - 1

    def boundary_targets(self) -> set[NodeId]:
        return {x for _, x in self.boundary}

    def attachments(self) -> list[NodeId]:
        """Distinct part vertices incident to half-embedded edges, in order."""
        seen: set[NodeId] = set()
        result: list[NodeId] = []
        for u, _ in self.boundary:
            if u not in seen:
                seen.add(u)
                result.append(u)
        return result

    def boundary_order(self) -> list[HalfEdge]:
        """The part's half-embedded edges in clockwise order around it.

        Read off the stored embedding via the boundary walk
        (:func:`repro.planar.rotation.contracted_rotation`).
        """
        if not self.boundary:
            return []
        walk = contracted_rotation(self.rotation, self.vertices)
        order = []
        for u, s in walk:
            if not is_stub(s):  # pragma: no cover - rotation only has stubs outside
                raise AssertionError(f"non-stub out-dart {u!r}->{s!r}")
            order.append((s[1], s[2]))
        return order

    def with_rotation(self, rotation: RotationSystem) -> "PartEmbedding":
        return replace(self, rotation=rotation)

    def internal_rotations(self) -> dict[NodeId, tuple]:
        """Per-vertex rotations with stubs replaced by their real targets."""
        result = {}
        for v in self.graph.nodes():
            ring = []
            for u in self.rotation.order(v):
                ring.append(u[2] if is_stub(u) else u)
            result[v] = tuple(ring)
        return result


def fresh_part(
    graph: Graph,
    boundary: list[HalfEdge],
    depth: int | None = None,
    part_id: "int | tuple | None" = None,
) -> PartEmbedding:
    """Create a part by embedding its graph with the boundary co-facial."""
    if not graph.is_connected():
        raise ValueError("a part must induce a connected subgraph")
    rotation = embed_with_boundary(graph, boundary)
    if depth is None:
        depth = graph_depth(graph)
    if part_id is None:
        part_id = next(_PART_IDS)
    return PartEmbedding(
        part_id=part_id, graph=graph, boundary=list(boundary), rotation=rotation, depth=depth
    )


@dataclass
class PartitionState:
    """A full partition of the network, with the Definition 3.1 audit.

    Used by the safety experiment (E6) and by property-based tests: after
    every partitioning or merging step of the algorithm, the partition of
    ``V`` into parts must remain *safe* — each non-trivial part's
    complement induces a connected subgraph.
    """

    network: Graph
    parts: list[PartEmbedding] = field(default_factory=list)

    def covered(self) -> set[NodeId]:
        return set().union(*(p.vertices for p in self.parts)) if self.parts else set()

    def is_partition(self) -> bool:
        cover = self.covered()
        total = sum(len(p.vertices) for p in self.parts)
        return cover == set(self.network.nodes()) and total == len(cover)

    def violating_parts(self) -> list[int]:
        """Part IDs whose removal disconnects the remainder (safety violations)."""
        violations = []
        all_nodes = set(self.network.nodes())
        for part in self.parts:
            if part.is_trivial:
                continue
            rest = all_nodes - part.vertices
            if not rest:
                continue
            if not self.network.subgraph(rest).is_connected():
                violations.append(part.part_id)
        return violations

    def is_safe(self) -> bool:
        return self.is_partition() and not self.violating_parts()
