"""Realizing a prescribed boundary order inside a part.

After a merge coordinator solves the arrangement on the skeletons, each
part receives the cyclic order its half-embedded edges must take around
it, and must *realize* that order by re-arranging its internal embedding
through the allowed interface moves (block flips and permutations around
cut vertices — Figure 4 of the paper).

The realization uses a constraint gadget: a rim cycle ``c_1..c_m`` (one
rim vertex per half-edge, in the prescribed cyclic order) with a hub on
one side, each half-edge's endpoint tied to its rim vertex.  The gadget
wheel is rigid up to a mirror, so a planar embedding of part+gadget
exists iff the prescribed order is in the part's interface, and the
extracted part rotation realizes it.  A final chirality normalization
mirrors the part if the gadget came out reflected, so that realizations
from one coordinator are mutually consistent.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..planar.graph import sort_key
from ..planar.lr_planarity import NonPlanarGraphError, planar_embedding
from ..planar.rotation import RotationSystem
from .parts import (
    HalfEdge,
    PartEmbedding,
    augment_with_stubs,
    embed_with_boundary,
    stub_node,
)

__all__ = ["RealizationError", "realize_boundary_order", "cyclic_equal"]


class RealizationError(RuntimeError):
    """A prescribed order was not realizable (skeleton infidelity)."""


def cyclic_equal(a: Sequence, b: Sequence) -> bool:
    """True iff ``a`` and ``b`` are equal as cyclic sequences."""
    n = len(a)
    if n != len(b):
        return False
    if n == 0:
        return True
    la, lb = list(a), list(b)
    doubled = lb + lb
    first = la[0]
    # Only shifts aligning b with a's first element can match; for
    # boundary walks (distinct half-edges) that is a single candidate.
    for i, x in enumerate(lb):
        if x == first and doubled[i : i + n] == la:
            return True
    return False


def realize_boundary_order(
    part: PartEmbedding, prescribed: Sequence[HalfEdge]
) -> RotationSystem:
    """A rotation of ``part`` whose boundary walk equals ``prescribed``.

    ``prescribed`` must be a permutation of the part's boundary.  Raises
    :class:`RealizationError` if the order is outside the part's
    interface (which, when the order came from a faithful skeleton,
    indicates a bug — the merge layer treats it as a fallback trigger).
    """
    if sorted(prescribed, key=sort_key) != sorted(part.boundary, key=sort_key):
        raise ValueError("prescribed order is not a permutation of the boundary")
    m = len(prescribed)
    if m <= 2:
        # Any cyclic order of <= 2 half-edges is the same; any co-facial
        # embedding (either chirality: a 2-attachment island can mirror
        # freely) realizes it.
        return embed_with_boundary(part.graph, part.boundary)

    gadget = part.graph.copy()
    rim = [("c", i) for i in range(m)]
    hub = ("ghub",)
    for i, half_edge in enumerate(prescribed):
        u, _ = half_edge
        gadget.add_edge(u, rim[i])
        gadget.add_edge(rim[i], rim[(i + 1) % m])
        gadget.add_edge(hub, rim[i])
    try:
        rotation = planar_embedding(gadget)
    except NonPlanarGraphError as exc:
        raise RealizationError(
            f"prescribed boundary order of part {part.part_id} is not realizable"
        ) from exc

    # Extract the part rotation: rim vertex c_i becomes the stub of the
    # i-th prescribed half-edge.
    stub_of_rim = {rim[i]: stub_node(prescribed[i]) for i in range(m)}
    augmented = augment_with_stubs(part.graph, part.boundary)
    order = {}
    for v in part.graph.nodes():
        ring = []
        for u in rotation.order(v):
            if u in stub_of_rim:
                ring.append(stub_of_rim[u])
            elif u == hub or (isinstance(u, tuple) and len(u) == 2 and u[0] == "c"):
                continue  # pragma: no cover - rim/hub only touch attachments
            else:
                ring.append(u)
        order[v] = tuple(ring)
    for half_edge in part.boundary:
        order[stub_node(half_edge)] = (half_edge[0],)
    realized = RotationSystem.trusted(augmented, order)

    # Chirality normalization: the gadget forces the order up to a global
    # mirror; make the boundary walk match ``prescribed`` exactly so that
    # sibling parts realized against one coordinator embedding compose.
    walk = part.with_rotation(realized).boundary_order()
    if cyclic_equal(walk, list(prescribed)):
        return realized
    mirrored = realized.mirrored()
    walk_m = part.with_rotation(mirrored).boundary_order()
    if cyclic_equal(walk_m, list(prescribed)):
        return mirrored
    raise RealizationError(
        f"gadget produced boundary order {walk!r} incompatible with "
        f"prescription {list(prescribed)!r}"
    )
