"""The paper's primary contribution: distributed planar embedding.

Public entry points:

* :func:`distributed_planar_embedding` / :class:`DistributedPlanarEmbedding`
  — Theorem 1.1, the O(D * min(log n, D))-round algorithm;
* :func:`trivial_baseline_embedding` — the folklore O(n) baseline
  (footnote 2) it is benchmarked against;
* the building blocks (parts, interfaces, merges, symmetry breaking)
  for experiments that probe individual lemmas.
"""

from .algorithm import (
    DegradedResult,
    DistributedPlanarEmbedding,
    EmbeddingResult,
    distributed_planar_embedding,
    distributed_planarity_test,
    self_healing_embedding,
)
from .assembly import AssemblyError, expand_copies, insert_pendant, insert_two_terminal
from .baseline import trivial_baseline_embedding
from .interface import InterfaceSkeleton, SkeletonError, interface_skeleton
from .merges import (
    MergeResult,
    charge_pairwise_merge,
    charge_path_coordinated_merge,
    charge_star_merge,
    charge_vertex_coordinated_merge,
    merge_parts,
)
from .parts import (
    NonPlanarNetworkError,
    PartEmbedding,
    PartitionState,
    embed_with_boundary,
    fresh_part,
)
from .realize import RealizationError, cyclic_equal, realize_boundary_order
from .recursion import CallRecord, RecursionContext, embed_subtree
from .symmetry import StarPathDecomposition, symmetry_break
from .unrestricted import UnrestrictedMergeStats, unrestricted_path_merge

__all__ = [
    "distributed_planar_embedding",
    "distributed_planarity_test",
    "DistributedPlanarEmbedding",
    "EmbeddingResult",
    "DegradedResult",
    "self_healing_embedding",
    "trivial_baseline_embedding",
    "NonPlanarNetworkError",
    "PartEmbedding",
    "PartitionState",
    "fresh_part",
    "embed_with_boundary",
    "interface_skeleton",
    "InterfaceSkeleton",
    "SkeletonError",
    "merge_parts",
    "MergeResult",
    "charge_pairwise_merge",
    "charge_star_merge",
    "charge_vertex_coordinated_merge",
    "charge_path_coordinated_merge",
    "realize_boundary_order",
    "RealizationError",
    "cyclic_equal",
    "symmetry_break",
    "StarPathDecomposition",
    "unrestricted_path_merge",
    "UnrestrictedMergeStats",
    "embed_subtree",
    "RecursionContext",
    "CallRecord",
    "insert_pendant",
    "insert_two_terminal",
    "expand_copies",
    "AssemblyError",
]
