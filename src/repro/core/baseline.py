"""The trivial O(n)-round baseline (paper footnote 2).

"Any graph problem can be solved in O(m) rounds in the CONGEST model,
simply by gathering the whole network topology and solving the problem
locally, and in planar graphs, this is O(m) = O(n) rounds."

The baseline implemented here is that algorithm, costed honestly:

1. leader election + BFS (real message passing, O(D) rounds);
2. every node's adjacency list (1 + deg(v) words) convergecasts to the
   root; the root's bottleneck child-edge must carry every word produced
   in its subtree, so the gather finishes in
   ``depth + max_child_subtree_words / bandwidth`` rounds — Θ(n) for a
   planar graph whatever the tree shape;
3. the root embeds locally with the LR kernel (our [HT74] stand-in) and
   broadcasts each vertex's rotation back down at the same pipelined
   cost.

Experiment E2 races this against the Theorem 1.1 algorithm.
"""

from __future__ import annotations

import math

from ..congest.metrics import RoundMetrics
from ..planar.graph import Graph, NodeId
from ..planar.lr_planarity import NonPlanarGraphError, planar_embedding
from ..planar.rotation import RotationSystem
from ..primitives.bfs import build_bfs_tree
from ..primitives.leader import elect_leader
from .algorithm import EmbeddingResult, _wrap
from .parts import NonPlanarNetworkError

__all__ = ["trivial_baseline_embedding"]


def _subtree_words(
    tree_children: dict[NodeId, list[NodeId]], words: dict[NodeId, int], root: NodeId
) -> dict[NodeId, int]:
    """Total words produced inside each subtree (iterative post-order)."""
    totals: dict[NodeId, int] = {}
    stack = [(root, False)]
    while stack:
        v, processed = stack.pop()
        if processed:
            totals[v] = words[v] + sum(totals[c] for c in tree_children.get(v, ()))
        else:
            stack.append((v, True))
            for c in tree_children.get(v, ()):
                stack.append((c, False))
    return totals


def trivial_baseline_embedding(
    graph: Graph, bandwidth_words: int = 1, verify: bool = True
) -> EmbeddingResult:
    """Run the gather-and-solve baseline; same result type as the algorithm."""
    if graph.num_nodes == 0:
        raise ValueError("cannot embed an empty network")
    if not graph.is_connected():
        raise ValueError("the network must be connected")
    metrics = RoundMetrics()
    if graph.num_nodes == 1:
        (v,) = graph.nodes()
        rotation = {v: ()}
        return EmbeddingResult(
            graph=graph,
            rotation=rotation,
            rotation_system=RotationSystem(graph, rotation),
            metrics=metrics,
            leader=v,
        )

    wrapped = _wrap(graph)
    leader = elect_leader(wrapped, metrics=metrics)
    tree = build_bfs_tree(wrapped, leader, metrics=metrics)

    # Gather: each node contributes its ID plus neighbor list.
    words_of = {v: 1 + wrapped.degree(v) for v in wrapped.nodes()}
    totals = _subtree_words(tree.children, words_of, leader)
    bottleneck = max(
        (totals[c] for c in tree.children.get(leader, ())), default=0
    )
    gather_rounds = tree.depth + math.ceil(bottleneck / bandwidth_words)
    metrics.charge(
        "baseline:gather",
        gather_rounds,
        words=sum(words_of.values()),
        detail=f"n+2m={sum(words_of.values())} words to root",
    )

    # Local solve at the root (unbounded local computation).
    try:
        system = planar_embedding(graph)
    except NonPlanarGraphError as exc:
        raise NonPlanarNetworkError("network is not planar") from exc

    # Scatter: every vertex receives its own rotation (deg(v) + 1 words).
    scatter_rounds = tree.depth + math.ceil(bottleneck / bandwidth_words)
    metrics.charge(
        "baseline:scatter",
        scatter_rounds,
        words=sum(words_of.values()),
        detail="rotations broadcast back",
    )

    rotation = system.as_dict()
    return EmbeddingResult(
        graph=graph,
        rotation=rotation,
        rotation_system=system,
        metrics=metrics,
        leader=leader[1],
        bfs_depth=tree.depth,
    )
