"""The unrestricted path-coordinated merge (paper Section 5.3).

A recursion step leaves us with the trivial path part ``P0`` and up to
Θ(n) hanging parts ``P1..Pk``, each attached to ``P0``.  Directly
coordinating Θ(n) parts over the path would exceed what its edges can
carry in O(D) rounds, so the paper reduces the part count first.  The
six steps implemented here follow the paper's numbered algorithm:

1. number the ``P0`` vertices;
2. two iterations of:
   (a) each part computes its lowest-numbered ``P0`` connection;
   (b) vertex-coordinated merges of same-low-connection clusters;
   (c) parts now connected to a single ``P0`` vertex and nothing else
       deliver their edge order and exit (*pendants*, re-attached at
       assembly);
   (d) parts connected to a single ``P0`` vertex plus the outside world
       freeze until the final merge;
   (e) every remaining merged part adopts a split-off *copy* of its
       coordinator vertex, restoring O(D) diameter;
   (f) the Lemma 5.3 symmetry breaking on the inter-part graph, colored
       by low-connection;
   (g, h) star merges on the resulting V-stars and short chains;
   (i) long color-monotone chains sit out the second iteration;
3. parts connected to exactly two ``P0`` vertices (and nothing else)
   compute their embedding and report to both;
4-5. per ``(i, j)`` pair only the highest-ID such part stays; the rest
   exit and are re-inserted at assembly in canonical ID order;
6. one restricted path-coordinated merge over ``P0`` and the surviving
   parts finishes the job.

Every stage's communication is charged from measured part depths and
payload sizes; the stage-by-stage part counts are recorded in
:class:`UnrestrictedMergeStats` (experiment E8 verifies the reduction to
O(|P0|) parts that makes the final merge *restricted*).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from ..congest.metrics import RoundMetrics
from ..planar.graph import Graph, NodeId
from .assembly import insert_pendant, insert_two_terminal
from .merges import (
    MergeResult,
    charge_path_coordinated_merge,
    merge_parts,
    vertex_coordinated_rounds,
)
from .parts import HalfEdge, PartEmbedding, fresh_part, graph_depth
from .symmetry import symmetry_break

__all__ = ["UnrestrictedMergeStats", "unrestricted_path_merge"]

# Split-off copy serials are allocated per merge driver, not from a
# process-global counter: every part ID active in a driver belongs to
# exactly one merge (recursion-path IDs are globally unique), so
# ``(coordinator, pid, serial)`` stays unique network-wide while the
# numbering is reproducible from any process — the property the sharded
# backend's bit-identical contract rests on.


@dataclass
class UnrestrictedMergeStats:
    """Per-stage accounting of one unrestricted path-coordinated merge."""

    p0_length: int = 0
    initial_parts: int = 0
    parts_after_iteration: list[int] = field(default_factory=list)
    pendants_discharged: int = 0
    frozen_external: int = 0
    parked_chain_parts: int = 0
    two_terminal_exited: int = 0
    final_instance_parts: int = 0
    merge_fallbacks: int = 0
    symmetry_steps: list[int] = field(default_factory=list)


def _cluster(pids: list[int], adjacency: dict[int, set[int]]) -> list[list[int]]:
    """Connected components of ``pids`` under ``adjacency``."""
    remaining = set(pids)
    clusters = []
    while remaining:
        seed = min(remaining)
        comp = {seed}
        stack = [seed]
        while stack:
            p = stack.pop()
            for q in adjacency.get(p, ()):
                if q in remaining and q not in comp:
                    comp.add(q)
                    stack.append(q)
        remaining -= comp
        clusters.append(sorted(comp))
    return clusters


class _MergeDriver:
    """Mutable state of one unrestricted path-coordinated merge."""

    def __init__(
        self,
        p0_part: PartEmbedding,
        p0_order: list[NodeId],
        hanging: list[PartEmbedding],
        metrics: RoundMetrics,
        bandwidth: int,
        split_validator=None,
    ) -> None:
        self.p0 = p0_part
        self.p0_order = list(p0_order)
        self.p0_set = set(p0_order)
        self.index = {v: i for i, v in enumerate(p0_order)}
        self.active: dict[int, PartEmbedding] = {p.part_id: p for p in hanging}
        self.p0_boundary: list[HalfEdge] = list(p0_part.boundary)
        self.skip_iteration: set[int] = set()
        self.pendants: list[tuple[NodeId, PartEmbedding]] = []
        self.exited: list[tuple[NodeId, NodeId, PartEmbedding]] = []
        self.metrics = metrics
        self.bandwidth = bandwidth
        self.split_validator = split_validator
        self._copy_serial = itertools.count(1)
        self.stats = UnrestrictedMergeStats(
            p0_length=len(p0_order), initial_parts=len(hanging)
        )

    # -- bookkeeping helpers ----------------------------------------------

    def _owner_map(self) -> dict[NodeId, int]:
        return {v: pid for pid, p in self.active.items() for v in p.vertices}

    def _p0_drop_targets(self, gone: set[NodeId]) -> None:
        self.p0_boundary = [(a, x) for a, x in self.p0_boundary if x not in gone]

    def _p0_part(self) -> PartEmbedding:
        """The P0 part re-embedded against its current (deduped) boundary."""
        seen = set()
        unique = []
        for h in self.p0_boundary:
            if h not in seen:
                seen.add(h)
                unique.append(h)
        return fresh_part(
            self.p0.graph, unique, depth=self.p0.depth, part_id=self.p0.part_id
        )

    def _replace_part(self, old_ids: list[int], result: MergeResult) -> int:
        for pid in old_ids:
            del self.active[pid]
        self.active[result.part.part_id] = result.part
        if result.fallback_used:
            self.stats.merge_fallbacks += 1
        return result.part.part_id

    def _part_adjacency(self, pids: list[int]) -> dict[int, set[int]]:
        owner = self._owner_map()
        adjacency: dict[int, set[int]] = {pid: set() for pid in pids}
        wanted = set(pids)
        for pid in pids:
            for _, x in self.active[pid].boundary:
                other = owner.get(x)
                if other is not None and other != pid and other in wanted:
                    adjacency[pid].add(other)
                    adjacency.setdefault(other, set()).add(pid)
        return adjacency

    def _classify(
        self, pid: int, owner: dict[NodeId, int]
    ) -> tuple[list[int], bool, bool]:
        """(sorted distinct P0 indices, has edges to other parts, has external)."""
        part = self.active[pid]
        p0_indices: set[int] = set()
        to_parts = False
        external = False
        for _, x in part.boundary:
            if x in self.p0_set:
                p0_indices.add(self.index[x])
            elif x in owner and owner[x] != pid:
                to_parts = True
            elif x in part.vertices:  # pragma: no cover - self-edge bug guard
                raise AssertionError("boundary edge points into its own part")
            else:
                external = True
        return sorted(p0_indices), to_parts, external

    # -- the algorithm ------------------------------------------------------

    def run(self) -> tuple[PartEmbedding, UnrestrictedMergeStats]:
        if not self.active:
            merged = self._p0_part()
        else:
            for iteration in (1, 2):
                self._one_iteration(iteration)
                self.stats.parts_after_iteration.append(len(self.active))
            self._discharge_two_terminal()
            merged = self._final_merge()
        merged = self._assemble(merged)
        return merged, self.stats

    def _one_iteration(self, iteration: int) -> None:
        participants = [pid for pid in self.active if pid not in self.skip_iteration]
        if not participants:
            return
        # (a) low connections: one aggregate per part, all in parallel.
        low: dict[int, int] = {}
        for pid in participants:
            cons = [
                self.index[x]
                for _, x in self.active[pid].boundary
                if x in self.p0_set
            ]
            if not cons:  # pragma: no cover - every part keeps a P0 link
                raise AssertionError(f"part {pid} lost its P0 connection")
            low[pid] = min(cons)
        max_depth = max(self.active[pid].depth for pid in participants)
        self.metrics.charge(
            "unrestricted:low-connection",
            2 * max_depth,
            detail=f"iter{iteration}: {len(participants)} parts",
        )

        # (b) per-coordinator vertex-coordinated merges of same-low clusters.
        groups: dict[int, list[int]] = {}
        for pid, i in low.items():
            groups.setdefault(i, []).append(pid)
        adjacency = self._part_adjacency(participants)
        stage_rounds = []
        stage_words = 0
        for i in sorted(groups):
            for cluster in _cluster(groups[i], adjacency):
                if len(cluster) < 2:
                    continue
                result = merge_parts([self.active[pid] for pid in cluster])
                new_id = self._replace_part(cluster, result)
                for pid in cluster:
                    if pid != new_id:
                        low.pop(pid, None)
                low[new_id] = i
                stage_rounds.append(vertex_coordinated_rounds(result, self.bandwidth))
                stage_words += result.total_up + result.total_down
        if stage_rounds:
            # Clusters at different coordinators are vertex-disjoint and
            # merge in parallel; the stage costs their maximum.
            self.metrics.charge(
                "merge:vertex",
                max(stage_rounds),
                stage_words,
                detail=f"iter{iteration}: {len(stage_rounds)} parallel clusters",
            )

        # (c)-(e): discharge pendants, freeze externals, split off copies.
        deliveries = []
        self._split_depths: list[int] = []
        owner = self._owner_map()
        for pid in sorted(self.active):
            if pid in self.skip_iteration or pid not in low:
                continue
            p0_indices, to_parts, external = self._classify(pid, owner)
            part = self.active[pid]
            if len(p0_indices) == 1 and not to_parts and not external:
                anchor = self.p0_order[p0_indices[0]]
                self.pendants.append((anchor, part))
                del self.active[pid]
                self._p0_drop_targets(part.vertices)
                self.stats.pendants_discharged += 1
                deliveries.append(part.depth + 2 * len(part.boundary) + 1)
            elif len(p0_indices) == 1 and not to_parts and external:
                self.skip_iteration.add(pid)
                self.stats.frozen_external += 1
                deliveries.append(part.depth + 1)
            else:
                self._split_off_copy(pid, self.p0_order[low[pid]])
        if deliveries:
            self.metrics.charge(
                "unrestricted:discharge",
                max(deliveries),
                detail=f"iter{iteration}: {len(deliveries)} parts",
            )
        if self._split_depths:
            # All split-offs of an iteration run in parallel (disjoint parts).
            self.metrics.charge(
                "unrestricted:split-off",
                max(self._split_depths),
                detail=f"iter{iteration}: {len(self._split_depths)} copies",
            )

        # (f) symmetry breaking on the inter-part graph.
        participants = [
            pid for pid in self.active if pid not in self.skip_iteration and pid in low
        ]
        if len(participants) < 2:
            return
        adjacency = self._part_adjacency(participants)
        inter = Graph(nodes=sorted(participants))
        for pid in participants:
            for q in adjacency[pid]:
                inter.add_edge(pid, q)
        decomposition = symmetry_break(inter, {pid: low[pid] for pid in participants})
        self.stats.symmetry_steps.append(decomposition.steps)
        max_depth = max(self.active[pid].depth for pid in participants)
        self.metrics.charge(
            "unrestricted:symmetry",
            2 * max_depth * decomposition.steps,
            detail=f"iter{iteration}: {decomposition.steps} super-rounds",
        )

        # (g) V-star merges (disjoint stars merge in parallel).
        representative = {pid: pid for pid in participants}
        stage_rounds = []
        stage_words = 0
        for center, leaves in decomposition.stars:
            members = [center, *leaves]
            result = merge_parts([self.active[pid] for pid in members])
            new_id = self._replace_part(members, result)
            low[new_id] = min(low[pid] for pid in members)
            for pid in members:
                representative[pid] = new_id
            stage_rounds.append(vertex_coordinated_rounds(result, self.bandwidth))
            stage_words += result.total_up + result.total_down
        if stage_rounds:
            self.metrics.charge(
                "merge:star",
                max(stage_rounds),
                stage_words,
                detail=f"iter{iteration}: {len(stage_rounds)} parallel V-stars",
            )

        # (h)-(i) chain merges / parking (disjoint chains merge in parallel).
        stage_rounds = []
        stage_words = 0
        for chain in decomposition.chains:
            current = sorted({representative[pid] for pid in chain})
            if len(current) <= 1:
                continue
            if len(chain) <= 3:
                result = merge_parts([self.active[pid] for pid in current])
                new_id = self._replace_part(current, result)
                low[new_id] = min(low[pid] for pid in current)
                stage_rounds.append(vertex_coordinated_rounds(result, self.bandwidth))
                stage_words += result.total_up + result.total_down
            else:
                self.skip_iteration.update(current)
                self.stats.parked_chain_parts += len(current)
        if stage_rounds:
            self.metrics.charge(
                "merge:star",
                max(stage_rounds),
                stage_words,
                detail=f"iter{iteration}: {len(stage_rounds)} parallel chain merges",
            )

    def _split_off_copy(self, pid: int, coordinator: NodeId) -> None:
        """Step 2(e): adopt a secondary copy of the coordinator vertex."""
        part = self.active[pid]
        rerouted = [u for u, x in part.boundary if x == coordinator]
        if not rerouted:  # pragma: no cover - low-connection guarantees an edge
            raise AssertionError("split-off without a coordinator edge")
        copy = ("copy", coordinator, pid, next(self._copy_serial))
        if self.split_validator is not None and not self.split_validator(
            copy, coordinator, rerouted
        ):
            # The bundle cannot be made consecutive around the
            # coordinator in any planar embedding; keep the direct
            # edges (diameter cost is charged honestly either way).
            return
        if self.split_validator is None and len(rerouted) > 1:
            return  # without an oracle, only subdivision splits are safe
        graph = part.graph.copy()
        for u in rerouted:
            graph.add_edge(u, copy)
        boundary = [(u, x) for u, x in part.boundary if x != coordinator]
        boundary.append((copy, coordinator))
        new_part = fresh_part(graph, boundary, part_id=pid)
        self.active[pid] = new_part
        self._split_depths.append(new_part.depth)
        # P0's view: the rerouted edges collapse into one virtual edge.
        rerouted_set = set(rerouted)
        self.p0_boundary = [
            (a, x)
            for a, x in self.p0_boundary
            if not (a == coordinator and x in rerouted_set)
        ]
        self.p0_boundary.append((coordinator, copy))

    def _discharge_two_terminal(self) -> None:
        """Steps 3-5: dedupe parts that touch exactly two P0 vertices."""
        ij_groups: dict[tuple[int, int], list[int]] = {}
        owner = self._owner_map()
        for pid in sorted(self.active):
            p0_indices, to_parts, external = self._classify(pid, owner)
            if len(p0_indices) == 2 and not to_parts and not external:
                ij_groups.setdefault(tuple(p0_indices), []).append(pid)
        deliveries = []
        for (ii, jj), pids in sorted(ij_groups.items()):
            keep = max(pids)
            i_vertex = self.p0_order[ii]
            j_vertex = self.p0_order[jj]
            for pid in pids:
                part = self.active[pid]
                deliveries.append(part.depth + 2 * len(part.boundary) + 1)
                if pid == keep:
                    continue
                self.exited.append((i_vertex, j_vertex, part))
                del self.active[pid]
                self._p0_drop_targets(part.vertices)
                self.stats.two_terminal_exited += 1
        if deliveries:
            self.metrics.charge(
                "unrestricted:two-terminal",
                2 * max(deliveries),
                detail=f"{len(deliveries)} (i,j)-parts",
            )

    def _final_merge(self) -> PartEmbedding:
        """Step 6: the restricted path-coordinated merge."""
        participants = [self._p0_part()] + [
            self.active[pid] for pid in sorted(self.active)
        ]
        self.stats.final_instance_parts = len(participants)
        result = merge_parts(participants)
        if result.fallback_used:
            self.stats.merge_fallbacks += 1
        charge_path_coordinated_merge(
            self.metrics,
            result,
            path_length=len(self.p0_order),
            bandwidth=self.bandwidth,
            detail=f"{len(participants)} parts over |P0|={len(self.p0_order)}",
        )
        return result.part

    def _assemble(self, merged: PartEmbedding) -> PartEmbedding:
        for anchor, pendant in self.pendants:
            merged = insert_pendant(merged, anchor, pendant)
        for i_vertex, j_vertex, part in sorted(
            self.exited, key=lambda t: t[2].part_id
        ):
            merged = insert_two_terminal(merged, i_vertex, j_vertex, part)
        if self.pendants or self.exited:
            merged = replace(merged, depth=graph_depth(merged.graph))
        return merged


def unrestricted_path_merge(
    p0_part: PartEmbedding,
    p0_order: list[NodeId],
    hanging: list[PartEmbedding],
    metrics: RoundMetrics,
    bandwidth: int = 1,
    split_validator=None,
) -> tuple[PartEmbedding, UnrestrictedMergeStats]:
    """Merge ``P0`` with its hanging parts; see the module docstring.

    ``split_validator`` is the oracle for step-2(e) split-offs (see
    ``RecursionContext.try_split``); without one, only always-safe
    single-edge splits are performed.
    """
    driver = _MergeDriver(
        p0_part, p0_order, hanging, metrics, bandwidth, split_validator
    )
    return driver.run()
