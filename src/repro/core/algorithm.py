"""The distributed planar embedding algorithm (paper Theorem 1.1).

``DistributedPlanarEmbedding`` drives the whole pipeline on a CONGEST
simulation of the input network:

1. elect the max-ID vertex ``s*`` by real max-ID flooding (O(D) rounds);
2. build the global BFS tree ``T`` rooted at ``s*`` (O(D) rounds) — this
   also gives every node ``n`` and a 2-approximation of ``D`` (paper
   Section 2);
3. run the recursive embedding order of Section 4 over ``T``'s subtrees,
   with the Section 5 merges; round costs are real where primitives run
   as node programs and exact pipelined charges elsewhere (DESIGN.md §3);
4. expand the split-off copies back into their primaries and unwrap;
5. verify the result: the per-vertex clockwise orders must form a genus-0
   rotation system of the *original* graph.

The output matches the paper's distributed output format: a clockwise
cyclic order of incident edges for every vertex, consistent with one
fixed planar drawing of the network.  Non-planar inputs raise
:class:`NonPlanarNetworkError` — the algorithm doubles as a distributed
planarity test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..congest.faults import default_fault_injector
from ..congest.metrics import RoundMetrics
from ..obs import Tracer, maybe_span
from ..obs.causal import CausalRecorder, causal_override, default_causal_recorder
from ..planar.graph import Graph, NodeId, edge_id
from ..planar.rotation import RotationSystem
from ..planar.verify import verify_planar_embedding
from ..primitives.aggregation import tree_aggregate, tree_broadcast
from ..primitives.bfs import BfsTree, build_bfs_tree
from ..primitives.leader import elect_leader
from .assembly import expand_copies
from .parts import NonPlanarNetworkError
from .recursion import CallRecord, RecursionContext, embed_subtree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..certify import CertificateSet, CertificationReport

__all__ = [
    "EmbeddingResult",
    "DegradedResult",
    "DistributedPlanarEmbedding",
    "distributed_planar_embedding",
    "self_healing_embedding",
]


@dataclass
class EmbeddingResult:
    """Everything a run produces: the embedding, costs, and audit data."""

    graph: Graph
    rotation: dict[NodeId, tuple]  # per-vertex clockwise neighbor order
    rotation_system: RotationSystem
    metrics: RoundMetrics
    trace: list[CallRecord] = field(default_factory=list)
    leader: NodeId | None = None
    bfs_depth: int = 0
    known_n: int = 0  # what every node learned in the Section 2 preamble
    diameter_upper: int = 0  # the 2-approximation of D (2 * ecc(s*))
    certificates: "CertificateSet | None" = None  # proof labels, if certified
    certification: "CertificationReport | None" = None  # last verifier outcome
    # The bit-packed form of ``certificates`` (repro.certify.compact) —
    # what verification actually ships; measured bits land on
    # ``certification.label_bits_*``.
    compact_certificates: "object | None" = None
    split_tests: int = 0  # multi-edge bundle split validations run
    split_rejections: int = 0  # splits rolled back as planarity-breaking
    split_oracle: dict | None = None  # scoped-oracle counters (None = reference path)
    # Dispatch accounting of the sharded backend (None = sequential run).
    # Deliberately NOT part of to_report(): reports stay bit-identical
    # across shard_workers settings, which the serve-layer result cache
    # and the differential suite both rely on.
    shard_stats: dict | None = None
    heal_attempts: int = 0  # self-healing attempts consumed (0 = plain run)
    heal_log: list[str] = field(default_factory=list)  # what healing saw and did
    fault_stats: dict | None = None  # chaos-layer counters (None = no fault plan)
    causal: dict | None = None  # causal-report dict (None = no recorder attached)

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def recursion_depth(self) -> int:
        return max((r.level for r in self.trace), default=0) + 1

    @property
    def merge_fallbacks(self) -> int:
        return sum(
            r.merge_stats.merge_fallbacks for r in self.trace if r.merge_stats is not None
        )

    def verify_distributed(
        self,
        metrics: RoundMetrics | None = None,
        tracer: Tracer | None = None,
        bandwidth_words: int | None = None,
    ) -> "CertificationReport":
        """Certify this embedding and verify it distributedly (O(D) rounds).

        Builds the proof labels on first use (a real O(D) construction:
        election, BFS, convergecast), packs them through the compact
        codec (:mod:`repro.certify.compact`), and runs the CONGEST
        verifier on the decoded labels — the codec shim, so the verifier
        predicates are unchanged while ``certification.label_bits_*``
        report the measured packed sizes.  All rounds land in
        ``metrics`` — by default this result's own ledger, so
        ``result.rounds`` then covers embedding *and* certification.
        Stores and returns the :class:`~repro.certify.CertificationReport`.
        """
        from ..certify import build_certificates
        from ..certify.compact import encode_certificates, verify_compact
        from ..certify.verifier import VERIFIER_BANDWIDTH_WORDS

        ledger = metrics if metrics is not None else self.metrics
        if self.certificates is None:
            self.certificates = build_certificates(
                self.graph, self.rotation_system, metrics=ledger, tracer=tracer
            )
        self.compact_certificates = encode_certificates(self.graph, self.certificates)
        self.certification = verify_compact(
            self.graph,
            self.rotation,
            self.compact_certificates,
            metrics=ledger,
            tracer=tracer,
            bandwidth_words=(
                bandwidth_words if bandwidth_words is not None else VERIFIER_BANDWIDTH_WORDS
            ),
        )
        return self.certification

    def to_report(self) -> dict:
        """A machine-readable run report (JSON-ready): sizes, round
        totals, and the full per-phase ledger.  This is what
        ``python -m repro --json`` prints and what the benchmark
        reporter persists into ``BENCH_*.json``."""
        report = {
            "type": "run-report",
            "planar": True,
            "n": self.graph.num_nodes,
            "m": self.graph.num_edges,
            "rounds": self.rounds,
            "recursion_depth": self.recursion_depth if self.trace else 0,
            "merge_fallbacks": self.merge_fallbacks,
            "bfs_depth": self.bfs_depth,
            "known_n": self.known_n,
            "diameter_upper": self.diameter_upper,
            "leader": repr(self.leader),
            "node_activations": self.metrics.node_activations,
            "activations_saved": self.metrics.activations_saved,
            "split_tests": self.split_tests,
            "split_rejections": self.split_rejections,
            "split_oracle": self.split_oracle,
            "metrics": self.metrics.to_dict(),
        }
        if self.certification is not None:
            report["certification"] = self.certification.to_dict()
        if self.certificates is not None:
            cert_sizes = self.certificates.to_dict()
            if self.compact_certificates is not None:
                cert_sizes["compact"] = self.compact_certificates.to_dict()
            report["certificates"] = cert_sizes
        if self.heal_attempts:
            report["healing"] = {
                "attempts": self.heal_attempts,
                "log": list(self.heal_log),
            }
        if self.fault_stats is not None:
            report["fault_stats"] = dict(self.fault_stats)
        if self.causal is not None:
            report["causal"] = dict(self.causal)
        return report


@dataclass
class DegradedResult:
    """What self-healing surfaces when the retry budget runs out.

    Not an exception: chaos beyond the budget is an expected operational
    outcome, so the driver returns the best partial state it has — the
    last (uncertified or rejected) rotation, the full healing log, the
    certifier's last verdict, the combined round ledger, and the fault
    counters — and the CLI maps it to its own exit code.
    """

    graph: Graph
    rotation: dict[NodeId, tuple] | None  # last attempt's output, if any
    diagnosis: str
    attempts: int
    heal_log: list[str]
    metrics: RoundMetrics
    certification: "CertificationReport | None" = None
    fault_stats: dict | None = None
    flight: "object | None" = None  # the FlightRecorder, for post-mortems

    degraded = True  # cheap discriminator vs EmbeddingResult

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    def to_report(self) -> dict:
        report = {
            "type": "degraded-report",
            "planar": None,
            "n": self.graph.num_nodes,
            "m": self.graph.num_edges,
            "rounds": self.rounds,
            "diagnosis": self.diagnosis,
            "healing": {"attempts": self.attempts, "log": list(self.heal_log)},
            "partial_rotation": (
                {repr(v): [repr(u) for u in order] for v, order in self.rotation.items()}
                if self.rotation is not None
                else None
            ),
            "metrics": self.metrics.to_dict(),
        }
        if self.certification is not None:
            report["certification"] = self.certification.to_dict()
        if self.fault_stats is not None:
            report["fault_stats"] = dict(self.fault_stats)
        if self.flight is not None:
            report["flight_events"] = len(self.flight)
        return report


def _wrap(graph: Graph) -> Graph:
    wrapped = Graph()
    for v in graph.nodes():
        wrapped.add_node(("v", v))
    for u, v in graph.edges():
        wrapped.add_edge(("v", u), ("v", v))
    return wrapped


class DistributedPlanarEmbedding:
    """Configure and run the distributed planar embedding algorithm."""

    def __init__(
        self,
        graph: Graph,
        bandwidth_words: int = 1,
        verify: bool = True,
        splitter_strategy: str = "balanced",
        tracer: Tracer | None = None,
        certify: bool = False,
        causal: "CausalRecorder | None" = None,
        shard_workers: int = 0,
    ) -> None:
        """``bandwidth_words`` is the per-edge word budget used in the
        pipelined round charges (CONGEST's ``O(log n)`` bits = O(1)
        words; 1 is the strictest reading).  ``splitter_strategy``
        selects the paper's 2/3-balanced splitter ("balanced") or the
        naive root split ("root") used by the E12 ablation.  ``tracer``
        (a :class:`repro.obs.Tracer`) records a span tree — per phase,
        per recursive call, per merge — for the run; ``None`` (the
        default) leaves the pipeline entirely uninstrumented.
        ``certify`` appends the certification phases (see
        :mod:`repro.certify`): every node gets an O(log n)-bit proof
        label and the distributed verifier re-checks the output in O(D)
        rounds, all charged to the same ledger and trace.  ``causal`` (a
        :class:`repro.obs.causal.CausalRecorder`) installs message-level
        causal tracing for every network the run creates; the
        critical-path report lands on ``EmbeddingResult.causal``.
        ``shard_workers`` >= 2 dispatches large hanging subtrees of the
        recursion to a process pool (:mod:`repro.shard`); 0 and 1 run
        the plain sequential path.  Outputs are bit-identical either
        way; sharding silently stays off under reference paths, fault
        injection, or causal recording (those layers observe per-message
        state that cannot cross a process boundary)."""
        if graph.num_nodes == 0:
            raise ValueError("cannot embed an empty network")
        if not graph.is_connected():
            raise ValueError("the network must be connected")
        self.graph = graph
        self.bandwidth_words = bandwidth_words
        self.verify = verify
        self.splitter_strategy = splitter_strategy
        self.tracer = tracer
        self.certify = certify
        self.causal = causal
        if shard_workers < 0:
            raise ValueError("shard_workers must be >= 0")
        self.shard_workers = shard_workers
        self.last_metrics: RoundMetrics | None = None  # set by run(), kept on failure

    def run(self) -> EmbeddingResult:
        from .parts import reset_part_ids

        # Pipeline part IDs are recursion-path tuples and copy serials
        # are per-merge-driver, both reproducible from any process; the
        # int allocator only backs standalone ``fresh_part`` callers,
        # and is reset so their runs stay repeatable too.
        reset_part_ids()
        graph = self.graph
        tracer = self.tracer
        metrics = RoundMetrics()
        if tracer is not None:
            metrics.observer = tracer
        self.last_metrics = metrics
        # An explicit recorder is installed for every network this run
        # creates; otherwise an ambient causal_override (if any) already
        # covers them, so re-installing it is a no-op.
        recorder = self.causal if self.causal is not None else default_causal_recorder()
        injector = default_fault_injector()
        with causal_override(recorder), maybe_span(
            tracer, "run", kind="run", n=graph.num_nodes, m=graph.num_edges
        ) as run_span:
            result = self._run_traced(graph, metrics, tracer)
            if run_span is not None:
                # Perf-profile attrs: how much split validation the run
                # did and how much of it the scoped oracle absorbed.
                run_span.attrs["split_tests"] = result.split_tests
                run_span.attrs["split_rejections"] = result.split_rejections
                if result.split_oracle is not None:
                    for key, value in result.split_oracle.items():
                        run_span.attrs[f"oracle_{key}"] = value
            if self.certify:
                # Certification rides inside the run span so the trace
                # rollup keeps matching metrics.rounds exactly.
                result.verify_distributed(metrics=metrics, tracer=tracer)
            if recorder is not None:
                result.causal = recorder.report()
                if run_span is not None:
                    run_span.attrs["critical_path"] = result.causal["critical_path"]
                    run_span.attrs["causal_rounds"] = result.causal["real_rounds"]
            if injector is not None:
                # Chaos counters are collected in congest/faults.py but
                # were invisible to reports: snapshot them onto the
                # result and the run span so --json and chaos benches
                # can assert injected-vs-delivered counts.
                result.fault_stats = injector.stats.to_dict()
                if run_span is not None:
                    run_span.attrs["fault_stats"] = dict(result.fault_stats)
        return result

    def _run_traced(
        self, graph: Graph, metrics: RoundMetrics, tracer: Tracer | None
    ) -> EmbeddingResult:
        if graph.num_nodes == 1:
            (v,) = graph.nodes()
            rotation = {v: ()}
            return EmbeddingResult(
                graph=graph,
                rotation=rotation,
                rotation_system=RotationSystem(graph, rotation),
                metrics=metrics,
                leader=v,
            )

        wrapped = _wrap(graph)

        # Phase 1-2: leader election + BFS, as real node programs; then
        # the Section 2 preamble — every node learns n and a
        # 2-approximation of D by one convergecast + one broadcast.
        with maybe_span(tracer, "leader-election", kind="phase"):
            leader = elect_leader(wrapped, metrics=metrics)
        with maybe_span(tracer, "bfs", kind="phase") as bfs_span:
            tree: BfsTree = build_bfs_tree(wrapped, leader, metrics=metrics)
            if bfs_span is not None:
                bfs_span.attrs["depth"] = tree.depth
        with maybe_span(tracer, "preamble", kind="phase"):
            known_n, known_ecc = self._preamble(wrapped, tree, metrics)

        # Phase 3: the recursive embedding order.
        ctx = RecursionContext(
            graph=wrapped,
            tree=tree,
            bandwidth=self.bandwidth_words,
            splitter_strategy=self.splitter_strategy,
            tracer=tracer,
        )
        shard_runtime = self._make_shard_runtime(ctx)
        ctx.shard = shard_runtime
        try:
            part, recursion_metrics = embed_subtree(ctx, leader, level=0)
        finally:
            shard_stats = (
                shard_runtime.shutdown() if shard_runtime is not None else None
            )
        metrics.absorb_serial(recursion_metrics)
        split_oracle = ctx.split_oracle_stats()
        if part.boundary:  # pragma: no cover - invariant
            raise AssertionError("top-level part still has half-embedded edges")

        # Phase 4: contract split-off copies, unwrap to original IDs.
        final_graph, final_order = expand_copies(
            part.graph, part.internal_rotations()
        )
        expected = {edge_id(u, v) for u, v in wrapped.edges()}
        got = {edge_id(u, v) for u, v in final_graph.edges()}
        if expected != got:  # pragma: no cover - invariant
            raise AssertionError("copy expansion did not restore the network")
        rotation = {
            v[1]: tuple(u[1] for u in final_order[v]) for v in final_graph.nodes()
        }

        # Phase 5: verification (Edmonds/Euler referee).
        with maybe_span(tracer, "verify", kind="phase"):
            system = (
                verify_planar_embedding(graph, rotation)
                if self.verify
                else RotationSystem(graph, rotation)
            )
        return EmbeddingResult(
            graph=graph,
            rotation=rotation,
            rotation_system=system,
            metrics=metrics,
            trace=ctx.trace,
            leader=leader[1],
            bfs_depth=tree.depth,
            known_n=known_n,
            diameter_upper=2 * known_ecc,
            split_tests=ctx.split_tests,
            split_rejections=ctx.split_rejections,
            split_oracle=split_oracle,
            shard_stats=shard_stats,
        )

    def _make_shard_runtime(self, ctx: RecursionContext):
        """A :class:`~repro.shard.dispatch.ShardRuntime` for this run, or
        ``None`` when sharding is off or cannot be bit-identical.

        Fault injection and causal recording intercept individual
        message deliveries — per-process state a worker cannot share —
        and the reference paths exist precisely to be the single-process
        yardstick, so all three force the sequential path.
        """
        if self.shard_workers < 2 or ctx.reference_paths:
            return None
        if default_fault_injector() is not None:
            return None
        if self.causal is not None or default_causal_recorder() is not None:
            return None
        from ..shard.dispatch import ShardRuntime

        return ShardRuntime(
            workers=self.shard_workers,
            total_n=ctx.graph.num_nodes,
            traced=self.tracer is not None,
        )

    @staticmethod
    def _preamble(
        wrapped: Graph, tree: BfsTree, metrics: RoundMetrics
    ) -> tuple[int, int]:
        """Section 2: all nodes learn n and ecc(s*) (so D <= 2*ecc)."""

        def combine(items):
            own, _ = items[0]
            return (own + sum(c for c, _ in items[1:]),
                    1 + max((h for _, h in items[1:]), default=-1))

        results = tree_aggregate(
            wrapped,
            tree.parent,
            tree.children,
            {v: (1, 0) for v in wrapped.nodes()},
            combine,
            metrics=metrics,
            phase="preamble",
        )
        n, ecc = results[tree.root][0]
        tree_broadcast(
            wrapped, tree.parent, tree.children, (n, ecc),
            metrics=metrics, phase="preamble",
        )
        return n, ecc


def distributed_planar_embedding(
    graph: Graph,
    bandwidth_words: int = 1,
    verify: bool = True,
    tracer: Tracer | None = None,
    certify: bool = False,
    causal: "CausalRecorder | None" = None,
    shard_workers: int = 0,
) -> EmbeddingResult:
    """Convenience wrapper around :class:`DistributedPlanarEmbedding`."""
    return DistributedPlanarEmbedding(
        graph, bandwidth_words=bandwidth_words, verify=verify, tracer=tracer,
        certify=certify, causal=causal, shard_workers=shard_workers,
    ).run()


def self_healing_embedding(
    graph: Graph,
    bandwidth_words: int = 1,
    max_retries: int = 3,
    tracer: Tracer | None = None,
    faults=None,
    corrupt_hook=None,
    splitter_strategy: str = "balanced",
    flight=None,
    flight_path=None,
) -> "EmbeddingResult | DegradedResult":
    """Run the embedding with certificate-driven self-healing.

    The driver computes an embedding, certifies it with the
    :mod:`repro.certify` prover, and verifies it with the distributed
    verifier.  A rejected certificate triggers an escalation ladder that
    re-executes only as much as the evidence demands, each step costing
    one attempt from the ``1 + max_retries`` budget:

    1. **re-verify** — the rejection may itself be a transient fault;
    2. **re-certify** — rebuild the proof labels from the rotation
       system and verify again (heals corrupted certificates);
    3. **re-embed** — recompute the embedding from scratch (heals a
       corrupted rotation).

    An attempt that *crashes* (a stalled flood, an exhausted retransmit
    budget, corrupted state tripping an internal invariant — under
    ``faults`` almost any error is reachable; clean runs never enter
    this path) retries the stage that failed.  ``faults`` (a
    :class:`~repro.congest.faults.FaultPlan` or shared
    :class:`~repro.congest.faults.FaultInjector`) is installed for every
    network the pipeline creates; its **global** round clock makes
    retries run on fresh fault draws and past transient crash/outage
    windows, which is what makes healing converge.

    ``corrupt_hook(attempt, result)`` — used by the chaos bench and
    tests — may tamper with ``result.rotation`` / ``result.certificates``
    before verification and return a description of the damage.

    ``flight`` (a :class:`repro.obs.flightrec.FlightRecorder`) attaches
    the crash flight recorder to every fault state and ARQ wrapper the
    run creates; under an active fault plan one is created automatically
    when none is given.  Every caught error is recorded on the driver
    lane, a :class:`DegradedResult` carries the recorder on ``.flight``,
    and when ``flight_path`` is set the JSONL dump is written there
    automatically on a degraded outcome or an escaping typed error.

    Returns the healed :class:`EmbeddingResult` (with ``heal_attempts``,
    ``heal_log``, and ``fault_stats`` filled in), or a structured
    :class:`DegradedResult` when the budget runs out.  A non-planar
    input raises :class:`NonPlanarNetworkError` as usual when no fault
    plan is active; under faults the detection is re-checked like any
    other suspect outcome, since corrupted messages can fake it.
    """
    from ..certify import build_certificates
    from ..congest.faults import FaultInjector, fault_override
    from ..obs.flightrec import FlightRecorder, default_flight_recorder, flight_override

    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    injector = (
        faults
        if isinstance(faults, (FaultInjector, type(None)))
        else FaultInjector(faults)
    )
    recorder = flight
    if recorder is None:
        recorder = default_flight_recorder()
    if recorder is None and injector is not None and not injector.plan.is_null:
        # Chaos without a black box is undebuggable: under an active
        # fault plan the driver always keeps one.
        recorder = FlightRecorder()
    master = RoundMetrics()
    if tracer is not None:
        master.observer = tracer
    heal_log: list[str] = []
    budget = 1 + max_retries
    attempts = 0
    rejections = 0
    nonplanar_hits = 0
    result: EmbeddingResult | None = None
    last_report = None
    last_error: BaseException | None = None

    def stats() -> dict | None:
        return injector.stats.to_dict() if injector is not None else None

    def dump_flight() -> None:
        if recorder is not None and flight_path is not None:
            recorder.dump(flight_path)
            heal_log.append(f"flight recorder dumped to {flight_path}")

    with fault_override(injector), flight_override(recorder), maybe_span(
        tracer, "self-healing", kind="run", n=graph.num_nodes, m=graph.num_edges
    ) as span:
        while attempts < budget:
            attempts += 1
            stage = "embed" if result is None else "verify"
            try:
                if result is None:
                    driver = DistributedPlanarEmbedding(
                        graph,
                        bandwidth_words=bandwidth_words,
                        verify=True,
                        splitter_strategy=splitter_strategy,
                        tracer=tracer,
                        certify=False,
                    )
                    try:
                        result = driver.run()
                    finally:
                        # Rounds spent by a failed attempt are real costs:
                        # fold the partial ledger into the master ledger.
                        if driver.last_metrics is not None:
                            master.absorb_serial(driver.last_metrics)
                    result.metrics = master
                if result.certificates is None:
                    stage = "certify"
                    result.certificates = build_certificates(
                        result.graph,
                        result.rotation_system,
                        metrics=master,
                        tracer=tracer,
                    )
                if corrupt_hook is not None:
                    note = corrupt_hook(attempts, result)
                    if note:
                        heal_log.append(f"attempt {attempts}: adversary: {note}")
                stage = "verify"
                last_report = result.verify_distributed(metrics=master, tracer=tracer)
            except NonPlanarNetworkError as _np_exc:
                if injector is None or injector.plan.is_null:
                    raise
                # Under an active fault plan a corrupted exchange can fake
                # a non-planarity witness — re-check like anything else.
                # Two *consecutive* detections on fresh fault draws (the
                # global clock advanced between attempts) confirm it: a
                # genuinely non-planar input raises rather than burning
                # the whole budget.
                nonplanar_hits += 1
                if nonplanar_hits >= 2:
                    if recorder is not None:
                        recorder.note_error(
                            _np_exc, attempt=attempts, stage=stage, confirmed=True
                        )
                    dump_flight()
                    raise
                last_error = None
                heal_log.append(
                    f"attempt {attempts}: {stage} reported non-planar under"
                    " active faults; re-checking"
                )
                result = None
                continue
            except Exception as exc:  # noqa: BLE001 - see docstring: under
                # faults almost any error is reachable; each is logged and
                # converted into a bounded retry of the failed stage.
                last_error = exc
                heal_log.append(
                    f"attempt {attempts}: {stage} failed:"
                    f" {type(exc).__name__}: {exc}"
                )
                if recorder is not None:
                    recorder.note_error(exc, attempt=attempts, stage=stage)
                if stage == "embed":
                    result = None
                continue
            nonplanar_hits = 0

            if last_report.accepted:
                if attempts > 1:
                    heal_log.append(
                        f"attempt {attempts}: certificate accepted by all"
                        f" {last_report.nodes} nodes — healed"
                    )
                result.heal_attempts = attempts
                result.heal_log = heal_log
                result.fault_stats = stats()
                if span is not None:
                    span.attrs["heal_attempts"] = attempts
                    span.attrs["healed"] = True
                return result

            rejections += 1
            first = last_report.rejections[0] if last_report.rejections else None
            heal_log.append(
                f"attempt {attempts}: certificate REJECTED"
                f" ({len(last_report.rejections)} rejections"
                + (f", first: node {first.node!r} violated {first.predicate}" if first else "")
                + ")"
            )
            if rejections == 1:
                heal_log.append("healing: re-verifying (rejection may be transient)")
            elif rejections == 2:
                # Incremental re-certification (E21): patch only the
                # dirty region around the rejecting nodes from the
                # honest rotation system, falling back to a full label
                # rebuild when the region exceeds the threshold.
                dirty = {r.node for r in last_report.rejections}
                heal_log.append(
                    "healing: incremental re-certification of the dirty region"
                    f" ({len(dirty)} rejecting nodes)"
                )
                try:
                    from ..certify.delta import repair_certificates

                    outcome = repair_certificates(
                        result.graph,
                        result.rotation_system,
                        result.certificates,
                        dirty,
                        metrics=master,
                        tracer=tracer,
                    )
                    result.certificates = outcome.certificates
                    heal_log.append(
                        f"healing: {outcome.mode} {outcome.patched} label(s)"
                        f" in {outcome.rounds} rounds"
                    )
                except Exception as exc:  # noqa: BLE001 - same contract as
                    # the ladder: under faults almost any error is
                    # reachable; degrade to the full rebuild rung.
                    heal_log.append(
                        f"healing: incremental repair failed"
                        f" ({type(exc).__name__}: {exc});"
                        " rebuilding certificates from the rotation system"
                    )
                    result.certificates = None
                result.certification = None
            else:
                heal_log.append("healing: re-embedding from scratch")
                result = None

        if span is not None:
            span.attrs["heal_attempts"] = attempts
            span.attrs["healed"] = False

    if last_report is not None and not last_report.accepted:
        diagnosis = (
            f"certificate still rejected after {attempts} attempts"
            f" ({len(last_report.rejections)} rejecting nodes)"
        )
    elif last_error is not None:
        diagnosis = (
            f"execution kept failing after {attempts} attempts"
            f" (last: {type(last_error).__name__}: {last_error})"
        )
    else:
        diagnosis = f"no certified embedding within {attempts} attempts"
    dump_flight()
    return DegradedResult(
        graph=graph,
        rotation=result.rotation if result is not None else None,
        diagnosis=diagnosis,
        attempts=attempts,
        heal_log=heal_log,
        metrics=master,
        certification=last_report,
        fault_stats=stats(),
        flight=recorder,
    )


def distributed_planarity_test(
    graph: Graph, bandwidth_words: int = 1
) -> tuple[bool, RoundMetrics]:
    """Decide planarity distributedly; returns (is_planar, round ledger).

    The embedding algorithm *is* the test: a non-planar network makes
    some merge's arrangement instance non-planar, which the run detects
    and reports in O(D * min(log n, D)) rounds — the rounds spent before
    detection are returned either way.
    """
    driver = DistributedPlanarEmbedding(
        graph, bandwidth_words=bandwidth_words, verify=False
    )
    try:
        result = driver.run()
        return True, result.metrics
    except NonPlanarNetworkError:
        # ``run()`` stores the ledger before any round is spent, so the
        # rounds paid up to the detection point are never lost — guard
        # against that ever regressing to a stale/None counter.
        metrics = driver.last_metrics
        if metrics is None:  # pragma: no cover - defensive invariant
            raise AssertionError(
                "non-planar detection must leave the partial round ledger behind"
            ) from None
        return False, metrics
