"""The distributed planar embedding algorithm (paper Theorem 1.1).

``DistributedPlanarEmbedding`` drives the whole pipeline on a CONGEST
simulation of the input network:

1. elect the max-ID vertex ``s*`` by real max-ID flooding (O(D) rounds);
2. build the global BFS tree ``T`` rooted at ``s*`` (O(D) rounds) — this
   also gives every node ``n`` and a 2-approximation of ``D`` (paper
   Section 2);
3. run the recursive embedding order of Section 4 over ``T``'s subtrees,
   with the Section 5 merges; round costs are real where primitives run
   as node programs and exact pipelined charges elsewhere (DESIGN.md §3);
4. expand the split-off copies back into their primaries and unwrap;
5. verify the result: the per-vertex clockwise orders must form a genus-0
   rotation system of the *original* graph.

The output matches the paper's distributed output format: a clockwise
cyclic order of incident edges for every vertex, consistent with one
fixed planar drawing of the network.  Non-planar inputs raise
:class:`NonPlanarNetworkError` — the algorithm doubles as a distributed
planarity test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..congest.metrics import RoundMetrics
from ..obs import Tracer, maybe_span
from ..planar.graph import Graph, NodeId, edge_id
from ..planar.rotation import RotationSystem
from ..planar.verify import verify_planar_embedding
from ..primitives.aggregation import tree_aggregate, tree_broadcast
from ..primitives.bfs import BfsTree, build_bfs_tree
from ..primitives.leader import elect_leader
from .assembly import expand_copies
from .parts import NonPlanarNetworkError
from .recursion import CallRecord, RecursionContext, embed_subtree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from ..certify import CertificateSet, CertificationReport

__all__ = ["EmbeddingResult", "DistributedPlanarEmbedding", "distributed_planar_embedding"]


@dataclass
class EmbeddingResult:
    """Everything a run produces: the embedding, costs, and audit data."""

    graph: Graph
    rotation: dict[NodeId, tuple]  # per-vertex clockwise neighbor order
    rotation_system: RotationSystem
    metrics: RoundMetrics
    trace: list[CallRecord] = field(default_factory=list)
    leader: NodeId | None = None
    bfs_depth: int = 0
    known_n: int = 0  # what every node learned in the Section 2 preamble
    diameter_upper: int = 0  # the 2-approximation of D (2 * ecc(s*))
    certificates: "CertificateSet | None" = None  # proof labels, if certified
    certification: "CertificationReport | None" = None  # last verifier outcome
    split_tests: int = 0  # multi-edge bundle split validations run
    split_rejections: int = 0  # splits rolled back as planarity-breaking
    split_oracle: dict | None = None  # scoped-oracle counters (None = reference path)

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def recursion_depth(self) -> int:
        return max((r.level for r in self.trace), default=0) + 1

    @property
    def merge_fallbacks(self) -> int:
        return sum(
            r.merge_stats.merge_fallbacks for r in self.trace if r.merge_stats is not None
        )

    def verify_distributed(
        self,
        metrics: RoundMetrics | None = None,
        tracer: Tracer | None = None,
        bandwidth_words: int | None = None,
    ) -> "CertificationReport":
        """Certify this embedding and verify it distributedly (O(D) rounds).

        Builds the proof labels on first use (a real O(D) construction:
        election, BFS, convergecast) and runs the CONGEST verifier.  All
        rounds land in ``metrics`` — by default this result's own ledger,
        so ``result.rounds`` then covers embedding *and* certification.
        Stores and returns the :class:`~repro.certify.CertificationReport`.
        """
        from ..certify import build_certificates
        from ..certify import verify_distributed as _verify_distributed
        from ..certify.verifier import VERIFIER_BANDWIDTH_WORDS

        ledger = metrics if metrics is not None else self.metrics
        if self.certificates is None:
            self.certificates = build_certificates(
                self.graph, self.rotation_system, metrics=ledger, tracer=tracer
            )
        self.certification = _verify_distributed(
            self.graph,
            self.rotation,
            self.certificates,
            metrics=ledger,
            tracer=tracer,
            bandwidth_words=(
                bandwidth_words if bandwidth_words is not None else VERIFIER_BANDWIDTH_WORDS
            ),
        )
        return self.certification

    def to_report(self) -> dict:
        """A machine-readable run report (JSON-ready): sizes, round
        totals, and the full per-phase ledger.  This is what
        ``python -m repro --json`` prints and what the benchmark
        reporter persists into ``BENCH_*.json``."""
        report = {
            "type": "run-report",
            "planar": True,
            "n": self.graph.num_nodes,
            "m": self.graph.num_edges,
            "rounds": self.rounds,
            "recursion_depth": self.recursion_depth if self.trace else 0,
            "merge_fallbacks": self.merge_fallbacks,
            "bfs_depth": self.bfs_depth,
            "known_n": self.known_n,
            "diameter_upper": self.diameter_upper,
            "leader": repr(self.leader),
            "node_activations": self.metrics.node_activations,
            "activations_saved": self.metrics.activations_saved,
            "split_tests": self.split_tests,
            "split_rejections": self.split_rejections,
            "split_oracle": self.split_oracle,
            "metrics": self.metrics.to_dict(),
        }
        if self.certification is not None:
            report["certification"] = self.certification.to_dict()
        if self.certificates is not None:
            report["certificates"] = self.certificates.to_dict()
        return report


def _wrap(graph: Graph) -> Graph:
    wrapped = Graph()
    for v in graph.nodes():
        wrapped.add_node(("v", v))
    for u, v in graph.edges():
        wrapped.add_edge(("v", u), ("v", v))
    return wrapped


class DistributedPlanarEmbedding:
    """Configure and run the distributed planar embedding algorithm."""

    def __init__(
        self,
        graph: Graph,
        bandwidth_words: int = 1,
        verify: bool = True,
        splitter_strategy: str = "balanced",
        tracer: Tracer | None = None,
        certify: bool = False,
    ) -> None:
        """``bandwidth_words`` is the per-edge word budget used in the
        pipelined round charges (CONGEST's ``O(log n)`` bits = O(1)
        words; 1 is the strictest reading).  ``splitter_strategy``
        selects the paper's 2/3-balanced splitter ("balanced") or the
        naive root split ("root") used by the E12 ablation.  ``tracer``
        (a :class:`repro.obs.Tracer`) records a span tree — per phase,
        per recursive call, per merge — for the run; ``None`` (the
        default) leaves the pipeline entirely uninstrumented.
        ``certify`` appends the certification phases (see
        :mod:`repro.certify`): every node gets an O(log n)-bit proof
        label and the distributed verifier re-checks the output in O(D)
        rounds, all charged to the same ledger and trace."""
        if graph.num_nodes == 0:
            raise ValueError("cannot embed an empty network")
        if not graph.is_connected():
            raise ValueError("the network must be connected")
        self.graph = graph
        self.bandwidth_words = bandwidth_words
        self.verify = verify
        self.splitter_strategy = splitter_strategy
        self.tracer = tracer
        self.certify = certify
        self.last_metrics: RoundMetrics | None = None  # set by run(), kept on failure

    def run(self) -> EmbeddingResult:
        from .parts import reset_part_ids
        from .unrestricted import reset_copy_serials

        reset_part_ids()
        reset_copy_serials()
        graph = self.graph
        tracer = self.tracer
        metrics = RoundMetrics()
        if tracer is not None:
            metrics.observer = tracer
        self.last_metrics = metrics
        with maybe_span(
            tracer, "run", kind="run", n=graph.num_nodes, m=graph.num_edges
        ) as run_span:
            result = self._run_traced(graph, metrics, tracer)
            if run_span is not None:
                # Perf-profile attrs: how much split validation the run
                # did and how much of it the scoped oracle absorbed.
                run_span.attrs["split_tests"] = result.split_tests
                run_span.attrs["split_rejections"] = result.split_rejections
                if result.split_oracle is not None:
                    for key, value in result.split_oracle.items():
                        run_span.attrs[f"oracle_{key}"] = value
            if self.certify:
                # Certification rides inside the run span so the trace
                # rollup keeps matching metrics.rounds exactly.
                result.verify_distributed(metrics=metrics, tracer=tracer)
        return result

    def _run_traced(
        self, graph: Graph, metrics: RoundMetrics, tracer: Tracer | None
    ) -> EmbeddingResult:
        if graph.num_nodes == 1:
            (v,) = graph.nodes()
            rotation = {v: ()}
            return EmbeddingResult(
                graph=graph,
                rotation=rotation,
                rotation_system=RotationSystem(graph, rotation),
                metrics=metrics,
                leader=v,
            )

        wrapped = _wrap(graph)

        # Phase 1-2: leader election + BFS, as real node programs; then
        # the Section 2 preamble — every node learns n and a
        # 2-approximation of D by one convergecast + one broadcast.
        with maybe_span(tracer, "leader-election", kind="phase"):
            leader = elect_leader(wrapped, metrics=metrics)
        with maybe_span(tracer, "bfs", kind="phase") as bfs_span:
            tree: BfsTree = build_bfs_tree(wrapped, leader, metrics=metrics)
            if bfs_span is not None:
                bfs_span.attrs["depth"] = tree.depth
        with maybe_span(tracer, "preamble", kind="phase"):
            known_n, known_ecc = self._preamble(wrapped, tree, metrics)

        # Phase 3: the recursive embedding order.
        ctx = RecursionContext(
            graph=wrapped,
            tree=tree,
            bandwidth=self.bandwidth_words,
            splitter_strategy=self.splitter_strategy,
            tracer=tracer,
        )
        part, recursion_metrics = embed_subtree(ctx, leader, level=0)
        metrics.absorb_serial(recursion_metrics)
        split_oracle = ctx.split_oracle_stats()
        if part.boundary:  # pragma: no cover - invariant
            raise AssertionError("top-level part still has half-embedded edges")

        # Phase 4: contract split-off copies, unwrap to original IDs.
        final_graph, final_order = expand_copies(
            part.graph, part.internal_rotations()
        )
        expected = {edge_id(u, v) for u, v in wrapped.edges()}
        got = {edge_id(u, v) for u, v in final_graph.edges()}
        if expected != got:  # pragma: no cover - invariant
            raise AssertionError("copy expansion did not restore the network")
        rotation = {
            v[1]: tuple(u[1] for u in final_order[v]) for v in final_graph.nodes()
        }

        # Phase 5: verification (Edmonds/Euler referee).
        with maybe_span(tracer, "verify", kind="phase"):
            system = (
                verify_planar_embedding(graph, rotation)
                if self.verify
                else RotationSystem(graph, rotation)
            )
        return EmbeddingResult(
            graph=graph,
            rotation=rotation,
            rotation_system=system,
            metrics=metrics,
            trace=ctx.trace,
            leader=leader[1],
            bfs_depth=tree.depth,
            known_n=known_n,
            diameter_upper=2 * known_ecc,
            split_tests=ctx.split_tests,
            split_rejections=ctx.split_rejections,
            split_oracle=split_oracle,
        )

    @staticmethod
    def _preamble(
        wrapped: Graph, tree: BfsTree, metrics: RoundMetrics
    ) -> tuple[int, int]:
        """Section 2: all nodes learn n and ecc(s*) (so D <= 2*ecc)."""

        def combine(items):
            own, _ = items[0]
            return (own + sum(c for c, _ in items[1:]),
                    1 + max((h for _, h in items[1:]), default=-1))

        results = tree_aggregate(
            wrapped,
            tree.parent,
            tree.children,
            {v: (1, 0) for v in wrapped.nodes()},
            combine,
            metrics=metrics,
            phase="preamble",
        )
        n, ecc = results[tree.root][0]
        tree_broadcast(
            wrapped, tree.parent, tree.children, (n, ecc),
            metrics=metrics, phase="preamble",
        )
        return n, ecc


def distributed_planar_embedding(
    graph: Graph,
    bandwidth_words: int = 1,
    verify: bool = True,
    tracer: Tracer | None = None,
    certify: bool = False,
) -> EmbeddingResult:
    """Convenience wrapper around :class:`DistributedPlanarEmbedding`."""
    return DistributedPlanarEmbedding(
        graph, bandwidth_words=bandwidth_words, verify=verify, tracer=tracer,
        certify=certify,
    ).run()


def distributed_planarity_test(
    graph: Graph, bandwidth_words: int = 1
) -> tuple[bool, RoundMetrics]:
    """Decide planarity distributedly; returns (is_planar, round ledger).

    The embedding algorithm *is* the test: a non-planar network makes
    some merge's arrangement instance non-planar, which the run detects
    and reports in O(D * min(log n, D)) rounds — the rounds spent before
    detection are returned either way.
    """
    driver = DistributedPlanarEmbedding(
        graph, bandwidth_words=bandwidth_words, verify=False
    )
    try:
        result = driver.run()
        return True, result.metrics
    except NonPlanarNetworkError:
        # ``run()`` stores the ledger before any round is spent, so the
        # rounds paid up to the detection point are never lost — guard
        # against that ever regressing to a stale/None counter.
        metrics = driver.last_metrics
        if metrics is None:  # pragma: no cover - defensive invariant
            raise AssertionError(
                "non-planar detection must leave the partial round ledger behind"
            ) from None
        return False, metrics
