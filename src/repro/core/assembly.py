"""Re-attaching discharged parts and expanding split-off copies.

The unrestricted path-coordinated merge (paper Section 5.3) discharges
three kinds of parts early so they stop consuming bandwidth:

* step 2(c) **pendant parts** — connected to a single ``P0`` vertex and
  nothing else.  They deliver the order of their edges to that vertex and
  exit; geometrically they are islands that can live in any face corner
  at their anchor, so they are spliced back in at assembly time.
* steps 3-5 **two-terminal parts** — connected to exactly two ``P0``
  vertices ``i`` and ``j``.  All but the highest-ID such part exit; they
  re-enter side by side in a face containing both ``i`` and ``j``
  (step 4's ID-ordering rule makes the arrangement canonical without
  communication).
* step 2(e) **split-off copies** — secondary copies of a coordinator
  vertex adopted into parts to keep their diameter low.  At the end each
  copy is contracted back into its primary vertex (an embedded-edge
  contraction, which preserves planarity).

Every splice is genus-verified; orientation choices that the paper fixes
by convention are resolved here by trying the (at most four) candidate
chiralities and keeping the planar one.
"""

from __future__ import annotations

from ..planar.graph import Graph, NodeId
from ..planar.rotation import RotationSystem, trace_faces
from .parts import PartEmbedding, is_stub, stub_node

__all__ = [
    "AssemblyError",
    "insert_pendant",
    "insert_two_terminal",
    "expand_copies",
    "is_copy",
]


class AssemblyError(RuntimeError):
    """A splice produced a non-planar rotation system."""


def is_copy(node: NodeId) -> bool:
    return isinstance(node, tuple) and len(node) == 4 and node[0] == "copy"


def _rebuild(
    merged: PartEmbedding, graph: Graph, order: dict[NodeId, tuple]
) -> PartEmbedding:
    augmented = graph.copy()
    for h in merged.boundary:
        augmented.add_edge(h[0], stub_node(h))
        order[stub_node(h)] = (h[0],)
    rotation = RotationSystem(augmented, order)
    if not rotation.is_planar_embedding():
        raise AssemblyError("splice produced a non-planar rotation system")
    return PartEmbedding(
        part_id=merged.part_id,
        graph=graph,
        boundary=merged.boundary,
        rotation=rotation,
        depth=merged.depth,
    )


def _merged_orders(merged: PartEmbedding) -> dict[NodeId, tuple]:
    return {
        v: merged.rotation.order(v)
        for v in merged.rotation.graph.nodes()
        if not is_stub(v)
    }


def _part_orders(part: PartEmbedding, resolve: dict[NodeId, NodeId]) -> dict[NodeId, tuple]:
    """The part's rotations with its stubs resolved to real anchors."""
    orders = {}
    for v in part.graph.nodes():
        ring = []
        for u in part.rotation.order(v):
            if is_stub(u):
                ring.append(resolve[(u[1], u[2])])
            else:
                ring.append(u)
        orders[v] = tuple(ring)
    return orders


def insert_pendant(
    merged: PartEmbedding, anchor: NodeId, pendant: PartEmbedding
) -> PartEmbedding:
    """Splice a pendant part (all half-edges to ``anchor``) into ``merged``."""
    if anchor not in merged.graph:
        raise ValueError(f"anchor {anchor!r} not in merged part")
    bundle = [u for u, x in pendant.boundary_order()]
    if any(x != anchor for _, x in pendant.boundary):
        raise ValueError("pendant part has non-anchor half-edges")

    graph = merged.graph.copy()
    for v in pendant.graph.nodes():
        graph.add_node(v)
    for u, v in pendant.graph.edges():
        graph.add_edge(u, v)
    for u in bundle:
        graph.add_edge(u, anchor)

    base = _merged_orders(merged)
    resolve = {(u, anchor): anchor for u in bundle}
    pend = _part_orders(pendant, resolve)

    anchor_ring = list(merged.rotation.order(anchor))
    for candidate in (list(reversed(bundle)), list(bundle)):
        order = dict(base)
        order.update(pend)
        order[anchor] = tuple(anchor_ring[:1] + candidate + anchor_ring[1:]) if anchor_ring else tuple(candidate)
        try:
            return _rebuild(merged, graph, order)
        except AssemblyError:
            continue
    raise AssemblyError("pendant insertion failed in both orientations")


def _face_corner(
    rotation: RotationSystem, face: list[tuple[NodeId, NodeId]], v: NodeId
) -> tuple[NodeId, NodeId]:
    """A corner of ``face`` at ``v``: (a, b) with b clockwise-after a at v."""
    for x, y in face:
        if y == v:
            return (x, rotation.next_after(v, x))
    raise ValueError(f"{v!r} not on face")


def _split_two_terminal(
    part: PartEmbedding, i: NodeId, j: NodeId
) -> tuple[list[NodeId], list[NodeId]]:
    """Split the part's boundary walk into its i-bundle and j-bundle.

    The walk must be non-interleaved (i-edges consecutive) — guaranteed
    when the part was realized against a coordinator instance containing
    both terminals.
    """
    walk = part.boundary_order()
    targets = [x for _, x in walk]
    k = len(walk)
    start = None
    for idx in range(k):
        if targets[idx] == i and targets[(idx - 1) % k] == j:
            start = idx
            break
    if start is None:
        if all(t == i for t in targets):
            return [u for u, _ in walk], []
        if all(t == j for t in targets):
            return [], [u for u, _ in walk]
        raise AssemblyError("two-terminal boundary walk is interleaved")
    rotated = [walk[(start + t) % k] for t in range(k)]
    i_bundle = [u for u, x in rotated if x == i]
    j_bundle = [u for u, x in rotated if x == j]
    if [x for _, x in rotated] != [i] * len(i_bundle) + [j] * len(j_bundle):
        raise AssemblyError("two-terminal boundary walk is interleaved")
    return i_bundle, j_bundle


def insert_two_terminal(
    merged: PartEmbedding, i: NodeId, j: NodeId, part: PartEmbedding
) -> PartEmbedding:
    """Splice an (i, j)-part into a face of ``merged`` containing both."""
    i_bundle, j_bundle = _split_two_terminal(part, i, j)
    if not j_bundle:
        return insert_pendant(merged, i, part)
    if not i_bundle:
        return insert_pendant(merged, j, part)

    face = None
    for f in trace_faces(merged.rotation):
        on_face = {u for u, _ in f}
        if i in on_face and j in on_face:
            face = f
            break
    if face is None:
        raise AssemblyError(f"no face contains both {i!r} and {j!r}")
    ia, ib = _face_corner(merged.rotation, face, i)
    ja, jb = _face_corner(merged.rotation, face, j)

    graph = merged.graph.copy()
    for v in part.graph.nodes():
        graph.add_node(v)
    for u, v in part.graph.edges():
        graph.add_edge(u, v)
    for u in i_bundle:
        graph.add_edge(u, i)
    for u in j_bundle:
        graph.add_edge(u, j)

    base = _merged_orders(merged)
    resolve = {(u, i): i for u in i_bundle}
    resolve.update({(u, j): j for u in j_bundle})
    inner = _part_orders(part, resolve)

    def ring_with(ring: tuple, after: NodeId, bundle: list[NodeId]) -> tuple:
        lst = list(ring)
        pos = lst.index(after) + 1
        return tuple(lst[:pos] + bundle + lst[pos:])

    i_ring = merged.rotation.order(i)
    j_ring = merged.rotation.order(j)
    mirror_inner = {v: tuple(reversed(r)) for v, r in inner.items()}
    candidates = (
        (inner, list(reversed(i_bundle)), list(reversed(j_bundle))),
        (inner, list(i_bundle), list(j_bundle)),
        (mirror_inner, list(reversed(i_bundle)), list(reversed(j_bundle))),
        (mirror_inner, list(i_bundle), list(j_bundle)),
        (inner, list(reversed(i_bundle)), list(j_bundle)),
        (inner, list(i_bundle), list(reversed(j_bundle))),
        (mirror_inner, list(reversed(i_bundle)), list(j_bundle)),
        (mirror_inner, list(i_bundle), list(reversed(j_bundle))),
    )
    for inner_orders, ib_bundle, jb_bundle in candidates:
        order = dict(base)
        order.update(inner_orders)
        order[i] = ring_with(i_ring, ia, ib_bundle)
        order[j] = ring_with(j_ring, ja, jb_bundle)
        try:
            return _rebuild(merged, graph, order)
        except AssemblyError:
            continue
    raise AssemblyError("two-terminal insertion failed in all orientations")


def expand_copies(
    graph: Graph, order: dict[NodeId, tuple]
) -> tuple[Graph, dict[NodeId, tuple]]:
    """Contract every split-off copy back into its primary vertex.

    Each copy ``("copy", primary, part)`` is adjacent to its primary (the
    virtual star edge of step 2(e)) and to the part vertices whose edges
    to the primary were rerouted.  Contracting the embedded virtual edge
    splices the copy's ring into the primary's — the standard embedded
    edge contraction, planarity-preserving.
    """
    graph = graph.copy()
    order = dict(order)
    copies = sorted((v for v in graph.nodes() if is_copy(v)), key=repr)
    while copies:
        # Copies may nest (a second-iteration copy reroutes an earlier
        # copy's virtual edge); contract those whose primary edge is
        # already direct first — each pass unlocks the next layer.
        ready = [c for c in copies if c[1] in order[c]]
        if not ready:
            raise AssemblyError(f"copy nesting cycle among {copies!r}")
        c = ready[0]
        copies.remove(c)
        primary = c[1]
        ring_c = list(order[c])
        k = ring_c.index(primary)
        spliced = ring_c[k + 1 :] + ring_c[:k]
        ring_p = list(order[primary])
        kp = ring_p.index(c)
        order[primary] = tuple(ring_p[:kp] + spliced + ring_p[kp + 1 :])
        for u in spliced:
            ring_u = list(order[u])
            order[u] = tuple(primary if x == c else x for x in ring_u)
            graph.add_edge(u, primary)
        graph.remove_node(c)
        del order[c]
    return graph, order
