"""Merging partial embeddings (paper Section 5).

All four merging patterns — pairwise, star, vertex-coordinated and
(restricted) path-coordinated — share the same information flow, which
:func:`merge_parts` implements:

1. every part compresses itself to its interface skeleton and ships it
   toward the coordinator (*gather*; words measured from the actual
   serialized skeletons);
2. the coordinator solves the arrangement *locally* (unbounded local
   computation, the CONGEST allowance): it embeds the union of the
   skeletons, plus the connecting half-embedded edges between the merging
   parts, plus a single virtual ``rest`` vertex standing for the
   connected remainder of the network (the safety property, Figure 1(b));
3. each part receives the cyclic order its half-embedded edges must take
   (*scatter*; words measured) and realizes it internally via block
   flips / permutations (:mod:`repro.core.realize`);
4. the realized parts and connecting edges assemble into the merged
   part, which is verified (genus 0, boundary co-facial).

The patterns differ only in *which* paths the gather/scatter traffic
takes, i.e. in the round charge; the ``charge_*`` helpers compute those
from measured part depths and payload sizes via the pipelined-cost
formulas of :mod:`repro.congest.pipelining`.

If skeleton-level solving ever produced an inconsistent assembly (it
should not — the skeleton captures exactly the Observation 3.2 freedoms,
and the test-suite checks this), the merge falls back to a direct
re-embedding of the union, preserving end-to-end correctness; fallbacks
are counted and reported by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..congest.metrics import RoundMetrics
from ..congest.pipelining import stream_rounds
from ..planar.graph import Graph, NodeId, sort_key
from ..planar.lr_planarity import NonPlanarGraphError, planar_embedding
from ..planar.rotation import RotationError, RotationSystem, contracted_rotation
from ..planar.verify import EmbeddingViolation, check_embedding_with_boundary
from ..planar.biconnected import biconnected_components
from .interface import SkeletonError, interface_skeleton
from .parts import (
    HalfEdge,
    NonPlanarNetworkError,
    PartEmbedding,
    augment_with_stubs,
    embed_with_boundary,
    graph_depth,
    is_stub,
    stub_node,
)
from .realize import RealizationError, realize_boundary_order

__all__ = [
    "MergeResult",
    "merge_parts",
    "charge_pairwise_merge",
    "charge_star_merge",
    "charge_vertex_coordinated_merge",
    "charge_path_coordinated_merge",
]

_REST = ("rest",)


@dataclass
class MergeResult:
    """The merged part plus the measured communication of the merge."""

    part: PartEmbedding
    up_words: dict[int, int] = field(default_factory=dict)  # per source part
    down_words: dict[int, int] = field(default_factory=dict)
    part_depths: dict[int, int] = field(default_factory=dict)
    attachment_edges: dict[int, int] = field(default_factory=dict)  # parallel lanes per part
    fallback_used: bool = False

    @property
    def total_up(self) -> int:
        return sum(self.up_words.values())

    @property
    def total_down(self) -> int:
        return sum(self.down_words.values())


def _union_graph_and_boundary(
    parts: list[PartEmbedding],
) -> tuple[Graph, list[HalfEdge], list[tuple[NodeId, NodeId]]]:
    """The merged graph, its external boundary, and the connecting edges."""
    owner: dict[NodeId, int] = {}
    for p in parts:
        for v in p.graph.nodes():
            if v in owner:
                raise ValueError(f"parts are not disjoint at {v!r}")
            owner[v] = p.part_id
    union = Graph()
    for p in parts:
        for v in p.graph.nodes():
            union.add_node(v)
        for u, v in p.graph.edges():
            union.add_edge(u, v)
    connecting: list[tuple[NodeId, NodeId]] = []
    seen: set[tuple] = set()
    new_boundary: list[HalfEdge] = []
    for p in parts:
        for u, x in p.boundary:
            if x in owner:
                key = (u, x) if sort_key(u) < sort_key(x) else (x, u)
                if key not in seen:
                    seen.add(key)
                    connecting.append(key)
                    union.add_edge(u, x)
            else:
                new_boundary.append((u, x))
    return union, new_boundary, connecting


def _fallback_merge(
    parts: list[PartEmbedding],
    union: Graph,
    new_boundary: list[HalfEdge],
) -> PartEmbedding:
    """Correctness-preserving fallback: re-embed the union directly."""
    rotation = embed_with_boundary(union, new_boundary)
    return PartEmbedding(
        part_id=min(p.part_id for p in parts),
        graph=union,
        boundary=new_boundary,
        rotation=rotation,
        depth=graph_depth(union),
    )


def merge_parts(parts: list[PartEmbedding], verify: bool = True) -> MergeResult:
    """Merge ``parts`` (>= 1, mutually connected or not) into one part.

    Raises :class:`NonPlanarNetworkError` when no planar arrangement
    exists.  See the module docstring for the four-step information flow.
    """
    if not parts:
        raise ValueError("nothing to merge")
    if len(parts) == 1:
        p = parts[0]
        return MergeResult(part=p, part_depths={p.part_id: p.depth})

    union, new_boundary, connecting = _union_graph_and_boundary(parts)
    if not union.is_connected():
        raise ValueError("merged parts must be connected via half-embedded edges")

    result = MergeResult(part=None)  # type: ignore[arg-type]
    result.part_depths = {p.part_id: p.depth for p in parts}

    owner_of: dict[NodeId, int] = {v: p.part_id for p in parts for v in p.graph.nodes()}
    connecting_count: dict[int, int] = {}
    for p in parts:
        lanes = sum(
            1 for _, x in p.boundary if x in owner_of and owner_of[x] != p.part_id
        )
        connecting_count[p.part_id] = max(1, lanes)
    result.attachment_edges = connecting_count

    try:
        merged = _skeleton_merge(parts, union, new_boundary, connecting, result, verify)
    except (SkeletonError, RealizationError, EmbeddingViolation, RotationError):
        # RotationError: a part's out-darts split across faces of the
        # instance embedding — impossible for partitions satisfying the
        # safety property (the instance minus any skeleton is connected,
        # so planarity forces all of a part's neighbors into one face),
        # but reachable when callers hand us an unsafe partition.
        merged = None
    if merged is None:
        # The skeleton instance was solvable only if the network is
        # planar; distinguish genuine non-planarity from infidelity by
        # attempting the direct union embedding.
        try:
            merged = _fallback_merge(parts, union, new_boundary)
        except NonPlanarNetworkError:
            raise NonPlanarNetworkError(
                "merged parts admit no planar arrangement: the network is "
                "non-planar, or the partition violates the safety property "
                "(Definition 3.1)"
            ) from None
        result.fallback_used = True
    result.part = merged
    return result


def _reduced_summary_words(
    p: PartEmbedding, connecting_set: set, decomposition=None
) -> int:
    """Words of the *merge-relevant* compressed summary of ``p``.

    Following the paper's compressed PQ-trees ("summarizes only essential
    degrees of freedom", full version §7.1.4), a merge only needs: the
    part's half-edges participating in this merge, the block structure
    *between* their attachments, and one token per maximal run of
    non-participating boundary between consecutive participating slots —
    the identities inside a run are irrelevant to the coordinator's
    choice and stay distributed.  This is what actually crosses the
    (capacity-restricted) coordinator edges; the detailed alignment of a
    run's own half-edges is settled by the later merge that consumes it.
    """
    participating = [h for h in p.boundary if frozenset(h) in connecting_set]
    if not participating:
        return 2
    # runs of non-participating half-edges between participating slots
    walk = p.boundary_order()
    runs = 0
    prev_participating = frozenset(walk[-1]) in connecting_set
    for h in walk:
        is_p = frozenset(h) in connecting_set
        if not is_p and prev_participating:
            runs += 1
        prev_participating = is_p
    reduced = PartEmbedding(
        part_id=p.part_id,
        graph=p.graph,
        boundary=participating,
        rotation=p.rotation,  # skeleton construction never reads it
        depth=p.depth,
    )
    sk_edges = interface_skeleton(reduced, decomposition=decomposition).graph.num_edges
    return 2 * sk_edges + len(participating) + runs + 1


def _skeleton_merge(
    parts: list[PartEmbedding],
    union: Graph,
    new_boundary: list[HalfEdge],
    connecting: list[tuple[NodeId, NodeId]],
    result: MergeResult,
    verify: bool,
) -> PartEmbedding | None:
    """The faithful skeleton-based merge; ``None`` when verification fails."""
    skeletons = {}
    owner: dict[NodeId, int] = {}
    connecting_keys = {frozenset(e) for e in connecting}
    for p in parts:
        # One biconnected decomposition per part serves both its full
        # skeleton and the reduced merge-relevant summary.
        decomp = (
            biconnected_components(p.graph) if len(p.attachments()) > 1 else None
        )
        skeletons[p.part_id] = interface_skeleton(p, decomposition=decomp)
        result.up_words[p.part_id] = _reduced_summary_words(
            p, connecting_keys, decomposition=decomp
        )
        for v in p.graph.nodes():
            owner[v] = p.part_id

    # The coordinator's instance: skeleton union + connecting edges + rest.
    instance = Graph()
    for sk in skeletons.values():
        for v in sk.graph.nodes():
            instance.add_node(v)
        for u, v in sk.graph.edges():
            instance.add_edge(u, v)
    for u, x in connecting:
        instance.add_edge(u, x)
    external_attachments = sorted({u for u, _ in new_boundary}, key=sort_key)
    if external_attachments:
        instance.add_node(_REST)
        for u in external_attachments:
            instance.add_edge(_REST, u)
    try:
        instance_rotation = planar_embedding(instance)
    except NonPlanarGraphError:
        return None  # resolved by the caller (fallback or non-planar)

    # Prescribe each part's boundary order from the instance arrangement.
    external_at: dict[NodeId, list[HalfEdge]] = {}
    for u, x in new_boundary:
        external_at.setdefault(u, []).append((u, x))
    for u in external_at:
        external_at[u].sort(key=sort_key)

    merged_order: dict[NodeId, tuple] = {}
    for p in parts:
        sk = skeletons[p.part_id]
        walk = contracted_rotation(instance_rotation, set(sk.graph.nodes()))
        prescribed: list[HalfEdge] = []
        for a, b in walk:
            if b == _REST:
                prescribed.extend(external_at.get(a, []))
            else:
                prescribed.append((a, b))
        # The scatter carries the coordinator's *decisions* — one flip bit
        # per skeleton block and one slot index per attachment (the
        # paper's Figure 4 moves); each node then recomputes its own
        # rotation locally (the Section 3 distributed representation).
        # That is proportional to the skeleton, not to the boundary.
        result.down_words[p.part_id] = result.up_words[p.part_id]
        realized = realize_boundary_order(p, prescribed)
        # Fold the realized rotations into the merged part, resolving
        # stubs of connecting edges into real neighbors.
        for v in p.graph.nodes():
            ring = []
            for nb in realized.order(v):
                if is_stub(nb):
                    half = (nb[1], nb[2])
                    if frozenset(half) in connecting_keys:
                        ring.append(half[1])
                    else:
                        ring.append(nb)  # still external: keep the stub
                else:
                    ring.append(nb)
            merged_order[v] = tuple(ring)

    merged_graph = union
    augmented = augment_with_stubs(merged_graph, new_boundary)
    for h in new_boundary:
        merged_order[stub_node(h)] = (h[0],)
    merged_rotation = RotationSystem(augmented, merged_order)

    merged = PartEmbedding(
        part_id=min(p.part_id for p in parts),
        graph=merged_graph,
        boundary=new_boundary,
        rotation=merged_rotation,
        depth=graph_depth(merged_graph),
    )
    if verify:
        boundary_stubs = [stub_node(h) for h in new_boundary]
        check_embedding_with_boundary(merged_rotation, boundary_stubs)
    return merged


# -- round charging for the four merge patterns (Section 5.2) --------------


def vertex_coordinated_rounds(result: MergeResult, bandwidth: int = 1) -> int:
    """Round cost of one vertex-coordinated merge, without charging it.

    Each part pipelines its summary toward the coordinator through *all*
    of its merge edges in parallel (the interface is stored distributed
    across the part — paper Section 3 — so disjoint pieces take disjoint
    lanes): ``depth + ceil(words / lanes)`` rounds per part, all parts
    concurrently; the decision scatter mirrors the gather.
    """
    import math

    def cost(pid: int, words: int) -> int:
        lanes = result.attachment_edges.get(pid, 1)
        return stream_rounds(
            result.part_depths[pid] + 1, math.ceil(words / lanes), bandwidth
        )

    up = max((cost(pid, w) for pid, w in result.up_words.items()), default=0)
    down = max((cost(pid, w) for pid, w in result.down_words.items()), default=0)
    return up + down


def charge_pairwise_merge(
    metrics: RoundMetrics, result: MergeResult, bandwidth: int = 1, detail: str = ""
) -> int:
    """Pairwise merge: summaries cross the single connecting edge."""
    return charge_vertex_coordinated_merge(
        metrics, result, bandwidth, phase="merge:pairwise", detail=detail
    )


def charge_star_merge(
    metrics: RoundMetrics, result: MergeResult, bandwidth: int = 1, detail: str = ""
) -> int:
    """Star merge: l pairwise merges with a shared center, in parallel.

    Each leaf's exchange with the center is independent (distinct center
    edges), so the round cost is the max over leaves, exactly why the
    paper insists star merges parallelize.
    """
    return charge_vertex_coordinated_merge(
        metrics, result, bandwidth, phase="merge:star", detail=detail
    )


def charge_vertex_coordinated_merge(
    metrics: RoundMetrics,
    result: MergeResult,
    bandwidth: int = 1,
    phase: str = "merge:vertex",
    detail: str = "",
) -> int:
    """Vertex-coordinated merge: every part talks to one coordinator vertex."""
    rounds = vertex_coordinated_rounds(result, bandwidth)
    metrics.charge(phase, rounds, result.total_up + result.total_down, detail)
    return rounds


def charge_path_coordinated_merge(
    metrics: RoundMetrics,
    result: MergeResult,
    path_length: int,
    bandwidth: int = 1,
    detail: str = "",
) -> int:
    """Path-coordinated merge: traffic additionally pipelines along P0.

    Gather: each part reaches its P0 attachment in parallel
    (depth + words), then all summaries stream along the path to the
    solving endpoint; scatter mirrors it.
    """
    import math

    def cost(pid: int, words: int) -> int:
        lanes = result.attachment_edges.get(pid, 1)
        return stream_rounds(
            result.part_depths[pid] + 1, math.ceil(words / lanes), bandwidth
        )

    local_up = max((cost(pid, w) for pid, w in result.up_words.items()), default=0)
    local_down = max((cost(pid, w) for pid, w in result.down_words.items()), default=0)
    # The along-path backbone coordinates the parts with O(1) words per
    # part plus the path itself (the per-edge alignment data flows over
    # the parts' own half-embedded edges, not the path).
    k = len(result.up_words)
    along_path = 2 * stream_rounds(max(path_length, 1), 2 * k + 1, bandwidth)
    rounds = local_up + local_down + along_path
    metrics.charge("merge:path", rounds, result.total_up + result.total_down, detail)
    return rounds
