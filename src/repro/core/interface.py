"""Part interfaces and their compressed skeletons (paper Section 3).

The *interface* of a part is the set of cyclic orders of its
half-embedded edges that admit a planar embedding of the part.
Observation 3.2: this set is exactly characterized by the part's
biconnected-component decomposition — each block's attachment order is
fixed up to a flip, and blocks permute freely around cut vertices.

The **skeleton** built here is this reproduction's analogue of the
paper's "compressed variant of PQ-trees that summarizes only essential
degrees of freedom" (full version §7.1.4).  It is a small planar graph
whose planar embeddings realize exactly the part's interface:

* every block that lies between attachments is replaced by a **wheel**
  through its attachment vertices in their fixed cyclic order — a wheel
  is 3-connected, so its embedding is rigid up to a mirror flip, exactly
  the block's freedom; the hub also blocks the interior, since nothing
  else may embed inside a block (the safety property puts all
  half-embedded edges on the part's single outer face);
* blocks with two relevant vertices become single edges (their order is
  trivially flippable);
* cut vertices are shared between their blocks' gadgets, giving the free
  permutation of blocks around them.

The skeleton's serialized size is measured in CONGEST words; this is the
payload a merge coordinator actually receives (experiment E10 shows it
scales with the boundary, not the part size).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..planar.biconnected import BiconnectedDecomposition, biconnected_components
from ..planar.graph import Graph, NodeId, sort_key
from ..planar.lr_planarity import NonPlanarGraphError, planar_embedding
from .parts import PartEmbedding

__all__ = ["InterfaceSkeleton", "SkeletonError", "interface_skeleton", "block_attachment_order"]

# A block's attachment order is a pure function of its (canonically
# sorted) edge set and the relevant vertices, and the same leaf blocks
# reappear in every ancestor merge up the recursion — so the apex
# embeds are memoized globally.  Capped against unbounded growth.
_BLOCK_ORDER_MEMO: dict[tuple, tuple] = {}
_BLOCK_ORDER_MAX_ENTRIES = 4096


def clear_caches() -> None:
    """Drop the block-order memo (see ``repro.shard.caches.clear_caches``:
    forked workers start with process-private caches)."""
    _BLOCK_ORDER_MEMO.clear()


class SkeletonError(RuntimeError):
    """The skeleton construction hit an inconsistent part embedding."""


@dataclass
class InterfaceSkeleton:
    """A part's compressed interface, ready to ship to a coordinator."""

    part_id: int
    graph: Graph  # attachment/cut vertices plus ("hub", ...) pseudo-vertices
    anchors: set[NodeId]  # the real part vertices present in the skeleton
    words: int  # serialized size in CONGEST words

    def encode(self) -> tuple:
        """Canonical wire encoding (what the words measure counts)."""
        return (
            self.part_id,
            tuple(sorted((repr(u), repr(v)) for u, v in self.graph.edges())),
        )


def block_attachment_order(block_graph: Graph, relevant: list[NodeId]) -> list[NodeId]:
    """The fixed cyclic order of ``relevant`` vertices around a block.

    Per Observation 3.2 (and Figure 2) the cyclic order in which a
    biconnected planar graph presents a set of co-facial vertices to the
    outside is unique up to a flip, so *any* embedding that makes them
    co-facial reveals it.  We embed the block plus an apex adjacent to
    the relevant vertices; the apex's rotation is the order.
    """
    if len(relevant) <= 2:
        return list(relevant)
    apex = ("rest",)
    augmented = block_graph.copy()
    for u in relevant:
        augmented.add_edge(apex, u)
    try:
        rotation = planar_embedding(augmented)
    except NonPlanarGraphError as exc:
        raise SkeletonError(
            "block attachments cannot be made co-facial; invalid part state"
        ) from exc
    return list(rotation.order(apex))


def _bc_tree_adjacency(
    decomposition: BiconnectedDecomposition,
) -> tuple[dict, dict]:
    """Adjacency of the block-cut tree as two maps (block->cuts, cut->blocks)."""
    cuts = decomposition.cut_vertices()
    block_to_cuts: dict = {}
    cut_to_blocks: dict = {c: [] for c in cuts}
    for component in decomposition.components:
        cid = component.component_id
        block_to_cuts[cid] = sorted(
            (v for v in component.vertices if v in cuts), key=sort_key
        )
        for v in block_to_cuts[cid]:
            cut_to_blocks[v].append(cid)
    return block_to_cuts, cut_to_blocks


def _steiner_nodes(
    terminals: set, block_to_cuts: dict, cut_to_blocks: dict
) -> set:
    """Nodes of the block-cut tree's Steiner subtree spanning ``terminals``.

    Tree nodes are tagged ``("block", cid)`` / ``("cut", v)``; terminals
    must be tagged the same way.  Computed by repeatedly pruning
    non-terminal leaves.
    """
    adjacency: dict = {}
    for cid, cuts in block_to_cuts.items():
        adjacency[("block", cid)] = [("cut", c) for c in cuts]
    for c, blocks in cut_to_blocks.items():
        adjacency[("cut", c)] = [("block", cid) for cid in blocks]
    alive = set(adjacency)
    degree = {t: len(adjacency[t]) for t in alive}
    leaves = [t for t in alive if degree[t] <= 1 and t not in terminals]
    while leaves:
        leaf = leaves.pop()
        if leaf not in alive or leaf in terminals:
            continue
        alive.discard(leaf)
        for nb in adjacency[leaf]:
            if nb in alive:
                degree[nb] -= 1
                if degree[nb] <= 1 and nb not in terminals:
                    leaves.append(nb)
    # Drop anything not connecting terminals (other components of the forest).
    if terminals:
        reachable: set = set()
        stack = [next(iter(terminals))]
        while stack:
            t = stack.pop()
            if t in reachable or t not in alive:
                continue
            reachable.add(t)
            stack.extend(nb for nb in adjacency[t] if nb in alive)
        alive = reachable
    return alive


def _smooth_chains(skeleton: Graph, keep: set) -> None:
    """Contract degree-2 connector vertices (non-attachments) to edges.

    Chains of blocks between attachments carry no embedding freedom, so
    the compressed summary replaces each by a single edge — this is what
    makes the skeleton size O(boundary) instead of O(part diameter).
    """
    changed = True
    while changed:
        changed = False
        for v in list(skeleton.nodes()):
            if v in keep or skeleton.degree(v) != 2:
                continue
            if isinstance(v, tuple) and len(v) == 3 and v[0] == "hub":
                continue
            a, b = skeleton.neighbors(v)
            skeleton.remove_node(v)
            if a != b:
                skeleton.add_edge(a, b)
            changed = True


def interface_skeleton(
    part: PartEmbedding,
    decomposition: BiconnectedDecomposition | None = None,
) -> InterfaceSkeleton:
    """Compress ``part`` to its interface skeleton (see module docstring).

    ``decomposition`` lets a caller share one biconnected decomposition
    of ``part.graph`` across several skeleton computations (a merge
    builds both the full and the reduced summary of each part).
    """
    attachments = part.attachments()
    skeleton = Graph()
    anchors: set[NodeId] = set()

    if len(attachments) <= 1:
        anchor = attachments[0] if attachments else part.graph.nodes()[0]
        skeleton.add_node(anchor)
        anchors.add(anchor)
        return InterfaceSkeleton(part.part_id, skeleton, anchors, words=2)

    if decomposition is None:
        decomposition = biconnected_components(part.graph)
    block_to_cuts, cut_to_blocks = _bc_tree_adjacency(decomposition)
    cuts = decomposition.cut_vertices()

    terminals: set = set()
    for u in attachments:
        if u in cuts:
            terminals.add(("cut", u))
        else:
            blocks = decomposition.components_of.get(u, [])
            if not blocks:  # pragma: no cover - connected multi-vertex part
                raise SkeletonError(f"attachment {u!r} lies in no block")
            terminals.add(("block", blocks[0]))
    steiner = _steiner_nodes(terminals, block_to_cuts, cut_to_blocks)

    attachment_set = set(attachments)
    for node in sorted(steiner, key=sort_key):
        kind, key = node
        if kind != "block":
            continue
        component = decomposition.component_by_id[key]
        relevant = sorted(
            {
                v
                for v in component.vertices
                if v in attachment_set
                or (v in cuts and ("cut", v) in steiner)
            },
            key=sort_key,
        )
        if len(relevant) <= 1:
            for v in relevant:
                skeleton.add_node(v)
                anchors.add(v)
            continue
        edges_sorted = tuple(sorted(component.edges, key=sort_key))
        memo_key = (edges_sorted, tuple(relevant))
        order = _BLOCK_ORDER_MEMO.get(memo_key)
        if order is None:
            block_graph = Graph()
            for u, v in edges_sorted:
                block_graph.add_edge(u, v)
            order = tuple(block_attachment_order(block_graph, relevant))
            if len(_BLOCK_ORDER_MEMO) >= _BLOCK_ORDER_MAX_ENTRIES:
                _BLOCK_ORDER_MEMO.clear()
            _BLOCK_ORDER_MEMO[memo_key] = order
        anchors.update(order)
        if len(order) == 2:
            skeleton.add_edge(order[0], order[1])
        else:
            hub = ("hub", part.part_id, repr(key))
            for i, v in enumerate(order):
                skeleton.add_edge(v, order[(i + 1) % len(order)])
                skeleton.add_edge(hub, v)

    # Ensure every attachment is present even if pruning removed its block.
    for u in attachments:
        skeleton.add_node(u)
        anchors.add(u)

    _smooth_chains(skeleton, attachment_set)
    anchors &= set(skeleton.nodes())

    if not skeleton.is_connected():  # pragma: no cover - invariant
        raise SkeletonError("skeleton is disconnected; Steiner reduction is buggy")

    # One word per vertex identifier on the wire: two per skeleton edge,
    # one per half-embedded edge slot, plus one framing word.
    words = 2 * skeleton.num_edges + len(part.boundary) + 1
    return InterfaceSkeleton(part.part_id, skeleton, anchors, words)
