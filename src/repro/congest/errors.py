"""Exceptions raised by the CONGEST simulator."""

from __future__ import annotations

__all__ = [
    "CongestError",
    "BandwidthExceededError",
    "RoundLimitExceededError",
    "ProtocolViolationError",
]


class CongestError(RuntimeError):
    """Base class for simulator failures."""


class BandwidthExceededError(CongestError):
    """A node tried to push more than ``B = O(log n)`` bits over one edge in one round."""


class RoundLimitExceededError(CongestError):
    """An execution did not quiesce within the configured round budget."""


class ProtocolViolationError(CongestError):
    """A node program misbehaved (sent to a non-neighbor, etc.)."""
