"""Exceptions raised by the CONGEST simulator."""

from __future__ import annotations

__all__ = [
    "CongestError",
    "BandwidthExceededError",
    "RoundLimitExceededError",
    "ProtocolViolationError",
    "MessageCorruptionError",
    "RetransmitBudgetExceededError",
    "FaultSpecError",
]


class CongestError(RuntimeError):
    """Base class for simulator failures."""


class BandwidthExceededError(CongestError):
    """A node tried to push more than ``B = O(log n)`` bits over one edge in one round."""


class RoundLimitExceededError(CongestError):
    """An execution did not quiesce within the configured round budget."""


class ProtocolViolationError(CongestError):
    """A node program misbehaved (sent to a non-neighbor, etc.)."""


class MessageCorruptionError(CongestError):
    """A wire frame failed to decode (checksum mismatch or malformed body).

    This is the *only* exception message decoding may raise: any
    underlying ``struct``/unicode/value error is wrapped, so callers can
    treat corruption as a typed, countable event rather than a crash.
    """


class RetransmitBudgetExceededError(CongestError):
    """The reliable-delivery layer gave up on a link: a frame stayed
    unacknowledged through the configured maximum number of
    retransmission attempts."""


class FaultSpecError(ValueError):
    """A fault-plan specification string or parameter was invalid."""
