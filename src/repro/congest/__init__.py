"""The CONGEST model simulator (synchronous message passing, O(log n)-bit messages)."""

from .errors import (
    BandwidthExceededError,
    CongestError,
    FaultSpecError,
    MessageCorruptionError,
    ProtocolViolationError,
    RetransmitBudgetExceededError,
    RoundLimitExceededError,
)
from .faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    FaultState,
    FaultStats,
    LinkOutage,
    default_fault_injector,
    fault_override,
)
from .message import (
    Message,
    PayloadMeter,
    decode_payload,
    encode_payload,
    flip_bit,
    payload_bits,
    payload_words,
    word_bits,
)
from .metrics import Charge, RoundMetrics
from .network import (
    SCHEDULERS,
    CongestNetwork,
    default_scheduler,
    run_program,
    scheduler_override,
)
from .node import NodeProgram
from .pipelining import (
    aggregate_rounds,
    broadcast_rounds,
    convergecast_rounds,
    gather_scatter_rounds,
    stream_rounds,
)
from .reliable import ReliableProgram, run_reliable

__all__ = [
    "CongestNetwork",
    "NodeProgram",
    "RoundMetrics",
    "Charge",
    "run_program",
    "SCHEDULERS",
    "default_scheduler",
    "scheduler_override",
    "PayloadMeter",
    "payload_words",
    "payload_bits",
    "word_bits",
    "Message",
    "encode_payload",
    "decode_payload",
    "flip_bit",
    "FaultPlan",
    "FaultInjector",
    "FaultState",
    "FaultStats",
    "CrashWindow",
    "LinkOutage",
    "fault_override",
    "default_fault_injector",
    "ReliableProgram",
    "run_reliable",
    "stream_rounds",
    "convergecast_rounds",
    "broadcast_rounds",
    "aggregate_rounds",
    "gather_scatter_rounds",
    "CongestError",
    "BandwidthExceededError",
    "RoundLimitExceededError",
    "ProtocolViolationError",
    "MessageCorruptionError",
    "RetransmitBudgetExceededError",
    "FaultSpecError",
]
