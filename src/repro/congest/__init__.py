"""The CONGEST model simulator (synchronous message passing, O(log n)-bit messages)."""

from .errors import (
    BandwidthExceededError,
    CongestError,
    ProtocolViolationError,
    RoundLimitExceededError,
)
from .message import PayloadMeter, payload_bits, payload_words, word_bits
from .metrics import Charge, RoundMetrics
from .network import (
    SCHEDULERS,
    CongestNetwork,
    default_scheduler,
    run_program,
    scheduler_override,
)
from .node import NodeProgram
from .pipelining import (
    aggregate_rounds,
    broadcast_rounds,
    convergecast_rounds,
    gather_scatter_rounds,
    stream_rounds,
)

__all__ = [
    "CongestNetwork",
    "NodeProgram",
    "RoundMetrics",
    "Charge",
    "run_program",
    "SCHEDULERS",
    "default_scheduler",
    "scheduler_override",
    "PayloadMeter",
    "payload_words",
    "payload_bits",
    "word_bits",
    "stream_rounds",
    "convergecast_rounds",
    "broadcast_rounds",
    "aggregate_rounds",
    "gather_scatter_rounds",
    "CongestError",
    "BandwidthExceededError",
    "RoundLimitExceededError",
    "ProtocolViolationError",
]
