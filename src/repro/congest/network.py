"""The synchronous CONGEST network simulator.

Implements the model of [Pel00] as used by the paper: communication
proceeds in synchronous rounds; per round, each node may send one
``B = O(log n)``-bit message along each incident edge; local computation
is unbounded.  The simulator delivers messages with one-round latency,
enforces the bandwidth bound on every (edge, round) pair, and feeds a
:class:`~repro.congest.metrics.RoundMetrics` ledger.

Two schedulers drive the same model:

* ``"event"`` (the default) — an active-set, event-driven round loop:
  per round only the nodes with a non-empty inbox, the nodes that
  requested a wakeup (``needs_wakeup``), and unported programs
  (``event_driven = False``) are called, so the wall-clock cost of a
  round is proportional to the *work* in it (deliveries + genuinely
  active nodes) rather than Θ(n);
* ``"dense"`` — the reference loop that polls every node every round.

Both produce **identical** CONGEST semantics and metrics — the same
``rounds``, ``messages``, ``total_words``, per-phase tags, and observer
callbacks — which ``tests/congest/test_scheduler_equivalence.py``
enforces differentially.  The schedulers differ only in the
``node_activations`` they consume (the event scheduler additionally
reports the activations it *saved* versus the dense loop).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from contextlib import contextmanager
from typing import Any, Iterator

from ..obs.causal import default_causal_recorder
from ..planar.graph import Graph, NodeId
from .errors import BandwidthExceededError, ProtocolViolationError, RoundLimitExceededError
from .faults import FaultInjector, FaultPlan, FaultState, default_fault_injector
from .message import PayloadMeter, word_bits
from .metrics import RoundMetrics
from .node import NodeProgram

__all__ = [
    "CongestNetwork",
    "run_program",
    "SCHEDULERS",
    "default_scheduler",
    "scheduler_override",
]

SCHEDULERS = ("event", "dense")

_default_scheduler = "event"


def default_scheduler() -> str:
    """The scheduler new networks use when none is requested explicitly."""
    return _default_scheduler


def _validate_scheduler(name: str) -> str:
    if name not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {name!r}; options: {SCHEDULERS}")
    return name


@contextmanager
def scheduler_override(name: str) -> Iterator[None]:
    """Force every :class:`CongestNetwork` created inside the block (that
    does not pick a scheduler explicitly) onto ``name``.

    This is how the differential suite and the E15 bench run the *whole*
    embedding pipeline — which creates networks internally — under the
    dense reference scheduler.
    """
    global _default_scheduler
    _validate_scheduler(name)
    previous = _default_scheduler
    _default_scheduler = name
    try:
        yield
    finally:
        _default_scheduler = previous


class CongestNetwork:
    """A CONGEST execution environment over a fixed communication graph."""

    def __init__(
        self,
        graph: Graph,
        bandwidth_words: int = 8,
        metrics: RoundMetrics | None = None,
        scheduler: str | None = None,
        faults: FaultPlan | FaultInjector | None = None,
    ) -> None:
        """Create a network.

        ``bandwidth_words`` is the per-edge per-round message budget in
        words (one word = ``ceil(log2(n+1)) + 2`` bits); the CONGEST bound
        ``B = O(log n)`` bits means a constant number of words, and the
        default constant 8 matches the slack every textbook algorithm
        assumes.  Exceeding it raises :class:`BandwidthExceededError`.

        ``scheduler`` selects the round loop: ``"event"`` (active-set,
        the default) or ``"dense"`` (poll every node every round); both
        yield identical metrics.  ``None`` uses the process default (see
        :func:`scheduler_override`).

        ``faults`` attaches a deterministic chaos schedule (a
        :class:`~repro.congest.faults.FaultPlan`, or a shared
        :class:`~repro.congest.faults.FaultInjector` when several
        networks must see one global fault clock).  ``None`` uses the
        process default (see
        :func:`~repro.congest.faults.fault_override`) — which is no
        faults, and a delivery path with zero fault-handling code.
        """
        self.graph = graph
        self.bandwidth_words = bandwidth_words
        self.metrics = metrics if metrics is not None else RoundMetrics()
        self.word_bits = word_bits(max(1, graph.num_nodes))
        self.scheduler = _validate_scheduler(
            scheduler if scheduler is not None else _default_scheduler
        )
        # Memoizing payload meter: each distinct immutable payload shape
        # is measured once per network, not once per message.
        self._measure = PayloadMeter(self.word_bits)
        # Per-round observer (e.g. a repro.obs.Tracer), inherited from the
        # ledger; None means the round loop runs with no tracing code at all.
        self.observer = getattr(self.metrics, "observer", None)
        # The single shared delivery hook: BOTH scheduler loops post every
        # outbox through ``self._deliver``, so fault injection happens in
        # exactly one place and the loops stay differentially testable
        # under identical fault schedules.  Without faults the hook *is*
        # the plain fast path — no per-message fault code at all.
        if faults is None:
            injector = default_fault_injector()
        elif isinstance(faults, FaultInjector):
            injector = faults
        else:
            injector = FaultInjector(faults)
        if injector is not None:
            self._fault_state: FaultState | None = FaultState(
                injector, graph, self.observer
            )
            self._deliver = self._post_outbox_faulty
        else:
            self._fault_state = None
            self._deliver = self._post_outbox
        # Causal recorder (see repro.obs.causal): when one is installed
        # via ``causal_override``, wrap the delivery hook once, here.  An
        # unrecorded network keeps the unwrapped hook — the per-round hot
        # path carries no causal code at all.
        self._causal = default_causal_recorder()
        if self._causal is not None:
            self._deliver = self._causal.wrap_post(self._deliver)

    @property
    def fault_stats(self):
        """The shared :class:`~repro.congest.faults.FaultStats` collector
        when a fault schedule is attached, else ``None``."""
        return self._fault_state.stats if self._fault_state is not None else None

    def run(
        self,
        programs: Mapping[NodeId, NodeProgram],
        max_rounds: int = 1_000_000,
        phase: str | None = None,
    ) -> dict[NodeId, Any]:
        """Drive ``programs`` to quiescence; return their local results.

        Termination: every program reports ``done`` and no messages are in
        flight.  The number of rounds consumed is recorded in the metrics
        ledger (and attributed to ``phase`` when given), along with the
        node activations the scheduler spent and — under the event-driven
        scheduler — the activations it saved versus the dense loop.
        """
        if set(programs) != set(self.graph.nodes()):
            raise ProtocolViolationError("programs must cover exactly the graph's nodes")

        metrics = self.metrics
        messages_before = metrics.messages
        words_before = metrics.total_words
        fs = self._fault_state
        extra_bandwidth = 0
        if fs is not None and not fs.plan.is_null:
            # A lossy network needs a transport: transparently run every
            # program over the reliable ARQ layer (unless the caller
            # already wrapped them), widening the bandwidth so the ARQ
            # header never pushes a legal payload over budget.  The
            # retransmit/ack traffic this generates is what the
            # ``recovery`` ledger tag accounts.
            programs, extra_bandwidth = self._wrap_reliable(programs)
            self.bandwidth_words += extra_bandwidth
        loop = self._loop_dense if self.scheduler == "dense" else self._loop_event
        causal = self._causal
        if causal is not None:
            causal.begin_execution(phase)
        if fs is not None:
            fs.start_run()
        rounds_used = None
        try:
            rounds_used, activated, iterations = loop(programs, max_rounds, phase)
        finally:
            # A None rounds_used tells the recorder the execution died
            # mid-flight; the partial causal chain is still recorded.
            if causal is not None:
                causal.end_execution(rounds_used)
            # Advance the injector's global clock even when the execution
            # failed — a retried phase must see fresh fault draws and run
            # past any crash/outage window the failed attempt died in.
            if fs is not None:
                fs.close_run()
            if extra_bandwidth:
                self.bandwidth_words -= extra_bandwidth
        saved = len(programs) * iterations - activated
        metrics.record_activations(activated, saved)
        rec_rounds = rec_msgs = rec_words = 0
        if fs is not None:
            rec_rounds, rec_msgs, rec_words = fs.take_recovery()
        if phase is not None:
            metrics.tag_phase(
                phase,
                rounds_used - rec_rounds,
                messages=metrics.messages - messages_before - rec_msgs,
                words=metrics.total_words - words_before - rec_words,
                activations=activated,
                activations_saved=saved,
            )
            if rec_msgs:
                # Retransmit/ack traffic from the reliable layer: already
                # counted by record_round as it happened; file its
                # provenance under the dedicated recovery tag so ledger,
                # spans, and --json reports show the overhead.
                metrics.tag_phase(
                    "recovery",
                    rec_rounds,
                    messages=rec_msgs,
                    words=rec_words,
                    detail=f"reliable-delivery overhead during {phase}",
                )
        return {v: programs[v].result() for v in programs}

    def _wrap_reliable(
        self, programs: Mapping[NodeId, NodeProgram]
    ) -> tuple[Mapping[NodeId, NodeProgram], int]:
        """Wrap programs in the ARQ layer for a lossy execution.

        Returns the (possibly wrapped) programs and the extra bandwidth
        budget the ARQ header needs — zero when the caller already
        supplied :class:`~repro.congest.reliable.ReliableProgram`
        instances (e.g. via ``run_reliable``, which widens at
        construction).  Imported lazily: ``reliable`` imports this
        module.
        """
        from .reliable import RELIABLE_HEADER_WORDS, ReliableProgram

        if any(isinstance(p, ReliableProgram) for p in programs.values()):
            return programs, 0
        wrapped = {
            v: ReliableProgram(p, v, self.graph.neighbors(v))
            for v, p in programs.items()
        }
        return wrapped, RELIABLE_HEADER_WORDS

    # -- schedulers --------------------------------------------------------

    def _loop_dense(
        self,
        programs: Mapping[NodeId, NodeProgram],
        max_rounds: int,
        phase: str | None,
    ) -> tuple[int, int, int]:
        """The reference loop: every node is called every round."""
        observer = self.observer
        metrics = self.metrics
        fs = self._fault_state
        post_outbox = self._deliver
        in_flight: dict[NodeId, dict[NodeId, Any]] = {}
        rounds_used = 0
        activated = 0
        iterations = 1  # the on_start sweep

        # Round 1 sends: on_start.  Nodes inside a crash window are not
        # activated at all — a node down at round 1 never runs on_start.
        crashed = fs.crashed_at(1) if fs is not None else ()
        pending = words = max_edge = 0
        for v, program in programs.items():
            if crashed and v in crashed:
                continue
            outbox = program.on_start()
            activated += 1
            if outbox:
                c, w, me = post_outbox(v, outbox, in_flight)
                pending += c
                words += w
                if me > max_edge:
                    max_edge = me
        if pending:
            rounds_used += 1
            metrics.record_round(pending, words, max_edge)
            if observer is not None:
                observer.on_round(1, pending, words, max_edge)

        round_no = 1
        while True:
            if (
                pending == 0
                and (fs is None or fs.no_pending())
                and all(programs[v].done for v in programs)
            ):
                break
            if round_no > max_rounds:
                raise RoundLimitExceededError(
                    self._limit_diagnosis(programs, phase, round_no, max_rounds, pending)
                )
            round_no += 1
            iterations += 1
            inboxes = in_flight
            in_flight = {}
            if fs is not None:
                fs.begin_round(round_no, inboxes)
                crashed = fs.crashed_at(round_no)
            pending = words = max_edge = 0
            for v, program in programs.items():
                if crashed and v in crashed:
                    continue
                outbox = program.on_round(round_no, inboxes.get(v) or {})
                activated += 1
                if outbox:
                    c, w, me = post_outbox(v, outbox, in_flight)
                    pending += c
                    words += w
                    if me > max_edge:
                        max_edge = me
            if pending:
                # A CONGEST round bundles send + receive; an iteration in
                # which nothing is sent only consumes local computation.
                rounds_used += 1
                metrics.record_round(pending, words, max_edge)
                if observer is not None:
                    observer.on_round(round_no, pending, words, max_edge)
        return rounds_used, activated, iterations

    def _loop_event(
        self,
        programs: Mapping[NodeId, NodeProgram],
        max_rounds: int,
        phase: str | None,
    ) -> tuple[int, int, int]:
        """The active-set loop: wake only nodes with messages or requests.

        Semantic equivalence with :meth:`_loop_dense` rests on two pieces:

        * the event-driven contract (skipped calls would have been no-ops,
          see :mod:`repro.congest.node`), and
        * waking the active set in *program order* (``sorted`` by each
          node's index in ``programs``), so message posting — and hence
          every inbox's sender order — is exactly the dense loop's.

        Quiescence is tracked incrementally: an undone-counter updated
        only for nodes that were just activated (a program's ``done`` can
        only change inside its own calls), replacing the O(n) all-done
        scan; inboxes are created lazily on first delivery, replacing the
        O(n) per-round dict rebuild.
        """
        observer = self.observer
        metrics = self.metrics
        fs = self._fault_state
        post_outbox = self._deliver
        in_flight: dict[NodeId, dict[NodeId, Any]] = {}
        rounds_used = 0
        activated = 0
        iterations = 1

        order = {v: i for i, v in enumerate(programs)}
        polled = [v for v, p in programs.items() if not p.event_driven]
        wakers: set[NodeId] = set()
        done_seen: dict[NodeId, bool] = {}
        undone = 0

        # Round 1 sends: on_start (every node, like the dense loop) —
        # except nodes inside a crash window, which are never activated;
        # their done/wake state is read without running them.
        crashed = fs.crashed_at(1) if fs is not None else ()
        pending = words = max_edge = 0
        for v, program in programs.items():
            if crashed and v in crashed:
                d = program.done
                done_seen[v] = d
                if not d:
                    undone += 1
                continue
            outbox = program.on_start()
            activated += 1
            if outbox:
                c, w, me = post_outbox(v, outbox, in_flight)
                pending += c
                words += w
                if me > max_edge:
                    max_edge = me
            d = program.done
            done_seen[v] = d
            if not d:
                undone += 1
            if program.needs_wakeup:
                wakers.add(v)
        if pending:
            rounds_used += 1
            metrics.record_round(pending, words, max_edge)
            if observer is not None:
                observer.on_round(1, pending, words, max_edge)

        round_no = 1
        while True:
            if pending == 0 and undone == 0 and (fs is None or fs.no_pending()):
                break
            if round_no > max_rounds:
                raise RoundLimitExceededError(
                    self._limit_diagnosis(programs, phase, round_no, max_rounds, pending)
                )
            round_no += 1
            iterations += 1
            inboxes = in_flight
            in_flight = {}
            if fs is not None:
                # Merge due delayed frames, drop crashed receivers' inboxes,
                # and wake nodes whose crash window just ended (the dense
                # loop polls them anyway; under the event-driven contract
                # that restart poll is the only activation they need to
                # re-request attention).
                fs.begin_round(round_no, inboxes)
                crashed = fs.crashed_at(round_no)
            if wakers or polled:
                active = set(inboxes)
                active.update(wakers)
                active.update(polled)
            else:
                active = set(inboxes)
            if fs is not None:
                if fs.restarted:
                    active.update(v for v in fs.restarted if v in programs)
                if crashed:
                    active.difference_update(crashed)
            if not active:
                if fs is not None:
                    if undone == 0 and fs.no_pending():
                        # Everything already done; the last frames in
                        # flight were eaten by faults.
                        break
                    if not fs.no_pending() or fs.windows_pending():
                        # Delayed frames still maturing, or a crash window
                        # still active/ahead: let fault time advance in a
                        # silent round, exactly as the dense loop does.
                        pending = 0
                        continue
                # No messages, no wakeup requests, nothing polled — yet
                # some program is not done.  The dense loop would spin
                # silent rounds until max_rounds; fail fast instead with
                # the same exception type and a stall diagnosis.
                raise RoundLimitExceededError(
                    self._stall_diagnosis(programs, phase, round_no, undone)
                )
            pending = words = max_edge = 0
            wake = (
                list(active) if len(active) == 1
                else sorted(active, key=order.__getitem__)
            )
            for v in wake:
                program = programs[v]
                outbox = program.on_round(round_no, inboxes.get(v) or {})
                activated += 1
                if outbox:
                    c, w, me = post_outbox(v, outbox, in_flight)
                    pending += c
                    words += w
                    if me > max_edge:
                        max_edge = me
                d = program.done
                if d != done_seen[v]:
                    done_seen[v] = d
                    undone += -1 if d else 1
                if program.needs_wakeup:
                    wakers.add(v)
                else:
                    wakers.discard(v)
            if pending:
                rounds_used += 1
                metrics.record_round(pending, words, max_edge)
                if observer is not None:
                    observer.on_round(round_no, pending, words, max_edge)
        return rounds_used, activated, iterations

    # -- internals -------------------------------------------------------

    def _post_outbox(
        self,
        sender: NodeId,
        outbox: Mapping[NodeId, Any],
        in_flight: dict[NodeId, dict[NodeId, Any]],
    ) -> tuple[int, int, int]:
        """Validate, measure, and deliver one node's outbox — single pass.

        Each payload is measured exactly once (memoized), serving both
        the bandwidth check and the ledger.  Returns
        ``(messages, words, max_edge_words)``.
        """
        neighbors = self.graph._adj[sender]
        measure = self._measure
        bandwidth = self.bandwidth_words
        count = 0
        words = 0
        max_edge = 0
        for receiver, payload in outbox.items():
            if receiver not in neighbors:
                raise ProtocolViolationError(
                    f"{sender!r} tried to send to non-neighbor {receiver!r}"
                )
            w = measure(payload)
            if w > bandwidth:
                raise BandwidthExceededError(
                    f"{sender!r}->{receiver!r}: {w} words exceeds "
                    f"bandwidth {bandwidth}"
                )
            box = in_flight.get(receiver)
            if box is None:
                box = in_flight[receiver] = {}
            box[sender] = payload
            count += 1
            words += w
            if w > max_edge:
                max_edge = w
        return count, words, max_edge

    def _post_outbox_faulty(
        self,
        sender: NodeId,
        outbox: Mapping[NodeId, Any],
        in_flight: dict[NodeId, dict[NodeId, Any]],
    ) -> tuple[int, int, int]:
        """The fault-schedule variant of :meth:`_post_outbox`.

        Validation, measurement, and accounting are identical — a frame
        eaten by the network still consumed its bandwidth, so dropped and
        corrupted frames count as traffic — but delivery is decided by
        :meth:`FaultState.transmit` (drop / corrupt / delay / duplicate /
        link-outage), which also classifies reliable-layer recovery
        frames for the ledger.
        """
        fs = self._fault_state
        neighbors = self.graph._adj[sender]
        measure = self._measure
        bandwidth = self.bandwidth_words
        count = 0
        words = 0
        max_edge = 0
        for receiver, payload in outbox.items():
            if receiver not in neighbors:
                raise ProtocolViolationError(
                    f"{sender!r} tried to send to non-neighbor {receiver!r}"
                )
            w = measure(payload)
            if w > bandwidth:
                raise BandwidthExceededError(
                    f"{sender!r}->{receiver!r}: {w} words exceeds "
                    f"bandwidth {bandwidth}"
                )
            fs.transmit(sender, receiver, payload, w, in_flight)
            count += 1
            words += w
            if w > max_edge:
                max_edge = w
        return count, words, max_edge

    def _limit_diagnosis(
        self,
        programs: Mapping[NodeId, NodeProgram],
        phase: str | None,
        round_no: int,
        max_rounds: int,
        pending: int,
    ) -> str:
        """A RoundLimitExceededError message that says what was still running."""
        stuck = [v for v in programs if not programs[v].done]
        examples = ", ".join(repr(v) for v in sorted(stuck, key=repr)[:5])
        if len(stuck) > 5:
            examples += ", ..."
        return (
            f"no quiescence within {max_rounds} rounds"
            f" (phase={phase or '<unnamed>'}, stopped at round {round_no};"
            f" {pending} messages in flight;"
            f" {len(stuck)}/{len(programs)} programs not done"
            + (f", e.g. {examples}" if stuck else "")
            + ")"
        )

    def _stall_diagnosis(
        self,
        programs: Mapping[NodeId, NodeProgram],
        phase: str | None,
        round_no: int,
        undone: int,
    ) -> str:
        stuck = [v for v in programs if not programs[v].done]
        examples = ", ".join(repr(v) for v in sorted(stuck, key=repr)[:5])
        if len(stuck) > 5:
            examples += ", ..."
        return (
            f"event scheduler stalled at round {round_no}"
            f" (phase={phase or '<unnamed>'}): no messages in flight and no"
            f" wakeup requests, but {undone}/{len(programs)} programs not"
            " done — an event-driven program that needs silent rounds must"
            " keep needs_wakeup set"
            + (f"; e.g. {examples}" if stuck else "")
        )


def run_program(
    graph: Graph,
    factory: Callable[[NodeId, list[NodeId]], NodeProgram],
    bandwidth_words: int = 8,
    metrics: RoundMetrics | None = None,
    max_rounds: int = 1_000_000,
    phase: str | None = None,
    scheduler: str | None = None,
    faults: FaultPlan | FaultInjector | None = None,
) -> dict[NodeId, Any]:
    """Convenience wrapper: instantiate one program per node and run."""
    network = CongestNetwork(
        graph,
        bandwidth_words=bandwidth_words,
        metrics=metrics,
        scheduler=scheduler,
        faults=faults,
    )
    programs = {v: factory(v, graph.neighbors(v)) for v in graph.nodes()}
    return network.run(programs, max_rounds=max_rounds, phase=phase)
