"""The synchronous CONGEST network simulator.

Implements the model of [Pel00] as used by the paper: communication
proceeds in synchronous rounds; per round, each node may send one
``B = O(log n)``-bit message along each incident edge; local computation
is unbounded.  The simulator delivers messages with one-round latency,
enforces the bandwidth bound on every (edge, round) pair, and feeds a
:class:`~repro.congest.metrics.RoundMetrics` ledger.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from ..planar.graph import Graph, NodeId
from .errors import BandwidthExceededError, ProtocolViolationError, RoundLimitExceededError
from .message import payload_words, word_bits
from .metrics import RoundMetrics
from .node import NodeProgram

__all__ = ["CongestNetwork", "run_program"]


class CongestNetwork:
    """A CONGEST execution environment over a fixed communication graph."""

    def __init__(
        self,
        graph: Graph,
        bandwidth_words: int = 8,
        metrics: RoundMetrics | None = None,
    ) -> None:
        """Create a network.

        ``bandwidth_words`` is the per-edge per-round message budget in
        words (one word = ``ceil(log2(n+1)) + 2`` bits); the CONGEST bound
        ``B = O(log n)`` bits means a constant number of words, and the
        default constant 8 matches the slack every textbook algorithm
        assumes.  Exceeding it raises :class:`BandwidthExceededError`.
        """
        self.graph = graph
        self.bandwidth_words = bandwidth_words
        self.metrics = metrics if metrics is not None else RoundMetrics()
        self.word_bits = word_bits(max(1, graph.num_nodes))
        # Per-round observer (e.g. a repro.obs.Tracer), inherited from the
        # ledger; None means the round loop runs with no tracing code at all.
        self.observer = getattr(self.metrics, "observer", None)

    def run(
        self,
        programs: Mapping[NodeId, NodeProgram],
        max_rounds: int = 1_000_000,
        phase: str | None = None,
    ) -> dict[NodeId, Any]:
        """Drive ``programs`` to quiescence; return their local results.

        Termination: every program reports ``done`` and no messages are in
        flight.  The number of rounds consumed is recorded in the metrics
        ledger (and attributed to ``phase`` when given).
        """
        if set(programs) != set(self.graph.nodes()):
            raise ProtocolViolationError("programs must cover exactly the graph's nodes")

        observer = self.observer
        messages_before = self.metrics.messages
        words_before = self.metrics.total_words
        in_flight: dict[NodeId, dict[NodeId, Any]] = {v: {} for v in programs}
        pending = 0
        rounds_used = 0

        # Round 1 sends: on_start.
        outboxes = {v: programs[v].on_start() for v in programs}
        pending = self._post(outboxes, in_flight)
        if pending:
            rounds_used += 1
            stats = self._account(outboxes)
            if observer is not None:
                observer.on_round(1, *stats)

        round_no = 1
        while True:
            if all(programs[v].done for v in programs) and pending == 0:
                break
            if round_no > max_rounds:
                raise RoundLimitExceededError(
                    self._limit_diagnosis(programs, phase, round_no, max_rounds, pending)
                )
            round_no += 1
            inboxes = in_flight
            in_flight = {v: {} for v in programs}
            outboxes = {}
            for v in programs:
                inbox = inboxes[v]
                outboxes[v] = programs[v].on_round(round_no, inbox) or {}
            pending = self._post(outboxes, in_flight)
            if pending:
                # A CONGEST round bundles send + receive; an iteration in
                # which nothing is sent only consumes local computation.
                rounds_used += 1
                stats = self._account(outboxes)
                if observer is not None:
                    observer.on_round(round_no, *stats)

        if phase is not None:
            self.metrics.tag_phase(
                phase,
                rounds_used,
                messages=self.metrics.messages - messages_before,
                words=self.metrics.total_words - words_before,
            )
        return {v: programs[v].result() for v in programs}

    # -- internals -------------------------------------------------------

    def _post(
        self,
        outboxes: Mapping[NodeId, Mapping[NodeId, Any]],
        in_flight: dict[NodeId, dict[NodeId, Any]],
    ) -> int:
        pending = 0
        for sender, outbox in outboxes.items():
            for receiver, payload in outbox.items():
                if not self.graph.has_edge(sender, receiver):
                    raise ProtocolViolationError(
                        f"{sender!r} tried to send to non-neighbor {receiver!r}"
                    )
                words = payload_words(payload, self.word_bits)
                if words > self.bandwidth_words:
                    raise BandwidthExceededError(
                        f"{sender!r}->{receiver!r}: {words} words exceeds "
                        f"bandwidth {self.bandwidth_words}"
                    )
                in_flight[receiver][sender] = payload
                pending += 1
        return pending

    def _account(
        self, outboxes: Mapping[NodeId, Mapping[NodeId, Any]]
    ) -> tuple[int, int, int]:
        messages = 0
        words = 0
        max_edge = 0
        for sender, outbox in outboxes.items():
            for receiver, payload in outbox.items():
                w = payload_words(payload, self.word_bits)
                messages += 1
                words += w
                max_edge = max(max_edge, w)
        self.metrics.record_round(messages, words, max_edge)
        return messages, words, max_edge

    def _limit_diagnosis(
        self,
        programs: Mapping[NodeId, NodeProgram],
        phase: str | None,
        round_no: int,
        max_rounds: int,
        pending: int,
    ) -> str:
        """A RoundLimitExceededError message that says what was still running."""
        stuck = [v for v in programs if not programs[v].done]
        examples = ", ".join(repr(v) for v in sorted(stuck, key=repr)[:5])
        if len(stuck) > 5:
            examples += ", ..."
        return (
            f"no quiescence within {max_rounds} rounds"
            f" (phase={phase or '<unnamed>'}, stopped at round {round_no};"
            f" {pending} messages in flight;"
            f" {len(stuck)}/{len(programs)} programs not done"
            + (f", e.g. {examples}" if stuck else "")
            + ")"
        )


def run_program(
    graph: Graph,
    factory: Callable[[NodeId, list[NodeId]], NodeProgram],
    bandwidth_words: int = 8,
    metrics: RoundMetrics | None = None,
    max_rounds: int = 1_000_000,
    phase: str | None = None,
) -> dict[NodeId, Any]:
    """Convenience wrapper: instantiate one program per node and run."""
    network = CongestNetwork(graph, bandwidth_words=bandwidth_words, metrics=metrics)
    programs = {v: factory(v, graph.neighbors(v)) for v in graph.nodes()}
    return network.run(programs, max_rounds=max_rounds, phase=phase)
