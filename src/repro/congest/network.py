"""The synchronous CONGEST network simulator.

Implements the model of [Pel00] as used by the paper: communication
proceeds in synchronous rounds; per round, each node may send one
``B = O(log n)``-bit message along each incident edge; local computation
is unbounded.  The simulator delivers messages with one-round latency,
enforces the bandwidth bound on every (edge, round) pair, and feeds a
:class:`~repro.congest.metrics.RoundMetrics` ledger.

Two schedulers drive the same model:

* ``"event"`` (the default) — an active-set, event-driven round loop:
  per round only the nodes with a non-empty inbox, the nodes that
  requested a wakeup (``needs_wakeup``), and unported programs
  (``event_driven = False``) are called, so the wall-clock cost of a
  round is proportional to the *work* in it (deliveries + genuinely
  active nodes) rather than Θ(n);
* ``"dense"`` — the reference loop that polls every node every round.

Both produce **identical** CONGEST semantics and metrics — the same
``rounds``, ``messages``, ``total_words``, per-phase tags, and observer
callbacks — which ``tests/congest/test_scheduler_equivalence.py``
enforces differentially.  The schedulers differ only in the
``node_activations`` they consume (the event scheduler additionally
reports the activations it *saved* versus the dense loop).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from contextlib import contextmanager
from typing import Any, Iterator

from ..planar.graph import Graph, NodeId
from .errors import BandwidthExceededError, ProtocolViolationError, RoundLimitExceededError
from .message import PayloadMeter, word_bits
from .metrics import RoundMetrics
from .node import NodeProgram

__all__ = [
    "CongestNetwork",
    "run_program",
    "SCHEDULERS",
    "default_scheduler",
    "scheduler_override",
]

SCHEDULERS = ("event", "dense")

_default_scheduler = "event"


def default_scheduler() -> str:
    """The scheduler new networks use when none is requested explicitly."""
    return _default_scheduler


def _validate_scheduler(name: str) -> str:
    if name not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {name!r}; options: {SCHEDULERS}")
    return name


@contextmanager
def scheduler_override(name: str) -> Iterator[None]:
    """Force every :class:`CongestNetwork` created inside the block (that
    does not pick a scheduler explicitly) onto ``name``.

    This is how the differential suite and the E15 bench run the *whole*
    embedding pipeline — which creates networks internally — under the
    dense reference scheduler.
    """
    global _default_scheduler
    _validate_scheduler(name)
    previous = _default_scheduler
    _default_scheduler = name
    try:
        yield
    finally:
        _default_scheduler = previous


class CongestNetwork:
    """A CONGEST execution environment over a fixed communication graph."""

    def __init__(
        self,
        graph: Graph,
        bandwidth_words: int = 8,
        metrics: RoundMetrics | None = None,
        scheduler: str | None = None,
    ) -> None:
        """Create a network.

        ``bandwidth_words`` is the per-edge per-round message budget in
        words (one word = ``ceil(log2(n+1)) + 2`` bits); the CONGEST bound
        ``B = O(log n)`` bits means a constant number of words, and the
        default constant 8 matches the slack every textbook algorithm
        assumes.  Exceeding it raises :class:`BandwidthExceededError`.

        ``scheduler`` selects the round loop: ``"event"`` (active-set,
        the default) or ``"dense"`` (poll every node every round); both
        yield identical metrics.  ``None`` uses the process default (see
        :func:`scheduler_override`).
        """
        self.graph = graph
        self.bandwidth_words = bandwidth_words
        self.metrics = metrics if metrics is not None else RoundMetrics()
        self.word_bits = word_bits(max(1, graph.num_nodes))
        self.scheduler = _validate_scheduler(
            scheduler if scheduler is not None else _default_scheduler
        )
        # Memoizing payload meter: each distinct immutable payload shape
        # is measured once per network, not once per message.
        self._measure = PayloadMeter(self.word_bits)
        # Per-round observer (e.g. a repro.obs.Tracer), inherited from the
        # ledger; None means the round loop runs with no tracing code at all.
        self.observer = getattr(self.metrics, "observer", None)

    def run(
        self,
        programs: Mapping[NodeId, NodeProgram],
        max_rounds: int = 1_000_000,
        phase: str | None = None,
    ) -> dict[NodeId, Any]:
        """Drive ``programs`` to quiescence; return their local results.

        Termination: every program reports ``done`` and no messages are in
        flight.  The number of rounds consumed is recorded in the metrics
        ledger (and attributed to ``phase`` when given), along with the
        node activations the scheduler spent and — under the event-driven
        scheduler — the activations it saved versus the dense loop.
        """
        if set(programs) != set(self.graph.nodes()):
            raise ProtocolViolationError("programs must cover exactly the graph's nodes")

        metrics = self.metrics
        messages_before = metrics.messages
        words_before = metrics.total_words
        loop = self._loop_dense if self.scheduler == "dense" else self._loop_event
        rounds_used, activated, iterations = loop(programs, max_rounds, phase)
        saved = len(programs) * iterations - activated
        metrics.record_activations(activated, saved)
        if phase is not None:
            metrics.tag_phase(
                phase,
                rounds_used,
                messages=metrics.messages - messages_before,
                words=metrics.total_words - words_before,
                activations=activated,
                activations_saved=saved,
            )
        return {v: programs[v].result() for v in programs}

    # -- schedulers --------------------------------------------------------

    def _loop_dense(
        self,
        programs: Mapping[NodeId, NodeProgram],
        max_rounds: int,
        phase: str | None,
    ) -> tuple[int, int, int]:
        """The reference loop: every node is called every round."""
        observer = self.observer
        metrics = self.metrics
        in_flight: dict[NodeId, dict[NodeId, Any]] = {}
        rounds_used = 0
        activated = 0
        iterations = 1  # the on_start sweep

        # Round 1 sends: on_start.
        pending = words = max_edge = 0
        for v, program in programs.items():
            outbox = program.on_start()
            activated += 1
            if outbox:
                c, w, me = self._post_outbox(v, outbox, in_flight)
                pending += c
                words += w
                if me > max_edge:
                    max_edge = me
        if pending:
            rounds_used += 1
            metrics.record_round(pending, words, max_edge)
            if observer is not None:
                observer.on_round(1, pending, words, max_edge)

        round_no = 1
        while True:
            if pending == 0 and all(programs[v].done for v in programs):
                break
            if round_no > max_rounds:
                raise RoundLimitExceededError(
                    self._limit_diagnosis(programs, phase, round_no, max_rounds, pending)
                )
            round_no += 1
            iterations += 1
            inboxes = in_flight
            in_flight = {}
            pending = words = max_edge = 0
            for v, program in programs.items():
                outbox = program.on_round(round_no, inboxes.get(v) or {})
                activated += 1
                if outbox:
                    c, w, me = self._post_outbox(v, outbox, in_flight)
                    pending += c
                    words += w
                    if me > max_edge:
                        max_edge = me
            if pending:
                # A CONGEST round bundles send + receive; an iteration in
                # which nothing is sent only consumes local computation.
                rounds_used += 1
                metrics.record_round(pending, words, max_edge)
                if observer is not None:
                    observer.on_round(round_no, pending, words, max_edge)
        return rounds_used, activated, iterations

    def _loop_event(
        self,
        programs: Mapping[NodeId, NodeProgram],
        max_rounds: int,
        phase: str | None,
    ) -> tuple[int, int, int]:
        """The active-set loop: wake only nodes with messages or requests.

        Semantic equivalence with :meth:`_loop_dense` rests on two pieces:

        * the event-driven contract (skipped calls would have been no-ops,
          see :mod:`repro.congest.node`), and
        * waking the active set in *program order* (``sorted`` by each
          node's index in ``programs``), so message posting — and hence
          every inbox's sender order — is exactly the dense loop's.

        Quiescence is tracked incrementally: an undone-counter updated
        only for nodes that were just activated (a program's ``done`` can
        only change inside its own calls), replacing the O(n) all-done
        scan; inboxes are created lazily on first delivery, replacing the
        O(n) per-round dict rebuild.
        """
        observer = self.observer
        metrics = self.metrics
        post_outbox = self._post_outbox
        in_flight: dict[NodeId, dict[NodeId, Any]] = {}
        rounds_used = 0
        activated = 0
        iterations = 1

        order = {v: i for i, v in enumerate(programs)}
        polled = [v for v, p in programs.items() if not p.event_driven]
        wakers: set[NodeId] = set()
        done_seen: dict[NodeId, bool] = {}
        undone = 0

        # Round 1 sends: on_start (every node, like the dense loop).
        pending = words = max_edge = 0
        for v, program in programs.items():
            outbox = program.on_start()
            activated += 1
            if outbox:
                c, w, me = self._post_outbox(v, outbox, in_flight)
                pending += c
                words += w
                if me > max_edge:
                    max_edge = me
            d = program.done
            done_seen[v] = d
            if not d:
                undone += 1
            if program.needs_wakeup:
                wakers.add(v)
        if pending:
            rounds_used += 1
            metrics.record_round(pending, words, max_edge)
            if observer is not None:
                observer.on_round(1, pending, words, max_edge)

        round_no = 1
        while True:
            if pending == 0 and undone == 0:
                break
            if round_no > max_rounds:
                raise RoundLimitExceededError(
                    self._limit_diagnosis(programs, phase, round_no, max_rounds, pending)
                )
            round_no += 1
            iterations += 1
            inboxes = in_flight
            in_flight = {}
            if wakers or polled:
                active = set(inboxes)
                active.update(wakers)
                active.update(polled)
            else:
                active = set(inboxes)
            if not active:
                # No messages, no wakeup requests, nothing polled — yet
                # some program is not done.  The dense loop would spin
                # silent rounds until max_rounds; fail fast instead with
                # the same exception type and a stall diagnosis.
                raise RoundLimitExceededError(
                    self._stall_diagnosis(programs, phase, round_no, undone)
                )
            pending = words = max_edge = 0
            wake = (
                list(active) if len(active) == 1
                else sorted(active, key=order.__getitem__)
            )
            for v in wake:
                program = programs[v]
                outbox = program.on_round(round_no, inboxes.get(v) or {})
                activated += 1
                if outbox:
                    c, w, me = post_outbox(v, outbox, in_flight)
                    pending += c
                    words += w
                    if me > max_edge:
                        max_edge = me
                d = program.done
                if d != done_seen[v]:
                    done_seen[v] = d
                    undone += -1 if d else 1
                if program.needs_wakeup:
                    wakers.add(v)
                else:
                    wakers.discard(v)
            if pending:
                rounds_used += 1
                metrics.record_round(pending, words, max_edge)
                if observer is not None:
                    observer.on_round(round_no, pending, words, max_edge)
        return rounds_used, activated, iterations

    # -- internals -------------------------------------------------------

    def _post_outbox(
        self,
        sender: NodeId,
        outbox: Mapping[NodeId, Any],
        in_flight: dict[NodeId, dict[NodeId, Any]],
    ) -> tuple[int, int, int]:
        """Validate, measure, and deliver one node's outbox — single pass.

        Each payload is measured exactly once (memoized), serving both
        the bandwidth check and the ledger.  Returns
        ``(messages, words, max_edge_words)``.
        """
        neighbors = self.graph._adj[sender]
        measure = self._measure
        bandwidth = self.bandwidth_words
        count = 0
        words = 0
        max_edge = 0
        for receiver, payload in outbox.items():
            if receiver not in neighbors:
                raise ProtocolViolationError(
                    f"{sender!r} tried to send to non-neighbor {receiver!r}"
                )
            w = measure(payload)
            if w > bandwidth:
                raise BandwidthExceededError(
                    f"{sender!r}->{receiver!r}: {w} words exceeds "
                    f"bandwidth {bandwidth}"
                )
            box = in_flight.get(receiver)
            if box is None:
                box = in_flight[receiver] = {}
            box[sender] = payload
            count += 1
            words += w
            if w > max_edge:
                max_edge = w
        return count, words, max_edge

    def _limit_diagnosis(
        self,
        programs: Mapping[NodeId, NodeProgram],
        phase: str | None,
        round_no: int,
        max_rounds: int,
        pending: int,
    ) -> str:
        """A RoundLimitExceededError message that says what was still running."""
        stuck = [v for v in programs if not programs[v].done]
        examples = ", ".join(repr(v) for v in sorted(stuck, key=repr)[:5])
        if len(stuck) > 5:
            examples += ", ..."
        return (
            f"no quiescence within {max_rounds} rounds"
            f" (phase={phase or '<unnamed>'}, stopped at round {round_no};"
            f" {pending} messages in flight;"
            f" {len(stuck)}/{len(programs)} programs not done"
            + (f", e.g. {examples}" if stuck else "")
            + ")"
        )

    def _stall_diagnosis(
        self,
        programs: Mapping[NodeId, NodeProgram],
        phase: str | None,
        round_no: int,
        undone: int,
    ) -> str:
        stuck = [v for v in programs if not programs[v].done]
        examples = ", ".join(repr(v) for v in sorted(stuck, key=repr)[:5])
        if len(stuck) > 5:
            examples += ", ..."
        return (
            f"event scheduler stalled at round {round_no}"
            f" (phase={phase or '<unnamed>'}): no messages in flight and no"
            f" wakeup requests, but {undone}/{len(programs)} programs not"
            " done — an event-driven program that needs silent rounds must"
            " keep needs_wakeup set"
            + (f"; e.g. {examples}" if stuck else "")
        )


def run_program(
    graph: Graph,
    factory: Callable[[NodeId, list[NodeId]], NodeProgram],
    bandwidth_words: int = 8,
    metrics: RoundMetrics | None = None,
    max_rounds: int = 1_000_000,
    phase: str | None = None,
    scheduler: str | None = None,
) -> dict[NodeId, Any]:
    """Convenience wrapper: instantiate one program per node and run."""
    network = CongestNetwork(
        graph, bandwidth_words=bandwidth_words, metrics=metrics, scheduler=scheduler
    )
    programs = {v: factory(v, graph.neighbors(v)) for v in graph.nodes()}
    return network.run(programs, max_rounds=max_rounds, phase=phase)
