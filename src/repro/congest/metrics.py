"""Round/message/bandwidth ledgers.

Every execution — real message passing and cost-model charges alike —
flows through one :class:`RoundMetrics` ledger, so the experiment harness
can report a single, auditable round count per run, broken down by phase
(the provenance of every charged cost is retained).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Charge", "RoundMetrics"]


@dataclass(frozen=True)
class Charge:
    """One accounted cost item with its provenance."""

    phase: str
    rounds: int
    words: int = 0
    detail: str = ""


@dataclass
class RoundMetrics:
    """Aggregated execution costs for one distributed run."""

    rounds: int = 0
    messages: int = 0
    total_words: int = 0
    max_words_edge_round: int = 0
    charges: list[Charge] = field(default_factory=list)
    phase_rounds: dict[str, int] = field(default_factory=dict)

    # -- real execution ----------------------------------------------------

    def record_round(self, messages: int, words: int, max_edge_words: int) -> None:
        """Record one synchronous round of real message passing."""
        self.rounds += 1
        self.messages += messages
        self.total_words += words
        self.max_words_edge_round = max(self.max_words_edge_round, max_edge_words)

    # -- cost-model charges --------------------------------------------------

    def charge(self, phase: str, rounds: int, words: int = 0, detail: str = "") -> None:
        """Charge ``rounds`` rounds (and ``words`` words of traffic) to ``phase``.

        Used for operations the paper's Remark 1 declares standard
        (pipelined upcast/downcast inside a part); ``rounds`` must be the
        exact pipelined cost computed from measured depths and measured
        payload sizes — see :mod:`repro.congest.pipelining`.
        """
        if rounds < 0:
            raise ValueError("cannot charge negative rounds")
        self.rounds += rounds
        self.total_words += words
        self.charges.append(Charge(phase, rounds, words, detail))
        self.phase_rounds[phase] = self.phase_rounds.get(phase, 0) + rounds

    def tag_phase(self, phase: str, rounds: int) -> None:
        """Attribute already-recorded real rounds to a named phase."""
        self.phase_rounds[phase] = self.phase_rounds.get(phase, 0) + rounds

    # -- composition ----------------------------------------------------------

    def absorb_parallel(self, branches: list["RoundMetrics"], phase: str) -> None:
        """Absorb independent parallel executions: rounds = max, traffic = sum.

        This models disjoint parts running concurrently (the heart of the
        divide-and-conquer efficiency argument in Section 4).
        """
        if not branches:
            return
        rounds = max(b.rounds for b in branches)
        self.rounds += rounds
        self.phase_rounds[phase] = self.phase_rounds.get(phase, 0) + rounds
        for b in branches:
            self.messages += b.messages
            self.total_words += b.total_words
            self.max_words_edge_round = max(self.max_words_edge_round, b.max_words_edge_round)
            self.charges.extend(b.charges)

    def absorb_serial(self, other: "RoundMetrics") -> None:
        """Absorb a sequentially-executed sub-run: rounds and traffic add."""
        self.rounds += other.rounds
        self.messages += other.messages
        self.total_words += other.total_words
        self.max_words_edge_round = max(self.max_words_edge_round, other.max_words_edge_round)
        self.charges.extend(other.charges)
        for phase, r in other.phase_rounds.items():
            self.phase_rounds[phase] = self.phase_rounds.get(phase, 0) + r

    def summary(self) -> str:
        lines = [
            f"rounds={self.rounds} messages={self.messages} "
            f"words={self.total_words} max_edge_words={self.max_words_edge_round}"
        ]
        for phase in sorted(self.phase_rounds):
            lines.append(f"  {phase}: {self.phase_rounds[phase]} rounds")
        return "\n".join(lines)
