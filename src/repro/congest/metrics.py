"""Round/message/bandwidth ledgers.

Every execution — real message passing and cost-model charges alike —
flows through one :class:`RoundMetrics` ledger, so the experiment harness
can report a single, auditable round count per run, broken down by phase
(the provenance of every charged cost is retained).

Observability hooks: a ledger may carry an *observer* (any object with
``on_round(round_no, messages, words, max_edge_words)`` and
``on_charge(charge)`` — in practice a :class:`repro.obs.Tracer`).  The
simulator reads the slot once per execution and skips all notification
code when it is ``None``, so untraced runs pay nothing on the per-round
hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Charge", "RoundMetrics"]


@dataclass(frozen=True)
class Charge:
    """One accounted cost item with its provenance.

    ``kind`` distinguishes cost-model charges (``"charge"``, from the
    Remark-1 pipelined formulas) from real executions attributed after
    the fact (``"real"``, written by ``CongestNetwork.run`` with the
    measured traffic of the execution).
    """

    phase: str
    rounds: int
    words: int = 0
    detail: str = ""
    messages: int = 0
    kind: str = "charge"  # "charge" | "real"
    activations: int = 0  # node activations the scheduler spent
    activations_saved: int = 0  # activations skipped vs the dense loop

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "rounds": self.rounds,
            "words": self.words,
            "detail": self.detail,
            "messages": self.messages,
            "kind": self.kind,
            "activations": self.activations,
            "activations_saved": self.activations_saved,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Charge":
        return cls(
            phase=d["phase"],
            rounds=d["rounds"],
            words=d.get("words", 0),
            detail=d.get("detail", ""),
            messages=d.get("messages", 0),
            kind=d.get("kind", "charge"),
            activations=d.get("activations", 0),
            activations_saved=d.get("activations_saved", 0),
        )


@dataclass
class RoundMetrics:
    """Aggregated execution costs for one distributed run."""

    rounds: int = 0
    messages: int = 0
    total_words: int = 0
    max_words_edge_round: int = 0
    node_activations: int = 0  # on_start/on_round calls the scheduler made
    activations_saved: int = 0  # calls skipped vs a dense poll-everyone loop
    charges: list[Charge] = field(default_factory=list)
    phase_rounds: dict[str, int] = field(default_factory=dict)
    # Observability slot — not part of the ledger's value (excluded from
    # comparison and serialization).  See module docstring.
    observer: Any | None = field(default=None, repr=False, compare=False)

    # -- real execution ----------------------------------------------------

    def record_round(self, messages: int, words: int, max_edge_words: int) -> None:
        """Record one synchronous round of real message passing."""
        self.rounds += 1
        self.messages += messages
        self.total_words += words
        self.max_words_edge_round = max(self.max_words_edge_round, max_edge_words)

    def record_activations(self, activated: int, saved: int) -> None:
        """Record the scheduler's wall-clock work for one execution:
        ``activated`` program calls made, ``saved`` calls skipped relative
        to the dense poll-every-node loop.  Scheduler cost accounting —
        not part of the CONGEST round semantics (both schedulers produce
        identical rounds/messages/words; only these two counters differ).
        """
        self.node_activations += activated
        self.activations_saved += saved

    # -- cost-model charges --------------------------------------------------

    def charge(
        self, phase: str, rounds: int, words: int = 0, detail: str = "", messages: int = 0
    ) -> None:
        """Charge ``rounds`` rounds (and ``words`` words of traffic) to ``phase``.

        Used for operations the paper's Remark 1 declares standard
        (pipelined upcast/downcast inside a part); ``rounds`` must be the
        exact pipelined cost computed from measured depths and measured
        payload sizes — see :mod:`repro.congest.pipelining`.
        """
        if rounds < 0:
            raise ValueError("cannot charge negative rounds")
        self.rounds += rounds
        self.total_words += words
        self.messages += messages
        item = Charge(phase, rounds, words=words, detail=detail, messages=messages)
        self.charges.append(item)
        self.phase_rounds[phase] = self.phase_rounds.get(phase, 0) + rounds
        if self.observer is not None:
            self.observer.on_charge(item)

    def tag_phase(
        self,
        phase: str,
        rounds: int,
        messages: int = 0,
        words: int = 0,
        detail: str = "",
        activations: int = 0,
        activations_saved: int = 0,
    ) -> None:
        """Attribute already-recorded real rounds (and traffic) to a phase.

        The rounds/words/messages were counted by :meth:`record_round`
        as they happened (and activations by :meth:`record_activations`);
        this only files their provenance, as a ``kind="real"``
        :class:`Charge`.
        """
        self.phase_rounds[phase] = self.phase_rounds.get(phase, 0) + rounds
        item = Charge(
            phase,
            rounds,
            words=words,
            detail=detail or "real execution",
            messages=messages,
            kind="real",
            activations=activations,
            activations_saved=activations_saved,
        )
        self.charges.append(item)
        if self.observer is not None:
            self.observer.on_charge(item)

    # -- composition ----------------------------------------------------------

    def absorb_parallel(self, branches: list["RoundMetrics"], phase: str) -> None:
        """Absorb independent parallel executions: rounds = max, traffic = sum.

        This models disjoint parts running concurrently (the heart of the
        divide-and-conquer efficiency argument in Section 4).
        """
        if not branches:
            return
        rounds = max(b.rounds for b in branches)
        self.rounds += rounds
        self.phase_rounds[phase] = self.phase_rounds.get(phase, 0) + rounds
        for b in branches:
            self.messages += b.messages
            self.total_words += b.total_words
            self.max_words_edge_round = max(self.max_words_edge_round, b.max_words_edge_round)
            self.node_activations += b.node_activations
            self.activations_saved += b.activations_saved
            self.charges.extend(b.charges)

    def absorb_serial(self, other: "RoundMetrics") -> None:
        """Absorb a sequentially-executed sub-run: rounds and traffic add."""
        self.rounds += other.rounds
        self.messages += other.messages
        self.total_words += other.total_words
        self.max_words_edge_round = max(self.max_words_edge_round, other.max_words_edge_round)
        self.node_activations += other.node_activations
        self.activations_saved += other.activations_saved
        self.charges.extend(other.charges)
        for phase, r in other.phase_rounds.items():
            self.phase_rounds[phase] = self.phase_rounds.get(phase, 0) + r

    # -- reporting -------------------------------------------------------------

    def phase_breakdown(self) -> dict[str, dict[str, int]]:
        """Per-phase ``{rounds, messages, words, charges}`` drawn from the
        retained :class:`Charge` provenance (rounds from the phase ledger,
        which additionally covers parallel-composition maxima)."""
        out: dict[str, dict[str, int]] = {
            phase: {
                "rounds": r, "messages": 0, "words": 0, "charges": 0,
                "activations": 0, "activations_saved": 0,
            }
            for phase, r in self.phase_rounds.items()
        }
        for c in self.charges:
            row = out.setdefault(
                c.phase,
                {
                    "rounds": 0, "messages": 0, "words": 0, "charges": 0,
                    "activations": 0, "activations_saved": 0,
                },
            )
            row["messages"] += c.messages
            row["words"] += c.words
            row["charges"] += 1
            row["activations"] += c.activations
            row["activations_saved"] += c.activations_saved
        return out

    def to_dict(self) -> dict[str, Any]:
        """The ledger as plain data (JSON-ready): totals, the per-phase
        breakdown, and every charge with its provenance.

        This is also the cross-process wire format of the sharded
        backend (:mod:`repro.shard`): workers return each branch ledger
        as ``to_dict()`` and the parent rebuilds it with
        :meth:`from_dict` before ``absorb_parallel`` folds live and
        deserialized branches together — the round-trip must therefore
        stay exact for every field ``absorb_parallel`` reads."""
        return {
            "rounds": self.rounds,
            "messages": self.messages,
            "total_words": self.total_words,
            "max_words_edge_round": self.max_words_edge_round,
            "node_activations": self.node_activations,
            "activations_saved": self.activations_saved,
            "phase_rounds": dict(self.phase_rounds),
            "phases": self.phase_breakdown(),
            "charges": [c.to_dict() for c in self.charges],
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RoundMetrics":
        """Inverse of :meth:`to_dict` (the derived ``phases`` view and the
        observer slot are not part of the round-tripped value; a
        deserialized shard-worker branch therefore never notifies a
        tracer, matching ``absorb_parallel``, which never does either)."""
        return cls(
            rounds=d["rounds"],
            messages=d["messages"],
            total_words=d["total_words"],
            max_words_edge_round=d["max_words_edge_round"],
            node_activations=d.get("node_activations", 0),
            activations_saved=d.get("activations_saved", 0),
            charges=[Charge.from_dict(c) for c in d.get("charges", [])],
            phase_rounds=dict(d.get("phase_rounds", {})),
        )

    def summary(self) -> str:
        head = (
            f"rounds={self.rounds} messages={self.messages} "
            f"words={self.total_words} max_edge_words={self.max_words_edge_round}"
        )
        if self.node_activations or self.activations_saved:
            head += (
                f" activations={self.node_activations}"
                f" (saved {self.activations_saved} vs dense)"
            )
        lines = [head]
        breakdown = self.phase_breakdown()
        for phase in sorted(breakdown):
            row = breakdown[phase]
            lines.append(
                f"  {phase}: {row['rounds']} rounds, "
                f"{row['messages']} msgs, {row['words']} words"
            )
        return "\n".join(lines)
