"""Node programs: the per-node half of the CONGEST model.

A :class:`NodeProgram` is instantiated once per vertex and driven by
:class:`repro.congest.network.CongestNetwork`.  Per synchronous round the
program receives the messages its neighbors sent in the previous round
and returns the messages to send this round (at most one per incident
edge, each at most ``B`` bits — the network enforces the bound).

Scheduling contract
-------------------

The simulator supports two schedulers with identical CONGEST semantics
(same round numbers, same messages, same metrics):

* the *dense* reference scheduler calls :meth:`on_round` on **every**
  node every round — wall-clock cost Θ(n) per round;
* the *event-driven* scheduler (the default) wakes a node only when its
  inbox is non-empty or it asked to be woken — wall-clock cost
  proportional to actual work.

A program opts into event-driven scheduling by setting the class
attribute ``event_driven = True``.  Doing so is a promise: **calling
``on_round`` with an empty inbox (when the node did not request a
wakeup) would be a no-op** — it would return no messages and change no
state.  Programs that genuinely need to observe silent rounds (e.g. to
count rounds locally) keep ``self.needs_wakeup`` set to ``True`` while
they do; the scheduler then wakes them every round, messages or not,
exactly as the dense scheduler would.  Round numbers are global
scheduler state, so a node sleeping through rounds still sees the true
``round_no`` on its next wakeup — round-number semantics never depend
on the scheduler.

Unported programs (``event_driven = False``, the default) are polled
every round by both schedulers, so existing programs keep working
unchanged.
"""

from __future__ import annotations

from typing import Any

from ..planar.graph import NodeId

__all__ = ["NodeProgram"]


class NodeProgram:
    """Base class for per-node CONGEST programs.

    Subclasses implement :meth:`on_round` and typically set ``self.done``
    once their local output is fixed.  An execution terminates when every
    program reports ``done`` *and* no messages are in flight (quiescence),
    so round counts are emergent rather than asserted.

    See the module docstring for the event-driven scheduling contract
    (``event_driven`` / ``needs_wakeup``).
    """

    #: Class-level opt-in to event-driven scheduling: ``True`` promises
    #: that ``on_round`` with an empty inbox (and no wakeup request) is a
    #: no-op, so the scheduler may skip the call entirely.
    event_driven: bool = False

    def __init__(self, node_id: NodeId, neighbors: list[NodeId]) -> None:
        self.node_id = node_id
        self.neighbors = list(neighbors)
        self.done = False
        #: While ``True``, the event-driven scheduler wakes this node
        #: every round even with an empty inbox (dense-poll semantics).
        self.needs_wakeup = False

    def on_start(self) -> dict[NodeId, Any]:
        """Messages to send in round 1 (before anything is received)."""
        return {}

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        """Handle round ``round_no``'s inbox; return this round's outbox.

        ``inbox`` maps sender -> payload for each message received.  The
        returned dict maps receiver (a neighbor) -> payload.
        """
        raise NotImplementedError

    def result(self) -> Any:
        """The program's local output after termination."""
        return None
