"""Node programs: the per-node half of the CONGEST model.

A :class:`NodeProgram` is instantiated once per vertex and driven by
:class:`repro.congest.network.CongestNetwork`.  Per synchronous round the
program receives the messages its neighbors sent in the previous round
and returns the messages to send this round (at most one per incident
edge, each at most ``B`` bits — the network enforces the bound).
"""

from __future__ import annotations

from typing import Any

from ..planar.graph import NodeId

__all__ = ["NodeProgram"]


class NodeProgram:
    """Base class for per-node CONGEST programs.

    Subclasses implement :meth:`on_round` and typically set ``self.done``
    once their local output is fixed.  An execution terminates when every
    program reports ``done`` *and* no messages are in flight (quiescence),
    so round counts are emergent rather than asserted.
    """

    def __init__(self, node_id: NodeId, neighbors: list[NodeId]) -> None:
        self.node_id = node_id
        self.neighbors = list(neighbors)
        self.done = False

    def on_start(self) -> dict[NodeId, Any]:
        """Messages to send in round 1 (before anything is received)."""
        return {}

    def on_round(self, round_no: int, inbox: dict[NodeId, Any]) -> dict[NodeId, Any]:
        """Handle round ``round_no``'s inbox; return this round's outbox.

        ``inbox`` maps sender -> payload for each message received.  The
        returned dict maps receiver (a neighbor) -> payload.
        """
        raise NotImplementedError

    def result(self) -> Any:
        """The program's local output after termination."""
        return None
