"""Reliable delivery over a faulty CONGEST network.

:class:`ReliableProgram` wraps any :class:`~repro.congest.node.NodeProgram`
with a per-link ARQ layer: sequence numbers, cumulative acknowledgements,
timeout + exponential-backoff retransmission, and a configurable attempt
budget.  Under it, an inner program written for the failure-free model
sees exactly-once, in-order delivery on every link even while the fault
layer (:mod:`repro.congest.faults`) drops, duplicates, delays, and
corrupts frames around it — corrupted frames fail their CRC at the link
layer (:class:`~repro.congest.message.Message`) and simply look like
drops, which retransmission absorbs.

The ARQ window is one frame per link (stop-and-wait): CONGEST messages
are a constant number of words, so pipelining buys little, and a window
of one keeps exactly-once in-order delivery trivially auditable.  Frame
shapes (all wire-encodable tuples):

``("rdt",  seq, ack, payload)``  first transmission of ``payload``
``("rdt!", seq, ack, payload)``  retransmission (classified *recovery*)
``("rdta", ack)``                pure cumulative acknowledgement (*recovery*)

Every frame to a neighbor piggybacks the cumulative ack for that link,
so a link with traffic in both directions pays no extra ack frames.
The fault layer recognises the two recovery tags and the network charges
that traffic — and any round carrying only such traffic — to the
``recovery`` phase in the :class:`~repro.congest.metrics.RoundMetrics`
ledger, making reliability overhead a first-class, budgetable quantity.

When a frame stays unacknowledged through ``max_attempts``
retransmissions the sender raises
:class:`~repro.congest.errors.RetransmitBudgetExceededError` — the
typed give-up signal the self-healing driver converts into a retry of
the surrounding phase.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Mapping

from ..obs.flightrec import default_flight_recorder
from ..planar.graph import Graph, NodeId
from .errors import RetransmitBudgetExceededError
from .faults import (
    RELIABLE_ACK_TAG,
    RELIABLE_DATA_TAG,
    RELIABLE_RETX_TAG,
    FaultInjector,
    FaultPlan,
)
from .metrics import RoundMetrics
from .network import CongestNetwork
from .node import NodeProgram

__all__ = ["ReliableProgram", "run_reliable", "RELIABLE_HEADER_WORDS"]

#: Extra per-frame budget the ARQ header needs: tag + seq + ack, rounded
#: up.  :func:`run_reliable` widens the network bandwidth by this much so
#: wrapping never turns a legal inner payload into a bandwidth violation.
RELIABLE_HEADER_WORDS = 4


class _Link:
    """Sender + receiver ARQ state for one directed neighbor link."""

    __slots__ = (
        "queue", "out_seq", "out_payload", "out_attempts", "out_sent_round",
        "out_rto", "next_seq", "expected", "ack_owed",
    )

    def __init__(self) -> None:
        self.queue: deque = deque()  # payloads waiting for the window
        self.out_seq = 0  # outstanding (unacked) sequence number, 0 = none
        self.out_payload: Any = None
        self.out_attempts = 0
        self.out_sent_round = 0
        self.out_rto = 0
        self.next_seq = 1  # next sequence number to assign
        self.expected = 1  # next in-order sequence number to accept
        self.ack_owed = False


class ReliableProgram(NodeProgram):
    """ARQ wrapper giving the inner program a loss-free link layer."""

    event_driven = True

    def __init__(
        self,
        inner: NodeProgram,
        node: NodeId,
        neighbors: list[NodeId],
        initial_rto: int = 4,
        backoff: float = 2.0,
        max_attempts: int = 8,
    ) -> None:
        if initial_rto < 1:
            raise ValueError("initial_rto must be >= 1 round")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1.0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.inner = inner
        self.node = node
        self.initial_rto = initial_rto
        self.backoff = backoff
        self.max_attempts = max_attempts
        self._links: dict[NodeId, _Link] = {v: _Link() for v in neighbors}
        self.retransmits = 0
        self.pure_acks = 0
        self.duplicates_dropped = 0
        # Crash flight recorder, fetched once like the fault state's; ARQ
        # events (retransmit, give-up) are the flight lane's narrative of
        # why a chaos run died.
        self._flight = default_flight_recorder()

    # -- scheduler contract ------------------------------------------------

    @property
    def done(self) -> bool:
        return self.inner.done and not self._link_work_pending()

    @property
    def needs_wakeup(self) -> bool:
        # Timers (outstanding frames) and owed acks need silent-round
        # activations; so does an inner program that asked for one.  An
        # unported inner (``event_driven = False``) expects dense-poll
        # semantics, but the wrapper hides it from the scheduler's polled
        # set — so the wrapper must request the poll on its behalf.
        return (
            self._link_work_pending()
            or self.inner.needs_wakeup
            or not self.inner.event_driven
        )

    def _link_work_pending(self) -> bool:
        for link in self._links.values():
            if link.queue or link.out_seq or link.ack_owed:
                return True
        return False

    def result(self) -> Any:
        return self.inner.result()

    # -- round processing --------------------------------------------------

    def on_start(self) -> dict[NodeId, Any]:
        self._enqueue(self.inner.on_start())
        return self._emit(1)

    def on_round(self, round_no: int, inbox: Mapping[NodeId, Any]) -> dict[NodeId, Any]:
        inner_inbox: dict[NodeId, Any] = {}
        for sender, frame in inbox.items():
            link = self._links[sender]
            tag = frame[0]
            if tag == RELIABLE_ACK_TAG:
                self._process_ack(link, frame[1])
                continue
            _, seq, ack, payload = frame
            self._process_ack(link, ack)
            if seq == link.expected:
                link.expected += 1
                link.ack_owed = True
                inner_inbox[sender] = payload
            else:
                # A duplicate (fault-layer copy, or a retransmission that
                # crossed our ack): already delivered — re-ack, drop.
                self.duplicates_dropped += 1
                link.ack_owed = True
        inner = self.inner
        if inner_inbox or inner.needs_wakeup or not inner.event_driven:
            self._enqueue(inner.on_round(round_no, inner_inbox))
        return self._emit(round_no)

    def _process_ack(self, link: _Link, ack: int) -> None:
        if link.out_seq and ack >= link.out_seq:
            link.out_seq = 0
            link.out_payload = None

    def _enqueue(self, outbox: Mapping[NodeId, Any] | None) -> None:
        if not outbox:
            return
        for receiver, payload in outbox.items():
            self._links[receiver].queue.append(payload)

    def _emit(self, round_no: int) -> dict[NodeId, Any]:
        """One frame per link: new data, due retransmission, or pure ack."""
        out: dict[NodeId, Any] = {}
        for receiver, link in self._links.items():
            ack = link.expected - 1
            if link.out_seq == 0 and link.queue:
                link.out_seq = link.next_seq
                link.next_seq += 1
                link.out_payload = link.queue.popleft()
                link.out_attempts = 1
                link.out_sent_round = round_no
                link.out_rto = self.initial_rto
                link.ack_owed = False
                out[receiver] = (RELIABLE_DATA_TAG, link.out_seq, ack, link.out_payload)
            elif link.out_seq and round_no - link.out_sent_round >= link.out_rto:
                if link.out_attempts >= self.max_attempts:
                    error = RetransmitBudgetExceededError(
                        f"{self.node!r}->{receiver!r}: frame seq={link.out_seq}"
                        f" unacknowledged after {link.out_attempts} attempts"
                        f" (rto reached {link.out_rto} rounds)"
                    )
                    if self._flight is not None:
                        # Recorded before the raise, so the recorder's
                        # globally-last event matches the raised error.
                        self._flight.record(
                            self.node, "arq-give-up", round_no,
                            to=repr(receiver), seq=link.out_seq,
                            attempts=link.out_attempts,
                            error=type(error).__name__, message=str(error),
                        )
                    raise error
                link.out_attempts += 1
                link.out_sent_round = round_no
                link.out_rto = max(1, int(link.out_rto * self.backoff))
                link.ack_owed = False
                self.retransmits += 1
                if self._flight is not None:
                    self._flight.record(
                        self.node, "arq-retransmit", round_no,
                        to=repr(receiver), seq=link.out_seq,
                        attempt=link.out_attempts, rto=link.out_rto,
                    )
                out[receiver] = (RELIABLE_RETX_TAG, link.out_seq, ack, link.out_payload)
            elif link.ack_owed:
                link.ack_owed = False
                self.pure_acks += 1
                out[receiver] = (RELIABLE_ACK_TAG, ack)
        return out


def run_reliable(
    graph: Graph,
    factory: Callable[[NodeId, list[NodeId]], NodeProgram],
    bandwidth_words: int = 8,
    metrics: RoundMetrics | None = None,
    max_rounds: int = 1_000_000,
    phase: str | None = None,
    scheduler: str | None = None,
    faults: FaultPlan | FaultInjector | None = None,
    initial_rto: int = 4,
    backoff: float = 2.0,
    max_attempts: int = 8,
) -> dict[NodeId, Any]:
    """Like :func:`~repro.congest.network.run_program`, but with every
    program wrapped in a :class:`ReliableProgram`.

    The network bandwidth is widened by :data:`RELIABLE_HEADER_WORDS` so
    the ARQ header never pushes a legal inner payload over budget.
    """
    network = CongestNetwork(
        graph,
        bandwidth_words=bandwidth_words + RELIABLE_HEADER_WORDS,
        metrics=metrics,
        scheduler=scheduler,
        faults=faults,
    )
    programs = {
        v: ReliableProgram(
            factory(v, graph.neighbors(v)),
            v,
            graph.neighbors(v),
            initial_rto=initial_rto,
            backoff=backoff,
            max_attempts=max_attempts,
        )
        for v in graph.nodes()
    }
    return network.run(programs, max_rounds=max_rounds, phase=phase)
