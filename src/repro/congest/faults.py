"""Deterministic fault injection for the CONGEST simulator.

Production networks drop, duplicate, delay, and corrupt messages, and
crash nodes — none of which the failure-free CONGEST model of the paper
admits.  This module is the chaos layer: a seeded :class:`FaultPlan`
describes an adversarial schedule, and a per-network :class:`FaultState`
applies it at the **single delivery hook** both scheduler loops share
(``CongestNetwork._post_outbox_faulty``), so the dense and event-driven
loops stay differentially testable under identical fault schedules.

Determinism is the design center: every fault decision is a pure hash
of ``(seed, kind, global round, sender, receiver)`` — no module-level
``random``, no RNG stream whose draws depend on iteration order — so

* the same seed replays the same faults, message for message, on either
  scheduler (their message streams are identical by construction);
* re-running a failed phase sees *different* draws, because fault time
  is **global**: a :class:`FaultInjector` threads one monotone round
  clock through every network an execution creates.  Crash windows and
  link outages are intervals on that global clock, so a retry launched
  after an outage ends runs clean — exactly how a production incident
  behaves, and what makes certificate-driven self-healing converge.

Fault classes (all opt-in, all zero by default):

``drop_rate``
    each transmitted frame is lost independently;
``duplicate_rate``
    a second copy of the frame is delivered one or more rounds later
    (same-round duplication is impossible in CONGEST — one message per
    edge per round);
``delay_rate`` / ``max_delay``
    the frame arrives 1..``max_delay`` rounds late (late frames from
    the same sender reorder behind fresher ones);
``corruption_rate``
    the frame's wire bytes (see :class:`repro.congest.message.Message`)
    suffer a bit flip; CRC-32 catches every single-bit error, so the
    receiving link layer drops the frame and counts the detection;
``crash_count`` / ``crashes``
    a node is down for a window of global rounds: it is never
    activated, sends nothing, and frames addressed to it are lost;
``link_outage_count`` / ``link_outages``
    an edge drops every frame in both directions for a window.

Messages lost to faults still consumed bandwidth: the ledger counts
them as transmitted (the network paid for them), and the round they
were sent in is a real round.  Retransmission traffic from
:mod:`repro.congest.reliable` is classified by its frame tags and
charged to the ``recovery`` phase so the ledger shows the overhead.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from ..obs.flightrec import default_flight_recorder
from .errors import FaultSpecError, MessageCorruptionError
from .message import Message, flip_bit

__all__ = [
    "CrashWindow",
    "LinkOutage",
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "FaultState",
    "fault_override",
    "default_fault_injector",
    "RELIABLE_DATA_TAG",
    "RELIABLE_RETX_TAG",
    "RELIABLE_ACK_TAG",
]

#: Frame tags of the reliable-delivery layer (:mod:`repro.congest.reliable`).
#: Defined here so the delivery hook can classify recovery traffic without
#: importing ``reliable`` (which imports the network — cycle).
RELIABLE_DATA_TAG = "rdt"
RELIABLE_RETX_TAG = "rdt!"
RELIABLE_ACK_TAG = "rdta"

_RECOVERY_TAGS = frozenset((RELIABLE_RETX_TAG, RELIABLE_ACK_TAG))


def _unit(seed: int, *key: Any) -> float:
    """A deterministic uniform draw in [0, 1) from ``(seed, *key)``.

    CRC-32 over the ``repr`` of the key tuple: stable across processes
    (unlike ``hash``, which is salted) and independent of evaluation
    order (unlike a shared RNG stream).
    """
    digest = zlib.crc32(repr((seed, key)).encode("utf-8", "backslashreplace"))
    return digest / 4294967296.0


@dataclass(frozen=True)
class CrashWindow:
    """Node down for global rounds ``start <= r < stop``.

    ``node`` may be an explicit node ID (applied only on networks that
    contain it) or ``None`` for an auto window, whose victim is chosen
    deterministically per network by seed hash.
    """

    start: int
    stop: int
    node: Any = None

    def __post_init__(self) -> None:
        if not (0 < self.start < self.stop):
            raise FaultSpecError(f"bad crash window [{self.start}, {self.stop})")


@dataclass(frozen=True)
class LinkOutage:
    """Edge dead (both directions) for global rounds ``start <= r < stop``."""

    start: int
    stop: int
    u: Any = None
    v: Any = None

    def __post_init__(self) -> None:
        if not (0 < self.start < self.stop):
            raise FaultSpecError(f"bad link outage [{self.start}, {self.stop})")
        if (self.u is None) != (self.v is None):
            raise FaultSpecError("a link outage names both endpoints or neither")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, fully deterministic fault schedule.

    The default-constructed plan is *null*: no faults, but running under
    it still activates the fault-aware delivery hook (which is how
    reliable-delivery ``recovery`` traffic gets its ledger attribution
    even on a clean network).
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: int = 3
    corruption_rate: float = 0.0
    crash_count: int = 0
    crash_length: int = 5
    crash_horizon: int = 24  # auto crash windows start in [2, 2 + horizon)
    crashes: tuple[CrashWindow, ...] = ()
    link_outage_count: int = 0
    link_outage_length: int = 6
    link_outages: tuple[LinkOutage, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_rate", "corruption_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise FaultSpecError(f"{name}={rate} outside [0, 1]")
        if self.max_delay < 1:
            raise FaultSpecError("max_delay must be >= 1")
        if min(self.crash_count, self.crash_length, self.link_outage_count,
               self.link_outage_length, self.crash_horizon) < 0:
            raise FaultSpecError("counts and lengths must be non-negative")

    @property
    def is_null(self) -> bool:
        return (
            self.drop_rate == self.duplicate_rate == self.delay_rate
            == self.corruption_rate == 0.0
            and not self.crash_count and not self.crashes
            and not self.link_outage_count and not self.link_outages
        )

    def reseed(self, salt: int) -> "FaultPlan":
        """A plan with a derived seed — used for per-attempt variation."""
        return replace(self, seed=self.seed * 1_000_003 + salt)

    def all_windows(self) -> tuple[tuple[CrashWindow, ...], tuple[LinkOutage, ...]]:
        """Explicit windows plus the seeded auto windows, resolved on the
        global clock (victims stay per-network)."""
        crashes = list(self.crashes)
        for i in range(self.crash_count):
            start = 2 + int(_unit(self.seed, "crash-start", i) * max(1, self.crash_horizon))
            crashes.append(CrashWindow(start=start, stop=start + self.crash_length))
        outages = list(self.link_outages)
        for i in range(self.link_outage_count):
            start = 2 + int(_unit(self.seed, "link-start", i) * max(1, self.crash_horizon))
            outages.append(LinkOutage(start=start, stop=start + self.link_outage_length))
        return tuple(crashes), tuple(outages)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI fault spec, e.g.
        ``"drop=0.05,dup=0.01,delay=0.1:2,corrupt=0.02,crash=2:5,link=1:6"``.

        ``delay`` takes ``rate[:max_delay]``; ``crash`` and ``link`` take
        ``count[:length]``.  ``seed=N`` inside the spec overrides the
        ``seed`` argument (which the CLI wires to ``--fault-seed``).
        """
        kwargs: dict[str, Any] = {"seed": seed}
        if spec.strip():
            for item in spec.split(","):
                if "=" not in item:
                    raise FaultSpecError(f"bad fault spec item {item!r} (expected key=value)")
                key, _, value = item.partition("=")
                key = key.strip().lower()
                value = value.strip()
                try:
                    if key == "drop":
                        kwargs["drop_rate"] = float(value)
                    elif key in ("dup", "duplicate"):
                        kwargs["duplicate_rate"] = float(value)
                    elif key == "corrupt":
                        kwargs["corruption_rate"] = float(value)
                    elif key == "delay":
                        rate, _, cap = value.partition(":")
                        kwargs["delay_rate"] = float(rate)
                        if cap:
                            kwargs["max_delay"] = int(cap)
                    elif key == "crash":
                        count, _, length = value.partition(":")
                        kwargs["crash_count"] = int(count)
                        if length:
                            kwargs["crash_length"] = int(length)
                    elif key == "link":
                        count, _, length = value.partition(":")
                        kwargs["link_outage_count"] = int(count)
                        if length:
                            kwargs["link_outage_length"] = int(length)
                    elif key == "seed":
                        kwargs["seed"] = int(value)
                    else:
                        raise FaultSpecError(
                            f"unknown fault class {key!r}; options: "
                            "drop, dup, delay, corrupt, crash, link, seed"
                        )
                except ValueError as exc:
                    raise FaultSpecError(f"bad value in fault spec item {item!r}: {exc}") from exc
        return cls(**kwargs)

    def describe(self) -> str:
        if self.is_null:
            return "no faults (null plan)"
        parts = []
        for label, rate in (
            ("drop", self.drop_rate),
            ("dup", self.duplicate_rate),
            ("corrupt", self.corruption_rate),
        ):
            if rate:
                parts.append(f"{label}={rate:g}")
        if self.delay_rate:
            parts.append(f"delay={self.delay_rate:g}x{self.max_delay}")
        crashes, outages = len(self.crashes) + self.crash_count, (
            len(self.link_outages) + self.link_outage_count
        )
        if crashes:
            parts.append(f"crash-windows={crashes}")
        if outages:
            parts.append(f"link-outages={outages}")
        return f"seed={self.seed} " + " ".join(parts)


@dataclass
class FaultStats:
    """Everything the chaos layer did to one execution (or one injector's
    whole lifetime — the self-healing driver shares a collector across
    every network it creates)."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    link_dropped: int = 0
    corrupted: int = 0
    corruption_detected: int = 0  # CRC caught it; frame discarded
    corruption_delivered: int = 0  # decoded despite the flip (never, with CRC-32)
    duplicated: int = 0
    delayed: int = 0
    delay_collisions: int = 0  # late frame bumped again: slot already taken
    crash_node_rounds: int = 0  # node-rounds spent inside crash windows
    crash_inbox_drops: int = 0  # frames lost because the receiver was down
    recovery_messages: int = 0
    recovery_words: int = 0
    recovery_rounds: int = 0  # rounds carrying only retransmit/ack traffic

    @property
    def faults_injected(self) -> int:
        return (
            self.dropped + self.link_dropped + self.corrupted + self.duplicated
            + self.delayed + self.crash_inbox_drops
        )

    def to_dict(self) -> dict[str, int]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "link_dropped": self.link_dropped,
            "corrupted": self.corrupted,
            "corruption_detected": self.corruption_detected,
            "corruption_delivered": self.corruption_delivered,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "delay_collisions": self.delay_collisions,
            "crash_node_rounds": self.crash_node_rounds,
            "crash_inbox_drops": self.crash_inbox_drops,
            "recovery_messages": self.recovery_messages,
            "recovery_words": self.recovery_words,
            "recovery_rounds": self.recovery_rounds,
            "faults_injected": self.faults_injected,
        }


class FaultInjector:
    """One fault schedule threaded through many networks.

    Holds the plan, a shared :class:`FaultStats` collector, and the
    **global round clock**: each network execution advances the clock by
    the rounds it spanned, so crash windows and link outages are
    intervals in wall-history, not per-phase, and every hash draw is
    fresh across retries.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self.clock = 0  # global rounds consumed by finished executions
        self.crash_windows, self.link_windows = plan.all_windows()

    def advance(self, rounds: int) -> None:
        self.clock += rounds


_default_injector: FaultInjector | None = None


def default_fault_injector() -> FaultInjector | None:
    """The injector new networks pick up when none is passed explicitly."""
    return _default_injector


@contextmanager
def fault_override(faults: FaultPlan | FaultInjector | None) -> Iterator[FaultInjector | None]:
    """Install ``faults`` as the process-default fault schedule.

    Every :class:`~repro.congest.network.CongestNetwork` created inside
    the block (without an explicit ``faults`` argument) applies it —
    this is how the chaos layer reaches the networks the embedding
    pipeline creates internally.  Yields the shared
    :class:`FaultInjector` (or ``None``), whose ``stats`` accumulate
    across all of them.
    """
    global _default_injector
    injector = (
        faults if isinstance(faults, (FaultInjector, type(None))) else FaultInjector(faults)
    )
    previous = _default_injector
    _default_injector = injector
    try:
        yield injector
    finally:
        _default_injector = previous


class FaultState:
    """Per-network runtime of a fault schedule.

    Created by :class:`~repro.congest.network.CongestNetwork` when a
    plan is active; owns the delayed-delivery queue and the per-round
    victim sets, and classifies recovery traffic for the ledger.
    """

    __slots__ = (
        "injector", "plan", "stats", "graph", "_nodes", "_edges", "_offset",
        "_delayed", "current_round", "_crashed", "restarted", "_down_links",
        "_round_payload", "_round_recovery", "_run_recovery_msgs",
        "_run_recovery_words", "_run_recovery_rounds", "_on_fault", "_flight",
    )

    def __init__(self, injector: FaultInjector, graph: Any, observer: Any = None) -> None:
        self.injector = injector
        self.plan = injector.plan
        self.stats = injector.stats
        self.graph = graph
        self._nodes: list[Any] | None = None  # resolved lazily: sorted by repr
        self._edges: list[tuple[Any, Any]] | None = None
        self._offset = injector.clock
        self._delayed: dict[int, list[tuple[Any, Any, Any]]] = {}
        self.current_round = 0
        self._crashed: frozenset = frozenset()
        self.restarted: frozenset = frozenset()
        self._down_links: frozenset = frozenset()
        self._round_payload = 0
        self._round_recovery = 0
        self._run_recovery_msgs = 0
        self._run_recovery_words = 0
        self._run_recovery_rounds = 0
        self._on_fault = getattr(observer, "on_fault", None) if observer is not None else None
        # Crash flight recorder (repro.obs.flightrec): fetched once here,
        # like the injector — no recorder installed means no per-frame
        # flight code at all.
        self._flight = default_flight_recorder()

    # -- round lifecycle ---------------------------------------------------

    def start_run(self) -> None:
        """Reset run-local accounting and enter round 1."""
        self._offset = self.injector.clock
        self._delayed.clear()
        self._run_recovery_msgs = 0
        self._run_recovery_words = 0
        self._run_recovery_rounds = 0
        self._round_payload = 0
        self._round_recovery = 0
        self.current_round = 0
        self._enter_round(1)

    def begin_round(self, round_no: int, in_flight: dict) -> dict:
        """Advance to ``round_no``: release due delayed frames into the
        inboxes, then discard the inboxes of crashed receivers.  Both
        scheduler loops call this — it is the round half of the shared
        fault hook (the message half is the delivery hook)."""
        self._enter_round(round_no)
        due = self._delayed.pop(round_no, None)
        if due:
            for receiver, sender, payload in due:
                box = in_flight.get(receiver)
                if box is None:
                    in_flight[receiver] = {sender: payload}
                elif sender in box:
                    # CONGEST carries one frame per edge per round; the
                    # late frame yields to the fresh one and slips again.
                    self._delayed.setdefault(round_no + 1, []).append(
                        (receiver, sender, payload)
                    )
                    self.stats.delay_collisions += 1
                else:
                    box[sender] = payload
        if self._crashed:
            for v in self._crashed:
                box = in_flight.pop(v, None)
                if box:
                    self.stats.crash_inbox_drops += len(box)
                    if self._on_fault is not None:
                        self._on_fault("crash-inbox-drop", round_no, v, len(box))
                    if self._flight is not None:
                        self._flight.record(
                            v, "crash-inbox-drop", round_no, frames=len(box)
                        )
        return in_flight

    def _enter_round(self, round_no: int) -> None:
        self._close_round_flags()
        previously_crashed = self._crashed
        self.current_round = round_no
        g = self._offset + round_no
        injector = self.injector
        crashed = set()
        for i, w in enumerate(injector.crash_windows):
            if w.start <= g < w.stop:
                victim = w.node if w.node is not None else self._auto_node(i)
                if victim is not None and victim in self.graph:
                    crashed.add(victim)
        self._crashed = frozenset(crashed)
        # Nodes whose crash window just ended: the event loop owes them
        # one restart activation (the dense loop polls them regardless).
        self.restarted = (
            frozenset(previously_crashed - crashed) if previously_crashed else frozenset()
        )
        if crashed:
            self.stats.crash_node_rounds += len(crashed)
        down = set()
        for i, w in enumerate(injector.link_windows):
            if w.start <= g < w.stop:
                if w.u is not None:
                    down.add(frozenset((w.u, w.v)))
                else:
                    edge = self._auto_edge(i)
                    if edge is not None:
                        down.add(edge)
        self._down_links = frozenset(down)

    def _close_round_flags(self) -> None:
        if self._round_recovery and not self._round_payload:
            self._run_recovery_rounds += 1
        self._round_payload = 0
        self._round_recovery = 0

    def crashed_at(self, round_no: int) -> frozenset:
        """The crash set for the round most recently entered (``round_no``
        is asserted against for loop-integration safety)."""
        assert round_no == self.current_round, "crashed_at outside the current round"
        return self._crashed

    def _auto_node(self, index: int):
        if self._nodes is None:
            self._nodes = sorted(self.graph.nodes(), key=repr)
        if not self._nodes:
            return None
        pick = int(_unit(self.plan.seed, "crash-node", index) * len(self._nodes))
        return self._nodes[min(pick, len(self._nodes) - 1)]

    def _auto_edge(self, index: int):
        if self._edges is None:
            self._edges = sorted(self.graph.edges(), key=repr)
        if not self._edges:
            return None
        pick = int(_unit(self.plan.seed, "link-edge", index) * len(self._edges))
        u, v = self._edges[min(pick, len(self._edges) - 1)]
        return frozenset((u, v))

    # -- the per-message fault hook ---------------------------------------

    def transmit(self, sender, receiver, payload, words: int, in_flight: dict) -> None:
        """Apply the fault schedule to one transmitted frame.

        The frame was already bandwidth-checked and counted as traffic;
        this decides whether (and when, and in what shape) it arrives.
        """
        stats = self.stats
        stats.sent += 1
        if type(payload) is tuple and payload and payload[0] in _RECOVERY_TAGS:
            self._round_recovery += 1
            self._run_recovery_msgs += 1
            self._run_recovery_words += words
            stats.recovery_messages += 1
            stats.recovery_words += words
        else:
            self._round_payload += 1

        plan = self.plan
        g = self._offset + self.current_round
        seed = plan.seed
        on_fault = self._on_fault
        flight = self._flight
        if flight is not None:
            flight.record(
                sender, "send", self.current_round, to=repr(receiver), words=words
            )

        if self._down_links and frozenset((sender, receiver)) in self._down_links:
            stats.link_dropped += 1
            if on_fault is not None:
                on_fault("link-drop", self.current_round, sender, receiver)
            if flight is not None:
                flight.record(receiver, "link-drop", self.current_round, frm=repr(sender))
            return
        if plan.drop_rate and _unit(seed, "drop", g, sender, receiver) < plan.drop_rate:
            stats.dropped += 1
            if on_fault is not None:
                on_fault("drop", self.current_round, sender, receiver)
            if flight is not None:
                flight.record(receiver, "drop", self.current_round, frm=repr(sender))
            return
        if plan.corruption_rate and (
            _unit(seed, "corrupt", g, sender, receiver) < plan.corruption_rate
        ):
            stats.corrupted += 1
            payload, detected = self._corrupt(sender, receiver, payload, g)
            if detected:
                stats.corruption_detected += 1
                if on_fault is not None:
                    on_fault("corruption-detected", self.current_round, sender, receiver)
                if flight is not None:
                    flight.record(
                        receiver, "corruption-detected", self.current_round,
                        frm=repr(sender),
                    )
                return  # CRC failure: the link layer discards the frame
            stats.corruption_delivered += 1

        arrival = self.current_round + 1
        if plan.delay_rate and _unit(seed, "delay", g, sender, receiver) < plan.delay_rate:
            extra = 1 + int(
                _unit(seed, "delay-by", g, sender, receiver) * plan.max_delay
            ) % plan.max_delay
            stats.delayed += 1
            if on_fault is not None:
                on_fault("delay", self.current_round, sender, receiver)
            if flight is not None:
                flight.record(
                    receiver, "delay", self.current_round,
                    frm=repr(sender), until=arrival + extra,
                )
            self._delayed.setdefault(arrival + extra, []).append((receiver, sender, payload))
        else:
            box = in_flight.get(receiver)
            if box is None:
                in_flight[receiver] = {sender: payload}
            else:
                box[sender] = payload
            if flight is not None:
                flight.record(receiver, "deliver", self.current_round, frm=repr(sender))
        stats.delivered += 1

        if plan.duplicate_rate and (
            _unit(seed, "dup", g, sender, receiver) < plan.duplicate_rate
        ):
            echo = 1 + int(_unit(seed, "dup-by", g, sender, receiver) * plan.max_delay) % max(
                1, plan.max_delay
            )
            stats.duplicated += 1
            if on_fault is not None:
                on_fault("duplicate", self.current_round, sender, receiver)
            if flight is not None:
                flight.record(
                    receiver, "duplicate", self.current_round,
                    frm=repr(sender), echo=arrival + echo,
                )
            self._delayed.setdefault(arrival + echo, []).append((receiver, sender, payload))

    def _corrupt(self, sender, receiver, payload, g: int) -> tuple[Any, bool]:
        """Bit-flip the frame's wire bytes; returns (payload, detected)."""
        try:
            blob = Message(sender, receiver, payload).encode()
        except TypeError:
            # Not wire-encodable (exotic test payload): the garbled frame
            # cannot be framed either, so the link layer drops it.
            return payload, True
        bit = int(_unit(self.plan.seed, "corrupt-bit", g, sender, receiver) * len(blob) * 8)
        try:
            message = Message.decode(flip_bit(blob, bit))
        except MessageCorruptionError:
            return payload, True
        return message.payload, False  # pragma: no cover - CRC-32 catches single flips

    # -- termination & bookkeeping ----------------------------------------

    def no_pending(self) -> bool:
        """True when no delayed frame is still in transit."""
        return not self._delayed

    def windows_pending(self) -> bool:
        """True while a crash window is still active or ahead of the
        current global round — i.e. node restarts may yet wake someone,
        so an empty active set is quiet time, not a stall."""
        g = self._offset + self.current_round
        return any(w.stop > g for w in self.injector.crash_windows)

    def close_run(self) -> None:
        """Finish the execution: flush round flags and advance the global
        clock so the next network starts where this one stopped — also on
        a *failed* execution, so retries see fresh rounds."""
        self._close_round_flags()
        self.injector.advance(self.current_round)

    def take_recovery(self) -> tuple[int, int, int]:
        """This run's recovery traffic: (rounds, messages, words)."""
        return (
            self._run_recovery_rounds,
            self._run_recovery_msgs,
            self._run_recovery_words,
        )
