"""Message payloads: CONGEST size accounting and the wire format.

The CONGEST model allows one ``O(log n)``-bit message per edge per round.
We account sizes in *words*, where one word is ``ceil(log2(n+1)) + 2``
bits — enough for a node identifier, a small tag, or a bounded counter.
A payload is measured by recursively flattening it into atoms:

* ``None``/booleans: tag only (counted as one atom, conservatively),
* integers: one word per ``word_bits`` chunk of their magnitude,
* strings (protocol tags): one word per 4 characters (conservative),
* tuples/lists: the sum of their items.

This is intentionally a *conservative over-estimate*: the experiments that
check the bandwidth discipline (E9) use these measured sizes, so erring on
the large side only makes the reproduced claims harder to satisfy.

Wire format
-----------

The fault-injection layer (:mod:`repro.congest.faults`) corrupts
messages the way real links do — by flipping bits in a byte stream — so
payloads need a canonical byte encoding.  :class:`Message` frames a
``(sender, receiver, payload)`` triple as::

    [4-byte big-endian body length] [body] [4-byte CRC-32 of the body]

where the body is a tagged recursive encoding of the triple covering
exactly the types :func:`payload_words` accounts for.  Decoding is
*total*: any checksum mismatch, truncation, bad tag, or malformed field
raises the typed :class:`~repro.congest.errors.MessageCorruptionError`
— never a bare ``ValueError``/``struct.error`` — so corruption is a
countable event, not a crash.  CRC-32 detects every single-bit flip, so
a corrupted frame is always caught at the receiving link layer.
"""

from __future__ import annotations

import math
import struct
import zlib
from dataclasses import dataclass
from typing import Any

from .errors import MessageCorruptionError

__all__ = [
    "word_bits",
    "payload_words",
    "payload_bits",
    "PayloadMeter",
    "Message",
    "encode_payload",
    "decode_payload",
    "flip_bit",
]


def word_bits(n: int) -> int:
    """Bits in one CONGEST word for an ``n``-node network."""
    if n < 1:
        raise ValueError("network must have at least one node")
    return max(1, math.ceil(math.log2(n + 1))) + 2


def payload_words(payload: object, bits_per_word: int = 32) -> int:
    """Measure a payload in words (see module docstring)."""
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        magnitude_bits = max(1, payload.bit_length()) + 1  # +1 sign
        return max(1, math.ceil(magnitude_bits / bits_per_word))
    if isinstance(payload, float):
        return max(1, math.ceil(64 / bits_per_word))
    if isinstance(payload, str):
        return max(1, math.ceil(len(payload) / 4))
    if isinstance(payload, (tuple, list, frozenset, set)):
        items = sorted(payload, key=repr) if isinstance(payload, (set, frozenset)) else payload
        return sum(payload_words(item, bits_per_word) for item in items)
    if isinstance(payload, dict):
        return sum(
            payload_words(k, bits_per_word) + payload_words(v, bits_per_word)
            for k, v in payload.items()
        )
    raise TypeError(f"unsupported payload type for CONGEST accounting: {type(payload)!r}")


def payload_bits(payload: object, n: int) -> int:
    """Measure a payload in bits, for an ``n``-node network's word size."""
    bits = word_bits(n)
    return payload_words(payload, bits) * bits


def _memo_key(payload: object):
    """A type-aware cache key: distinguishes values that compare equal but
    measure differently (``2`` vs ``2.0`` vs ``True``), recursively through
    tuples.  Unhashable payloads (lists, sets, dicts) produce an unhashable
    key, which the caller treats as "do not cache".

    Flat tuples — the overwhelming protocol case — take a non-recursive
    path keyed by ``(payload, item_types)``: equal flat tuples with
    identical per-item types always measure the same.  Recursion is
    needed only when an item is itself a tuple (``("x", (2,))`` must not
    collide with ``("x", (2.0,))`` — equal values, equal item types at
    the top level, different measurements inside)."""
    cls = payload.__class__
    if cls is not tuple:
        return (cls, payload)
    types = tuple(map(type, payload))
    if tuple in types:
        return (tuple, tuple(map(_memo_key, payload)))
    return (payload, types)


class PayloadMeter:
    """A memoizing :func:`payload_words` for one fixed word size.

    Protocol payloads are overwhelmingly small immutable tuples rebuilt
    with the same shape and values every round (``("layer", d)``,
    ``("agg", (s, h))``, ...), so the recursive measurement is cached per
    distinct value.  Keys are type-aware (:func:`_memo_key`), so the cache
    can never conflate ``2`` with ``2.0`` or ``True``; payloads containing
    unhashable parts fall back to direct measurement.  The cache is capped
    to keep adversarial value streams from growing it without bound.
    """

    __slots__ = ("bits_per_word", "_cache")

    MAX_ENTRIES = 1 << 16

    def __init__(self, bits_per_word: int) -> None:
        self.bits_per_word = bits_per_word
        self._cache: dict = {}

    def __call__(self, payload: object) -> int:
        try:
            key = _memo_key(payload)
            return self._cache[key]
        except KeyError:
            words = payload_words(payload, self.bits_per_word)
            if len(self._cache) < self.MAX_ENTRIES:
                self._cache[key] = words
            return words
        except TypeError:  # unhashable key: measure without caching
            return payload_words(payload, self.bits_per_word)


# -- wire format -------------------------------------------------------------

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_TUPLE = b"t"
_TAG_LIST = b"l"
_TAG_SET = b"e"
_TAG_FROZENSET = b"z"
_TAG_DICT = b"d"


def encode_payload(obj: Any) -> bytes:
    """Encode one payload into the canonical tagged byte form.

    Supports exactly the types :func:`payload_words` accounts for; sets
    and dicts are serialized in ``repr``-sorted order so equal values
    always produce identical bytes.  Raises ``TypeError`` for anything
    else (the caller decides how an unencodable payload behaves under
    corruption).
    """
    out = bytearray()
    _encode_into(obj, out)
    return bytes(out)


def _encode_into(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += _TAG_NONE
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        out += _TAG_TRUE if obj else _TAG_FALSE
    elif isinstance(obj, int):
        body = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
        out += _TAG_INT
        out += struct.pack(">H", len(body))
        out += body
    elif isinstance(obj, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", obj)
    elif isinstance(obj, str):
        body = obj.encode("utf-8")
        out += _TAG_STR
        out += struct.pack(">I", len(body))
        out += body
    elif isinstance(obj, (tuple, list)):
        out += _TAG_TUPLE if isinstance(obj, tuple) else _TAG_LIST
        out += struct.pack(">I", len(obj))
        for item in obj:
            _encode_into(item, out)
    elif isinstance(obj, (set, frozenset)):
        out += _TAG_FROZENSET if isinstance(obj, frozenset) else _TAG_SET
        items = sorted(obj, key=repr)
        out += struct.pack(">I", len(items))
        for item in items:
            _encode_into(item, out)
    elif isinstance(obj, dict):
        out += _TAG_DICT
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        out += struct.pack(">I", len(items))
        for k, v in items:
            _encode_into(k, out)
            _encode_into(v, out)
    else:
        raise TypeError(f"unsupported payload type for the wire format: {type(obj)!r}")


#: Anything larger claims a body the 4-byte frame header could never
#: have carried honestly; bail before allocating.
_MAX_ITEMS = 1 << 24


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`.

    Total: every malformation raises
    :class:`~repro.congest.errors.MessageCorruptionError`, including
    trailing bytes after a well-formed value.
    """
    try:
        obj, offset = _decode_from(data, 0, 0)
    except MessageCorruptionError:
        raise
    except Exception as exc:  # struct.error, UnicodeDecodeError, Overflow...
        raise MessageCorruptionError(f"malformed payload body: {exc}") from exc
    if offset != len(data):
        raise MessageCorruptionError(
            f"{len(data) - offset} trailing bytes after payload body"
        )
    return obj


def _decode_from(data: bytes, offset: int, depth: int) -> tuple[Any, int]:
    if depth > 64:
        raise MessageCorruptionError("payload nesting exceeds the wire-format limit")
    if offset >= len(data):
        raise MessageCorruptionError("truncated payload body")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        (length,) = struct.unpack_from(">H", data, offset)
        offset += 2
        if offset + length > len(data):
            raise MessageCorruptionError("truncated integer field")
        return int.from_bytes(data[offset:offset + length], "big", signed=True), offset + length
    if tag == _TAG_FLOAT:
        (value,) = struct.unpack_from(">d", data, offset)
        return value, offset + 8
    if tag == _TAG_STR:
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if length > _MAX_ITEMS or offset + length > len(data):
            raise MessageCorruptionError("truncated string field")
        return data[offset:offset + length].decode("utf-8"), offset + length
    if tag in (_TAG_TUPLE, _TAG_LIST, _TAG_SET, _TAG_FROZENSET):
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if count > _MAX_ITEMS:
            raise MessageCorruptionError(f"implausible container size {count}")
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset, depth + 1)
            items.append(item)
        if tag == _TAG_TUPLE:
            return tuple(items), offset
        if tag == _TAG_LIST:
            return items, offset
        if tag == _TAG_SET:
            return set(items), offset
        return frozenset(items), offset
    if tag == _TAG_DICT:
        (count,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if count > _MAX_ITEMS:
            raise MessageCorruptionError(f"implausible container size {count}")
        result = {}
        for _ in range(count):
            k, offset = _decode_from(data, offset, depth + 1)
            v, offset = _decode_from(data, offset, depth + 1)
            result[k] = v
        return result, offset
    raise MessageCorruptionError(f"unknown wire tag {tag!r}")


@dataclass(frozen=True)
class Message:
    """One framed CONGEST message: ``(sender, receiver, payload)``.

    ``encode``/``decode`` round-trip through the length-prefixed,
    CRC-32-protected byte frame described in the module docstring.

    ``lamport`` optionally piggybacks the sender's Lamport chain clock
    (see :mod:`repro.obs.causal`) on the frame: when set, the body is a
    4-tuple ``(sender, receiver, payload, lamport)`` — a constant O(log
    rounds)-bit rider, so it never changes the *word* measurement of the
    payload the bandwidth discipline charges.  Decoding accepts both
    shapes, so traced and untraced peers interoperate.
    """

    sender: Any
    receiver: Any
    payload: Any
    lamport: int | None = None

    def encode(self) -> bytes:
        if self.lamport is None:
            body = encode_payload((self.sender, self.receiver, self.payload))
        else:
            body = encode_payload(
                (self.sender, self.receiver, self.payload, self.lamport)
            )
        return struct.pack(">I", len(body)) + body + struct.pack(">I", zlib.crc32(body))

    @classmethod
    def decode(cls, blob: bytes) -> "Message":
        if len(blob) < 8:
            raise MessageCorruptionError(f"frame too short ({len(blob)} bytes)")
        (length,) = struct.unpack_from(">I", blob, 0)
        if len(blob) != length + 8:
            raise MessageCorruptionError(
                f"frame length mismatch: header claims {length} body bytes, "
                f"frame carries {len(blob) - 8}"
            )
        body = blob[4:4 + length]
        (crc,) = struct.unpack_from(">I", blob, 4 + length)
        if zlib.crc32(body) != crc:
            raise MessageCorruptionError("CRC-32 checksum mismatch")
        fields = decode_payload(body)
        if not isinstance(fields, tuple) or len(fields) not in (3, 4):
            raise MessageCorruptionError(
                "frame body is not a (sender, receiver, payload[, lamport]) tuple"
            )
        if len(fields) == 4 and not (
            isinstance(fields[3], int) and not isinstance(fields[3], bool)
        ):
            raise MessageCorruptionError("frame lamport stamp is not an integer")
        return cls(*fields)


def flip_bit(blob: bytes, bit: int) -> bytes:
    """Return ``blob`` with one bit flipped (the fault layer's corruption)."""
    i, shift = divmod(bit % (len(blob) * 8), 8)
    out = bytearray(blob)
    out[i] ^= 1 << shift
    return bytes(out)
