"""Message payloads and their CONGEST size accounting.

The CONGEST model allows one ``O(log n)``-bit message per edge per round.
We account sizes in *words*, where one word is ``ceil(log2(n+1)) + 2``
bits — enough for a node identifier, a small tag, or a bounded counter.
A payload is measured by recursively flattening it into atoms:

* ``None``/booleans: tag only (counted as one atom, conservatively),
* integers: one word per ``word_bits`` chunk of their magnitude,
* strings (protocol tags): one word per 4 characters (conservative),
* tuples/lists: the sum of their items.

This is intentionally a *conservative over-estimate*: the experiments that
check the bandwidth discipline (E9) use these measured sizes, so erring on
the large side only makes the reproduced claims harder to satisfy.
"""

from __future__ import annotations

import math

__all__ = ["word_bits", "payload_words", "payload_bits", "PayloadMeter"]


def word_bits(n: int) -> int:
    """Bits in one CONGEST word for an ``n``-node network."""
    if n < 1:
        raise ValueError("network must have at least one node")
    return max(1, math.ceil(math.log2(n + 1))) + 2


def payload_words(payload: object, bits_per_word: int = 32) -> int:
    """Measure a payload in words (see module docstring)."""
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        magnitude_bits = max(1, payload.bit_length()) + 1  # +1 sign
        return max(1, math.ceil(magnitude_bits / bits_per_word))
    if isinstance(payload, float):
        return max(1, math.ceil(64 / bits_per_word))
    if isinstance(payload, str):
        return max(1, math.ceil(len(payload) / 4))
    if isinstance(payload, (tuple, list, frozenset, set)):
        items = sorted(payload, key=repr) if isinstance(payload, (set, frozenset)) else payload
        return sum(payload_words(item, bits_per_word) for item in items)
    if isinstance(payload, dict):
        return sum(
            payload_words(k, bits_per_word) + payload_words(v, bits_per_word)
            for k, v in payload.items()
        )
    raise TypeError(f"unsupported payload type for CONGEST accounting: {type(payload)!r}")


def payload_bits(payload: object, n: int) -> int:
    """Measure a payload in bits, for an ``n``-node network's word size."""
    bits = word_bits(n)
    return payload_words(payload, bits) * bits


def _memo_key(payload: object):
    """A type-aware cache key: distinguishes values that compare equal but
    measure differently (``2`` vs ``2.0`` vs ``True``), recursively through
    tuples.  Unhashable payloads (lists, sets, dicts) produce an unhashable
    key, which the caller treats as "do not cache".

    Flat tuples — the overwhelming protocol case — take a non-recursive
    path keyed by ``(payload, item_types)``: equal flat tuples with
    identical per-item types always measure the same.  Recursion is
    needed only when an item is itself a tuple (``("x", (2,))`` must not
    collide with ``("x", (2.0,))`` — equal values, equal item types at
    the top level, different measurements inside)."""
    cls = payload.__class__
    if cls is not tuple:
        return (cls, payload)
    types = tuple(map(type, payload))
    if tuple in types:
        return (tuple, tuple(map(_memo_key, payload)))
    return (payload, types)


class PayloadMeter:
    """A memoizing :func:`payload_words` for one fixed word size.

    Protocol payloads are overwhelmingly small immutable tuples rebuilt
    with the same shape and values every round (``("layer", d)``,
    ``("agg", (s, h))``, ...), so the recursive measurement is cached per
    distinct value.  Keys are type-aware (:func:`_memo_key`), so the cache
    can never conflate ``2`` with ``2.0`` or ``True``; payloads containing
    unhashable parts fall back to direct measurement.  The cache is capped
    to keep adversarial value streams from growing it without bound.
    """

    __slots__ = ("bits_per_word", "_cache")

    MAX_ENTRIES = 1 << 16

    def __init__(self, bits_per_word: int) -> None:
        self.bits_per_word = bits_per_word
        self._cache: dict = {}

    def __call__(self, payload: object) -> int:
        try:
            key = _memo_key(payload)
            return self._cache[key]
        except KeyError:
            words = payload_words(payload, self.bits_per_word)
            if len(self._cache) < self.MAX_ENTRIES:
                self._cache[key] = words
            return words
        except TypeError:  # unhashable key: measure without caching
            return payload_words(payload, self.bits_per_word)
