"""Exact round costs for pipelined tree communication.

The paper's Remark 1: a single "super-round" of a part-level algorithm —
computing max/min/sum of part variables, or shipping a summary to one
designated part vertex — "can actually be simulated in O(D) rounds on a
BFS of the part, using standard upcast and downcast techniques.  We skip
stating the exact details ... as they are standard."

This module supplies those standard costs *exactly*, so that charged
rounds come from measured quantities instead of asymptotic hand-waving:

* streaming ``W`` words along a path with ``d`` hops, one word per edge
  per round, takes ``d + W - 1`` rounds (classic pipelining);
* a convergecast of ``W`` total words to the root of a tree of depth
  ``d`` takes at most ``d + W - 1`` rounds (the root receives at most one
  word per round per child subtree after the pipeline fills);
* an aggregate (max/min/sum — one word per node, combining en route)
  takes exactly ``d`` rounds up, ``d`` rounds down to broadcast back.

All functions take the per-round edge budget in words (``bandwidth``), so
experiments can study the effect of the CONGEST constant.
"""

from __future__ import annotations

import math

__all__ = [
    "stream_rounds",
    "convergecast_rounds",
    "aggregate_rounds",
    "broadcast_rounds",
    "gather_scatter_rounds",
]


def stream_rounds(hops: int, words: int, bandwidth: int = 1) -> int:
    """Rounds to stream ``words`` words across ``hops`` hops, pipelined."""
    if hops < 0 or words < 0 or bandwidth < 1:
        raise ValueError("hops/words must be >= 0 and bandwidth >= 1")
    if words == 0 or hops == 0:
        return 0
    packets = math.ceil(words / bandwidth)
    return hops + packets - 1


def convergecast_rounds(depth: int, total_words: int, bandwidth: int = 1) -> int:
    """Rounds to gather ``total_words`` words of payload at a tree root.

    Upper bound ``depth + ceil(W/bandwidth) - 1``: once the pipeline is
    full the root drains at least ``bandwidth`` words per round.
    """
    return stream_rounds(depth, total_words, bandwidth)


def broadcast_rounds(depth: int, total_words: int, bandwidth: int = 1) -> int:
    """Rounds to push ``total_words`` words from the root to everyone."""
    return stream_rounds(depth, total_words, bandwidth)


def aggregate_rounds(depth: int, repetitions: int = 1) -> int:
    """Rounds for ``repetitions`` single-word aggregates (up) + broadcasts (down)."""
    if depth < 0 or repetitions < 0:
        raise ValueError("depth and repetitions must be >= 0")
    return 2 * depth * repetitions


def gather_scatter_rounds(depth: int, up_words: int, down_words: int, bandwidth: int = 1) -> int:
    """A full coordinated exchange: gather summaries, then scatter decisions."""
    return convergecast_rounds(depth, up_words, bandwidth) + broadcast_rounds(
        depth, down_words, bandwidth
    )
