"""Sharded multi-process recursion backend (experiment E20).

The recursion's hanging subtrees are vertex-disjoint (Lemma 4.1), so
sibling calls are embarrassingly parallel *given* a snapshot of the
evolving graph.  This package ships them to worker processes as flat
picklable subproblems and folds the results back deterministically:

* :mod:`~repro.shard.flat` — exact array-of-int snapshots of graphs,
  parts, and subtree batches;
* :mod:`~repro.shard.planner` — which subtrees ship, batched how;
* :mod:`~repro.shard.dispatch` — the pool runtime, the worker entry
  point, and the consume-side journal replay that makes the sharded
  path bit-identical to sequential execution;
* :mod:`~repro.shard.caches` — process-global cache hygiene for
  workers.

Entry point: ``DistributedPlanarEmbedding(graph, shard_workers=N)``
(or ``--shard-workers N`` on the CLI / service).
"""

from .caches import clear_caches
from .dispatch import DEFAULT_MIN_SHIP, ShardRuntime, run_unit
from .flat import (
    FlatGraph,
    FlatPart,
    FlatSubproblem,
    encode_part,
    encode_subproblem,
)
from .planner import plan_units

__all__ = [
    "DEFAULT_MIN_SHIP",
    "FlatGraph",
    "FlatPart",
    "FlatSubproblem",
    "ShardRuntime",
    "clear_caches",
    "encode_part",
    "encode_subproblem",
    "plan_units",
    "run_unit",
]
