"""Multi-process dispatch for the recursion's hanging subtrees.

:class:`ShardRuntime` is the object ``embed_subtree`` talks to when
``DistributedPlanarEmbedding(..., shard_workers=N)`` turns sharding on:

* ``plan_children`` runs at each multi-child call, costs the hanging
  subtrees via the shared E16 :class:`~repro.core.index.RecursionIndex`,
  batches the medium-sized ones into work units
  (:func:`~repro.shard.planner.plan_units`), flattens each unit
  (:mod:`~repro.shard.flat`) and submits it to a lazy
  ``ProcessPoolExecutor`` whose initializer wipes the process-global
  caches (:mod:`~repro.shard.caches`).  Tickets come back keyed by
  subtree root.
* ``consume`` is called by the child loop *in canonical sibling order*
  for each shipped subtree and turns the worker's flat result back into
  a rich part plus branch metrics.

Determinism contract — the whole point of the design:

A worker's output depends on the evolving ``current`` graph **only
through the verdicts of its ``try_split`` calls** (part graphs and
boundaries come from the immutable wrapped graph; everything else is a
pure function of the subtree).  Each worker journals every ``try_split``
(mutation + verdict); ``consume`` replays the journal against the
parent's authoritative graph.  If every replayed verdict matches, the
worker result is *exactly* what the sequential path would have
computed, and replay has regenerated the authoritative side effects
(graph mutations, split counters, oracle counters and memo) — so the
worker's counters are discarded and the adopted part, ledger, trace
records, and grafted span are bit-identical to sequential execution.
On any divergence (the shipped snapshot was stale), the graph, counters
and oracle are rolled back to the pre-replay state and the subtree is
recomputed inline; staleness costs time, never fidelity.  Worker
crashes and in-worker embedding errors fall back the same way, so
errors surface at the exact point sequential execution would raise.

Sharding is refused (``_make_shard_runtime`` returns ``None``) under
reference paths, fault injection, and causal recording — those modes
hook per-message state that cannot cross a process boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from ..congest.metrics import RoundMetrics
from ..congest.network import scheduler_override
from ..core.index import RecursionIndex
from ..obs import Tracer
from ..planar.scoped import ScopedPlanarityOracle
from ..primitives.bfs import BfsTree
from .caches import clear_caches
from .flat import FlatGraph, FlatSubproblem, encode_part, encode_subproblem
from .planner import plan_units

__all__ = ["DEFAULT_MIN_SHIP", "ShardRuntime", "run_unit"]

# Below this many vertices the IPC round trip costs more than embedding
# inline.  Overridable for tests, whose graph families are tiny.  (Grid
# BFS trees hang ~63-vertex subtrees off the splitter path; the
# threshold must sit below the bulk of the size distribution.)
DEFAULT_MIN_SHIP = 32


def _decode_tree(sub: FlatSubproblem, start: int, end: int) -> BfsTree:
    """Rebuild one subtree's :class:`BfsTree` from the Euler-ordered
    arrays.  Preorder guarantees a parent appears before its children
    and siblings in tree order, so one linear pass reproduces the child
    lists exactly."""
    nodes = sub.tree_nodes
    parent_idx = sub.parent_idx
    depths = sub.depths
    root = nodes[start]
    parent: dict = {}
    children: dict = {}
    depth_of: dict = {}
    for i in range(start, end):
        v = nodes[i]
        children[v] = []
        depth_of[v] = depths[i]
        p = parent_idx[i]
        if p < 0:
            parent[v] = None
        else:
            u = nodes[p]
            parent[v] = u
            children[u].append(v)
    return BfsTree(root=root, parent=parent, children=children, depth_of=depth_of)


def run_unit(sub: FlatSubproblem) -> list:
    """Worker entry point: embed every subtree of one work unit.

    Runs in a pool process (module-level so it pickles by reference).
    All subtrees of the unit share one decoded ``current`` snapshot, one
    scoped oracle, and one split journal — they execute back-to-back in
    sibling order, exactly as the sequential child loop would against
    that graph state.  Returns one entry per subtree:

    * success: ``{"part", "metrics", "records", "splits", "span",
      "busy_s"}`` — the flat part, the branch ledger dict, the
      ``CallRecord`` list, this subtree's slice of the split journal,
      the span tree (or ``None`` untraced), and worker CPU seconds;
    * failure: ``{"error": "<Type>: <msg>"}`` for the raising subtree
      and ``{"skipped": True}`` for the rest — the parent recomputes
      them inline so errors surface at the sequential point.
    """
    from ..core.recursion import RecursionContext, embed_subtree

    results: list = []
    with scheduler_override(sub.scheduler):
        current = sub.current.to_graph()
        member_graph = sub.member_rows.to_row_graph()
        oracle = ScopedPlanarityOracle(current)
        oracle.known_planar = sub.known_planar
        split_log: list = []
        slices = sub.subtree_slices()
        for k, (start, end, level, path) in enumerate(slices):
            tree = _decode_tree(sub, start, end)
            index = RecursionIndex.build(tree)
            tracer = Tracer() if sub.traced else None
            ctx = RecursionContext(
                graph=member_graph,
                tree=tree,
                bandwidth=sub.bandwidth,
                current=current,
                splitter_strategy=sub.splitter_strategy,
                tracer=tracer,
                reference_paths=False,
                index=index,
                oracle=oracle,
                split_log=split_log,
            )
            mark = len(split_log)
            t0 = time.perf_counter()
            try:
                part, branch = embed_subtree(ctx, tree.root, level=level, path=path)
            except Exception as exc:  # noqa: BLE001 — shipped back, re-raised inline
                results.append({"error": f"{type(exc).__name__}: {exc}"})
                results.extend({"skipped": True} for _ in slices[k + 1 :])
                return results
            results.append(
                {
                    "part": encode_part(part),
                    "metrics": branch.to_dict(),
                    "records": ctx.trace,
                    "splits": split_log[mark:],
                    "span": (
                        tracer.roots[0].to_tree_dict()
                        if tracer is not None and tracer.roots
                        else None
                    ),
                    "busy_s": time.perf_counter() - t0,
                }
            )
    return results


class ShardRuntime:
    """Pool, planner, and consume-side verification for one run."""

    def __init__(
        self,
        workers: int,
        total_n: int,
        traced: bool = False,
        min_ship: int | None = None,
    ) -> None:
        if min_ship is None:
            env = os.environ.get("REPRO_SHARD_MIN_SHIP", "")
            min_ship = max(2, int(env)) if env else DEFAULT_MIN_SHIP
        self.workers = workers
        self.total_n = total_n
        self.traced = traced
        self.min_ship = min_ship
        # A subtree above this stays inline: its own recursion re-plans,
        # decomposing it into shippable grandchildren instead of hiding
        # the whole thing behind one worker.  The 4x floor keeps the
        # ship window open on small graphs, where total_n/(2*workers)
        # would collapse onto min_ship.
        self.max_unit = max(4 * min_ship, total_n // (2 * workers))
        self._pool: ProcessPoolExecutor | None = None
        self._snapshot: tuple | None = None  # (epoch, FlatGraph) of current
        self._inflight = 0  # shipped subtrees not yet consumed
        self._window_t0: float | None = None  # open dispatch-window start
        self.stats: dict = {
            "units_shipped": 0,
            "subtrees_shipped": 0,
            "subtrees_adopted": 0,
            "splits_replayed": 0,
            "fallback_worker_error": 0,
            "fallback_skipped": 0,
            "fallback_replay_mismatch": 0,
            "fallback_pool_error": 0,
            "pool_deaths": 0,  # BrokenExecutor: pool discarded, respawned lazily
            "busy_s": 0.0,  # worker CPU seconds of adopted subtrees
            "window_s": 0.0,  # union of wall intervals with work in flight
            "encode_s": 0.0,
        }

    # -- plan --------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=clear_caches,
            )
        return self._pool

    def _flat_current(self, ctx) -> FlatGraph:
        """Snapshot ``ctx.current``, cached until the next accepted or
        replayed split bumps ``mutation_epoch``."""
        snap = self._snapshot
        if snap is not None and snap[0] == ctx.mutation_epoch:
            return snap[1]
        t0 = time.perf_counter()
        flat = FlatGraph.encode(ctx.current)
        self.stats["encode_s"] += time.perf_counter() - t0
        self._snapshot = (ctx.mutation_epoch, flat)
        return flat

    def plan_children(
        self, ctx, hanging_roots: list, level: int, path: tuple
    ) -> dict | None:
        """Ship batches of the hanging subtrees; tickets keyed by root.

        Returns ``None`` (all children inline) when nothing profits:
        fewer than two units and no inline work ahead of the first
        shipped child means the consume loop would block immediately
        with nothing overlapping.
        """
        index = ctx.index
        if index is None or len(hanging_roots) < 2:
            return None
        sizes = [index.subtree_size(w) for w in hanging_roots]
        units = plan_units(sizes, self.min_ship, self.max_unit)
        if not units or (len(units) == 1 and units[0][0] == 0):
            return None
        from ..congest.network import default_scheduler

        flat_current = self._flat_current(ctx)
        scheduler = default_scheduler()
        pool = self._ensure_pool()
        tickets: dict = {}
        for unit in units:
            t0 = time.perf_counter()
            sub = encode_subproblem(
                ctx,
                [(hanging_roots[j], level, path + (j,)) for j in unit],
                flat_current,
                scheduler,
                self.traced,
            )
            self.stats["encode_s"] += time.perf_counter() - t0
            if self._inflight == 0 and self._window_t0 is None:
                self._window_t0 = time.perf_counter()
            future = pool.submit(run_unit, sub)
            self._inflight += len(unit)
            for slot, j in enumerate(unit):
                tickets[hanging_roots[j]] = (future, slot)
            self.stats["units_shipped"] += 1
            self.stats["subtrees_shipped"] += len(unit)
        return tickets

    # -- consume -----------------------------------------------------------

    def consume(self, ctx, ticket, w, level: int, child_path: tuple):
        """Adopt (or recompute) the shipped subtree rooted at ``w``.

        Called strictly in canonical sibling order.  Returns the same
        ``(part, branch_metrics)`` pair ``embed_subtree`` would.
        """
        future, slot = ticket
        self._inflight -= 1
        closing = self._inflight == 0
        try:
            try:
                entry = future.result()[slot]
            except BrokenExecutor:
                # A worker died (SIGKILL, OOM): the whole pool is broken.
                # Typed propagation — discard it so the next plan_children
                # respawns a fresh pool, and recompute this subtree
                # inline; the serve-layer retry above composes with this
                # (its re-attempt lands on the healed pool).
                self.stats["fallback_pool_error"] += 1
                self.stats["pool_deaths"] += 1
                self._discard_pool()
                return self._inline(ctx, w, level, child_path)
            except Exception:  # pickling failure, cancelled future, ...
                self.stats["fallback_pool_error"] += 1
                return self._inline(ctx, w, level, child_path)
            if "part" not in entry:
                key = "fallback_worker_error" if "error" in entry else "fallback_skipped"
                self.stats[key] += 1
                return self._inline(ctx, w, level, child_path)
            if not self._replay(ctx, entry["splits"]):
                self.stats["fallback_replay_mismatch"] += 1
                return self._inline(ctx, w, level, child_path)
            ctx.trace.extend(entry["records"])
            if ctx.tracer is not None and entry["span"] is not None:
                ctx.tracer.graft(entry["span"])
            part = entry["part"].to_part()
            branch = RoundMetrics.from_dict(entry["metrics"])
            self.stats["subtrees_adopted"] += 1
            self.stats["busy_s"] += entry["busy_s"]
            return part, branch
        finally:
            if closing and self._window_t0 is not None:
                self.stats["window_s"] += time.perf_counter() - self._window_t0
                self._window_t0 = None

    def _replay(self, ctx, splits: list) -> bool:
        """Replay the worker's split journal on the authoritative graph.

        Every verdict matching proves the worker saw the graph
        faithfully; the replay itself regenerates the authoritative
        mutations, split counters, and oracle state.  On a mismatch,
        everything is restored exactly (adjacency snapshots put back
        in place, preserving dict identity and insertion order) and the
        caller recomputes inline.
        """
        if not splits:
            return True
        adj = ctx.current._adj
        snap_adj = {v: dict(row) for v, row in adj.items()}
        snap_counters = (ctx.split_tests, ctx.split_rejections)
        snap_oracle = ctx.oracle.snapshot_state() if ctx.oracle is not None else None
        for copy, coordinator, rerouted, verdict in splits:
            if ctx.try_split(copy, coordinator, list(rerouted)) == verdict:
                self.stats["splits_replayed"] += 1
                continue
            # Stale snapshot: roll back and recompute inline.
            adj.clear()
            adj.update(snap_adj)
            ctx.split_tests, ctx.split_rejections = snap_counters
            if snap_oracle is not None:
                ctx.oracle.restore_state(snap_oracle)
            ctx.mutation_epoch += 1  # force a fresh snapshot next plan
            return False
        return True

    def _inline(self, ctx, w, level: int, child_path: tuple):
        from ..core.recursion import embed_subtree

        return embed_subtree(ctx, w, level, child_path)

    def _discard_pool(self) -> None:
        """Drop a broken pool so ``_ensure_pool`` builds a fresh one.

        Pending tickets on the dead pool resolve to ``BrokenExecutor``
        and fall back inline one by one — correctness is untouched, the
        run just loses its overlap until the respawn.
        """
        from ..obs.flightrec import SERVICE_LANE, default_flight_recorder

        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 — a broken pool may refuse teardown
                pass
            self._pool = None
        recorder = default_flight_recorder()
        if recorder is not None:
            recorder.record(SERVICE_LANE, "shard-pool-death", None, workers=self.workers)

    # -- teardown ----------------------------------------------------------

    def shutdown(self) -> dict:
        """Stop the pool and return the run's shard statistics.

        Called from a ``finally`` — must never raise.
        """
        if self._window_t0 is not None:
            self.stats["window_s"] += time.perf_counter() - self._window_t0
            self._window_t0 = None
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001 — teardown best effort
                pass
            self._pool = None
        stats = dict(self.stats)
        stats["workers"] = self.workers
        stats["min_ship"] = self.min_ship
        stats["max_unit"] = self.max_unit
        if stats["window_s"] > 0:
            stats["shipped_speedup"] = round(stats["busy_s"] / stats["window_s"], 3)
        return stats
