"""The shard planner: which hanging subtrees ship, batched how.

Policy (costed on vertex counts from the shared E16
:class:`~repro.core.index.RecursionIndex` — no extra walks):

* subtrees smaller than ``min_ship`` stay inline — the IPC round trip
  (pickle a ``current`` snapshot out, a part back) costs more than
  embedding them here;
* subtrees larger than ``max_unit`` also stay inline — their *own*
  recursion re-plans, so an oversized part decomposes into shippable
  grandchildren instead of serializing one worker behind a monolith;
* consecutive shippable siblings are batched into work units of at most
  ``max_unit`` total vertices, so one ``current`` snapshot amortizes
  over several subtrees and the pool sees a few medium-grained units
  rather than many tiny ones.

Batching only ever groups *consecutive* siblings: the consume loop
adopts results strictly in canonical sibling order, and a unit's worker
runs its subtrees in that same order against one shared graph snapshot,
which keeps the worker's split journal sequentially faithful.
"""

from __future__ import annotations

__all__ = ["plan_units"]


def plan_units(
    sizes: list, min_ship: int, max_unit: int
) -> list:
    """Partition child indices into work units.

    ``sizes[j]`` is the vertex count of the j-th hanging subtree.
    Returns a list of units, each a list of child indices, in sibling
    order.  Children absent from every unit stay inline.
    """
    units: list = []
    unit: list = []
    unit_size = 0
    for j, size in enumerate(sizes):
        if not (min_ship <= size <= max_unit):
            if unit:
                units.append(unit)
                unit, unit_size = [], 0
            continue
        if unit and unit_size + size > max_unit:
            units.append(unit)
            unit, unit_size = [], 0
        unit.append(j)
        unit_size += size
    if unit:
        units.append(unit)
    return units
