"""Process-cache hygiene for shard workers.

The library keeps several process-global *pure* caches (structural LR
memos, the sort-key cache, the block-order memo).  Sharing them is
always correct — they cache pure functions — but a forked worker would
otherwise start from a copy-on-write snapshot of whatever the parent
had accumulated, which makes worker behavior depend on parent history
in ways that are impossible to reason about (and that the cache-
isolation test in ``tests/shard`` forbids).  The pool initializer calls
:func:`clear_caches` so every worker starts cold and process-private.
"""

from __future__ import annotations

__all__ = ["clear_caches"]


def clear_caches() -> None:
    """Reset every process-global cache in the library."""
    # Submodule-direct imports: ``repro.planar`` re-exports a *function*
    # named ``lr_planarity`` that shadows the submodule attribute.
    from ..core.interface import clear_caches as clear_interface
    from ..planar.graph import clear_caches as clear_graph
    from ..planar.lr_planarity import clear_caches as clear_lr

    clear_lr()
    clear_graph()
    clear_interface()
