"""Flat, picklable snapshots of recursion subproblems and their results.

Everything that crosses the process boundary of the sharded backend is
encoded here as arrays of ints over a node table instead of rich
``Graph``/``PartEmbedding``/``BfsTree`` objects:

* :class:`FlatGraph` — CSR adjacency (``indptr``/``indices`` arrays of
  positions into a node table).  Each node *object* is pickled once per
  snapshot, not once per incident edge, and the edge structure ships as
  two flat ``array('q')`` buffers.
* :class:`FlatPart` — a finished part: its graph, half-edge boundary,
  and rotation rings, all indexing one shared table.
* :class:`FlatSubproblem` — a work unit: one or more hanging subtrees
  (tree structure as parent/depth arrays over an Euler-ordered member
  list), the members' original-graph rows (for boundary scans), and a
  full snapshot of the evolving ``current`` graph for split validation.

Decoding is **exact**: node iteration order, adjacency insertion order,
boundary order, and rotation rings round-trip bit-identically — the
property the sharded backend's determinism contract rests on, and what
``tests/shard/test_flat_roundtrip.py`` exercises (property-based where
``hypothesis`` is available).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from ..core.parts import PartEmbedding
from ..planar.graph import Graph, NodeId
from ..planar.rotation import RotationSystem

__all__ = [
    "FlatGraph",
    "FlatPart",
    "FlatSubproblem",
    "encode_part",
    "encode_subproblem",
]


@dataclass
class FlatGraph:
    """CSR adjacency over a node table, preserving insertion order.

    ``row_nodes`` are the nodes owning adjacency rows (in iteration
    order); ``table`` additionally holds every referenced neighbor, so
    ``indices`` positions resolve even when a neighbor owns no row (the
    member-rows case: edges leaving the shipped subtree point at nodes
    that stay behind).  For a full symmetric graph every table entry is
    a row owner and :meth:`to_graph` reproduces the original exactly.
    """

    row_nodes: list
    table: list
    indptr: array  # len(row_nodes) + 1
    indices: array  # positions into table

    @classmethod
    def encode(cls, graph: Graph, rows: "set | None" = None) -> "FlatGraph":
        """Snapshot ``graph`` (or just the rows of ``rows``-members)."""
        adj = graph._adj
        if rows is None:
            row_nodes = list(adj)
        else:
            row_nodes = [v for v in adj if v in rows]
        table = list(row_nodes)
        pos = {v: i for i, v in enumerate(table)}
        indptr = array("q", [0])
        indices = array("q")
        for v in row_nodes:
            for u in adj[v]:
                j = pos.get(u)
                if j is None:
                    j = len(table)
                    pos[u] = j
                    table.append(u)
                indices.append(j)
            indptr.append(len(indices))
        return cls(row_nodes=row_nodes, table=table, indptr=indptr, indices=indices)

    def _decode(self) -> Graph:
        g = Graph()
        adj: dict[NodeId, dict[NodeId, None]] = {}
        table = self.table
        indices = self.indices
        indptr = self.indptr
        for i, v in enumerate(self.row_nodes):
            adj[v] = {table[j]: None for j in indices[indptr[i]:indptr[i + 1]]}
        g._adj = adj
        return g

    def to_graph(self) -> Graph:
        """Exact decode of a full symmetric snapshot."""
        return self._decode()

    def to_row_graph(self) -> Graph:
        """Decode a member-rows snapshot.

        The result is a *row view*: only the encoded members own
        adjacency rows, and their rows may point at nodes without rows
        of their own.  It is valid exactly for what the recursion uses
        ``ctx.graph`` for — per-member boundary scans — and must not be
        fed to symmetric ``Graph`` algorithms.
        """
        return self._decode()


@dataclass
class FlatPart:
    """A finished :class:`~repro.core.parts.PartEmbedding`, flattened.

    The rotation graph (part graph plus stub pseudo-vertices) and its
    rings index ``rot.table``; ring owner order matches
    ``rot.row_nodes``.  The half-edge boundary ships as the plain list
    of ``(inside, outside)`` pairs — outside targets are not part nodes,
    and the list is tiny next to the adjacency buffers.
    """

    part_id: "int | tuple"
    depth: int
    graph: FlatGraph
    boundary: list
    rot: FlatGraph
    ring_indptr: array
    ring_indices: array  # positions into rot.table

    def to_part(self) -> PartEmbedding:
        graph = self.graph.to_graph()
        rot_graph = self.rot.to_graph()
        table = self.rot.table
        indices = self.ring_indices
        indptr = self.ring_indptr
        orders = {
            v: tuple(table[j] for j in indices[indptr[i]:indptr[i + 1]])
            for i, v in enumerate(self.rot.row_nodes)
        }
        return PartEmbedding(
            part_id=self.part_id,
            graph=graph,
            boundary=list(self.boundary),
            rotation=RotationSystem.trusted(rot_graph, orders),
            depth=self.depth,
        )


def encode_part(part: PartEmbedding) -> FlatPart:
    rot = FlatGraph.encode(part.rotation.graph)
    pos = {v: i for i, v in enumerate(rot.table)}
    ring_indptr = array("q", [0])
    ring_indices = array("q")
    for v in rot.row_nodes:
        for u in part.rotation.order(v):
            ring_indices.append(pos[u])
        ring_indptr.append(len(ring_indices))
    return FlatPart(
        part_id=part.part_id,
        depth=part.depth,
        graph=FlatGraph.encode(part.graph),
        boundary=list(part.boundary),
        rot=rot,
        ring_indptr=ring_indptr,
        ring_indices=ring_indices,
    )


@dataclass
class FlatSubproblem:
    """One shard work unit: a batch of sibling hanging subtrees.

    ``tree_nodes`` concatenates the members of every shipped subtree in
    Euler (preorder) order — parents precede children, children in BFS
    tree order — so the worker rebuilds each ``BfsTree`` (parent,
    ordered children lists, absolute depths) with one linear pass.
    ``roots`` marks where each subtree starts and carries its recursion
    ``level`` and path-tuple ``path`` (= part ID scheme).

    ``member_rows`` holds the members' rows of the *original* wrapped
    graph (boundary scans look outward); ``current`` snapshots the full
    evolving graph at planning time, which split validation runs
    against.  The snapshot may be stale by the time the parent consumes
    the result — the parent replays the worker's split journal against
    its authoritative graph and falls back to an inline recompute on any
    verdict divergence, so staleness costs performance, never
    correctness.
    """

    tree_nodes: list
    parent_idx: array  # position of the parent in tree_nodes, -1 at subtree roots
    depths: array  # absolute BFS depths
    roots: list  # (start position in tree_nodes, level, path) per subtree
    member_rows: FlatGraph
    current: FlatGraph
    known_planar: bool
    bandwidth: int
    splitter_strategy: str
    scheduler: str
    traced: bool

    def subtree_slices(self) -> list:
        """Per-subtree ``(start, end, level, path)`` bounds."""
        out = []
        for k, (start, level, path) in enumerate(self.roots):
            end = (
                self.roots[k + 1][0] if k + 1 < len(self.roots)
                else len(self.tree_nodes)
            )
            out.append((start, end, level, path))
        return out


def encode_subproblem(
    ctx,
    subtrees: list,
    current: FlatGraph,
    scheduler: str,
    traced: bool,
) -> FlatSubproblem:
    """Flatten the ``subtrees`` (``(root, level, path)`` triples, in
    canonical sibling order) of the recursion context ``ctx``."""
    index = ctx.index
    tree_parent = ctx.tree.parent
    depth_of = ctx.tree.depth_of
    tree_nodes: list = []
    parent_idx = array("q")
    depths = array("q")
    roots = []
    pos: dict = {}
    for w, level, path in subtrees:
        roots.append((len(tree_nodes), level, path))
        for v in index.subtree_span(w):
            pos[v] = len(tree_nodes)
            tree_nodes.append(v)
            depths.append(depth_of[v])
            parent_idx.append(-1 if v == w else pos[tree_parent[v]])
    return FlatSubproblem(
        tree_nodes=tree_nodes,
        parent_idx=parent_idx,
        depths=depths,
        roots=roots,
        member_rows=FlatGraph.encode(ctx.graph, rows=set(tree_nodes)),
        current=current,
        known_planar=bool(ctx.oracle is not None and ctx.oracle.known_planar),
        bandwidth=ctx.bandwidth,
        splitter_strategy=ctx.splitter_strategy,
        scheduler=scheduler,
        traced=traced,
    )
