"""Command-line interface: embed an edge-list network.

Usage::

    repro <edgelist-file> [--baseline] [--bandwidth W] [--quiet]
    repro --demo grid 8 8
    repro --demo grid 8 8 --churn 16 --incremental-certify --json
    repro --demo grid 8 8 --trace run.jsonl --json
    repro --view-trace run.jsonl
    repro trace-diff a.jsonl b.jsonl
    repro serve jobs.jsonl --workers 4
    repro batch jobs.jsonl --workers 4 --json
    repro batch jobs.jsonl --workers 4 --deadline 5 --retries 3 --queue-limit 64
    repro cache-compact cache.jsonl

(``repro`` is the installed console script; ``python -m repro`` is the
equivalent in-tree invocation.)

The edge-list format is one edge per line, two whitespace-separated
integer node IDs; blank lines and ``#`` comments are ignored.  The tool
runs the distributed planar embedding (or the trivial baseline), prints
per-vertex clockwise orders and the round ledger, and exits non-zero on
non-planar input (printing a Kuratowski witness).

Observability: ``--trace FILE`` writes a JSONL span trace of the run
(``-`` = stdout), ``--json`` prints a machine-readable run report to
stdout, ``--profile`` wraps the run in cProfile (top-20 cumulative
entries land in the JSON report, or a human table otherwise), and
``--view-trace FILE`` renders a previously captured trace as an ASCII
recursion tree + phase timeline.  ``--causal`` attaches the
message-level causal recorder (:mod:`repro.obs.causal`) and prints the
critical-path length against the measured rounds and the paper's
D*log n prediction; ``--flight FILE`` (with ``--faults``) dumps the
crash flight recorder's JSONL; ``--perfetto FILE`` exports the span
tree and causal lanes as a Chrome trace-event file loadable in
Perfetto.  ``trace-diff A B`` (a subcommand, before any flags) diffs
two JSONL traces structurally and reports the first divergence — exit
0 identical, 1 divergent, 2 unreadable.  Whenever stdout carries
machine output, the human-readable report moves to stderr.

Certification: ``--certify`` appends the :mod:`repro.certify` phases —
every node gets an O(log n)-bit proof label and a distributed CONGEST
verifier re-checks the output in O(D) rounds; ``--certify-adversary``
additionally runs the tamper suite and demands 100% detection.
Labels ship bit-packed (:mod:`repro.certify.compact`); the report's
``certification`` block carries the measured ``label_bits_*`` sizes.

Churn: ``--churn N`` (implies ``--certify``) applies N seeded edge
insert/delete operations after the initial pipeline and re-certifies
after every one; ``--incremental-certify`` patches only each edit's
dirty region (tree path + incident faces) instead of re-running the
full pipeline per operation, falling back to a rebuild past the
dirty-region threshold (:mod:`repro.certify.delta`).  The ``churn``
block of the ``--json`` report records per-op mode, dirty-region size,
rounds, and the final verdict; a rejected patched certificate exits 3
exactly like a rejected static one.

Robustness: ``--faults SPEC`` runs the self-healing pipeline under a
deterministic chaos schedule (:mod:`repro.congest.faults`) — e.g.
``--faults drop=0.05,corrupt=0.02,crash=2:5`` — seeded by
``--fault-seed``; every pipeline execution then rides the reliable ARQ
transport (retransmission traffic shows in the ledger under the
``recovery`` phase), the result is certified, and a rejected
certificate is healed with up to ``--max-retries`` escalating retries
(re-verify, re-certify, re-embed).

Serving: ``serve`` streams JSONL verdicts for a JSONL job stream and
``batch`` runs a job file to one aggregate report, both over the
:mod:`repro.serve` driver (process-pool workers + canonical result
cache).  The serving resilience layer (:mod:`repro.serve.resilience`)
adds ``--deadline`` (per-attempt wall-clock budget), ``--retries``
(seeded exponential backoff after worker deaths and timeouts, with
pool respawn), ``--queue-limit`` (bounded admission, overflow jobs
shed), and ``--chaos SPEC`` (seeded process-level fault injection);
``cache-compact`` rewrites a persistent cache store to its live
entries atomically.  See those modules and the README "Serving"
section.

Exit codes (mirrors the consolidated "CLI exit codes" table in
README.md — every mode maps onto it; a ``serve`` / ``batch`` run exits
with the **worst** per-job code):

====  ==========================================================
code  meaning
====  ==========================================================
0     success — embedding computed (and certified, if asked)
1     input not planar (a Kuratowski witness is printed);
      ``trace-diff``: traces diverge
2     usage error (bad flags, malformed job file or edge list);
      ``trace-diff``: unreadable trace
3     the computed output was rejected — verification or
      certification failed, or a tamper went undetected: an
      algorithm bug, never the input's fault
4     degraded result — the self-healing retry budget ran out
      under ``--faults`` before a certified embedding emerged
      (partial state and diagnosis are reported)
5     timeout — every attempt of a job exceeded its ``--deadline``
      wall-clock budget (``serve`` / ``batch`` only)
6     quarantined — one job repeatedly killed pool workers; it was
      isolated after the retry budget so the rest of the batch
      kept serving (``serve`` / ``batch`` only)
7     shed — the bounded admission queue (``--queue-limit``) was
      full; the job was refused without being run (``serve`` /
      ``batch`` only)
====  ==========================================================
"""

from __future__ import annotations

import argparse
import contextlib
import functools
import json
import math
import sys
import time

from .core import NonPlanarNetworkError, DistributedPlanarEmbedding, trivial_baseline_embedding
from .obs import Tracer
from .planar import Graph
from .planar.kuratowski import classify_kuratowski, kuratowski_subgraph
from .planar.verify import EmbeddingViolation


def load_edgelist(path: str) -> Graph:
    graph = Graph()
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) != 2:
                raise SystemExit(f"{path}:{lineno}: expected two node IDs, got {body!r}")
            u, v = (int(p) if p.lstrip('-').isdigit() else p for p in parts)
            graph.add_edge(u, v)
    return graph


def demo_graph(args: list[str], seed: int = 0) -> Graph:
    """CLI wrapper over the shared demo-family factory (also used by
    service job files, so ``--demo`` and ``{"demo": [...]}`` accept
    exactly the same specs)."""
    from .planar.generators import demo_graph as build

    try:
        return build(args, seed=seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def view_trace(path: str) -> int:
    from .analysis import load_trace, render_phase_timeline, render_trace_tree

    try:
        root = load_trace(sys.stdin if path == "-" else path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read trace {path!r}: {exc}") from exc
    print(render_trace_tree(root))
    print()
    print("rounds by phase (parallel branches sum — a work view, not a clock):")
    print(render_phase_timeline(root))
    return 0


def trace_diff_cli(argv: list[str]) -> int:
    """The ``trace-diff`` subcommand: structural diff of two JSONL traces."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace-diff",
        description="Structurally diff two JSONL span traces "
                    "(wall-clock fields and span ids are ignored)",
    )
    parser.add_argument("trace_a", help="first JSONL trace file")
    parser.add_argument("trace_b", help="second JSONL trace file")
    parser.add_argument("--limit", type=int, default=16, metavar="N",
                        help="max divergences to report (default 16)")
    parser.add_argument("--json", action="store_true",
                        help="print the diff report as JSON")
    args = parser.parse_args(argv)
    if args.limit < 1:
        parser.error("--limit must be >= 1")
    from .analysis import diff_traces, render_diff

    try:
        report = diff_traces(args.trace_a, args.trace_b, limit=args.limit)
    except (OSError, ValueError) as exc:
        print(f"trace-diff: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, default=repr))
        if not report["identical"]:
            print(render_diff(report), file=sys.stderr)
    else:
        print(render_diff(report))
    return 0 if report["identical"] else 1


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace-diff":
        return trace_diff_cli(argv[1:])
    if argv and argv[0] in ("serve", "batch"):
        from .serve.cli import batch_cli, serve_cli

        return serve_cli(argv[1:]) if argv[0] == "serve" else batch_cli(argv[1:])
    if argv and argv[0] == "cache-compact":
        from .serve.cli import compact_cli

        return compact_cli(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distributed planar embedding (Ghaffari-Haeupler, PODC 2016)",
    )
    parser.add_argument("edgelist", nargs="?", help="edge-list file (u v per line)")
    parser.add_argument("--demo", nargs="+", metavar="FAMILY",
                        help="generate a demo graph instead (e.g. --demo grid 8 8)")
    parser.add_argument("--seed", type=int, default=0, metavar="S",
                        help="seed for randomized --demo families and the "
                             "--certify-adversary tamper sweep (default 0)")
    parser.add_argument("--baseline", action="store_true",
                        help="run the trivial O(n) baseline instead")
    parser.add_argument("--certify", action="store_true",
                        help="equip nodes with proof labels and re-verify the "
                             "embedding with the distributed O(D) verifier")
    parser.add_argument("--certify-adversary", action="store_true",
                        dest="certify_adversary",
                        help="also run the certificate tamper suite "
                             "(implies --certify); exits 3 unless every "
                             "tamper is detected")
    parser.add_argument("--churn", type=int, default=None, metavar="N",
                        help="after embedding + certifying, apply N seeded "
                             "edge insert/delete operations and re-certify "
                             "after every one (implies --certify; the op "
                             "plan is seeded by --seed)")
    parser.add_argument("--incremental-certify", action="store_true",
                        dest="incremental_certify",
                        help="with --churn: re-certify incrementally — "
                             "re-prove and re-verify only the dirty region "
                             "of each edit, falling back to a full rebuild "
                             "past the threshold (default: full re-embed + "
                             "re-certify per operation)")
    parser.add_argument("--bandwidth", type=int, default=1, metavar="W",
                        help="CONGEST words per edge per round (default 1)")
    parser.add_argument("--shard-stats", action="store_true", dest="shard_stats",
                        help="include the sharded backend's dispatch "
                             "accounting under \"shard_stats\" in the --json "
                             "report (off by default: to_report() stays "
                             "bit-identical across --shard-workers settings)")
    parser.add_argument("--shard-workers", type=int, default=0, metavar="K",
                        dest="shard_workers",
                        help="embed large hanging subtrees in K worker "
                             "processes (default 0 = sequential); output is "
                             "bit-identical at every setting")
    parser.add_argument("--faults", metavar="SPEC",
                        help="run self-healing under a deterministic chaos "
                             "schedule, e.g. drop=0.05,dup=0.01,delay=0.1:2,"
                             "corrupt=0.02,crash=2:5,link=1:6 (implies "
                             "--certify; exits 4 when healing is exhausted)")
    parser.add_argument("--fault-seed", type=int, default=0, metavar="S",
                        dest="fault_seed",
                        help="seed for the --faults schedule; the whole fault "
                             "run is reproducible from this seed alone "
                             "(default 0)")
    parser.add_argument("--max-retries", type=int, default=3, metavar="N",
                        dest="max_retries",
                        help="self-healing attempts beyond the first under "
                             "--faults (default 3)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-vertex rotations")
    parser.add_argument("--trace", metavar="FILE",
                        help="write a JSONL span trace of the run (- = stdout)")
    parser.add_argument("--json", action="store_true",
                        help="print a machine-readable run report to stdout")
    parser.add_argument("--profile", action="store_true",
                        help="wrap the run in cProfile; the top-20 cumulative "
                             "entries go into the --json report (or a human "
                             "table otherwise)")
    parser.add_argument("--view-trace", metavar="FILE", dest="view_trace",
                        help="render a JSONL trace as an ASCII tree and exit")
    parser.add_argument("--causal", action="store_true",
                        help="attach the message-level causal recorder and "
                             "report critical-path length vs measured rounds "
                             "vs the paper's D*log n prediction")
    parser.add_argument("--flight", metavar="FILE",
                        help="with --faults: dump the crash flight recorder "
                             "(last-K delivery/fault/ARQ events per node) as "
                             "JSONL to FILE")
    parser.add_argument("--perfetto", metavar="FILE", dest="perfetto",
                        help="export the span tree and causal lanes as a "
                             "Chrome trace-event file (load in "
                             "ui.perfetto.dev)")
    args = parser.parse_args(argv)

    if args.shard_workers < 0:
        parser.error("--shard-workers must be >= 0")
    if args.view_trace is not None:
        if args.edgelist is not None or args.demo is not None:
            parser.error("--view-trace takes no network input")
        if args.profile:
            parser.error("--profile instruments a run; --view-trace does not run")
        return view_trace(args.view_trace)
    if (args.edgelist is None) == (args.demo is None):
        parser.error("provide exactly one of an edge-list file or --demo")
    if args.json and args.trace == "-":
        parser.error("--json and --trace - both claim stdout; trace to a file instead")
    if args.baseline and args.trace is not None:
        parser.error("--trace instruments the Theorem 1.1 pipeline, not --baseline")

    # When stdout carries machine output (a report or a trace), the
    # human-readable account moves to stderr so both stay parseable.
    machine_stdout = args.json or args.trace == "-"
    say = functools.partial(print, file=sys.stderr) if machine_stdout else print

    graph = (
        demo_graph(args.demo, seed=args.seed) if args.demo else load_edgelist(args.edgelist)
    )
    say(f"network: n={graph.num_nodes}, m={graph.num_edges}")
    certify = args.certify or args.certify_adversary

    if args.incremental_certify and args.churn is None:
        parser.error("--incremental-certify selects the --churn "
                     "re-certification mode; it needs --churn")
    if args.churn is not None:
        if args.churn < 1:
            parser.error("--churn must be >= 1")
        if args.baseline:
            parser.error("--churn drives the certified dynamic engine, "
                         "not --baseline")
        if args.faults is not None:
            parser.error("--churn and --faults are separate workloads; "
                         "pick one")
        if args.certify_adversary:
            parser.error("--certify-adversary tampers a static run; "
                         "it does not compose with --churn")
        if graph.num_nodes < 2:
            parser.error("--churn needs a network with at least two nodes")
        certify = True  # churn is certificate-driven by construction

    fault_plan = None
    if args.faults is not None:
        if args.baseline:
            parser.error("--faults drives the self-healing Theorem 1.1 "
                         "pipeline, not --baseline")
        if args.max_retries < 0:
            parser.error("--max-retries must be >= 0")
        from .congest import FaultPlan, FaultSpecError

        try:
            fault_plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
        except FaultSpecError as exc:
            parser.error(str(exc))
        certify = True  # healing is certificate-driven

    if args.flight is not None and fault_plan is None:
        parser.error("--flight records chaos events; it needs --faults")

    # --perfetto exports the span tree, so it implies span tracing even
    # when no JSONL --trace sink was asked for.
    tracer = Tracer() if (args.trace is not None or args.perfetto is not None) else None
    causal_recorder = None
    flight_recorder = None
    overrides = contextlib.ExitStack()
    if args.causal or args.perfetto is not None:
        from .obs import CausalRecorder, causal_override

        causal_recorder = CausalRecorder()
        overrides.enter_context(causal_override(causal_recorder))
    if args.flight is not None:
        from .obs import FlightRecorder, flight_override

        flight_recorder = FlightRecorder()
        overrides.enter_context(flight_override(flight_recorder))
    # Open the trace sink before the (possibly long) run so a bad path
    # fails fast instead of discarding the finished trace.
    trace_sink = None
    if args.trace == "-":
        trace_sink = sys.stdout
    elif args.trace is not None:
        try:
            trace_sink = open(args.trace, "w")
        except OSError as exc:
            parser.error(f"cannot open trace file {args.trace!r}: {exc}")
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    t0 = time.perf_counter()
    driver = None
    churn_report = None
    try:
        if args.baseline:
            result = trivial_baseline_embedding(graph, bandwidth_words=args.bandwidth)
            say("algorithm: trivial gather-everything baseline (footnote 2)")
            if certify:
                result.verify_distributed()
        elif fault_plan is not None:
            from .core import self_healing_embedding

            result = self_healing_embedding(
                graph,
                bandwidth_words=args.bandwidth,
                max_retries=args.max_retries,
                tracer=tracer,
                faults=fault_plan,
                flight=flight_recorder,
                flight_path=args.flight,
            )
            say("algorithm: self-healing Theorem 1.1 pipeline")
            say(f"chaos schedule: {fault_plan.describe()}")
        elif args.churn is not None:
            from .certify import DynamicCertifiedEmbedding

            engine = DynamicCertifiedEmbedding(
                graph,
                incremental=args.incremental_certify,
                bandwidth_words=args.bandwidth,
                tracer=tracer,
            )
            churn_report = engine.run_churn(args.churn, seed=args.seed)
            result = engine.to_result()
            mode = ("incremental" if args.incremental_certify
                    else "full-rebuild")
            say("algorithm: Theorem 1.1 pipeline + dynamic re-certification")
            say(f"churn mode: {mode} re-certification")
        else:
            driver = DistributedPlanarEmbedding(
                graph,
                bandwidth_words=args.bandwidth,
                tracer=tracer,
                certify=certify,
                shard_workers=args.shard_workers,
            )
            result = driver.run()
            say("algorithm: Theorem 1.1 distributed planar embedding")
    except EmbeddingViolation as exc:
        # The computed output failed the centralized referee: an
        # algorithm bug, distinct from non-planar *input* (exit 1).
        overrides.close()
        _stop_profiler(profiler)
        _dump_trace(tracer, trace_sink)
        _dump_flight(flight_recorder, args.flight)
        say(f"result: EMBEDDING REJECTED — {exc}")
        if args.json:
            print(json.dumps({
                "type": "run-report",
                "planar": None,
                "accepted": False,
                "n": graph.num_nodes,
                "m": graph.num_edges,
                "error": str(exc),
            }))
        return 3
    except NonPlanarNetworkError:
        overrides.close()
        wall_s = time.perf_counter() - t0
        profile_rows = _stop_profiler(profiler)
        _dump_trace(tracer, trace_sink)
        _dump_flight(flight_recorder, args.flight)
        say("result: NOT PLANAR")
        witness = kuratowski_subgraph(graph)
        kind = classify_kuratowski(witness)
        say(f"Kuratowski witness: a {kind} subdivision on "
            f"{witness.num_nodes} nodes / {witness.num_edges} edges:")
        for u, v in sorted(witness.edges(), key=repr):
            say(f"  {u} -- {v}")
        if args.json:
            metrics = driver.last_metrics if driver is not None else None
            print(json.dumps({
                "type": "run-report",
                "planar": False,
                "n": graph.num_nodes,
                "m": graph.num_edges,
                "wall_s": round(wall_s, 6),
                "witness": {
                    "kind": kind,
                    "nodes": witness.num_nodes,
                    "edges": sorted([list(e) for e in witness.edges()], key=repr),
                },
                "metrics": metrics.to_dict() if metrics is not None else None,
                "profile": profile_rows,
            }))
        elif profile_rows is not None:
            _print_profile(say, profile_rows)
        return 1
    overrides.close()
    wall_s = time.perf_counter() - t0
    profile_rows = _stop_profiler(profiler)

    _dump_trace(tracer, trace_sink)
    _dump_flight(flight_recorder, args.flight)
    causal_report = causal_recorder.report() if causal_recorder is not None else None
    if args.perfetto is not None:
        from .obs import export_chrome_trace

        export_chrome_trace(args.perfetto, spans=tracer, causal=causal_recorder)
        say(f"perfetto trace written to {args.perfetto}")
    if causal_report is not None and hasattr(result, "causal"):
        # A self-healing result's snapshot predates later executions;
        # the recorder's final report supersedes it.
        result.causal = causal_report
    if getattr(result, "degraded", False):
        # The self-healing retry budget ran out: report the structured
        # partial state instead of pretending nothing was computed.
        say(f"result: DEGRADED — {result.diagnosis}")
        say(f"healing attempts: {result.attempts}")
        for line in result.heal_log:
            say(f"  {line}")
        if result.fault_stats is not None:
            say(f"chaos: {result.fault_stats['faults_injected']} faults injected"
                f" ({result.fault_stats['sent']} frames sent)")
        if result.rotation is not None:
            say("partial (uncertified) rotation retained"
                f" for {len(result.rotation)} nodes")
        if args.causal and causal_report is not None:
            _say_causal(say, causal_report, result, graph)
        if args.json:
            report = result.to_report()
            report["wall_s"] = round(wall_s, 6)
            report["algorithm"] = "theorem-1.1-self-healing"
            if causal_report is not None:
                report["causal"] = causal_report
            if profile_rows is not None:
                report["profile"] = profile_rows
            print(json.dumps(report, default=repr))
        elif profile_rows is not None:
            _print_profile(say, profile_rows)
        return 4
    say(f"result: planar embedding in {result.rounds} CONGEST rounds")
    if churn_report is not None:
        st = churn_report.stats
        say(f"churn: {st['ops']} ops ({st['inserts']} inserts,"
            f" {st['deletes']} deletes) -> {st['patched']} patched,"
            f" {st['cert_rebuilds']} certificate rebuilds,"
            f" {st['embed_rebuilds']} embed rebuilds;"
            f" mean {churn_report.mean_op_rounds():.1f} rounds/op")
    if args.causal and causal_report is not None:
        _say_causal(say, causal_report, result, graph)
    if getattr(result, "heal_attempts", 0):
        if result.heal_attempts > 1:
            say(f"self-healing: certified after {result.heal_attempts} attempts")
            for line in result.heal_log:
                say(f"  {line}")
        fstats = result.fault_stats
        if fstats is not None:
            say(f"chaos: {fstats['faults_injected']} faults injected"
                f" ({fstats['dropped']} dropped, {fstats['corruption_detected']}"
                f" corruptions detected, {fstats['duplicated']} duplicated,"
                f" {fstats['delayed']} delayed, {fstats['crash_inbox_drops']}"
                f" crash-eaten); recovery traffic:"
                f" {fstats['recovery_messages']} messages,"
                f" {fstats['recovery_words']} words")
    if result.trace:
        say(f"recursion depth: {result.recursion_depth}")
    if getattr(result, "split_tests", 0):
        line = (f"split validation: {result.split_tests} tests,"
                f" {result.split_rejections} rejected")
        oracle = getattr(result, "split_oracle", None)
        if oracle is not None:
            line += (f" (scoped oracle: {oracle['scoped_tests']} scoped,"
                     f" {oracle['full_tests']} full,"
                     f" {oracle['memo_hits']} memo hits)")
        say(line)

    exit_code = 0
    suite = None
    if certify:
        say(f"certification: {result.certification.summary()}")
        if not result.certification.accepted:
            exit_code = 3
        if churn_report is not None and not churn_report.accepted:
            # Some per-op scoped verification rejected even though the
            # final full pass may look clean: still an algorithm bug.
            exit_code = 3
        if args.certify_adversary:
            if graph.num_nodes < 2:
                say("tamper suite: skipped (needs at least one edge)")
            else:
                from .certify import run_tamper_suite

                suite = run_tamper_suite(
                    graph, result.rotation, result.certificates, seed=args.seed
                )
                say(suite.summary())
                if not suite.all_detected:
                    exit_code = 3

    if not args.quiet:
        say("clockwise edge orders:")
        for v in sorted(result.rotation, key=repr):
            say(f"  {v}: {' '.join(str(u) for u in result.rotation[v])}")
    say("round ledger:")
    breakdown = result.metrics.phase_breakdown()
    for phase, row in sorted(breakdown.items(), key=lambda x: -x[1]["rounds"]):
        line = f"  {phase:32s} {row['rounds']:7d} rounds {row['words']:9d} words"
        if row.get("activations"):
            line += (
                f" {row['activations']:8d} act"
                f" (saved {row.get('activations_saved', 0)})"
            )
        say(line)
    if result.metrics.node_activations:
        say(
            f"scheduler: {result.metrics.node_activations} node activations,"
            f" {result.metrics.activations_saved} saved vs dense polling"
        )
    if args.json:
        report = result.to_report() if hasattr(result, "to_report") else {
            "type": "run-report",
            "planar": True,
            "n": graph.num_nodes,
            "m": graph.num_edges,
            "rounds": result.rounds,
            "metrics": result.metrics.to_dict(),
        }
        report["wall_s"] = round(wall_s, 6)
        report["algorithm"] = (
            "baseline" if args.baseline
            else "theorem-1.1-self-healing" if fault_plan is not None
            else "theorem-1.1"
        )
        if suite is not None:
            report["tamper_suite"] = suite.to_dict()
        if churn_report is not None:
            report["churn"] = churn_report.to_dict()
        if args.shard_stats:
            # Opt-in only, and added here rather than in to_report():
            # the canonical report must stay bit-identical across
            # --shard-workers settings (serve-layer cache contract).
            report["shard_stats"] = getattr(result, "shard_stats", None)
        if profile_rows is not None:
            report["profile"] = profile_rows
        print(json.dumps(report, default=repr))
    elif profile_rows is not None:
        _print_profile(say, profile_rows)
    return exit_code


def _stop_profiler(profiler, limit: int = 20) -> list[dict] | None:
    """Disable ``profiler`` and return its top-``limit`` cumulative rows.

    Each row is JSON-ready (function, file, line, call counts, tottime,
    cumtime); ties on cumulative time break deterministically by
    location so repeated profiles diff cleanly.
    """
    if profiler is None:
        return None
    import pstats

    profiler.disable()
    rows = []
    for (file, line, name), (cc, nc, tt, ct, _callers) in pstats.Stats(
        profiler
    ).stats.items():
        rows.append({
            "function": name,
            "file": file,
            "line": line,
            "ncalls": nc,
            "primitive_calls": cc,
            "tottime_s": round(tt, 6),
            "cumtime_s": round(ct, 6),
        })
    rows.sort(key=lambda r: (-r["cumtime_s"], r["file"], r["line"], r["function"]))
    return rows[:limit]


def _print_profile(say, rows: list[dict]) -> None:
    say("profile: top cumulative functions")
    say(f"  {'cumtime_s':>10s} {'tottime_s':>10s} {'ncalls':>9s}  function")
    for row in rows:
        where = f"{row['file']}:{row['line']}" if row["line"] else row["file"]
        say(
            f"  {row['cumtime_s']:10.4f} {row['tottime_s']:10.4f}"
            f" {row['ncalls']:9d}  {row['function']} ({where})"
        )


def _dump_trace(tracer: Tracer | None, sink) -> None:
    if tracer is None or sink is None:
        return
    tracer.write_jsonl(sink)
    if sink is not sys.stdout:
        sink.close()


def _dump_flight(recorder, path: str | None) -> None:
    if recorder is None or path is None:
        return
    recorder.dump(path)


def _say_causal(say, report: dict, result, graph) -> None:
    """The --causal summary: critical path vs rounds vs the paper bound."""
    cp = report["critical_path"]
    rr = report["real_rounds"]
    say(f"causal: critical path {cp} over {report['executions']} executions;"
        f" {rr} real message rounds; ledger total {result.metrics.rounds} rounds")
    d_upper = getattr(result, "diameter_upper", 0)
    if d_upper:
        log_n = max(1, math.ceil(math.log2(max(2, graph.num_nodes))))
        bound = d_upper * log_n
        say(f"paper prediction O(D log n): D<={d_upper}, log2(n)={log_n} ->"
            f" {bound} rounds per phase-chain; critical/bound = {cp / bound:.2f}")
    for phase, row in sorted(
        report["phases"].items(), key=lambda x: -x[1]["critical_path"]
    ):
        say(f"  {phase:32s} critical {row['critical_path']:6d} /"
            f" {row['rounds']:6d} rounds  {row['messages']:8d} msgs"
            f"  ({row['executions']} execs)")


if __name__ == "__main__":
    sys.exit(main())
