"""Command-line interface: embed an edge-list network.

Usage::

    python -m repro <edgelist-file> [--baseline] [--bandwidth W] [--quiet]
    python -m repro --demo grid 8 8

The edge-list format is one edge per line, two whitespace-separated
integer node IDs; blank lines and ``#`` comments are ignored.  The tool
runs the distributed planar embedding (or the trivial baseline), prints
per-vertex clockwise orders and the round ledger, and exits non-zero on
non-planar input (printing a Kuratowski witness).
"""

from __future__ import annotations

import argparse
import sys

from .core import NonPlanarNetworkError, DistributedPlanarEmbedding, trivial_baseline_embedding
from .planar import Graph
from .planar.kuratowski import classify_kuratowski, kuratowski_subgraph


def load_edgelist(path: str) -> Graph:
    graph = Graph()
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            body = line.split("#", 1)[0].strip()
            if not body:
                continue
            parts = body.split()
            if len(parts) != 2:
                raise SystemExit(f"{path}:{lineno}: expected two node IDs, got {body!r}")
            u, v = (int(p) if p.lstrip('-').isdigit() else p for p in parts)
            graph.add_edge(u, v)
    return graph


def demo_graph(args: list[str]) -> Graph:
    from .planar import generators

    if not args:
        raise SystemExit("--demo needs a family name (e.g. grid 8 8)")
    name, *params = args
    factories = {
        "grid": generators.grid_graph,
        "trigrid": generators.triangulated_grid,
        "cycle": generators.cycle_graph,
        "path": generators.path_graph,
        "maximal": generators.random_maximal_planar,
        "k4sub": generators.k4_subdivision,
    }
    if name not in factories:
        raise SystemExit(f"unknown demo family {name!r}; options: {sorted(factories)}")
    return factories[name](*(int(p) for p in params))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Distributed planar embedding (Ghaffari-Haeupler, PODC 2016)",
    )
    parser.add_argument("edgelist", nargs="?", help="edge-list file (u v per line)")
    parser.add_argument("--demo", nargs="+", metavar="FAMILY",
                        help="generate a demo graph instead (e.g. --demo grid 8 8)")
    parser.add_argument("--baseline", action="store_true",
                        help="run the trivial O(n) baseline instead")
    parser.add_argument("--bandwidth", type=int, default=1, metavar="W",
                        help="CONGEST words per edge per round (default 1)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-vertex rotations")
    args = parser.parse_args(argv)

    if (args.edgelist is None) == (args.demo is None):
        parser.error("provide exactly one of an edge-list file or --demo")
    graph = demo_graph(args.demo) if args.demo else load_edgelist(args.edgelist)
    print(f"network: n={graph.num_nodes}, m={graph.num_edges}")

    try:
        if args.baseline:
            result = trivial_baseline_embedding(graph, bandwidth_words=args.bandwidth)
            print("algorithm: trivial gather-everything baseline (footnote 2)")
        else:
            result = DistributedPlanarEmbedding(
                graph, bandwidth_words=args.bandwidth
            ).run()
            print("algorithm: Theorem 1.1 distributed planar embedding")
    except NonPlanarNetworkError:
        print("result: NOT PLANAR")
        witness = kuratowski_subgraph(graph)
        kind = classify_kuratowski(witness)
        print(f"Kuratowski witness: a {kind} subdivision on "
              f"{witness.num_nodes} nodes / {witness.num_edges} edges:")
        for u, v in sorted(witness.edges(), key=repr):
            print(f"  {u} -- {v}")
        return 1

    print(f"result: planar embedding in {result.rounds} CONGEST rounds")
    if result.trace:
        print(f"recursion depth: {result.recursion_depth}")
    if not args.quiet:
        print("clockwise edge orders:")
        for v in sorted(result.rotation, key=repr):
            print(f"  {v}: {' '.join(str(u) for u in result.rotation[v])}")
    print("round ledger:")
    for phase, rounds in sorted(result.metrics.phase_rounds.items(), key=lambda x: -x[1]):
        print(f"  {phase:32s} {rounds:7d}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
