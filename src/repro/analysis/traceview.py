"""Reading and rendering execution traces.

The :class:`repro.obs.Tracer` dumps one JSONL document per run: a
header line followed by one line per span (flat, linked by
``parent_id``).  This module reads such a dump back into a
:class:`~repro.obs.tracer.Span` tree and renders two ASCII views:

* :func:`render_trace_tree` — the recursion tree with rounds, traffic,
  and wall-clock time per span (the "where did the rounds go" view);
* :func:`render_phase_timeline` — a horizontal bar chart of rounds per
  phase (works on a trace root, a ``RoundMetrics``, or a plain
  ``{phase: rounds}`` mapping).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from pathlib import Path
from typing import Any

from ..obs.tracer import TRACE_FORMAT_VERSION, Span, TraceFormatError

__all__ = ["load_trace", "render_trace_tree", "render_phase_timeline"]


def load_trace(source: Any) -> Span:
    """Rebuild the span tree of a JSONL trace; returns the root span.

    ``source`` may be a path (str/Path), an open text file, an iterable
    of lines, or a single string holding the whole document.  Raises
    ``ValueError`` on malformed input or when no root span exists.
    """
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    elif isinstance(source, str):
        lines = source.splitlines()
    elif hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        lines = source

    spans: dict[int, Span] = {}
    roots: list[Span] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace line {lineno} is not JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TraceFormatError(f"trace line {lineno} is not an object")
        if record.get("type") == "trace":
            version = record.get("version")
            if version != TRACE_FORMAT_VERSION:
                raise TraceFormatError(
                    f"unsupported trace format version {version!r}"
                    f" (this build reads {TRACE_FORMAT_VERSION})"
                )
            continue
        if record.get("type") != "span":
            continue  # future record types ride through
        sp = Span.from_dict(record)
        spans[sp.span_id] = sp
        parent = spans.get(sp.parent_id) if sp.parent_id is not None else None
        if parent is not None:
            parent.children.append(sp)
        else:
            roots.append(sp)
    if not roots:
        raise ValueError("trace contains no root span")
    if len(roots) == 1:
        return roots[0]
    # Several runs in one file: stitch them under a synthetic root.
    top = Span(span_id=0, parent_id=None, name="traces", kind="span")
    top.children.extend(roots)
    return top


def _span_label(sp: Span) -> str:
    bits = [sp.name]
    for key in ("root", "level", "size", "n", "m", "p0_length", "splitter"):
        if key in sp.attrs:
            bits.append(f"{key}={sp.attrs[key]}")
    total = sp.total_rounds()
    bits.append(f"· {total} rounds")
    words = sp.total_words()
    if words:
        bits.append(f"{words}w")
    activations = sp.total_activations()
    if activations:
        saved = sp.total_activations_saved()
        bits.append(f"{activations}act" + (f"(-{saved})" if saved else ""))
    if sp.end_s is not None:
        bits.append(f"{sp.wall_s * 1000:.1f}ms")
    return " ".join(str(b) for b in bits)


def render_trace_tree(
    root: Span, max_depth: int | None = None, min_rounds: int = 0
) -> str:
    """The span tree as an ASCII recursion-tree/phase-timeline view.

    ``max_depth`` prunes the tree (None = unlimited); ``min_rounds``
    hides spans whose subtree consumed fewer rounds (pruned siblings are
    summarized in one ``... (+k spans)`` line so nothing silently
    disappears).
    """
    lines: list[str] = [_span_label(root)]

    def walk(sp: Span, prefix: str, depth: int) -> None:
        if max_depth is not None and depth >= max_depth:
            if sp.children:
                lines.append(f"{prefix}└─ ... (+{sum(1 for _ in sp.walk()) - 1} spans)")
            return
        shown = [c for c in sp.children if c.total_rounds() >= min_rounds]
        hidden = len(sp.children) - len(shown)
        entries: list[tuple[str, Span | None]] = [(_span_label(c), c) for c in shown]
        if hidden:
            entries.append((f"... (+{hidden} spans under {min_rounds} rounds)", None))
        for i, (label, child) in enumerate(entries):
            last = i == len(entries) - 1
            lines.append(f"{prefix}{'└─ ' if last else '├─ '}{label}")
            if child is not None:
                walk(child, prefix + ("   " if last else "│  "), depth + 1)

    walk(root, "", 0)
    return "\n".join(lines)


def _phase_rounds_of(source: Any) -> dict[str, int]:
    if isinstance(source, Span):
        totals: dict[str, int] = {}
        for sp in source.walk():
            for ev in sp.events:
                if ev.name == "charge":
                    phase = ev.attrs.get("phase", "?")
                    totals[phase] = totals.get(phase, 0) + int(ev.attrs.get("rounds", 0))
        return totals
    if hasattr(source, "phase_rounds"):  # RoundMetrics
        return dict(source.phase_rounds)
    if isinstance(source, Mapping):
        return {str(k): int(v) for k, v in source.items()}
    raise TypeError(f"cannot extract phase rounds from {type(source).__name__}")


def render_phase_timeline(source: Any, width: int = 40) -> str:
    """Rounds per phase as ASCII bars, widest phase name first aligned.

    ``source``: a trace root :class:`Span` (phases aggregated from its
    charge events), a ``RoundMetrics``, or a ``{phase: rounds}`` map.
    Parallel branches make the per-phase sum an upper bound on wall
    rounds — this is a *where does the work go* view, not a clock.
    """
    totals = _phase_rounds_of(source)
    if not totals:
        return "(no phase data)"
    peak = max(totals.values()) or 1
    name_w = max(len(p) for p in totals)
    lines = []
    for phase in sorted(totals, key=lambda p: -totals[p]):
        bar = "#" * max(1 if totals[phase] else 0, round(width * totals[phase] / peak))
        lines.append(f"{phase:<{name_w}}  {totals[phase]:>8}  {bar}")
    return "\n".join(lines)
