"""Scaling analysis helpers for the experiment harness.

The paper's claims are asymptotic; the benchmarks check *shapes*:
log-log slopes (is the round count growing like n or like sqrt(n)·log n?)
and bound ratios (is rounds / (D·min(log n, D)) bounded by a constant?).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["PowerFit", "fit_power_law", "bound_ratios", "headline_bound", "geometric_sizes"]


@dataclass(frozen=True)
class PowerFit:
    """A least-squares fit of ``y = c * x^alpha`` in log-log space."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerFit:
    """Fit ``y ~ c * x^alpha`` by linear regression on logs."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits need positive data")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((a - mx) ** 2 for a in lx)
    sxy = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    if sxx == 0:
        raise ValueError("x values are all equal")
    alpha = sxy / sxx
    logc = my - alpha * mx
    ss_tot = sum((b - my) ** 2 for b in ly)
    ss_res = sum(
        (b - (logc + alpha * a)) ** 2 for a, b in zip(lx, ly)
    )
    r2 = 1.0 - (ss_res / ss_tot if ss_tot > 0 else 0.0)
    return PowerFit(exponent=alpha, coefficient=math.exp(logc), r_squared=r2)


def headline_bound(n: int, diameter: int) -> float:
    """The Theorem 1.1 quantity ``D * min(log2 n, D)`` (>= 1)."""
    if n < 2:
        return 1.0
    return max(1.0, diameter * min(math.log2(n), diameter))


def bound_ratios(
    rounds: Sequence[int], ns: Sequence[int], diameters: Sequence[int]
) -> list[float]:
    """``rounds / (D * min(log n, D))`` per data point."""
    return [
        r / headline_bound(n, d) for r, n, d in zip(rounds, ns, diameters)
    ]


def geometric_sizes(start: int, stop: int, steps: int) -> list[int]:
    """``steps`` roughly geometric integer sizes from ``start`` to ``stop``."""
    if steps < 2 or start < 1 or stop <= start:
        raise ValueError("need steps >= 2 and 1 <= start < stop")
    ratio = (stop / start) ** (1 / (steps - 1))
    sizes = []
    for i in range(steps):
        s = round(start * ratio**i)
        if not sizes or s > sizes[-1]:
            sizes.append(s)
    return sizes
