"""Aligned text tables for the benchmark harness output.

Every experiment prints the series it reproduces in the same way the
paper would report a table: a header, aligned rows, and a one-line
verdict comparing the measured shape against the claimed one.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "print_table", "verdict"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> None:
    print()
    print(format_table(headers, rows, title))


def verdict(name: str, ok: bool, detail: str = "") -> bool:
    """Print and return a pass/fail verdict line for an experiment."""
    mark = "REPRODUCED" if ok else "NOT REPRODUCED"
    line = f"[{mark}] {name}"
    if detail:
        line += f" — {detail}"
    print(line)
    return ok
