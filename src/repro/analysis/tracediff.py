"""Structural trace diffing: the first message where two runs diverge.

Two runs of the pipeline with the same graph, seed, and scheduler must
produce bit-identical ledgers — that is the repo's differential-testing
backbone — and their JSONL traces must therefore agree on every
*deterministic* field: the span tree's shape, each span's name / kind /
parallel flag, its round and traffic counters, its attrs, and its
charge / fault / high-water events.  Wall-clock fields (``start_s``,
``end_s``, event ``wall_s``) and span ids are execution accidents and
are never compared.

:func:`diff_traces` walks two traces in lockstep preorder and reports
every divergence up to a limit, first divergence first, each with its
**ancestry path** — the chain of spans from the root down to the
divergent span, which for a causal trace is exactly the recursive-call
ancestry of the divergent message batch.  "The ledgers match" becomes
"here is the first charge where they diverge", which is the
bit-identical-behavior proof obligation of the planned sharded backend
(ROADMAP item 1), and the CI golden-trace gate against silent
trace-format drift.

Exit-code contract of the ``repro trace-diff`` CLI built on this:
``0`` identical, ``1`` divergent, ``2`` unreadable/malformed input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..obs.tracer import Span
from .traceview import load_trace

__all__ = ["Divergence", "diff_spans", "diff_traces", "render_diff"]

#: Deterministic span fields compared in order; wall-clock fields and
#: span ids are deliberately absent.
SPAN_FIELDS = (
    "name",
    "kind",
    "parallel",
    "rounds",
    "messages",
    "words",
    "max_edge_words",
    "activations",
    "activations_saved",
)


@dataclass(frozen=True)
class Divergence:
    """One point where the two traces disagree."""

    path: tuple[str, ...]  # ancestry: root span down to the divergent span
    kind: str  # "field" | "attr" | "event" | "structure"
    detail: str  # which field/attr/event diverged
    a: Any
    b: Any

    @property
    def where(self) -> str:
        return " > ".join(self.path)

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": list(self.path),
            "kind": self.kind,
            "detail": self.detail,
            "a": self.a,
            "b": self.b,
        }

    def describe(self) -> str:
        return f"{self.kind} {self.detail!r} at {self.where}: {self.a!r} != {self.b!r}"


def _slug(sp: Span, index: int | None = None) -> str:
    tag = f"{sp.kind}:{sp.name}"
    return tag if index is None else f"{tag}#{index}"


def diff_spans(a: Span, b: Span, limit: int = 16) -> list[Divergence]:
    """All divergences between two span trees, preorder, up to ``limit``.

    An empty list means the traces are structurally identical on every
    deterministic field.
    """
    out: list[Divergence] = []

    def push(path: tuple[str, ...], kind: str, detail: str, va: Any, vb: Any) -> bool:
        out.append(Divergence(path, kind, detail, va, vb))
        return len(out) >= limit

    def walk(sa: Span, sb: Span, path: tuple[str, ...]) -> bool:
        for field_name in SPAN_FIELDS:
            va, vb = getattr(sa, field_name), getattr(sb, field_name)
            if va != vb and push(path, "field", field_name, va, vb):
                return True
        if sa.attrs != sb.attrs:
            for key in sorted(set(sa.attrs) | set(sb.attrs), key=repr):
                va, vb = sa.attrs.get(key), sb.attrs.get(key)
                if va != vb and push(path, "attr", str(key), va, vb):
                    return True
        if len(sa.events) != len(sb.events):
            if push(path, "structure", "event count", len(sa.events), len(sb.events)):
                return True
        for i, (ea, eb) in enumerate(zip(sa.events, sb.events)):
            # wall_s is wall-clock noise; name + attrs are the semantics.
            if ea.name != eb.name:
                if push(path, "event", f"events[{i}].name", ea.name, eb.name):
                    return True
            elif ea.attrs != eb.attrs:
                if push(
                    path, "event", f"events[{i}] ({ea.name})", ea.attrs, eb.attrs
                ):
                    return True
        if len(sa.children) != len(sb.children):
            if push(
                path, "structure", "child count",
                len(sa.children), len(sb.children),
            ):
                return True
        for i, (ca, cb) in enumerate(zip(sa.children, sb.children)):
            if walk(ca, cb, path + (_slug(ca, i),)):
                return True
        return False

    walk(a, b, (_slug(a),))
    return out


def diff_traces(source_a: Any, source_b: Any, limit: int = 16) -> dict[str, Any]:
    """Load two JSONL traces and diff them; returns the JSON-ready report.

    ``source_a`` / ``source_b`` are anything
    :func:`~repro.analysis.traceview.load_trace` accepts (paths, open
    files, line iterables).  Raises the loader's typed errors on
    malformed input — the CLI maps those to exit code 2.
    """
    root_a = load_trace(source_a)
    root_b = load_trace(source_b)
    divergences = diff_spans(root_a, root_b, limit=limit)
    return {
        "type": "trace-diff",
        "identical": not divergences,
        "spans_a": sum(1 for _ in root_a.walk()),
        "spans_b": sum(1 for _ in root_b.walk()),
        "divergences": [d.to_dict() for d in divergences],
        "truncated": len(divergences) >= limit,
    }


def render_diff(report: dict[str, Any]) -> str:
    """Human-readable rendering of a :func:`diff_traces` report."""
    if report["identical"]:
        return (
            f"traces identical: {report['spans_a']} spans, every deterministic"
            " field equal"
        )
    lines = [
        f"traces DIVERGE ({report['spans_a']} vs {report['spans_b']} spans):"
    ]
    for i, d in enumerate(report["divergences"], 1):
        where = " > ".join(d["path"])
        lines.append(f"  [{i}] {d['kind']} {d['detail']!r}")
        lines.append(f"      at {where}")
        lines.append(f"      a: {d['a']!r}")
        lines.append(f"      b: {d['b']!r}")
    if report.get("truncated"):
        lines.append("  ... (more divergences beyond the report limit)")
    first = report["divergences"][0]
    lines.append(
        "first divergence: "
        f"{first['kind']} {first['detail']!r} at {' > '.join(first['path'])}"
    )
    return "\n".join(lines)
