"""Scaling fits, table formatting, and trace rendering for the harness."""

from .complexity import (
    PowerFit,
    bound_ratios,
    fit_power_law,
    geometric_sizes,
    headline_bound,
)
from .tables import format_table, print_table, verdict
from .tracediff import Divergence, diff_spans, diff_traces, render_diff
from .traceview import load_trace, render_phase_timeline, render_trace_tree

__all__ = [
    "PowerFit",
    "fit_power_law",
    "bound_ratios",
    "headline_bound",
    "geometric_sizes",
    "format_table",
    "print_table",
    "verdict",
    "load_trace",
    "render_trace_tree",
    "render_phase_timeline",
    "Divergence",
    "diff_spans",
    "diff_traces",
    "render_diff",
]
