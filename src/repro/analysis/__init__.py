"""Scaling fits and table formatting for the experiment harness."""

from .complexity import (
    PowerFit,
    bound_ratios,
    fit_power_law,
    geometric_sizes,
    headline_bound,
)
from .tables import format_table, print_table, verdict

__all__ = [
    "PowerFit",
    "fit_power_law",
    "bound_ratios",
    "headline_bound",
    "geometric_sizes",
    "format_table",
    "print_table",
    "verdict",
]
