"""End-to-end verification of combinatorial planar embeddings.

The distributed algorithm's *output format* (paper, Section 2) is that
each vertex learns the clockwise order of its own edges in one fixed
planar drawing.  This module checks such an output globally:

1. the per-vertex orders assemble into a valid rotation system, and
2. the rotation system has Euler genus zero (Edmonds [Edm60]: rotation
   systems are in bijection with embeddings into orientable surfaces, and
   genus 0 means planar).

It also provides ``check_embedding_with_boundary`` used by the merge
machinery: a part's embedding is acceptable only if all of its
half-embedded attachment vertices lie on one common face (the consequence
of the safety property, Definition 3.1 / Figure 1).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from .graph import Graph, NodeId
from .rotation import RotationSystem, trace_faces

__all__ = [
    "EmbeddingViolation",
    "verify_rotation_system",
    "verify_planar_embedding",
    "check_embedding_with_boundary",
]


class EmbeddingViolation(AssertionError):
    """Raised when a claimed planar embedding fails verification."""


def verify_rotation_system(
    graph: Graph, order: Mapping[NodeId, Sequence[NodeId]]
) -> RotationSystem:
    """Assemble per-vertex orders into a rotation system, or raise."""
    try:
        return RotationSystem(graph, order)
    except ValueError as exc:
        raise EmbeddingViolation(str(exc)) from exc


def verify_planar_embedding(
    graph: Graph, order: Mapping[NodeId, Sequence[NodeId]]
) -> RotationSystem:
    """Verify that per-vertex clockwise orders form a *planar* embedding.

    Returns the validated :class:`RotationSystem`; raises
    :class:`EmbeddingViolation` otherwise.  This is the referee for every
    integration test and for the algorithm's own self-checks.
    """
    rotation = verify_rotation_system(graph, order)
    genus = rotation.genus()
    if genus != 0:
        raise EmbeddingViolation(
            f"rotation system has Euler genus {genus}, not a planar embedding"
        )
    return rotation


def check_embedding_with_boundary(
    rotation: RotationSystem, boundary: Iterable[NodeId]
) -> list[tuple[NodeId, NodeId]]:
    """Check all ``boundary`` vertices share one face; return that face.

    This is the structural consequence of the safety property that the
    whole interface machinery rests on: since the remainder of the graph
    is connected, the half-embedded edges of a part must emanate from a
    single face of the part's embedding.  Raises
    :class:`EmbeddingViolation` if no face contains all boundary
    vertices.
    """
    # One dart trace serves both the genus check and the face search.
    faces = trace_faces(rotation)
    graph = rotation.graph
    v = graph.num_nodes
    if v:
        e = graph.num_edges
        # Edgeless components are bare spheres invisible to dart tracing.
        isolated = sum(1 for node in graph.nodes() if graph.degree(node) == 0)
        f = len(faces) + isolated
        c = len(graph.connected_components())
        if 2 * c - (v - e + f) != 0:
            raise EmbeddingViolation("not a planar embedding")
    wanted = set(boundary)
    if not wanted:
        return faces[0] if faces else []
    best = None
    for face in faces:
        if wanted <= {u for u, _ in face}:
            best = face
            break
    if best is None:
        raise EmbeddingViolation(
            f"no face contains all {len(wanted)} boundary vertices"
        )
    return best
