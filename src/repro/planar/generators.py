"""Planar (and a few deliberately non-planar) graph families.

These are the workloads for the experiments in EXPERIMENTS.md.  The paper
has no benchmark section, so the families are chosen to exercise its
claims across the relevant parameter regimes:

* **grids / triangulated grids / Delaunay triangulations** - the generic
  "planar network" with ``D = Θ(√n)``, the regime where the paper's
  ``O(D log n)`` bound beats the trivial ``O(n)`` by ``~√n / log n``.
* **K4 subdivisions** - the paper's footnote-1 lower-bound construction:
  a ``K4`` whose edges are length-``L`` paths forces ``Ω(D)`` rounds.
* **paths, cycles, caterpillars, subdivided graphs** - ``D = Θ(n)``
  extremes where the ``min{log n, D}`` factor matters.
* **outerplanar graphs** - inputs to the Lemma 5.3 symmetry breaking
  (the inter-part graph hanging off ``P0`` is outerplanar).
* **maximal planar / Apollonian graphs** - densest planar inputs
  (``m = 3n − 6``), stressing the bandwidth accounting.

All generators are deterministic given their ``seed`` and label nodes with
integers ``0..n-1``.
"""

from __future__ import annotations

import random

from .graph import Graph

__all__ = [
    "path_graph",
    "cycle_graph",
    "star_graph",
    "wheel_graph",
    "complete_graph",
    "complete_bipartite",
    "grid_graph",
    "grid_positions",
    "triangulated_grid",
    "cylinder_graph",
    "binary_tree",
    "caterpillar",
    "random_tree",
    "theta_graph",
    "subdivide",
    "k4_subdivision",
    "random_outerplanar",
    "random_maximal_planar",
    "random_planar",
    "delaunay_triangulation",
    "stacked_prism",
    "demo_graph",
    "SEEDED_FAMILIES",
]


def path_graph(n: int) -> Graph:
    """The path on ``n`` vertices (diameter ``n - 1``)."""
    return Graph(nodes=range(n), edges=[(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` vertices."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def star_graph(leaves: int) -> Graph:
    """A star: center ``0`` with ``leaves`` leaves."""
    return Graph(nodes=range(leaves + 1), edges=[(0, i) for i in range(1, leaves + 1)])


def wheel_graph(rim: int) -> Graph:
    """A wheel: hub ``0`` plus a rim cycle of ``rim >= 3`` vertices.

    Wheels are 3-connected, so their planar embedding is unique up to a
    mirror flip - exactly the rigidity the interface skeletons in
    ``repro.core.interface`` exploit.
    """
    if rim < 3:
        raise ValueError("a wheel rim needs at least 3 vertices")
    g = Graph(nodes=range(rim + 1))
    for i in range(1, rim + 1):
        g.add_edge(0, i)
        g.add_edge(i, 1 + (i % rim))
    return g


def complete_graph(n: int) -> Graph:
    """``K_n`` (non-planar for ``n >= 5``)."""
    g = Graph(nodes=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(i, j)
    return g


def complete_bipartite(a: int, b: int) -> Graph:
    """``K_{a,b}`` (non-planar when ``a, b >= 3``)."""
    g = Graph(nodes=range(a + b))
    for i in range(a):
        for j in range(a, a + b):
            g.add_edge(i, j)
    return g


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid; ``D = rows + cols - 2``."""
    g = Graph(nodes=range(rows * cols))

    def nid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                g.add_edge(nid(r, c), nid(r, c + 1))
            if r + 1 < rows:
                g.add_edge(nid(r, c), nid(r + 1, c))
    return g


def grid_positions(rows: int, cols: int) -> dict[int, tuple[float, float]]:
    """Planar coordinates matching :func:`grid_graph` node IDs."""
    return {r * cols + c: (float(c), float(r)) for r in range(rows) for c in range(cols)}


def triangulated_grid(rows: int, cols: int) -> Graph:
    """A grid with one diagonal per cell (still planar, denser)."""
    g = grid_graph(rows, cols)
    for r in range(rows - 1):
        for c in range(cols - 1):
            g.add_edge(r * cols + c, (r + 1) * cols + (c + 1))
    return g


def cylinder_graph(rows: int, cols: int) -> Graph:
    """A grid whose columns wrap around (a planar cylinder), ``cols >= 3``."""
    if cols < 3:
        raise ValueError("a cylinder needs at least 3 columns")
    g = grid_graph(rows, cols)
    for r in range(rows):
        g.add_edge(r * cols + (cols - 1), r * cols)
    return g


def stacked_prism(layers: int, rim: int) -> Graph:
    """``layers`` concentric ``rim``-cycles with spokes between layers.

    ``D ~ layers + rim/2`` while ``n = layers * rim``, giving a family
    whose diameter can be tuned almost independently of size - used for
    the ``min{log n, D}`` crossover experiment (E11).
    """
    g = cylinder_graph(layers, rim)
    return g


def binary_tree(depth: int) -> Graph:
    """The complete binary tree with ``2^(depth+1) - 1`` vertices."""
    n = 2 ** (depth + 1) - 1
    g = Graph(nodes=range(n))
    for i in range(n):
        for child in (2 * i + 1, 2 * i + 2):
            if child < n:
                g.add_edge(i, child)
    return g


def caterpillar(spine: int, legs_per_vertex: int) -> Graph:
    """A spine path with ``legs_per_vertex`` pendant leaves per vertex."""
    g = path_graph(spine)
    nxt = spine
    for v in range(spine):
        for _ in range(legs_per_vertex):
            g.add_edge(v, nxt)
            nxt += 1
    return g


def random_tree(n: int, seed: int = 0) -> Graph:
    """A uniform random recursive tree on ``n`` vertices."""
    rng = random.Random(seed)
    g = Graph(nodes=range(n))
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    return g


def theta_graph(paths: int, length: int) -> Graph:
    """Two terminals joined by ``paths`` internally disjoint length-``length`` paths.

    Series-parallel (hence planar).  For ``paths >= 3`` the terminals are
    3-connected-ish coordination hot-spots, a worst case for the merge
    bookkeeping around cut vertices.
    """
    if paths < 2 or length < 2:
        raise ValueError("need paths >= 2 and length >= 2")
    g = Graph(nodes=[0, 1])
    nxt = 2
    for _ in range(paths):
        prev = 0
        for _ in range(length - 1):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
        g.add_edge(prev, 1)
    return g


def subdivide(graph: Graph, segments: int) -> Graph:
    """Replace every edge with a path of ``segments`` edges.

    New interior vertices get fresh integer IDs above the existing
    maximum.  ``segments=1`` returns an isomorphic copy.
    """
    if segments < 1:
        raise ValueError("segments must be >= 1")
    result = Graph(nodes=graph.nodes())
    nxt = max((v for v in graph.nodes() if isinstance(v, int)), default=-1) + 1
    for u, v in sorted(graph.edges(), key=repr):
        prev = u
        for _ in range(segments - 1):
            result.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
        result.add_edge(prev, v)
    return result


def k4_subdivision(segments: int) -> Graph:
    """The paper's footnote-1 lower-bound graph.

    ``K4`` with every edge replaced by a path of ``segments`` edges.  Any
    planar embedding forces the three degree-3 branch vertices, which are
    ``Θ(D)`` hops apart, to output *consistent* clockwise orderings, so
    ``Ω(D)`` rounds are necessary even with unbounded messages.
    """
    return subdivide(complete_graph(4), segments)


def random_outerplanar(n: int, seed: int = 0, extra_chords: int | None = None) -> Graph:
    """A random maximal-ish outerplanar graph on ``n >= 3`` vertices.

    Construction: the outer cycle ``0..n-1`` plus non-crossing chords of
    the polygon, sampled by recursive fan splitting.  Every such graph is
    outerplanar (all vertices on the outer cycle, chords non-crossing).
    """
    if n < 3:
        raise ValueError("need n >= 3")
    rng = random.Random(seed)
    g = cycle_graph(n)
    budget = (n - 3) if extra_chords is None else min(extra_chords, n - 3)

    # Recursively split polygon intervals with random chords.
    intervals = [(0, n - 1)]
    added = 0
    while intervals and added < budget:
        lo, hi = intervals.pop(rng.randrange(len(intervals)))
        if hi - lo < 2:
            continue
        mid = rng.randrange(lo + 1, hi)
        if (mid - lo) >= 2:
            if not g.has_edge(lo, mid):
                g.add_edge(lo, mid)
                added += 1
            intervals.append((lo, mid))
        if (hi - mid) >= 2:
            if not g.has_edge(mid, hi):
                g.add_edge(mid, hi)
                added += 1
            intervals.append((mid, hi))
    return g


def random_maximal_planar(n: int, seed: int = 0) -> Graph:
    """A random Apollonian (planar 3-tree) graph: maximal planar, ``m = 3n - 6``.

    Start from a triangle and repeatedly insert a new vertex inside a
    uniformly random existing face, connecting it to the face's corners.
    """
    if n < 3:
        raise ValueError("need n >= 3")
    rng = random.Random(seed)
    g = Graph(nodes=range(3), edges=[(0, 1), (1, 2), (0, 2)])
    faces: list[tuple[int, int, int]] = [(0, 1, 2), (0, 1, 2)]  # inner + outer
    for v in range(3, n):
        idx = rng.randrange(len(faces))
        a, b, c = faces.pop(idx)
        g.add_edge(v, a)
        g.add_edge(v, b)
        g.add_edge(v, c)
        faces.extend([(a, b, v), (b, c, v), (a, c, v)])
    return g


def random_planar(n: int, m: int | None = None, seed: int = 0) -> Graph:
    """A random connected planar graph with ``~m`` edges.

    Built by deleting random non-bridge edges from a random maximal
    planar graph until the target edge count is reached.
    """
    g = random_maximal_planar(n, seed=seed)
    if m is None:
        m = 2 * n
    m = max(n - 1, min(m, g.num_edges))
    rng = random.Random(seed + 1)
    edges = sorted(g.edges(), key=repr)
    rng.shuffle(edges)
    for u, v in edges:
        if g.num_edges <= m:
            break
        g.remove_edge(u, v)
        if not g.is_connected():
            g.add_edge(u, v)
    return g


def delaunay_triangulation(
    n: int, seed: int = 0
) -> tuple[Graph, dict[int, tuple[float, float]]]:
    """A Delaunay triangulation of ``n`` random points in the unit square.

    This is the reproduction's stand-in for "a sensor-network deployment":
    the paper motivates planar networks as naturally occurring; Delaunay
    graphs are the canonical synthetic model for them.  Returns the graph
    and the point coordinates.
    """
    from scipy.spatial import Delaunay
    import numpy as np

    rng = np.random.default_rng(seed)
    points = rng.random((n, 2))
    tri = Delaunay(points)
    g = Graph(nodes=range(n))
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        g.add_edge(a, b)
        g.add_edge(b, c)
        g.add_edge(a, c)
    positions = {i: (float(points[i][0]), float(points[i][1])) for i in range(n)}
    return g, positions


#: Demo families whose generator takes a ``seed`` parameter.
SEEDED_FAMILIES = frozenset({"maximal", "outerplanar", "tree"})


def demo_graph(spec: list, seed: int = 0) -> Graph:
    """Build a graph from a CLI/job demo spec: ``[family, *int_params]``.

    This is the shared factory behind ``--demo grid 8 8`` on the command
    line and ``{"demo": ["grid", 8, 8]}`` in service job files, so both
    surfaces accept exactly the same families.  ``seed`` is threaded to
    the randomized families (:data:`SEEDED_FAMILIES`) and ignored by the
    deterministic ones.  Raises :class:`ValueError` on an unknown family
    or malformed parameters; callers translate that into their own
    error-reporting convention.
    """
    if not spec:
        raise ValueError("demo spec needs a family name (e.g. grid 8 8)")
    name, *params = spec
    factories = {
        "grid": grid_graph,
        "trigrid": triangulated_grid,
        "cycle": cycle_graph,
        "path": path_graph,
        "maximal": random_maximal_planar,
        "outerplanar": random_outerplanar,
        "tree": random_tree,
        "k4sub": k4_subdivision,
    }
    if name not in factories:
        raise ValueError(f"unknown demo family {name!r}; options: {sorted(factories)}")
    try:
        args = [int(p) for p in params]
    except (TypeError, ValueError) as exc:
        raise ValueError(f"demo {name!r}: parameters must be integers, got {params!r}") from exc
    kwargs = {"seed": seed} if name in SEEDED_FAMILIES else {}
    try:
        return factories[name](*args, **kwargs)
    except TypeError as exc:
        raise ValueError(f"demo {name!r}: {exc}") from exc
