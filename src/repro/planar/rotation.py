"""Rotation systems (combinatorial embeddings) and their face structure.

A *combinatorial planar embedding* — the output format of the paper's
Theorem 1.1 — is a rotation system: for each vertex, a cyclic (clockwise)
order of its incident edges.  By Edmonds' theorem [Edm60] a rotation system
determines the faces of a drawing on an orientable surface, and the drawing
is planar (genus zero) exactly when Euler's formula ``V - E + F = 2`` holds
for a connected graph.  This module implements that machinery, which both
the algorithm's internal merges and the end-to-end verifier rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from .graph import Graph, NodeId, sort_key

__all__ = [
    "RotationSystem",
    "RotationError",
    "trace_faces",
    "euler_genus",
]


class RotationError(ValueError):
    """Raised when a rotation system is inconsistent with its graph."""


class RotationSystem:
    """A cyclic order of incident edges at every vertex of a graph.

    The order stored at vertex ``v`` is read as the *clockwise* order of
    the edges around ``v`` in a drawing.  The class is immutable-ish by
    convention: algorithms build a fresh instance rather than mutating.
    """

    __slots__ = ("graph", "_order", "_position")

    def __init__(self, graph: Graph, order: Mapping[NodeId, Sequence[NodeId]]) -> None:
        self.graph = graph
        self._order: dict[NodeId, tuple[NodeId, ...]] = {}
        # Per-vertex neighbor->index maps, built lazily on the first
        # next_after/prev_before query at that vertex: many rotation
        # systems are constructed only to be merged or snapshotted and
        # never traced.
        self._position: dict[NodeId, dict[NodeId, int]] = {}
        adj = graph._adj
        _order = self._order
        for v, neighbors in adj.items():
            if v not in order:
                raise RotationError(f"missing rotation for vertex {v!r}")
            ring = tuple(order[v])
            if len(ring) != len(neighbors) or set(ring) != neighbors.keys():
                raise RotationError(
                    f"rotation at {v!r} must be a permutation of its "
                    f"{len(neighbors)} neighbors; got {ring!r}"
                )
            _order[v] = ring
        if len(order) != len(adj):
            extra = set(order) - adj.keys()
            if extra:
                raise RotationError(
                    f"rotations for unknown vertices: {sorted(extra, key=repr)}"
                )

    @classmethod
    def trusted(
        cls, graph: Graph, order: Mapping[NodeId, Sequence[NodeId]]
    ) -> "RotationSystem":
        """Construct without permutation validation.

        For orders that are permutations of the neighbor sets *by
        construction* — the LR kernel's output, mirroring an existing
        rotation, filtering a vertex out of one — where re-validating
        every ring is pure overhead.  ``order`` must cover exactly the
        graph's vertices and its values must be tuples.
        """
        self = cls.__new__(cls)
        self.graph = graph
        self._order = dict(order)
        self._position = {}
        return self

    # -- basic access ------------------------------------------------------

    def order(self, v: NodeId) -> tuple[NodeId, ...]:
        """The clockwise neighbor order around ``v``."""
        return self._order[v]

    def as_dict(self) -> dict[NodeId, tuple[NodeId, ...]]:
        """A plain-dict snapshot of all rotations."""
        return dict(self._order)

    def _pos(self, v: NodeId) -> dict[NodeId, int]:
        pos = self._position.get(v)
        if pos is None:
            pos = self._position[v] = {u: i for i, u in enumerate(self._order[v])}
        return pos

    def next_after(self, v: NodeId, u: NodeId) -> NodeId:
        """The neighbor clockwise-after ``u`` around ``v``."""
        ring = self._order[v]
        i = self._pos(v)[u]
        return ring[(i + 1) % len(ring)]

    def prev_before(self, v: NodeId, u: NodeId) -> NodeId:
        """The neighbor counter-clockwise-before ``u`` around ``v``."""
        ring = self._order[v]
        i = self._pos(v)[u]
        return ring[(i - 1) % len(ring)]

    # -- face machinery ------------------------------------------------------

    def faces(self) -> list[list[tuple[NodeId, NodeId]]]:
        """All faces as lists of directed edges (see :func:`trace_faces`)."""
        return trace_faces(self)

    def num_faces(self) -> int:
        return len(self.faces())

    def genus(self) -> int:
        """The Euler genus implied by this rotation system.

        Zero means the rotation system corresponds to a planar (sphere)
        drawing.  Only meaningful for connected graphs; disconnected
        graphs are handled component-wise by :func:`euler_genus`.
        """
        return euler_genus(self)

    def is_planar_embedding(self) -> bool:
        """True iff this rotation system describes a genus-0 drawing."""
        return euler_genus(self) == 0

    def face_of(self, u: NodeId, v: NodeId) -> list[tuple[NodeId, NodeId]]:
        """The face walk containing the directed edge ``(u, v)``."""
        if not self.graph.has_edge(u, v):
            raise RotationError(f"no such edge: {u!r}-{v!r}")
        walk = [(u, v)]
        cur_u, cur_v = u, v
        while True:
            # Next dart of the face: arrive at cur_v, leave along the edge
            # clockwise-after the reversal (cur_v -> cur_u).
            nxt = self.next_after(cur_v, cur_u)
            cur_u, cur_v = cur_v, nxt
            if (cur_u, cur_v) == (u, v):
                return walk
            walk.append((cur_u, cur_v))

    def mirrored(self) -> "RotationSystem":
        """The mirror image (every rotation reversed).

        Mirroring maps a planar rotation system to a planar one; it is the
        global 'flip' of the whole drawing.
        """
        return RotationSystem.trusted(
            self.graph, {v: tuple(reversed(ring)) for v, ring in self._order.items()}
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RotationSystem(n={self.graph.num_nodes}, m={self.graph.num_edges})"


def trace_faces(rotation: RotationSystem) -> list[list[tuple[NodeId, NodeId]]]:
    """Decompose all darts (directed edges) of a rotation system into faces.

    Uses the standard face-tracing rule: the dart following ``(u, v)`` in
    its face is ``(v, w)`` where ``w`` is the neighbor clockwise-after
    ``u`` in the rotation at ``v``.  Every dart belongs to exactly one
    face, so the walks returned partition the 2m darts.
    """
    graph = rotation.graph
    darts: list[tuple[NodeId, NodeId]] = []
    for u, v in graph.edges():
        darts.append((u, v))
        darts.append((v, u))
    visited: set[tuple[NodeId, NodeId]] = set()
    faces: list[list[tuple[NodeId, NodeId]]] = []
    order = rotation._order
    pos = rotation._pos
    for start in darts:  # deterministic: graph insertion order
        if start in visited:
            continue
        # Inline face_of: next dart after (u, v) leaves v along the edge
        # clockwise-after the reversal (v -> u).
        walk = [start]
        u, v = start
        while True:
            ring = order[v]
            u, v = v, ring[(pos(v)[u] + 1) % len(ring)]
            if (u, v) == start:
                break
            walk.append((u, v))
        visited.update(walk)
        faces.append(walk)
    return faces


def euler_genus(rotation: RotationSystem) -> int:
    """The (orientable) Euler genus of the surface a rotation system defines.

    For a graph with ``c`` connected components the generalized Euler
    formula reads ``V - E + F = 2c - 2g`` so ``g = c - (V - E + F) / 2``.
    The result is always a non-negative integer for a valid rotation
    system; ``0`` means planar.
    """
    graph = rotation.graph
    if graph.num_nodes == 0:
        return 0
    v = graph.num_nodes
    e = graph.num_edges
    # Each edgeless component is a bare sphere contributing one face that
    # dart-tracing cannot see.
    isolated = sum(1 for node in graph.nodes() if graph.degree(node) == 0)
    f = len(trace_faces(rotation)) + isolated
    c = len(graph.connected_components())
    doubled = 2 * c - (v - e + f)
    if doubled < 0 or doubled % 2 != 0:
        raise RotationError(
            f"inconsistent rotation system: V={v} E={e} F={f} C={c}"
        )
    return doubled // 2


def rotation_from_positions(
    graph: Graph, positions: Mapping[NodeId, tuple[float, float]]
) -> RotationSystem:
    """Build the rotation system induced by straight-line coordinates.

    Useful for geometric generators (grids, triangulations): the clockwise
    order of edges at ``v`` is the clockwise angular order of the neighbor
    coordinates around ``v``'s coordinate.
    """
    import math

    order: dict[NodeId, tuple[NodeId, ...]] = {}
    for v in graph.nodes():
        x0, y0 = positions[v]

        def angle(u: NodeId) -> float:
            x1, y1 = positions[u]
            return -math.atan2(y1 - y0, x1 - x0)  # negated => clockwise

        order[v] = tuple(sorted(graph.neighbors(v), key=angle))
    return RotationSystem(graph, order)


def contracted_rotation(
    rotation: RotationSystem, nodes: Iterable[NodeId]
) -> list[tuple[NodeId, NodeId]]:
    """Cyclic order of the darts leaving a connected node set ``S``.

    This is the combinatorial contraction of Figure 1(b) in the paper:
    contracting a connected subgraph of a planar embedding to a single
    vertex yields a planar embedding whose rotation at the new vertex is
    exactly the boundary walk computed here.  The walk rule: from the
    out-dart ``(u, x)``, scan clockwise at ``u`` after ``x``; on meeting
    an internal edge ``(u, y)``, hop to ``y`` and continue scanning
    clockwise after ``u`` — splicing rotations along internal edges until
    the next out-dart appears.

    Returns the out-darts ``(u, x)`` (``u`` in ``S``, ``x`` outside) in
    clockwise cyclic order around the contracted set.  ``S`` must induce
    a connected subgraph; the result is empty when no edge leaves ``S``.
    """
    inside = set(nodes)
    graph = rotation.graph
    start = None
    total_out = 0
    for u in sorted(inside, key=sort_key):
        for x in graph.neighbors(u):
            if x not in inside:
                total_out += 1
                if start is None:
                    start = (u, x)
    if start is None:
        return []
    walk = [start]
    u, x = start
    order = rotation._order
    pos = rotation._pos
    while True:
        ring = order[u]
        y = ring[(pos(u)[x] + 1) % len(ring)]
        while y in inside:
            ring = order[y]
            u, y = y, ring[(pos(y)[u] + 1) % len(ring)]
        u, x = u, y
        if (u, x) == start:
            break
        walk.append((u, x))
        if len(walk) > total_out:  # pragma: no cover - invariant
            raise RotationError("boundary walk did not close: set not connected?")
    if len(walk) != total_out:
        raise RotationError(
            f"boundary walk visited {len(walk)} of {total_out} out-darts; "
            "is the node set connected?"
        )
    return walk


def outer_face_darts(
    rotation: RotationSystem, boundary: Iterable[NodeId]
) -> list[list[tuple[NodeId, NodeId]]]:
    """All faces of ``rotation`` that touch every vertex in ``boundary``.

    Convenience used by the merge machinery to locate a face on which a
    given set of attachment vertices all appear (the 'outside face' of a
    part, in the paper's sense).
    """
    wanted = set(boundary)
    result = []
    for face in trace_faces(rotation):
        on_face = {u for u, _ in face}
        if wanted <= on_face:
            result.append(face)
    return result
