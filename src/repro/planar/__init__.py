"""Centralized planar-graph toolkit: the local-computation substrate.

CONGEST nodes have unbounded local computation (the paper caps it at
poly(n) in footnote 3); this package provides everything a node - or a
merge coordinator - computes locally: graphs with canonical edge IDs,
rotation systems with face/genus machinery, a from-scratch left-right
planarity kernel (the [HT74] stand-in), biconnected decompositions
(Observation 3.2), outerplanarity recognition (Lemma 5.3 inputs), the
workload generators, and the embedding verifier.
"""

from .biconnected import (
    BiconnectedComponent,
    BiconnectedDecomposition,
    BlockCutTree,
    articulation_points,
    biconnected_components,
)
from .dual import DualGraph, dual_graph
from .graph import EdgeId, Graph, GraphError, NodeId, edge_id, sort_key
from .kuratowski import classify_kuratowski, kuratowski_subgraph
from .lr_planarity import (
    NonPlanarGraphError,
    is_planar,
    lr_is_planar,
    lr_planarity,
    planar_embedding,
)
from .scoped import ScopedPlanarityOracle
from .outerplanar import is_outerplanar, outer_face_order, outerplanar_embedding
from .rotation import (
    RotationError,
    RotationSystem,
    contracted_rotation,
    euler_genus,
    rotation_from_positions,
    trace_faces,
)
from .verify import (
    EmbeddingViolation,
    check_embedding_with_boundary,
    verify_planar_embedding,
    verify_rotation_system,
)

__all__ = [
    "Graph",
    "GraphError",
    "NodeId",
    "EdgeId",
    "edge_id",
    "sort_key",
    "RotationSystem",
    "RotationError",
    "trace_faces",
    "euler_genus",
    "contracted_rotation",
    "rotation_from_positions",
    "lr_planarity",
    "lr_is_planar",
    "planar_embedding",
    "is_planar",
    "NonPlanarGraphError",
    "ScopedPlanarityOracle",
    "BiconnectedComponent",
    "BiconnectedDecomposition",
    "BlockCutTree",
    "biconnected_components",
    "articulation_points",
    "kuratowski_subgraph",
    "classify_kuratowski",
    "DualGraph",
    "dual_graph",
    "is_outerplanar",
    "outerplanar_embedding",
    "outer_face_order",
    "EmbeddingViolation",
    "verify_planar_embedding",
    "verify_rotation_system",
    "check_embedding_with_boundary",
]
