"""Scoped planarity oracle for locally-modified planar graphs.

``RecursionContext.try_split`` repeatedly asks "is the evolving network
still planar?" after rerouting one edge bundle at a coordinator through
a fresh copy vertex.  Testing the whole graph every time is wasteful:
work should be proportional to the region touched, not the network.

The scoping argument (Observation 3.2 — biconnected components meet
only in cut vertices, so a graph is planar iff every block is planar):
every edge the reroute *adds* is incident to the copy vertex, hence any
block not containing the copy consists solely of pre-modification edges
and is a subgraph of the pre-modification graph.  If that graph was
already known planar, those blocks are planar for free, and the modified
graph is planar **iff** the union of blocks containing the copy is
planar.  That union equals the subgraph induced by their vertices (an
edge between two such blocks' vertices would biconnect them), so one
left-right decision test on the induced region settles the verdict.

:class:`ScopedPlanarityOracle` tracks the "known planar" invariant:

* While it does not hold (e.g. the input graph was never tested), the
  oracle falls back to a full-graph test — exactly what the reference
  path does — and establishes the invariant on a planar verdict.
* Once it holds, each query runs one lowpoint DFS to collect the blocks
  at the copy plus one scoped LR test, and memoizes the verdict keyed
  by the *canonicalized* affected region (copy vertices carry a fresh
  serial, so they are renamed to a fixed token; isomorphic regions give
  identical verdicts).
* A rejected split is restored exactly by the caller, so the invariant
  survives rejections; an accepted split was just proven planar.

Verdicts are therefore always identical to full-graph testing — the
differential suite in ``tests/core`` proves it end to end — while the
per-query cost drops from LR-on-``G`` to DFS-plus-LR-on-a-block.
"""

from __future__ import annotations

from .graph import Graph, NodeId
from .lr_planarity import lr_is_planar

__all__ = ["ScopedPlanarityOracle"]

# Stands in for the fresh copy vertex in memo keys: copies are
# ("copy", coordinator, part, serial) 4-tuples, so a 1-tuple can't
# collide with any real node.
_COPY_TOKEN = ("copy-region",)


class ScopedPlanarityOracle:
    """Block-scoped planarity decisions for one evolving graph.

    All state — counters, ``known_planar``, and the region-verdict memo
    — is **per instance**, never module-global, so it is per-process by
    construction: shard workers build a fresh oracle over their decoded
    graph snapshot and the parent regenerates authoritative counters and
    memo contents by replaying the worker's split journal (see
    :mod:`repro.shard.dispatch`).  Keep it that way: a process-global
    memo here would silently leak parent state into forked workers.
    """

    MEMO_MAX_ENTRIES = 4096

    def __init__(self, graph: Graph) -> None:
        self.graph = graph  # the evolving graph, shared by reference
        self.known_planar = False  # proven for the graph's current state
        self.full_tests = 0
        self.scoped_tests = 0
        self.memo_hits = 0
        self._memo: dict[frozenset, bool] = {}

    def snapshot_state(self) -> tuple:
        """The oracle's full mutable state, for exact rollback."""
        return (
            self.known_planar, self.full_tests, self.scoped_tests,
            self.memo_hits, dict(self._memo),
        )

    def restore_state(self, state: tuple) -> None:
        """Inverse of :meth:`snapshot_state` (in place)."""
        (self.known_planar, self.full_tests, self.scoped_tests,
         self.memo_hits, memo) = state
        self._memo = dict(memo)

    def stats(self) -> dict[str, int]:
        return {
            "full_tests": self.full_tests,
            "scoped_tests": self.scoped_tests,
            "memo_hits": self.memo_hits,
        }

    def check_rerouted(self, copy: NodeId) -> bool:
        """Planarity of the graph, given that every modification since
        the last established verdict is incident to ``copy``.

        On a ``False`` verdict the caller must restore the graph exactly
        (``try_split`` does); the pre-modification graph was planar, so
        the invariant survives.
        """
        if not self.known_planar:
            self.full_tests += 1
            ok = lr_is_planar(self.graph)
            self.known_planar = ok
            return ok
        self.scoped_tests += 1
        region, key = self._region_at(copy)
        cached = self._memo.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        ok = lr_is_planar(self.graph.subgraph(region))
        if len(self._memo) >= self.MEMO_MAX_ENTRIES:
            self._memo.clear()
        self._memo[key] = ok
        return ok

    # -- region extraction -------------------------------------------------

    def _region_at(self, root: NodeId) -> tuple[set[NodeId], frozenset]:
        """Vertices of the blocks containing ``root``, plus the memo key.

        One iterative Hopcroft–Tarjan lowpoint DFS rooted at ``root``;
        only blocks whose closing cut vertex is the root itself are
        harvested (every block containing the root closes there).
        """
        adj = self.graph._adj
        disc: dict[NodeId, int] = {root: 0}
        low: dict[NodeId, int] = {root: 0}
        edge_stack: list[tuple[NodeId, NodeId]] = []
        region: set[NodeId] = {root}
        key_edges: list[frozenset] = []
        counter = 1
        stack: list[tuple[NodeId, NodeId | None, object]] = [
            (root, None, iter(adj[root]))
        ]
        while stack:
            v, parent, neighbors = stack[-1]
            descended = False
            for w in neighbors:
                if w not in disc:
                    disc[w] = low[w] = counter
                    counter += 1
                    edge_stack.append((v, w))
                    stack.append((w, v, iter(adj[w])))
                    descended = True
                    break
                if w != parent and disc[w] < disc[v]:
                    edge_stack.append((v, w))
                    if disc[w] < low[v]:
                        low[v] = disc[w]
            if descended:
                continue
            stack.pop()
            if not stack:
                break
            u = stack[-1][0]
            lv = low[v]
            if lv < low[u]:
                low[u] = lv
            if lv >= disc[u]:
                # u closes a block: pop its edges; harvest root blocks
                if u == root:
                    while True:
                        a, b = edge_stack.pop()
                        region.add(a)
                        region.add(b)
                        key_edges.append(
                            frozenset(
                                (
                                    _COPY_TOKEN if a == root else a,
                                    _COPY_TOKEN if b == root else b,
                                )
                            )
                        )
                        if a == u and b == v:
                            break
                else:
                    while True:
                        a, b = edge_stack.pop()
                        if a == u and b == v:
                            break
        return region, frozenset(key_edges)
