"""Dual graphs of combinatorial embeddings.

Once a rotation system is known, the planar dual — one node per face,
one edge per primal edge joining the two faces it borders — is a purely
local computation.  Duals are the gateway to the classic planar
machinery the paper's program targets downstream (part II uses planar
duality for min-cut), and the sensor example uses them for
region-adjacency reasoning.
"""

from __future__ import annotations

from .graph import Graph, NodeId, edge_id
from .rotation import RotationSystem, trace_faces

__all__ = ["DualGraph", "dual_graph"]


class DualGraph:
    """The dual of a planar rotation system.

    Face identifiers are dense integers ``0..F-1``; ``face_of_dart``
    maps every directed primal edge to the face on its traversal side,
    and ``edge_faces`` maps every primal edge to its two (possibly
    equal) incident faces.  The adjacency itself is exposed as a simple
    :class:`Graph` (parallel dual edges and self-loops of the true dual
    multigraph are recorded in ``edge_faces`` but coalesced/omitted in
    the simple view).
    """

    def __init__(self, rotation: RotationSystem) -> None:
        self.rotation = rotation
        self.faces = trace_faces(rotation)
        self.face_of_dart: dict[tuple, int] = {}
        for idx, face in enumerate(self.faces):
            for dart in face:
                self.face_of_dart[dart] = idx
        self.edge_faces: dict[tuple, tuple[int, int]] = {}
        self.graph = Graph(nodes=range(len(self.faces)))
        for u, v in rotation.graph.edges():
            left = self.face_of_dart[(u, v)]
            right = self.face_of_dart[(v, u)]
            self.edge_faces[edge_id(u, v)] = (left, right)
            if left != right:
                self.graph.add_edge(left, right)

    @property
    def num_faces(self) -> int:
        return len(self.faces)

    def face_size(self, face: int) -> int:
        return len(self.faces[face])

    def faces_at(self, v: NodeId) -> list[int]:
        """The faces incident to primal vertex ``v``, in rotation order."""
        ring = self.rotation.order(v)
        return [self.face_of_dart[(v, u)] for u in ring]

    def bridges(self) -> list[tuple]:
        """Primal edges with the same face on both sides (cut edges)."""
        return [e for e, (a, b) in self.edge_faces.items() if a == b]


def dual_graph(rotation: RotationSystem) -> DualGraph:
    """Construct the planar dual of ``rotation`` (must be genus 0)."""
    if rotation.graph.num_edges and not rotation.is_planar_embedding():
        raise ValueError("dual graphs are defined here only for planar embeddings")
    return DualGraph(rotation)
