"""Kuratowski witnesses: certificates of non-planarity.

When the distributed planarity test rejects a network, a deployment
wants to know *which links* are responsible.  By Kuratowski's theorem a
graph is non-planar iff it contains a subdivision of ``K5`` or ``K3,3``;
this module extracts one as an explicit edge set by greedy edge
minimization: repeatedly delete any edge whose removal keeps the graph
non-planar.  The remainder is an edge-minimal non-planar subgraph, which
is exactly a Kuratowski subdivision.

Complexity is O(m) planarity tests = O(m^2) — fine for the network sizes
a rejection needs to be debugged at, and independent of the distributed
machinery (this is a local, whole-topology diagnostic).
"""

from __future__ import annotations

from .graph import Graph
from .lr_planarity import is_planar

__all__ = ["kuratowski_subgraph", "classify_kuratowski"]


def kuratowski_subgraph(graph: Graph) -> Graph:
    """An edge-minimal non-planar subgraph (a K5 or K3,3 subdivision).

    Raises :class:`ValueError` when ``graph`` is planar.
    """
    if is_planar(graph):
        raise ValueError("graph is planar; no Kuratowski subgraph exists")
    work = graph.copy()
    for u, v in sorted(graph.edges(), key=repr):
        work.remove_edge(u, v)
        if is_planar(work):
            work.add_edge(u, v)
    # Drop isolated leftovers; keep only the witness's vertices.
    for v in list(work.nodes()):
        if work.degree(v) == 0:
            work.remove_node(v)
    return work


def classify_kuratowski(witness: Graph) -> str:
    """``"K5"`` or ``"K3,3"``, from the branch-vertex degrees.

    In an edge-minimal non-planar graph every vertex has degree >= 2;
    the *branch* vertices (degree >= 3) number 5 with degree 4 for a K5
    subdivision and 6 with degree 3 for a K3,3 subdivision.
    """
    branch_degrees = sorted(
        witness.degree(v) for v in witness.nodes() if witness.degree(v) >= 3
    )
    if branch_degrees == [4] * 5:
        return "K5"
    if branch_degrees == [3] * 6:
        return "K3,3"
    raise ValueError(
        f"not an edge-minimal Kuratowski witness (branch degrees {branch_degrees})"
    )
