"""Outerplanarity recognition.

The inter-part graph that hangs off the coordinator path ``P0`` is
outerplanar (all parts touch the single face containing ``P0``), and
Lemma 5.3's symmetry breaking is stated for outerplanar inputs.  This
module recognizes outerplanar graphs with the classical apex reduction:

    ``G`` is outerplanar  <=>  ``G + apex`` is planar,

where the apex is a new vertex adjacent to every vertex of ``G`` (all
vertices can lie on the outer face exactly when a vertex placed in that
face can reach all of them without crossings).  It reuses the library's
own left-right kernel, and can also return an *outerplanar embedding*:
a rotation system of ``G`` in which one face contains every vertex.
"""

from __future__ import annotations

from .graph import Graph, NodeId
from .lr_planarity import lr_planarity
from .rotation import RotationSystem, trace_faces

__all__ = ["is_outerplanar", "outerplanar_embedding", "outer_face_order"]


def is_outerplanar(graph: Graph) -> bool:
    """True iff every vertex of ``graph`` can lie on a single face."""
    return outerplanar_embedding(graph) is not None


def outerplanar_embedding(graph: Graph) -> RotationSystem | None:
    """A rotation system of ``graph`` with all vertices on one face.

    Returns ``None`` when the graph is not outerplanar.  Implementation:
    embed ``G`` plus an apex adjacent to all vertices; deleting the apex
    from the rotation system leaves all its former neighbors (= every
    vertex) on the face that opens up where the apex was.
    """
    augmented = Graph()
    # Node IDs must be mutually comparable; wrap originals in tuples and
    # use a shorter tuple as the apex so heterogeneous IDs still compare.
    wrap = {v: ("v", repr(v), v) for v in graph.nodes()}
    for v in graph.nodes():
        augmented.add_node(wrap[v])
    for u, v in graph.edges():
        augmented.add_edge(wrap[u], wrap[v])
    apex_node = ("a",)
    augmented.add_node(apex_node)
    for v in graph.nodes():
        augmented.add_edge(apex_node, wrap[v])

    rotation = lr_planarity(augmented)
    if rotation is None:
        return None

    unwrap = {w: v for v, w in wrap.items()}
    order = {}
    for v in graph.nodes():
        ring = [unwrap[u] for u in rotation.order(wrap[v]) if u != apex_node]
        order[v] = tuple(ring)
    return RotationSystem(graph, order)


def outer_face_order(graph: Graph) -> list[NodeId] | None:
    """Vertices of a connected outerplanar graph in outer-face order.

    Returns one cyclic order in which all vertices appear on a common
    face, or ``None`` if the graph is not outerplanar.  Cut vertices may
    appear multiple times on the face walk; the returned list keeps the
    first occurrence of each vertex.
    """
    if graph.num_nodes == 0:
        return []
    if graph.num_nodes == 1:
        return graph.nodes()
    rotation = outerplanar_embedding(graph)
    if rotation is None:
        return None
    if not graph.is_connected():
        return None
    all_nodes = set(graph.nodes())
    for face in trace_faces(rotation):
        on_face = {u for u, _ in face}
        if on_face == all_nodes:
            seen: set[NodeId] = set()
            result: list[NodeId] = []
            for u, _ in face:
                if u not in seen:
                    seen.add(u)
                    result.append(u)
            return result
    return None
