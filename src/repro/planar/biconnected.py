"""Biconnected-component decomposition and block-cut trees.

Observation 3.2 of the paper reduces a part's embedding freedom to its
biconnected-component decomposition: each block has a fixed cyclic
interface (up to a flip), and blocks may permute freely around cut
vertices.  The paper's distributed representation gives each component an
ID equal to the smallest edge ID inside it (footnote 5); we follow the
same convention so component IDs are globally consistent without
coordination.

The decomposition itself is the classical Hopcroft-Tarjan lowpoint DFS,
implemented iteratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import EdgeId, Graph, NodeId, edge_id

__all__ = [
    "BiconnectedComponent",
    "BiconnectedDecomposition",
    "biconnected_components",
    "articulation_points",
    "BlockCutTree",
]


@dataclass(frozen=True)
class BiconnectedComponent:
    """One block: its canonical ID, edge set, and vertex set."""

    component_id: EdgeId
    edges: frozenset
    vertices: frozenset

    @property
    def is_bridge(self) -> bool:
        return len(self.edges) == 1


@dataclass
class BiconnectedDecomposition:
    """All blocks of a graph plus per-vertex membership maps.

    ``components_of[v]`` lists the blocks containing ``v``; a vertex is a
    cut vertex exactly when it lies in two or more blocks (matching the
    paper's distributed representation, where each vertex knows its block
    memberships and thereby whether it is a cut vertex).
    """

    graph: Graph
    components: list[BiconnectedComponent] = field(default_factory=list)
    components_of: dict[NodeId, list[EdgeId]] = field(default_factory=dict)
    component_by_id: dict[EdgeId, BiconnectedComponent] = field(default_factory=dict)
    component_of_edge: dict[EdgeId, EdgeId] = field(default_factory=dict)

    def is_cut_vertex(self, v: NodeId) -> bool:
        return len(self.components_of.get(v, ())) >= 2

    def cut_vertices(self) -> set[NodeId]:
        return {v for v in self.graph.nodes() if self.is_cut_vertex(v)}

    def shared_component(self, u: NodeId, v: NodeId) -> EdgeId:
        """The unique block containing the edge ``{u, v}``."""
        return self.component_of_edge[edge_id(u, v)]


def biconnected_components(graph: Graph) -> BiconnectedDecomposition:
    """Decompose ``graph`` into biconnected components (blocks).

    Isolated vertices yield no blocks (they have no edges); every edge
    belongs to exactly one block.  Runs iteratively in O(n + m).
    """
    decomposition = BiconnectedDecomposition(graph=graph)
    decomposition.components_of = {v: [] for v in graph.nodes()}

    visited: set[NodeId] = set()
    depth: dict[NodeId, int] = {}
    low: dict[NodeId, int] = {}
    parent: dict[NodeId, NodeId | None] = {}
    edge_stack: list[tuple[NodeId, NodeId]] = []

    def flush_component(edges: list[tuple[NodeId, NodeId]]) -> None:
        if not edges:
            return
        eids = frozenset(edge_id(u, v) for u, v in edges)
        vertices = frozenset(v for e in edges for v in e)
        try:
            cid = min(eids)
        except TypeError:  # mixed real/pseudo vertex types
            cid = min(eids, key=repr)
        component = BiconnectedComponent(cid, eids, vertices)
        decomposition.components.append(component)
        decomposition.component_by_id[cid] = component
        for v in vertices:
            decomposition.components_of[v].append(cid)
        for eid in eids:
            decomposition.component_of_edge[eid] = cid

    for root in graph.nodes():
        if root in visited:
            continue
        visited.add(root)
        depth[root] = 0
        low[root] = 0
        parent[root] = None
        stack: list[tuple[NodeId, iter]] = [(root, iter(graph.neighbors(root)))]
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                if w not in visited:
                    parent[w] = v
                    visited.add(w)
                    depth[w] = depth[v] + 1
                    low[w] = depth[w]
                    edge_stack.append((v, w))
                    stack.append((w, iter(graph.neighbors(w))))
                    advanced = True
                    break
                if w != parent[v] and depth[w] < depth[v]:
                    # back edge to a strict ancestor
                    edge_stack.append((v, w))
                    low[v] = min(low[v], depth[w])
            if advanced:
                continue
            stack.pop()
            if not stack:
                continue
            u = stack[-1][0]  # v's DFS parent
            low[u] = min(low[u], low[v])
            if low[v] >= depth[u]:
                # u separates v's subtree: everything pushed after (u, v)
                # is one block, ended by (u, v) itself.
                component_edges: list[tuple[NodeId, NodeId]] = []
                while True:
                    e = edge_stack.pop()
                    component_edges.append(e)
                    if e == (u, v):
                        break
                flush_component(component_edges)

    # Deterministic order, and deterministic per-vertex membership lists.
    decomposition.components.sort(key=lambda c: repr(c.component_id))
    for v in decomposition.components_of:
        decomposition.components_of[v].sort(key=repr)
    return decomposition


def articulation_points(graph: Graph) -> set[NodeId]:
    """Cut vertices of ``graph``."""
    return biconnected_components(graph).cut_vertices()


class BlockCutTree:
    """The bipartite tree of blocks and cut vertices.

    Tree nodes are either ``("block", component_id)`` or ``("cut", v)``;
    a block node is adjacent to the cut vertices it contains.  For a
    connected graph this is a tree; for a disconnected graph, a forest.
    The paper's Figure 4(b) draws exactly this object.
    """

    def __init__(self, decomposition: BiconnectedDecomposition) -> None:
        self.decomposition = decomposition
        self.tree = Graph()
        cuts = decomposition.cut_vertices()
        for component in decomposition.components:
            block_node = ("block", component.component_id)
            self.tree.add_node(block_node)
            for v in sorted(component.vertices, key=repr):
                if v in cuts:
                    self.tree.add_edge(block_node, ("cut", v))

    def block_nodes(self) -> list:
        return [t for t in self.tree.nodes() if t[0] == "block"]

    def cut_nodes(self) -> list:
        return [t for t in self.tree.nodes() if t[0] == "cut"]

    def blocks_at(self, v: NodeId) -> list:
        """Component IDs of the blocks containing vertex ``v``."""
        return list(self.decomposition.components_of.get(v, ()))

    def is_tree(self) -> bool:
        """Sanity invariant: acyclic with one component per graph component."""
        t = self.tree
        if t.num_nodes == 0:
            return True
        return t.num_edges == t.num_nodes - len(t.connected_components())
